#pragma once

#include <map>
#include <string>

#include "analysis/sites.h"
#include "ir/program.h"

namespace mhla::sim {

using ir::i64;

/// Exact, enumerative execution of a (small) program: every loop iteration
/// is walked concretely and every subscript evaluated.  This is the
/// brute-force oracle the property tests use to validate the *analytic*
/// models (access counts, bounding-box footprints, delta transfers), which
/// is what MHLA actually runs on.
struct ExactCounts {
  i64 statement_instances = 0;
  i64 dynamic_accesses = 0;
  std::map<std::string, i64> accesses_per_array;   ///< dynamic accesses
  std::map<std::string, i64> distinct_elements;    ///< exact footprint, elems
  bool in_bounds = true;   ///< every evaluated subscript within the extents
  bool truncated = false;  ///< stopped at the instance budget
};

/// Enumerate the whole program.  Stops (with `truncated = true`) once
/// `max_instances` statement instances have been executed, so a mistaken
/// call on a huge program degrades gracefully instead of hanging.
ExactCounts enumerate_program(const ir::Program& program, i64 max_instances = 5'000'000);

/// Exact number of distinct elements the member sites of a copy-candidate
/// partition touch during ONE execution of the varying loops, maximized
/// over every concrete combination of the fixed outer iterators.  The
/// analytic bounding box must be a superset (>=) of this for every
/// candidate — the soundness property of analysis::footprint.
///
/// `site` supplies the loop context; `fixed` is the number of outer loops
/// held constant (the candidate's level).
i64 exact_footprint_elems(const ir::Program& program, const analysis::AccessSite& site,
                          std::size_t fixed);

}  // namespace mhla::sim
