#include "sim/report.h"

#include <iomanip>
#include <sstream>

namespace mhla::sim {

double percent_of(double value, double base) {
  if (base <= 0.0) return 100.0;
  return 100.0 * value / base;
}

std::string format_result(const SimResult& result) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(0);
  out << "cycles: " << result.total_cycles() << " (compute " << result.compute_cycles
      << ", access " << result.access_cycles << ", stall " << result.stall_cycles << ")\n";
  out << std::setprecision(1);
  out << "energy: " << result.energy_nj << " nJ\n";
  out << "dma busy: " << std::setprecision(0) << result.dma_busy_cycles << " cycles over "
      << result.num_block_transfers << " BT streams\n";
  for (const LayerStats& layer : result.layers) {
    out << "  " << std::left << std::setw(8) << layer.name << " reads " << std::right
        << std::setw(12) << layer.reads << "  writes " << std::setw(12) << layer.writes
        << "  energy " << std::setprecision(1) << layer.energy_nj << " nJ\n";
  }
  out << (result.feasible ? "capacity: ok\n" : "capacity: VIOLATED\n");
  return out.str();
}

std::string format_four_points(const std::string& app_name, const FourPoint& fp) {
  double base_cycles = fp.out_of_box.total_cycles();
  double base_energy = fp.out_of_box.energy_nj;
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << app_name << "\n";
  auto row = [&](const char* label, const SimResult& r) {
    out << "  " << std::left << std::setw(12) << label << " time "
        << std::right << std::setw(6) << percent_of(r.total_cycles(), base_cycles)
        << " %   energy " << std::setw(6) << percent_of(r.energy_nj, base_energy) << " %\n";
  };
  row("out-of-box", fp.out_of_box);
  row("MHLA", fp.mhla);
  row("MHLA+TE", fp.mhla_te);
  row("ideal", fp.ideal);
  return out.str();
}

}  // namespace mhla::sim
