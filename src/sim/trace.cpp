#include "sim/trace.h"

#include <algorithm>
#include <unordered_set>

namespace mhla::sim {

namespace {

/// Flatten a concrete subscript tuple to a linear element offset;
/// returns -1 if out of bounds.
i64 flatten(const ir::ArrayDecl& array, const std::vector<i64>& subscript) {
  i64 offset = 0;
  for (int dim = 0; dim < array.rank(); ++dim) {
    i64 value = subscript[static_cast<std::size_t>(dim)];
    if (value < 0 || value >= array.dims[static_cast<std::size_t>(dim)]) return -1;
    offset = offset * array.dims[static_cast<std::size_t>(dim)] + value;
  }
  return offset;
}

struct Enumerator {
  const ir::Program& program;
  i64 max_instances;
  ExactCounts counts;
  std::map<std::string, i64> binding;
  std::map<std::string, std::unordered_set<i64>> touched;

  void execute_stmt(const ir::StmtNode& stmt) {
    ++counts.statement_instances;
    for (const ir::ArrayAccess& access : stmt.accesses()) {
      const ir::ArrayDecl* array = program.find_array(access.array);
      counts.dynamic_accesses += access.count;
      counts.accesses_per_array[access.array] += access.count;
      if (!array) {
        counts.in_bounds = false;
        continue;
      }
      std::vector<i64> subscript;
      subscript.reserve(access.index.size());
      for (const ir::AffineExpr& expr : access.index) {
        subscript.push_back(expr.evaluate(binding));
      }
      i64 offset = flatten(*array, subscript);
      if (offset < 0) {
        counts.in_bounds = false;
      } else {
        touched[access.array].insert(offset);
      }
    }
  }

  void run(const ir::Node& node) {
    if (counts.truncated) return;
    if (node.is_stmt()) {
      if (counts.statement_instances >= max_instances) {
        counts.truncated = true;
        return;
      }
      execute_stmt(node.as_stmt());
      return;
    }
    const ir::LoopNode& loop = node.as_loop();
    for (i64 value = loop.lower(); value < loop.upper(); value += loop.step()) {
      binding[loop.iter()] = value;
      for (const ir::NodePtr& child : loop.body()) run(*child);
      if (counts.truncated) break;
    }
    binding.erase(loop.iter());
  }
};

}  // namespace

ExactCounts enumerate_program(const ir::Program& program, i64 max_instances) {
  Enumerator enumerator{program, max_instances, {}, {}, {}};
  for (const ir::NodePtr& top : program.top()) enumerator.run(*top);
  for (const auto& [array, elements] : enumerator.touched) {
    enumerator.counts.distinct_elements[array] = static_cast<i64>(elements.size());
  }
  return enumerator.counts;
}

i64 exact_footprint_elems(const ir::Program& /*program*/, const analysis::AccessSite& site,
                          std::size_t fixed) {
  fixed = std::min(fixed, site.path.size());

  // Enumerate every combination of the fixed outer iterators; for each,
  // walk the varying inner loops and count distinct elements.
  const ir::ArrayDecl& array = *site.array;
  i64 worst = 0;
  std::map<std::string, i64> binding;

  // Recursive enumeration of the fixed prefix.
  auto inner = [&](auto&& self, std::size_t level) -> void {
    if (level < fixed) {
      const ir::LoopNode& loop = *site.path[level];
      for (i64 value = loop.lower(); value < loop.upper(); value += loop.step()) {
        binding[loop.iter()] = value;
        self(self, level + 1);
      }
      binding.erase(loop.iter());
      return;
    }
    // Varying part: enumerate loops fixed..end, evaluating the access.
    std::unordered_set<i64> touched;
    auto vary = [&](auto&& vself, std::size_t vlevel) -> void {
      if (vlevel == site.path.size()) {
        std::vector<i64> subscript;
        for (const ir::AffineExpr& expr : site.access->index) {
          subscript.push_back(expr.evaluate(binding));
        }
        i64 offset = flatten(array, subscript);
        if (offset >= 0) touched.insert(offset);
        return;
      }
      const ir::LoopNode& loop = *site.path[vlevel];
      for (i64 value = loop.lower(); value < loop.upper(); value += loop.step()) {
        binding[loop.iter()] = value;
        vself(vself, vlevel + 1);
      }
      binding.erase(loop.iter());
    };
    vary(vary, fixed);
    worst = std::max(worst, static_cast<i64>(touched.size()));
  };
  inner(inner, 0);
  return worst;
}

}  // namespace mhla::sim
