#include "sim/simulator.h"

#include <algorithm>

#include "ir/walk.h"

namespace mhla::sim {

SimResult simulate(const assign::AssignContext& ctx, const assign::Assignment& assignment,
                   const SimOptions& options) {
  SimResult result;
  assign::Resolution res = assign::resolve(ctx, assignment);
  result.nest_cycles.assign(ctx.program.top().size(), 0.0);

  // --- Processor side: walk the nests, serve accesses from resolved layers.
  ir::walk_statements(ctx.program,
                      [&](int nest, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        double iters = static_cast<double>(ir::iterations_of(path));
                        double op = iters * static_cast<double>(stmt.op_cycles());
                        result.compute_cycles += op;
                        result.nest_cycles[static_cast<std::size_t>(nest)] += op;
                      });
  for (const analysis::AccessSite& site : ctx.sites) {
    int layer_idx = res.site_layer[static_cast<std::size_t>(site.id)];
    const mem::MemLayer& layer = ctx.hierarchy.layer(layer_idx);
    double cycles = static_cast<double>(site.dynamic_accesses()) *
                    layer.access_latency(site.is_write());
    result.access_cycles += cycles;
    result.nest_cycles[static_cast<std::size_t>(site.nest)] += cycles;
  }

  // --- Transfer side.
  std::vector<te::BlockTransfer> bts = te::collect_block_transfers(ctx, assignment);
  result.num_block_transfers = static_cast<int>(bts.size());
  result.dma_busy_cycles = te::total_dma_busy_cycles(bts);

  std::vector<assign::CopyExtension> extensions;
  if (options.mode == te::TransferMode::TimeExtended) {
    te::TeResult te_result = te::time_extend(ctx, assignment, bts, options.te);
    result.stall_cycles =
        te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &te_result);

    if (options.model_dma_contention) {
      // The engine can only overlap `channels` transfers with compute at a
      // time; per nest, the total hideable budget is nest CPU time times
      // the channel count.  Hidden cycles beyond the budget re-surface as
      // stalls (transfers queue behind each other on the engine).
      std::vector<double> hidden_per_nest(result.nest_cycles.size(), 0.0);
      for (const te::BlockTransfer& bt : bts) {
        const te::BtExtension& ext = te_result.for_bt(bt.id);
        hidden_per_nest[static_cast<std::size_t>(bt.nest)] +=
            ext.hidden_cycles * static_cast<double>(bt.issues);
      }
      for (std::size_t nest = 0; nest < hidden_per_nest.size(); ++nest) {
        double budget = result.nest_cycles[nest] * std::max(ctx.dma.channels, 1);
        double excess = hidden_per_nest[nest] - budget;
        if (excess > 0.0) result.stall_cycles += excess;
      }
    }
    extensions = te_result.footprint_extensions;
  } else {
    result.stall_cycles = te::total_stall_cycles(bts, options.mode, nullptr);
  }

  // One-time fills/flushes of pinned on-chip inputs/outputs block the
  // processor (program startup / shutdown); in the ideal zero-wait bar
  // they are hidden like every other transfer.
  for (const assign::PinnedTraffic& pinned : assign::pinned_array_traffic(ctx, assignment)) {
    const mem::MemLayer& home = ctx.hierarchy.layer(pinned.home);
    const mem::MemLayer& bg = ctx.hierarchy.layer(ctx.hierarchy.background());
    double cycles = mem::blocking_transfer_cycles(pinned.array->bytes(),
                                                  pinned.fill ? bg : home,
                                                  pinned.fill ? home : bg, ctx.dma);
    result.dma_busy_cycles += cycles;
    if (options.mode != te::TransferMode::Ideal) result.stall_cycles += cycles;
  }

  // --- Energy (mode independent, exactly like the paper's model).
  AccessTally tally = tally_accesses(ctx, assignment);
  result.energy_nj = tally_energy_nj(ctx.hierarchy, tally);
  result.layers = layer_stats(ctx.hierarchy, tally);

  // --- Capacity audit including TE lifetime growth.
  result.footprints = assign::compute_footprints(ctx, assignment, extensions);
  result.feasible = result.footprints.feasible;
  return result;
}

FourPoint simulate_four_points(const assign::AssignContext& ctx,
                               const assign::Assignment& step1,
                               const te::TeOptions& te_options) {
  FourPoint fp;
  fp.out_of_box = simulate(ctx, assign::out_of_box(ctx), {te::TransferMode::Blocking, {}});
  fp.mhla = simulate(ctx, step1, {te::TransferMode::Blocking, {}});
  fp.mhla_te = simulate(ctx, step1, {te::TransferMode::TimeExtended, te_options});
  fp.ideal = simulate(ctx, step1, {te::TransferMode::Ideal, {}});
  return fp;
}

}  // namespace mhla::sim
