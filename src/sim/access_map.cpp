#include "sim/access_map.h"

namespace mhla::sim {

AccessTally tally_accesses(const assign::AssignContext& ctx,
                           const assign::Assignment& assignment) {
  AccessTally tally(ctx.hierarchy.num_layers());
  assign::Resolution res = assign::resolve(ctx, assignment);

  for (const analysis::AccessSite& site : ctx.sites) {
    int layer = res.site_layer[static_cast<std::size_t>(site.id)];
    tally.add(layer, site.is_write(), site.dynamic_accesses());
  }

  for (const assign::TransferEdge& edge : res.transfers) {
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(edge.cc_id);
    i64 moved = cc.transfers * cc.elems_per_transfer;
    if (!cc.fill_free) {
      tally.add(edge.src_layer, false, moved);
      tally.add(edge.dst_layer, true, moved);
    }
    if (edge.write_back) {
      tally.add(edge.dst_layer, false, moved);
      tally.add(edge.src_layer, true, moved);
    }
  }

  // One-time fills/flushes of pinned on-chip inputs/outputs.
  int background = ctx.hierarchy.background();
  for (const assign::PinnedTraffic& pinned : assign::pinned_array_traffic(ctx, assignment)) {
    int src = pinned.fill ? background : pinned.home;
    int dst = pinned.fill ? pinned.home : background;
    tally.add(src, false, pinned.array->elems());
    tally.add(dst, true, pinned.array->elems());
  }
  return tally;
}

}  // namespace mhla::sim
