#pragma once

#include "assign/inplace.h"
#include "sim/energy.h"
#include "te/schedule.h"

namespace mhla::sim {

/// Simulation options: how transfers are charged, and the TE configuration
/// when mode == TimeExtended.
struct SimOptions {
  te::TransferMode mode = te::TransferMode::Blocking;
  te::TeOptions te;

  /// Model DMA-engine oversubscription: the cycles TE hides inside one nest
  /// cannot exceed that nest's CPU time multiplied by the engine's channel
  /// count — transfers beyond that queue on the engine and their time
  /// becomes exposed again.  Disabled by default to match the paper's
  /// idealized engine; the contention tests and the ablation bench turn it
  /// on.
  bool model_dma_contention = false;
};

/// Result of one deterministic execution of a configured program.
struct SimResult {
  double compute_cycles = 0.0;  ///< statement op cycles
  double access_cycles = 0.0;   ///< processor load/store latency
  double stall_cycles = 0.0;    ///< residual block-transfer waits
  double energy_nj = 0.0;
  double dma_busy_cycles = 0.0;
  int num_block_transfers = 0;  ///< distinct BT streams
  std::vector<LayerStats> layers;
  std::vector<double> nest_cycles;  ///< CPU cycles per top-level nest (no stalls)
  assign::FootprintReport footprints;
  bool feasible = true;

  double total_cycles() const { return compute_cycles + access_cycles + stall_cycles; }
};

/// Deterministically "execute" the program under an assignment:
/// walk the loop nests, serve every access from its resolved layer, run the
/// block transfers under the selected mode, and account cycles and energy.
///
/// This is an implementation independent of assign::estimate_cost (the
/// static model); in Blocking mode the two must agree exactly, which the
/// test suite checks.
SimResult simulate(const assign::AssignContext& ctx, const assign::Assignment& assignment,
                   const SimOptions& options = {});

/// Convenience bundle: the four bars of the paper's Figure 2 for one
/// configuration (plus the matching energy numbers for Figure 3).
struct FourPoint {
  SimResult out_of_box;  ///< everything off-chip, no copies
  SimResult mhla;        ///< step 1, blocking transfers
  SimResult mhla_te;     ///< step 1 + time extensions
  SimResult ideal;       ///< step 1 with zero-wait transfers
};

FourPoint simulate_four_points(const assign::AssignContext& ctx,
                               const assign::Assignment& step1,
                               const te::TeOptions& te_options = {});

}  // namespace mhla::sim
