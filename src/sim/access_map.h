#pragma once

#include "assign/assignment.h"

namespace mhla::sim {

using ir::i64;

/// Per-layer dynamic access tally (processor traffic + copy traffic).
struct AccessTally {
  std::vector<i64> reads;
  std::vector<i64> writes;

  explicit AccessTally(int num_layers = 0)
      : reads(static_cast<std::size_t>(num_layers), 0),
        writes(static_cast<std::size_t>(num_layers), 0) {}

  void add(int layer, bool is_write, i64 n) {
    (is_write ? writes : reads)[static_cast<std::size_t>(layer)] += n;
  }

  i64 total(int layer) const {
    return reads[static_cast<std::size_t>(layer)] + writes[static_cast<std::size_t>(layer)];
  }

  i64 grand_total() const {
    i64 t = 0;
    for (std::size_t l = 0; l < reads.size(); ++l) t += reads[l] + writes[l];
    return t;
  }
};

/// Count every dynamic access the configuration performs:
///  * processor loads/stores against the layer that serves each site, and
///  * copy traffic (source reads + destination writes per transferred
///    element, plus write-back mirrors for dirty copies).
AccessTally tally_accesses(const assign::AssignContext& ctx,
                           const assign::Assignment& assignment);

}  // namespace mhla::sim
