#pragma once

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace mhla::sim {

/// Multi-line human-readable dump of one simulation result.
std::string format_result(const SimResult& result);

/// The paper's normalized presentation: out-of-box = 100 %, one row per
/// configuration, cycles and energy side by side.
std::string format_four_points(const std::string& app_name, const FourPoint& fp);

/// Percentage helper: value as percent of base (100.0 if base is 0).
double percent_of(double value, double base);

}  // namespace mhla::sim
