#pragma once

#include "mem/hierarchy.h"
#include "sim/access_map.h"

namespace mhla::sim {

/// Per-layer simulation statistics.
struct LayerStats {
  std::string name;
  i64 reads = 0;
  i64 writes = 0;
  double energy_nj = 0.0;
};

/// Energy of a tally under the hierarchy's per-access models.
/// Exactly the paper's model: only memory-hierarchy accesses consume energy,
/// so execution-time changes (TE) never show up here.
double tally_energy_nj(const mem::Hierarchy& hierarchy, const AccessTally& tally);

/// Expand a tally into labeled per-layer statistics.
std::vector<LayerStats> layer_stats(const mem::Hierarchy& hierarchy, const AccessTally& tally);

}  // namespace mhla::sim
