#include "sim/energy.h"

namespace mhla::sim {

double tally_energy_nj(const mem::Hierarchy& hierarchy, const AccessTally& tally) {
  double energy = 0.0;
  for (int l = 0; l < hierarchy.num_layers(); ++l) {
    const mem::MemLayer& layer = hierarchy.layer(l);
    energy += static_cast<double>(tally.reads[static_cast<std::size_t>(l)]) * layer.read_energy_nj;
    energy +=
        static_cast<double>(tally.writes[static_cast<std::size_t>(l)]) * layer.write_energy_nj;
  }
  return energy;
}

std::vector<LayerStats> layer_stats(const mem::Hierarchy& hierarchy, const AccessTally& tally) {
  std::vector<LayerStats> stats;
  for (int l = 0; l < hierarchy.num_layers(); ++l) {
    const mem::MemLayer& layer = hierarchy.layer(l);
    LayerStats s;
    s.name = layer.name;
    s.reads = tally.reads[static_cast<std::size_t>(l)];
    s.writes = tally.writes[static_cast<std::size_t>(l)];
    s.energy_nj = static_cast<double>(s.reads) * layer.read_energy_nj +
                  static_cast<double>(s.writes) * layer.write_energy_nj;
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace mhla::sim
