#pragma once

#include <cstddef>
#include <string>

namespace mhla::serve {

/// Thin RAII wrapper over one connected stream-socket file descriptor.
/// Move-only; the descriptor closes with the owner.  All I/O is blocking —
/// the server dedicates a reader thread per connection and unblocks it by
/// shutting the socket down from another thread (`shutdown_both`), which is
/// the POSIX-portable way to interrupt a blocked recv without racing fd
/// reuse the way a bare close() would.
///
/// POSIX only (the whole serve/ subsystem is): on Windows every operation
/// throws std::runtime_error at the call site.
class Socket {
 public:
  Socket() = default;                ///< invalid (fd -1)
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read up to `max` bytes into `buffer`.  Returns the byte count, 0 on
  /// orderly EOF (or after shutdown_both), and throws std::runtime_error
  /// on a hard socket error.
  std::size_t read_some(char* buffer, std::size_t max);

  /// Write all of `data`; false when the peer is gone (connection reset /
  /// broken pipe — never a SIGPIPE), throws on other hard errors.
  bool write_all(const char* data, std::size_t size);

  /// Disallow further sends and receives; any thread blocked in read_some
  /// returns 0.  Safe to call from another thread and more than once.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Connect to `host:port` (numeric IPv4 or "localhost").  Throws
/// std::runtime_error when the connection cannot be established.
Socket connect_to(const std::string& host, int port);

/// Listening TCP socket.  Binds immediately; `port() ` reports the actual
/// port (useful with an ephemeral bind to port 0).  `accept` blocks until a
/// connection arrives and returns an invalid Socket once the listener has
/// been closed from another thread.
class Listener {
 public:
  /// Bind + listen on `host:port`; throws std::runtime_error on failure
  /// (address in use, bad host, ...).
  Listener(const std::string& host, int port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const { return port_; }

  /// Next connection; invalid Socket after close().
  Socket accept();

  /// Stop accepting: unblocks every accept() with an invalid Socket.
  /// Idempotent and callable from any thread.
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace mhla::serve
