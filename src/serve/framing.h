#pragma once

#include <cstddef>
#include <string>

#include "serve/socket.h"

namespace mhla::serve {

/// Hard cap on one frame.  A line that exceeds it is a protocol violation
/// (or garbage traffic) and kills the connection instead of growing the
/// buffer without bound.
constexpr std::size_t kMaxLineBytes = 16u * 1024 * 1024;

/// Newline-delimited framing over a Socket: every message is one complete
/// JSON document on one line, terminated by '\n' (a trailing '\r' is
/// stripped, so telnet/CRLF clients work).  This is the whole wire format
/// of mhla_serve — trivially inspectable with nc/telnet, trivially
/// parseable from any language, and self-resynchronizing: a reader that
/// joins mid-stream is aligned again at the next newline.
class LineReader {
 public:
  explicit LineReader(Socket& socket) : socket_(socket) {}

  /// Next complete line (without its terminator) into `line`.  Returns
  /// false on EOF — including an EOF that truncates a partial trailing
  /// line, which is dropped: a frame without its newline was never
  /// committed by the sender.  Throws std::runtime_error when a line
  /// exceeds kMaxLineBytes.
  bool read_line(std::string& line);

 private:
  Socket& socket_;
  std::string buffer_;
};

/// Write `line` plus the '\n' terminator; false when the peer is gone.
bool write_line(Socket& socket, const std::string& line);

}  // namespace mhla::serve
