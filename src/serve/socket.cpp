#include "serve/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mhla::serve {

#ifndef _WIN32

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Numeric IPv4 only (plus the "localhost" convenience): the server binds
/// loopback or an explicit interface address; name resolution stays out of
/// the library.
in_addr parse_host(const std::string& host) {
  in_addr address{};
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &address) != 1) {
    throw std::runtime_error("cannot parse host address '" + host +
                             "' (numeric IPv4 or \"localhost\")");
  }
  return address;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

std::size_t Socket::read_some(char* buffer, std::size_t max) {
  if (fd_ < 0) return 0;
  for (;;) {
    ssize_t n = ::recv(fd_, buffer, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    // A peer that vanished mid-read is an EOF, not a crash: the framing
    // layer treats the connection as closed either way.
    if (errno == ECONNRESET || errno == EPIPE || errno == EBADF) return 0;
    socket_error("recv failed");
  }
}

bool Socket::write_all(const char* data, std::size_t size) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < size) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd_, data + sent, size - sent, 0);
#endif
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET || errno == EBADF)) return false;
    socket_error("send failed");
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) socket_error("cannot create socket");
  Socket socket(fd);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  address.sin_addr = parse_host(host);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    socket_error("cannot connect to " + host + ":" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // best effort
  return socket;
}

Listener::Listener(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) socket_error("cannot create listening socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  address.sin_addr = parse_host(host);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    socket_error("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    socket_error("cannot listen on " + host + ":" + std::to_string(port));
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) == 0) {
    port_ = ntohs(address.sin_port);
  } else {
    port_ = port;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Socket Listener::accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // best effort
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket{};  // listener shut down (EINVAL) or hard failure: stop accepting
  }
}

void Listener::close() {
  // Shut down instead of closing: a blocked accept() returns with EINVAL,
  // and the fd itself stays reserved until the destructor so no concurrent
  // open can reuse the number while accept() still references it.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

#else  // _WIN32

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error("mhla serve/ requires POSIX sockets (not built for Windows)");
}
}  // namespace

Socket::~Socket() = default;
Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  return *this;
}
std::size_t Socket::read_some(char*, std::size_t) { unsupported(); }
bool Socket::write_all(const char*, std::size_t) { unsupported(); }
void Socket::shutdown_both() {}
void Socket::close() {}
Socket connect_to(const std::string&, int) { unsupported(); }
Listener::Listener(const std::string&, int) { unsupported(); }
Listener::~Listener() = default;
Socket Listener::accept() { unsupported(); }
void Listener::close() {}

#endif

}  // namespace mhla::serve
