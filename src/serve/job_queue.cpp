#include "serve/job_queue.h"

#include <algorithm>

#include "obs/trace.h"

namespace mhla::serve {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

std::shared_ptr<Job> JobQueue::accept(JobSpec spec, std::shared_ptr<EventSink> sink) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->sink = std::move(sink);
  job->accepted_ns = obs::Tracer::instance().now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return nullptr;
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
  }
  accepted_.add();
  return job;
}

bool JobQueue::enqueue(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      // Accepted but never ran: a terminal Failed, not Cancelled — nobody
      // asked for it to stop, the server refused it.  Retire immediately so
      // shutdown-window rejects don't pin map entries.
      job->state.store(JobState::Failed, std::memory_order_relaxed);
      retire_locked(job->id);
      return false;
    }
    queue_.push_back(job);
    depth_.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;
  std::shared_ptr<Job> job = std::move(queue_.front());
  queue_.pop_front();
  depth_.set(static_cast<std::int64_t>(queue_.size()));
  job->state.store(JobState::Running, std::memory_order_relaxed);
  job->started_ns = obs::Tracer::instance().now_ns();
  return job;
}

void JobQueue::finish(Job& job, JobState state) {
  job.state.store(state, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  retire_locked(job.id);
}

CancelOutcome JobQueue::cancel(std::uint64_t id, std::shared_ptr<Job>* dequeued) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return CancelOutcome::NotFound;
  // Hold the job by value: retire_locked below may erase map entries
  // (including, in principle, this one) and invalidate the iterator.
  std::shared_ptr<Job> job = it->second;
  job->cancel->store(true, std::memory_order_relaxed);
  if (job->state.load(std::memory_order_relaxed) == JobState::Queued) {
    auto pos = std::find_if(queue_.begin(), queue_.end(),
                            [&](const std::shared_ptr<Job>& q) { return q->id == id; });
    if (pos != queue_.end()) {
      queue_.erase(pos);
      depth_.set(static_cast<std::int64_t>(queue_.size()));
      job->state.store(JobState::Cancelled, std::memory_order_relaxed);
      retire_locked(id);
      if (dequeued) *dequeued = std::move(job);
      return CancelOutcome::Dequeued;
    }
    // Not in the queue despite the Queued state: a worker is between pop()
    // and the Running store, or the job was accepted but not yet enqueued.
    // Either way the flag is set and the runner will observe it.
  }
  return CancelOutcome::Signalled;
}

std::vector<JobStatusView> JobQueue::snapshot(bool has_filter, std::uint64_t only_job) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatusView> rows;
  for (const auto& [id, job] : jobs_) {
    if (has_filter && id != only_job) continue;
    rows.push_back({id, job->spec.command,
                    to_string(job->state.load(std::memory_order_relaxed))});
  }
  return rows;
}

std::vector<std::shared_ptr<Job>> JobQueue::close() {
  std::vector<std::shared_ptr<Job>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    for (const auto& job : queue_) {
      job->cancel->store(true, std::memory_order_relaxed);
      job->state.store(JobState::Cancelled, std::memory_order_relaxed);
    }
    dropped.assign(queue_.begin(), queue_.end());
    queue_.clear();
    depth_.set(0);
    for (const auto& job : dropped) retire_locked(job->id);
  }
  cv_.notify_all();
  return dropped;
}

void JobQueue::cancel_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : jobs_) {
    JobState state = job->state.load(std::memory_order_relaxed);
    if (state == JobState::Queued || state == JobState::Running) {
      job->cancel->store(true, std::memory_order_relaxed);
    }
  }
}

void JobQueue::retire_locked(std::uint64_t id) {
  if (jobs_.find(id) == jobs_.end()) return;
  terminal_fifo_.push_back(id);
  while (terminal_fifo_.size() > retain_terminal_) {
    jobs_.erase(terminal_fifo_.front());
    terminal_fifo_.pop_front();
  }
}

}  // namespace mhla::serve
