#include "serve/job_queue.h"

#include "obs/trace.h"

namespace mhla::serve {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

std::shared_ptr<Job> JobQueue::accept(JobSpec spec, std::shared_ptr<EventSink> sink) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->sink = std::move(sink);
  job->accepted_ns = obs::Tracer::instance().now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return nullptr;
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
  }
  accepted_.add();
  return job;
}

bool JobQueue::enqueue(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      job->state.store(JobState::Cancelled, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(job);
    depth_.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;
  std::shared_ptr<Job> job = std::move(queue_.front());
  queue_.pop_front();
  depth_.set(static_cast<std::int64_t>(queue_.size()));
  job->state.store(JobState::Running, std::memory_order_relaxed);
  job->started_ns = obs::Tracer::instance().now_ns();
  return job;
}

bool JobQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second->cancel->store(true, std::memory_order_relaxed);
  return true;
}

std::vector<JobStatusView> JobQueue::snapshot(bool has_filter, std::uint64_t only_job) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatusView> rows;
  for (const auto& [id, job] : jobs_) {
    if (has_filter && id != only_job) continue;
    rows.push_back({id, job->spec.command,
                    to_string(job->state.load(std::memory_order_relaxed))});
  }
  return rows;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    for (const auto& job : queue_) {
      job->cancel->store(true, std::memory_order_relaxed);
      job->state.store(JobState::Cancelled, std::memory_order_relaxed);
    }
    queue_.clear();
    depth_.set(0);
  }
  cv_.notify_all();
}

void JobQueue::cancel_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : jobs_) {
    JobState state = job->state.load(std::memory_order_relaxed);
    if (state == JobState::Queued || state == JobState::Running) {
      job->cancel->store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace mhla::serve
