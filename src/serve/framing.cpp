#include "serve/framing.h"

#include <stdexcept>

namespace mhla::serve {

bool LineReader::read_line(std::string& line) {
  for (;;) {
    std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer_.size() > kMaxLineBytes) {
      throw std::runtime_error("protocol violation: line exceeds " +
                               std::to_string(kMaxLineBytes) + " bytes");
    }
    char chunk[4096];
    std::size_t n = socket_.read_some(chunk, sizeof(chunk));
    if (n == 0) return false;  // EOF; any partial trailing line was never committed
    buffer_.append(chunk, n);
  }
}

bool write_line(Socket& socket, const std::string& line) {
  std::string frame = line;
  frame.push_back('\n');
  return socket.write_all(frame.data(), frame.size());
}

}  // namespace mhla::serve
