#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <stdexcept>
#include <utility>

#include <cstdio>

#include "core/pipeline.h"
#include "explore/explorer.h"
#include "ir/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/framing.h"
#include "serve/protocol.h"

namespace mhla::serve {

/// One connection: the reader thread that parses request lines, and the
/// event sink its jobs write to.  Kept alive by shared_ptr — the server's
/// session list drops at teardown, but a job holds its sink until it
/// finishes, so a worker can never write through a destroyed session (the
/// socket is only shut down, which turns sends into harmless failures).
class Server::Session : public EventSink, public std::enable_shared_from_this<Session> {
 public:
  Session(Server& server, Socket socket) : server_(server), socket_(std::move(socket)) {}

  void start() {
    thread_ = std::thread([self = shared_from_this()] { self->loop(); });
  }

  bool send(const std::string& line) override {
    std::lock_guard<std::mutex> lock(write_mu_);
    // Count before the bytes hit the wire: a client that reacts to a line it
    // just read must find that line already in the metrics.  (A failed write
    // leaves a small overcount on a connection that is going away anyway.)
    server_.bytes_sent_.add(line.size() + 1);  // +1: the newline framing
    server_.lines_sent_.add();
    return write_line(socket_, line);
  }

  void shutdown() { socket_.shutdown_both(); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  void subscribe_stats() { wants_stats_.store(true, std::memory_order_relaxed); }
  bool wants_stats() const { return wants_stats_.load(std::memory_order_relaxed); }

 private:
  void loop() {
    server_.connections_.add();
    LineReader reader(socket_);
    std::string line;
    try {
      while (reader.read_line(line)) {
        if (line.empty()) continue;
        server_.handle_request(shared_from_this(), line);
      }
    } catch (const std::exception& error) {
      send(event_error(error.what()));  // oversized line / hard socket error
    }
    server_.connections_.sub();
    finished_.store(true, std::memory_order_release);
    // Last act of the reader thread: hand ourselves to the reaper so the
    // thread is joined promptly (not only when the next connection lands).
    server_.on_session_exit(shared_from_this());
  }

  Server& server_;
  Socket socket_;
  std::mutex write_mu_;
  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<bool> wants_stats_{false};
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_bounds, config_.cache_shards),
      listener_(config_.host, config_.port),
      queue_(config_.job_retention) {
  if (!config_.cache_path.empty()) {
    xplore::ResultCache::LoadReport report = cache_.load_file(config_.cache_path);
    if (!report.clean) std::cerr << "mhla_serve: " << report.message << "\n";
  }
  start_ns_ = obs::Tracer::instance().now_ns();

  // Expose this instance's live cells process-wide.  Sources (not direct
  // registry counters) because tests run several servers per process; the
  // snapshot then reads exactly the cells metrics_view() reads.
  obs::Registry& registry = obs::Registry::instance();
  cache_metrics_source_ = cache_.register_metrics(registry, "serve.cache");
  metrics_source_ = registry.add_source([this](obs::MetricsSnapshot& out) {
    ServerMetricsView view = metrics_view();
    out.counters.emplace_back("serve.jobs_accepted", view.jobs_accepted);
    out.counters.emplace_back("serve.jobs_done", view.jobs_done);
    out.counters.emplace_back("serve.jobs_failed", view.jobs_failed);
    out.counters.emplace_back("serve.jobs_cancelled", view.jobs_cancelled);
    out.counters.emplace_back("serve.bytes_sent", view.bytes_sent);
    out.counters.emplace_back("serve.lines_sent", view.lines_sent);
    out.gauges.emplace_back("serve.queue_depth", view.queue_depth);
    out.gauges.emplace_back("serve.connections", view.connections);
  });

  accept_thread_ = std::thread([this] { accept_loop(); });
  reap_thread_ = std::thread([this] { reap_loop(); });
  unsigned workers = config_.workers ? config_.workers : 2;
  for (unsigned i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  if (!config_.cache_path.empty() && config_.persist_interval_seconds > 0.0) {
    persist_thread_ = std::thread([this] { persist_loop(); });
  }
  if (config_.stats_interval_seconds > 0.0) {
    stats_thread_ = std::thread([this] { stats_loop(); });
  }
}

Server::~Server() { stop(); }

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [&] { return stop_requested_; });
}

bool Server::wait_for(double seconds) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [&] { return stop_requested_; });
}

void Server::stop() {
  request_stop();
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }

  // 1. No new connections; the acceptor drains out.
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Retire the reaper first, so from here on no other thread joins
  // sessions — stop() owns every remaining join.  The reaper drains the
  // zombie backlog on its way out; readers that exit between now and the
  // swap below park themselves on the zombie list, which step 3 collects.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    reap_stop_ = true;
  }
  reap_cv_.notify_all();
  if (reap_thread_.joinable()) reap_thread_.join();

  // 3. Unblock and join every reader.  Session objects stay alive through
  // the shared_ptrs their in-flight jobs hold; their sockets are only shut
  // down, so late event sends fail cleanly instead of racing destruction.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
    sessions.insert(sessions.end(), zombies_.begin(), zombies_.end());
    zombies_.clear();
  }
  for (const auto& session : sessions) session->shutdown();
  for (const auto& session : sessions) session->join();

  // 4. Cancel everything in flight and let the workers drain: running jobs
  // observe their cancel tokens through the budget probes and finish with
  // anytime results (which still warm the cache).  Queued jobs no worker
  // ever claimed come back from close(): count them and emit their terminal
  // events here, or the accepted == done+failed+cancelled invariant breaks.
  queue_.cancel_all();
  for (const std::shared_ptr<Job>& dropped : queue_.close()) {
    jobs_cancelled_.add();  // before the event: see run_submit's ordering note
    dropped->sink->send(event_done_cancelled(dropped->id));
  }
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  worker_threads_.clear();

  // 5. Stop the persister and the stats broadcaster, write the final save.
  if (persist_thread_.joinable()) persist_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (!config_.cache_path.empty()) {
    try {
      cache_.save_if_dirty(config_.cache_path);
    } catch (const std::exception& error) {
      std::cerr << "mhla_serve: final cache save failed: " << error.what() << "\n";
    }
  }

  // 6. Unhook the registry sources — the snapshot callbacks capture `this`
  // and the cache, both about to go away.
  obs::Registry& registry = obs::Registry::instance();
  registry.remove_source(metrics_source_);
  registry.remove_source(cache_metrics_source_);
}

void Server::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid()) return;
    auto session = std::make_shared<Session>(*this, std::move(socket));
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    session->start();
  }
}

void Server::on_session_exit(const std::shared_ptr<Session>& session) {
  bool moved = false;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = std::find(sessions_.begin(), sessions_.end(), session);
    // Absent means stop() already swapped the live list and owns the join;
    // moving the session anyway would set up a double join.
    if (it != sessions_.end()) {
      sessions_.erase(it);
      zombies_.push_back(session);
      moved = true;
    }
  }
  if (moved) reap_cv_.notify_one();
}

void Server::reap_loop() {
  std::unique_lock<std::mutex> lock(sessions_mu_);
  std::vector<std::shared_ptr<Session>> batch;
  for (;;) {
    reap_cv_.wait(lock, [&] { return reap_stop_ || !zombies_.empty(); });
    if (zombies_.empty() && reap_stop_) return;
    batch.swap(zombies_);
    lock.unlock();
    // join() blocks only for the instants between a reader's hand-off and
    // its actual return; the destructor here may also free the Session (a
    // finished job could hold the last other reference).
    for (const auto& session : batch) session->join();
    batch.clear();
    lock.lock();
  }
}

void Server::handle_request(const std::shared_ptr<Session>& session, const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    session->send(event_error(error.what()));
    return;
  }

  switch (request.command) {
    case Command::Submit:
    case Command::Explore: {
      JobSpec spec;
      spec.command = request.command;
      try {
        // Validate now, fail fast; store the canonical serialization — the
        // same text the explorer hashes, so formatting differences in the
        // request never split cache keys.
        spec.program_text = ir::serialize(ir::parse_program(request.program_text));
      } catch (const std::exception& error) {
        session->send(event_error(error.what()));
        return;
      }
      spec.config = request.config;
      spec.explore = request.explore;
      std::shared_ptr<Job> job = queue_.accept(std::move(spec), session);
      if (!job) {
        session->send(event_error("server is shutting down"));
        return;
      }
      // `accepted` must be on the wire before a worker can see the job: a
      // cache-served job finishes instantly, and its terminal event must
      // never overtake the acceptance.
      session->send(event_accepted(job->id, request.command));
      if (!queue_.enqueue(job)) {
        // The queue marked the job Failed and retired it; the counter must
        // follow or accepted would exceed the terminal counters forever.
        jobs_failed_.add();  // before the event: see run_submit's ordering note
        job->sink->send(event_done_failed(job->id, "server is shutting down"));
      }
      break;
    }
    case Command::Status:
      session->send(event_status(queue_.snapshot(request.has_job, request.job)));
      break;
    case Command::Cancel: {
      std::shared_ptr<Job> dequeued;
      CancelOutcome outcome = queue_.cancel(request.job, &dequeued);
      session->send(event_cancelled(request.job, outcome != CancelOutcome::NotFound));
      if (outcome == CancelOutcome::Dequeued) {
        // The job left the queue without ever reaching a worker, so nobody
        // else will emit its terminal event — do it here, counter first.
        jobs_cancelled_.add();
        dequeued->sink->send(event_done_cancelled(dequeued->id));
      }
      break;
    }
    case Command::CacheStats:
      session->send(event_cache_stats(cache_.stats()));
      break;
    case Command::Metrics:
      // Subscribe before the snapshot goes out, so the first periodic
      // `stats` line can never precede the `metrics` acknowledgement.
      if (request.stream_stats) session->subscribe_stats();
      session->send(event_metrics(metrics_view()));
      break;
    case Command::Shutdown:
      session->send(event_shutdown());
      request_stop();
      break;
  }
}

void Server::worker_loop() {
  while (std::shared_ptr<Job> job = queue_.pop()) run_job(job);
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  // Job lifecycle on the timeline: the queue wait (stamped by JobQueue at
  // accept/pop) as one retroactive complete event, then the run itself as a
  // live span on this worker thread.
  obs::Tracer& tracer = obs::Tracer::instance();
  char args[48];
  std::snprintf(args, sizeof args, "{\"job\": %llu}",
                static_cast<unsigned long long>(job->id));
  if (tracer.enabled() && job->started_ns >= job->accepted_ns) {
    tracer.record_complete("queue_wait", "serve", job->accepted_ns, job->started_ns, args);
  }
  obs::Span span(job->spec.command == Command::Submit ? "job_submit" : "job_explore", "serve");
  span.set_args(args);

  try {
    if (job->spec.command == Command::Submit) {
      run_submit(*job);
    } else {
      run_explore(*job);
    }
  } catch (const std::exception& error) {
    queue_.finish(*job, JobState::Failed);
    jobs_failed_.add();  // before the event: see run_submit's ordering note
    job->sink->send(event_done_failed(job->id, error.what()));
  }
}

void Server::run_submit(Job& job) {
  core::PipelineConfig effective = job.spec.config;

  // A submit is one cell of the same design space the explorer walks: key
  // it identically (canonical TE variant), so an explore-warmed cache
  // answers a matching submit — and a submit warms future explores.
  const bool with_te = true;
  const std::uint64_t key = xplore::design_cache_key(job.spec.program_text, effective, with_te);

  xplore::CacheEntry cached;
  if (cache_.lookup(key, cached)) {
    queue_.finish(job, JobState::Done);
    // Outcome counters bump *before* the terminal event goes out (here and
    // in every terminal path): a client that reads `done` and immediately
    // asks for `metrics` must find its job counted.
    jobs_done_.add();
    double gap = cached.status == assign::SearchStatus::Optimal ? 0.0 : -1.0;
    job.sink->send(event_done_submit(job.id, "done", cached.status, gap, cached.cycles,
                                     cached.energy_nj, /*from_cache=*/true,
                                     /*evaluations=*/0));
    return;
  }

  // The job's cancel token rides into the run budget, so a `cancel` request
  // reaches the search through its cooperative probes.
  effective.search.budget.cancel = job.cancel;
  core::Pipeline pipeline(effective);
  core::PipelineResult run = pipeline.run(ir::parse_program(job.spec.program_text));

  // Same point selection as the explorer's canonical variant: the TE'd
  // simulation when a transfer engine exists, blocking otherwise.
  const sim::SimResult& point = effective.dma.present ? run.points.mhla_te : run.points.mhla;

  xplore::CacheEntry entry;
  entry.l1_bytes = effective.platform.l1_bytes;
  entry.l2_bytes = effective.platform.l2_bytes;
  entry.strategy = effective.strategy;
  entry.with_te = with_te;
  entry.cycles = point.total_cycles();
  entry.energy_nj = point.energy_nj;
  entry.status = run.search.status;
  cache_.insert(key, std::move(entry));  // status guard drops truncated results

  const bool cancelled = job.cancel->load(std::memory_order_relaxed) &&
                         run.search.status == assign::SearchStatus::BudgetExhausted;
  queue_.finish(job, cancelled ? JobState::Cancelled : JobState::Done);
  (cancelled ? jobs_cancelled_ : jobs_done_).add();
  job.sink->send(event_done_submit(job.id, cancelled ? "cancelled" : "done", run.search.status,
                                   run.search.gap, point.total_cycles(), point.energy_nj,
                                   /*from_cache=*/false, /*evaluations=*/1));
}

void Server::run_explore(Job& job) {
  xplore::ExplorerConfig config = xplore::default_explorer();
  config.pipeline = job.spec.config;
  const ExploreParams& params = job.spec.explore;
  if (!params.l1_axis.empty()) config.l1_axis = params.l1_axis;
  if (!params.l2_axis.empty()) config.l2_axis = params.l2_axis;
  config.strategies = params.strategies;  // empty = {pipeline.strategy}
  config.explore_te = params.explore_te;
  config.seed_stride = params.seed_stride;
  config.budget = params.budget;
  config.pipeline.search.budget.cancel = job.cancel;

  Job* streamed = &job;
  config.on_wave = [streamed](const xplore::ExploreResult& running) {
    streamed->sink->send(event_frontier(streamed->id, running));
  };

  xplore::Explorer explorer(std::move(config));
  xplore::ExploreResult result = explorer.run(ir::parse_program(job.spec.program_text), cache_);

  const bool cancelled =
      job.cancel->load(std::memory_order_relaxed) && result.budget_exhausted;
  queue_.finish(job, cancelled ? JobState::Cancelled : JobState::Done);
  (cancelled ? jobs_cancelled_ : jobs_done_).add();
  job.sink->send(event_done_explore(job.id, cancelled ? "cancelled" : "done", result));
}

ServerMetricsView Server::metrics_view() const {
  ServerMetricsView view;
  view.jobs_accepted = queue_.accepted_total();
  view.jobs_done = jobs_done_.value();
  view.jobs_failed = jobs_failed_.value();
  view.jobs_cancelled = jobs_cancelled_.value();
  view.jobs_tracked = queue_.tracked();
  view.queue_depth = queue_.depth();
  view.connections = connections_.value();
  view.bytes_sent = bytes_sent_.value();
  view.lines_sent = lines_sent_.value();
  view.uptime_seconds =
      static_cast<double>(obs::Tracer::instance().now_ns() - start_ns_) * 1e-9;
  view.cache = cache_.stats();
  return view;
}

void Server::stats_loop() {
  const auto interval = std::chrono::duration<double>(config_.stats_interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, interval, [&] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    // One snapshot per tick, the same line to every subscriber — readers of
    // several connections can correlate the streams.
    std::string line = event_stats(metrics_view());
    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
      sessions = sessions_;
    }
    for (const auto& session : sessions) {
      if (session->wants_stats() && !session->finished()) session->send(line);
    }
    lock.lock();
  }
}

void Server::persist_loop() {
  const auto interval = std::chrono::duration<double>(config_.persist_interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, interval, [&] { return stop_requested_; });
    if (stop_requested_) return;  // the final save runs in stop()
    lock.unlock();
    try {
      cache_.save_if_dirty(config_.cache_path);
    } catch (const std::exception& error) {
      // Persistence failures must not take the server down; the previous
      // document on disk is intact (crash-safe saver) and the next tick
      // retries.
      std::cerr << "mhla_serve: periodic cache save failed: " << error.what() << "\n";
    }
    lock.lock();
  }
}

}  // namespace mhla::serve
