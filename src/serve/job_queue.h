#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace mhla::serve {

/// Lifecycle of one server job.
enum class JobState {
  Queued,     ///< accepted, waiting for a worker
  Running,    ///< a worker is on it
  Done,       ///< finished with a result
  Cancelled,  ///< cancel flag bound before completion (anytime result sent)
  Failed,     ///< the run threw; the error went out as the terminal event
};

std::string to_string(JobState state);

/// Where a job's events are written.  Implemented by the server's per-
/// connection session; `send` returns false once the peer is gone, which
/// the workers treat as "stop reporting, keep computing" — the job still
/// runs to completion (or cancel) and its results still warm the cache.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual bool send(const std::string& line) = 0;
};

/// Everything a worker needs to run one job.  The program rides as its
/// canonical serialized text — validated and re-serialized at submission,
/// re-parsed by the worker.  The text is simultaneously the cache-key
/// component (see xplore::design_cache_key), and parsing is trivial next to
/// a pipeline run, so carrying the parsed (move-only) form too buys
/// nothing.
struct JobSpec {
  Command command = Command::Submit;
  std::string program_text;
  core::PipelineConfig config;
  ExploreParams explore;
};

/// One accepted job.  The cancel flag doubles as the budget's cancel token:
/// the worker threads it into the run's `core::BudgetSpec`, so a `cancel`
/// request reaches a mid-flight search through the ordinary cooperative
/// probe path and the job drains with an anytime (budget_exhausted) result.
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  std::shared_ptr<std::atomic<bool>> cancel = std::make_shared<std::atomic<bool>>(false);
  std::atomic<JobState> state{JobState::Queued};
  std::shared_ptr<EventSink> sink;
  /// Tracer timestamps of the lifecycle (accept / worker pickup), so the
  /// server can emit queue-wait and run spans without re-reading clocks.
  std::uint64_t accepted_ns = 0;
  std::uint64_t started_ns = 0;
};

/// What a cancel request actually did (see JobQueue::cancel).
enum class CancelOutcome {
  NotFound,   ///< unknown (or already retention-pruned) job id
  Signalled,  ///< cancel flag raised; a running job drains through its budget
  Dequeued,   ///< still queued: removed before any worker saw it, now Cancelled
};

/// FIFO queue plus registry of the jobs the server has accepted.  Terminal
/// jobs are retained for `status` queries only up to a bounded window
/// (`retain_terminal`, FIFO over completion order) — without the bound a
/// long-running server leaks one map entry plus the full program text per
/// request.  All methods are thread-safe; `pop` blocks until a job is
/// available or the queue is closed.
class JobQueue {
 public:
  explicit JobQueue(std::size_t retain_terminal = 1024)
      : retain_terminal_(retain_terminal) {}

  /// Accept a job: assign the next id and register it, but do NOT hand it
  /// to the workers yet.  Returns null (and drops the job) once the queue
  /// is closed.  Acceptance and enqueueing are split deliberately: the
  /// server must put the `accepted` event on the wire before a worker can
  /// possibly emit the job's terminal event (a cache-served job finishes in
  /// microseconds), or a client could observe `done` before `accepted`.
  std::shared_ptr<Job> accept(JobSpec spec, std::shared_ptr<EventSink> sink);

  /// Make an accepted job visible to the workers.  False once the queue is
  /// closed — the job is marked Failed and retired; it will never run and
  /// the caller owes the client a terminal event (and the failed counter a
  /// bump, to keep accepted == done + failed + cancelled + in-flight).
  bool enqueue(const std::shared_ptr<Job>& job);

  /// Next job for a worker; null once the queue is closed and drained.
  /// Marks the job Running before returning it.
  std::shared_ptr<Job> pop();

  /// Record a job's terminal state and retire it into the bounded retention
  /// window.  Every terminal transition must go through here (or through
  /// the internal paths of cancel/close/enqueue-on-closed) or the job would
  /// be tracked forever.
  void finish(Job& job, JobState state);

  /// Cancel a job.  A job still sitting in the queue is *dequeued*: marked
  /// Cancelled and retired immediately, never burning a worker — the caller
  /// owes its submitter the terminal event (`dequeued` receives the job).
  /// Otherwise the cancel flag is raised and a running job drains through
  /// its cooperative budget probes; cancelling a finished job is a harmless
  /// Signalled no-op.
  CancelOutcome cancel(std::uint64_t id, std::shared_ptr<Job>* dequeued = nullptr);

  /// Status rows of every tracked job (recent terminals plus everything
  /// in flight), in id order — or of one job when `only_job` is set (empty
  /// vector for an unknown or pruned id).
  std::vector<JobStatusView> snapshot(bool has_filter = false,
                                      std::uint64_t only_job = 0) const;

  /// Stop accepting and wake every blocked pop() with null.  Queued jobs no
  /// worker claimed are marked Cancelled, retired, and returned so the
  /// caller can count them and emit their terminal events.
  std::vector<std::shared_ptr<Job>> close();

  /// Raise every unfinished job's cancel flag (shutdown path: running jobs
  /// drain through their budgets).
  void cancel_all();

  /// Jobs currently enqueued and not yet claimed by a worker.  Reads the
  /// same gauge `enqueue`/`pop`/`close` maintain — the one depth cell the
  /// `metrics` verb and any registry source report (no second hand count).
  std::int64_t depth() const { return depth_.value(); }

  /// Monotonic counters over the queue's whole life.
  std::uint64_t accepted_total() const { return accepted_.value(); }

  /// Jobs currently held in the registry: in-flight plus retained
  /// terminals.  Bounded by in-flight + retain_terminal.
  std::size_t tracked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
  }

 private:
  /// Push `id` onto the terminal FIFO and prune the oldest retained
  /// terminals past the window.  Caller holds mu_; `id` must be in jobs_
  /// (a pruned id is ignored so late finishes stay harmless).
  void retire_locked(std::uint64_t id);

  mutable std::mutex mu_;
  std::size_t retain_terminal_;
  obs::Gauge depth_;       ///< queue_.size(), maintained at every transition
  obs::Counter accepted_;  ///< jobs ever accepted
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> terminal_fifo_;  ///< retained terminal ids, oldest first
  std::uint64_t next_id_ = 1;
  bool closed_ = false;
};

}  // namespace mhla::serve
