#include "serve/protocol.h"

#include <sstream>
#include <stdexcept>

#include "core/json.h"
#include "core/json_report.h"

namespace mhla::serve {

namespace {

using core::Json;
using core::json_escape;
using core::json_number_exact;

Command parse_command(const std::string& name) {
  if (name == "submit") return Command::Submit;
  if (name == "explore") return Command::Explore;
  if (name == "status") return Command::Status;
  if (name == "cancel") return Command::Cancel;
  if (name == "cache_stats") return Command::CacheStats;
  if (name == "metrics") return Command::Metrics;
  if (name == "shutdown") return Command::Shutdown;
  throw std::invalid_argument(
      "unknown command \"" + name +
      "\" (expected submit, explore, status, cancel, cache_stats, metrics or shutdown)");
}

std::vector<xplore::i64> parse_i64_axis(const Json& value, const char* key) {
  std::vector<xplore::i64> axis;
  for (const Json& item : value.array()) {
    std::int64_t bytes = item.integer();
    if (bytes < 0) {
      throw std::invalid_argument(std::string(key) + " values must be >= 0 bytes");
    }
    axis.push_back(bytes);
  }
  return axis;
}

std::size_t parse_size(const Json& value, const char* key) {
  std::int64_t n = value.integer();
  if (n < 0) throw std::invalid_argument(std::string(key) + " must be >= 0");
  return static_cast<std::size_t>(n);
}

void append_point(std::ostringstream& out, const xplore::TradeoffPoint& point,
                  const xplore::DesignCell& cell) {
  out << "{\"l1_bytes\": " << point.l1_bytes << ", \"l2_bytes\": " << point.l2_bytes
      << ", \"strategy\": \"" << json_escape(cell.strategy) << "\""
      << ", \"with_te\": " << (cell.with_te ? "true" : "false")
      << ", \"cycles\": " << json_number_exact(point.cycles)
      << ", \"energy_nj\": " << json_number_exact(point.energy_nj) << "}";
}

void append_explore_counters(std::ostringstream& out, const xplore::ExploreResult& result) {
  out << "\"samples\": " << result.samples.size() << ", \"evaluations\": " << result.evaluations
      << ", \"cache_hits\": " << result.cache_hits << ", \"rounds\": " << result.rounds
      << ", \"lattice_cells\": " << result.lattice_cells
      << ", \"budget_exhausted\": " << (result.budget_exhausted ? "true" : "false")
      << ", \"converged\": " << (result.converged ? "true" : "false");
}

}  // namespace

std::string to_string(Command command) {
  switch (command) {
    case Command::Submit: return "submit";
    case Command::Explore: return "explore";
    case Command::Status: return "status";
    case Command::Cancel: return "cancel";
    case Command::CacheStats: return "cache_stats";
    case Command::Metrics: return "metrics";
    case Command::Shutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  Json document = Json::parse(line);
  const Json::Object& members = document.object();

  Request request;
  request.command = parse_command(document.at("cmd").string());

  for (const auto& [key, value] : members) {
    if (key == "cmd") continue;
    if (key == "program") {
      request.program_text = value.string();
    } else if (key == "config") {
      // Re-serialize the embedded object and hand it to the one config
      // parser in the tree, so a request config means exactly what the same
      // document means to mhla_tool --config.
      request.config = core::pipeline_config_from_json(value.dump());
      request.has_config = true;
    } else if (key == "job") {
      std::int64_t id = value.integer();
      if (id < 0) throw std::invalid_argument("job must be >= 0");
      request.job = static_cast<std::uint64_t>(id);
      request.has_job = true;
    } else if (key == "l1_axis") {
      request.explore.l1_axis = parse_i64_axis(value, "l1_axis");
    } else if (key == "l2_axis") {
      request.explore.l2_axis = parse_i64_axis(value, "l2_axis");
    } else if (key == "strategies") {
      for (const Json& item : value.array()) {
        request.explore.strategies.push_back(item.string());
      }
    } else if (key == "explore_te") {
      request.explore.explore_te = value.boolean();
    } else if (key == "seed_stride") {
      request.explore.seed_stride = parse_size(value, "seed_stride");
      if (request.explore.seed_stride == 0) {
        throw std::invalid_argument("seed_stride must be >= 1");
      }
    } else if (key == "budget") {
      request.explore.budget = parse_size(value, "budget");
    } else if (key == "stream") {
      request.stream_stats = value.boolean();
    } else {
      throw std::invalid_argument("unknown request key \"" + key + "\"");
    }
  }

  switch (request.command) {
    case Command::Submit:
    case Command::Explore:
      if (request.program_text.empty()) {
        throw std::invalid_argument(to_string(request.command) +
                                    " requires a non-empty \"program\"");
      }
      break;
    case Command::Cancel:
      if (!request.has_job) throw std::invalid_argument("cancel requires \"job\"");
      break;
    case Command::Status:
    case Command::CacheStats:
    case Command::Metrics:
    case Command::Shutdown:
      break;
  }
  return request;
}

std::string to_json(const Request& request) {
  std::ostringstream out;
  out << "{\"cmd\": \"" << to_string(request.command) << "\"";
  if (!request.program_text.empty()) {
    out << ", \"program\": \"" << json_escape(request.program_text) << "\"";
  }
  if (request.has_config) {
    // The canonical config emitter pretty-prints; re-dump through the parser
    // for the one-line form NDJSON framing requires.
    out << ", \"config\": " << Json::parse(core::to_json(request.config)).dump();
  }
  if (request.has_job) out << ", \"job\": " << request.job;
  if (!request.explore.l1_axis.empty()) {
    out << ", \"l1_axis\": [";
    for (std::size_t i = 0; i < request.explore.l1_axis.size(); ++i) {
      out << (i ? ", " : "") << request.explore.l1_axis[i];
    }
    out << "]";
  }
  if (!request.explore.l2_axis.empty()) {
    out << ", \"l2_axis\": [";
    for (std::size_t i = 0; i < request.explore.l2_axis.size(); ++i) {
      out << (i ? ", " : "") << request.explore.l2_axis[i];
    }
    out << "]";
  }
  if (!request.explore.strategies.empty()) {
    out << ", \"strategies\": [";
    for (std::size_t i = 0; i < request.explore.strategies.size(); ++i) {
      out << (i ? ", " : "") << "\"" << json_escape(request.explore.strategies[i]) << "\"";
    }
    out << "]";
  }
  if (request.explore.explore_te) out << ", \"explore_te\": true";
  if (request.explore.seed_stride != 2) {
    out << ", \"seed_stride\": " << request.explore.seed_stride;
  }
  if (request.explore.budget != 0) out << ", \"budget\": " << request.explore.budget;
  if (request.stream_stats) out << ", \"stream\": true";
  out << "}";
  return out.str();
}

std::string event_accepted(std::uint64_t job, Command command) {
  std::ostringstream out;
  out << "{\"event\": \"accepted\", \"job\": " << job << ", \"command\": \""
      << to_string(command) << "\"}";
  return out.str();
}

std::string event_frontier(std::uint64_t job, const xplore::ExploreResult& result) {
  std::ostringstream out;
  out << "{\"event\": \"frontier\", \"job\": " << job << ", ";
  append_explore_counters(out, result);
  out << ", \"frontier\": [";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    if (i) out << ", ";
    append_point(out, result.frontier[i], result.frontier_cells[i]);
  }
  out << "]}";
  return out.str();
}

std::string event_done_explore(std::uint64_t job, const std::string& state,
                               const xplore::ExploreResult& result) {
  std::ostringstream out;
  out << "{\"event\": \"done\", \"job\": " << job << ", \"kind\": \"explore\", \"state\": \""
      << json_escape(state) << "\", ";
  append_explore_counters(out, result);
  out << ", \"frontier_size\": " << result.frontier.size() << "}";
  return out.str();
}

std::string event_done_submit(std::uint64_t job, const std::string& state,
                              assign::SearchStatus status, double gap, double cycles,
                              double energy_nj, bool from_cache, std::size_t evaluations) {
  std::ostringstream out;
  out << "{\"event\": \"done\", \"job\": " << job << ", \"kind\": \"submit\", \"state\": \""
      << json_escape(state) << "\", \"status\": \"" << assign::to_string(status)
      << "\", \"gap\": " << json_number_exact(gap)
      << ", \"cycles\": " << json_number_exact(cycles)
      << ", \"energy_nj\": " << json_number_exact(energy_nj)
      << ", \"from_cache\": " << (from_cache ? "true" : "false")
      << ", \"evaluations\": " << evaluations << "}";
  return out.str();
}

std::string event_done_failed(std::uint64_t job, const std::string& message) {
  std::ostringstream out;
  out << "{\"event\": \"done\", \"job\": " << job
      << ", \"kind\": \"error\", \"state\": \"failed\", \"message\": \""
      << json_escape(message) << "\"}";
  return out.str();
}

std::string event_done_cancelled(std::uint64_t job) {
  std::ostringstream out;
  out << "{\"event\": \"done\", \"job\": " << job
      << ", \"kind\": \"cancelled\", \"state\": \"cancelled\"}";
  return out.str();
}

std::string event_status(const std::vector<JobStatusView>& jobs) {
  std::ostringstream out;
  out << "{\"event\": \"status\", \"jobs\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) out << ", ";
    out << "{\"job\": " << jobs[i].job << ", \"command\": \"" << to_string(jobs[i].command)
        << "\", \"state\": \"" << json_escape(jobs[i].state) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string event_cache_stats(const xplore::CacheStats& stats) {
  std::ostringstream out;
  out << "{\"event\": \"cache_stats\", \"entries\": " << stats.entries
      << ", \"shards\": " << stats.shards << ", \"hits\": " << stats.hits
      << ", \"misses\": " << stats.misses << ", \"insertions\": " << stats.insertions
      << ", \"rejected\": " << stats.rejected << ", \"evictions\": " << stats.evictions
      << ", \"saves\": " << stats.saves << "}";
  return out.str();
}

namespace {

std::string metrics_payload(const char* event, const ServerMetricsView& view) {
  std::ostringstream out;
  out << "{\"event\": \"" << event << "\", \"jobs_accepted\": " << view.jobs_accepted
      << ", \"jobs_done\": " << view.jobs_done << ", \"jobs_failed\": " << view.jobs_failed
      << ", \"jobs_cancelled\": " << view.jobs_cancelled
      << ", \"jobs_tracked\": " << view.jobs_tracked
      << ", \"queue_depth\": " << view.queue_depth << ", \"connections\": " << view.connections
      << ", \"bytes_sent\": " << view.bytes_sent << ", \"lines_sent\": " << view.lines_sent
      << ", \"uptime_seconds\": " << json_number_exact(view.uptime_seconds)
      << ", \"cache\": {\"entries\": " << view.cache.entries << ", \"hits\": " << view.cache.hits
      << ", \"misses\": " << view.cache.misses << ", \"insertions\": " << view.cache.insertions
      << ", \"rejected\": " << view.cache.rejected << ", \"evictions\": " << view.cache.evictions
      << ", \"saves\": " << view.cache.saves << "}}";
  return out.str();
}

}  // namespace

std::string event_metrics(const ServerMetricsView& view) {
  return metrics_payload("metrics", view);
}

std::string event_stats(const ServerMetricsView& view) { return metrics_payload("stats", view); }

std::string event_cancelled(std::uint64_t job, bool found) {
  std::ostringstream out;
  out << "{\"event\": \"cancelled\", \"job\": " << job
      << ", \"found\": " << (found ? "true" : "false") << "}";
  return out.str();
}

std::string event_shutdown() { return "{\"event\": \"shutdown\"}"; }

std::string event_error(const std::string& message) {
  return "{\"event\": \"error\", \"message\": \"" + json_escape(message) + "\"}";
}

}  // namespace mhla::serve
