#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "explore/concurrent_cache.h"
#include "explore/explorer.h"

namespace mhla::serve {

/// The verbs of the mhla_serve wire protocol.  Every request is one JSON
/// object on one line (see serve/framing.h) carrying a "cmd" key with the
/// snake_case verb name; every reply is a stream of event objects (below).
enum class Command {
  Submit,      ///< run one pipeline on one program/config
  Explore,     ///< run a lattice exploration, streaming frontier events
  Status,      ///< report queued/running/finished jobs
  Cancel,      ///< raise a job's cancel flag
  CacheStats,  ///< report the process-wide result-cache counters
  Metrics,     ///< snapshot the server's job/queue/cache/connection metrics
  Shutdown,    ///< drain and stop the server
};

std::string to_string(Command command);

/// Lattice parameters of an `explore` request.  Empty axes / strategies fall
/// back to `xplore::default_explorer()`'s lattice on the server, so a
/// minimal request explores the paper's default design space.
struct ExploreParams {
  std::vector<xplore::i64> l1_axis;
  std::vector<xplore::i64> l2_axis;
  std::vector<std::string> strategies;
  bool explore_te = false;
  std::size_t seed_stride = 2;
  std::size_t budget = 0;  ///< evaluation-cell cap; 0 = unlimited

  friend bool operator==(const ExploreParams&, const ExploreParams&) = default;
};

/// One parsed request line.
///
/// Request keys by command:
///   submit   — "program" (.mhla text, required), "config" (PipelineConfig
///              object, optional; defaults apply).  Deadlines/probe budgets
///              ride inside config.search ("deadline_seconds"/"max_probes").
///   explore  — as submit, plus "l1_axis"/"l2_axis" (byte arrays),
///              "strategies" (names), "explore_te", "seed_stride", "budget".
///   status   — optional "job" to narrow to one job.
///   cancel   — "job" (required).
///   metrics  — optional "stream" (bool): subscribe this connection to the
///              server's periodic `stats` events (requires the server to run
///              with a stats interval; the immediate snapshot always comes).
///   cache_stats, shutdown — no operands.
struct Request {
  Command command = Command::Status;
  std::string program_text;
  core::PipelineConfig config;
  bool has_config = false;
  ExploreParams explore;
  std::uint64_t job = 0;
  bool has_job = false;
  bool stream_stats = false;
};

/// Parse one request line.  Throws std::invalid_argument on malformed JSON,
/// an unknown "cmd", an unknown key, a missing operand, or a config object
/// that `core::pipeline_config_from_json` rejects — the server turns the
/// message into an `error` event verbatim.
Request parse_request(const std::string& line);

/// Serialize a request to its wire line (the client side of parse_request;
/// `parse_request(to_json(r))` reproduces `r`).
std::string to_json(const Request& request);

/// ---- Event builders ------------------------------------------------------
///
/// Every reply line is an object with an "event" key:
///   accepted    — {"event":"accepted","job":N,"command":"explore"}
///   frontier    — incremental explore progress after each wave: counters
///                 plus the current frontier with full cell coordinates
///   done        — terminal event of a submit/explore job ("state" is
///                 "done"/"cancelled"/"failed"; submit carries the search
///                 status, certified gap and the measured cost pair,
///                 explore carries the exploration counters)
///   status      — {"event":"status","jobs":[{"job":N,"command":..,"state":..}]}
///   cache_stats — the ConcurrentResultCache counters
///   cancelled   — cancel acknowledgement ({"found":false} for unknown jobs)
///   shutdown    — shutdown acknowledgement
///   error       — {"event":"error","message":...}

std::string event_accepted(std::uint64_t job, Command command);

std::string event_frontier(std::uint64_t job, const xplore::ExploreResult& result);

/// Terminal event of an explore job.
std::string event_done_explore(std::uint64_t job, const std::string& state,
                               const xplore::ExploreResult& result);

/// Terminal event of a submit job.  `gap` < 0 means "no certified gap".
std::string event_done_submit(std::uint64_t job, const std::string& state,
                              assign::SearchStatus status, double gap, double cycles,
                              double energy_nj, bool from_cache, std::size_t evaluations);

/// Terminal event of a job that failed before producing a result.
std::string event_done_failed(std::uint64_t job, const std::string& message);

/// Terminal event of a job cancelled before any worker picked it up (the
/// queued-cancel and shutdown-drop paths) — no result, no error.
std::string event_done_cancelled(std::uint64_t job);

/// One row of a status report.
struct JobStatusView {
  std::uint64_t job = 0;
  Command command = Command::Submit;
  std::string state;
};

std::string event_status(const std::vector<JobStatusView>& jobs);

std::string event_cache_stats(const xplore::CacheStats& stats);

/// Point-in-time server metrics, assembled by the server from the one set
/// of live cells (queue gauge, session list, cache counters) that every
/// other surface reads too.
struct ServerMetricsView {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_tracked = 0;  ///< registry size: in-flight + retained terminals
  std::int64_t queue_depth = 0;
  std::int64_t connections = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t lines_sent = 0;
  double uptime_seconds = 0.0;
  xplore::CacheStats cache;
};

/// Reply to the `metrics` verb ({"event":"metrics",...}).
std::string event_metrics(const ServerMetricsView& view);

/// Periodic broadcast variant ({"event":"stats",...}, same payload): one
/// line per interval to every subscribed connection.
std::string event_stats(const ServerMetricsView& view);

std::string event_cancelled(std::uint64_t job, bool found);

std::string event_shutdown();

std::string event_error(const std::string& message);

}  // namespace mhla::serve
