#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/concurrent_cache.h"
#include "serve/job_queue.h"
#include "serve/socket.h"

namespace mhla::serve {

/// Deployment knobs of one Server instance.
struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; Server::port() reports it

  /// Job workers.  Each claims whole jobs; per-job parallelism comes from
  /// the job's own config (`num_threads`), so the two multiply deliberately.
  unsigned workers = 2;

  /// Persistent cache document; empty = in-memory only.  Loaded (with the
  /// salvage semantics of ResultCache::load) at startup, written back by
  /// the periodic persister and at shutdown via the crash-safe saver.
  std::string cache_path;

  /// Persister period; <= 0 disables the periodic thread (the shutdown
  /// save still runs).
  double persist_interval_seconds = 0.0;

  xplore::CacheBounds cache_bounds;
  std::size_t cache_shards = 0;  ///< 0 = ConcurrentResultCache default

  /// Period of the `stats` event broadcast to connections that subscribed
  /// via `{"cmd":"metrics","stream":true}`; <= 0 disables the broadcaster
  /// thread (the one-shot `metrics` snapshot always works).
  double stats_interval_seconds = 0.0;

  /// Terminal jobs kept in the registry for `status` queries (FIFO over
  /// completion order).  Bounds the job map: without it a long-lived server
  /// leaks one entry plus the program text per request ever served.
  std::size_t job_retention = 1024;
};

/// The mhla_serve engine: a TCP server speaking the newline-delimited JSON
/// protocol of serve/protocol.h.
///
/// Threads: one acceptor, one reader per connection (the Session, which is
/// also the job's event sink), `config.workers` job workers draining one
/// JobQueue, and an optional periodic persister.  All jobs share the one
/// process-wide ConcurrentResultCache, so a submit is answered from cache
/// when any earlier job — submit or explore — evaluated the same design
/// point (see xplore::design_cache_key).
///
/// The constructor binds and starts serving.  A `shutdown` request only
/// *requests* the stop (wait()/wait_for() observe it); the owning thread
/// performs the actual teardown by calling stop() — never a session thread,
/// which could not join itself.
class Server {
 public:
  /// Bind, load the persistent cache, start all threads.  Throws
  /// std::runtime_error when the address cannot be bound or the cache file
  /// exists but cannot be read.
  explicit Server(ServerConfig config);

  /// Equivalent to stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return listener_.port(); }
  const ServerConfig& config() const { return config_; }
  xplore::ConcurrentResultCache& cache() { return cache_; }

  /// The metrics the `metrics`/`stats` events report, read from the live
  /// cells every other surface uses: the queue's gauge/counters, the cache's
  /// lock-free counters, the session list, the framing counters.
  ServerMetricsView metrics_view() const;

  /// Ask the server to stop (idempotent, callable from any thread,
  /// including session threads handling a `shutdown` request).
  void request_stop();

  /// Block until a stop has been requested.
  void wait();

  /// Wait up to `seconds`; true when a stop has been requested (a signal-
  /// handling main loop polls this between checks of its own flag).
  bool wait_for(double seconds);

  /// Full teardown: stop accepting, unblock and join every session, drain
  /// the job queue (running jobs are cancelled and finish with anytime
  /// results), join the workers and the persister, write the final cache
  /// save.  Idempotent; must not be called from a session thread.
  void stop();

 private:
  class Session;

  void accept_loop();
  void worker_loop();
  void persist_loop();
  void stats_loop();
  void reap_loop();
  /// Called by a session's reader thread as its last act: move the session
  /// from the live list to the zombie list and wake the reaper, so exited
  /// readers are joined promptly instead of lingering until the next accept
  /// (or forever, on a server that stops getting connections).  During
  /// stop() the live list is already swapped out, so the session is absent
  /// and stop() keeps sole ownership of the join.
  void on_session_exit(const std::shared_ptr<Session>& session);
  void handle_request(const std::shared_ptr<Session>& session, const std::string& line);
  void run_job(const std::shared_ptr<Job>& job);
  void run_submit(Job& job);
  void run_explore(Job& job);

  ServerConfig config_;
  xplore::ConcurrentResultCache cache_;
  Listener listener_;
  JobQueue queue_;

  // Server-owned observation cells.  Members rather than registry lookups:
  // tests run several servers per process, and each instance must count its
  // own traffic.  A registry source (registered for this server's lifetime)
  // exposes them process-wide under "serve.*".
  obs::Gauge connections_;
  obs::Counter bytes_sent_;
  obs::Counter lines_sent_;
  obs::Counter jobs_done_;
  obs::Counter jobs_failed_;
  obs::Counter jobs_cancelled_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t metrics_source_ = 0;
  std::uint64_t cache_metrics_source_ = 0;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> zombies_;  ///< exited, awaiting join
  std::condition_variable reap_cv_;                ///< guarded by sessions_mu_
  bool reap_stop_ = false;                         ///< guarded by sessions_mu_

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread persist_thread_;
  std::thread stats_thread_;
  std::thread reap_thread_;
};

}  // namespace mhla::serve
