#pragma once

#include "assign/cost.h"
#include "assign/inplace.h"
#include "te/block_transfer.h"

namespace mhla::core {
class RunBudget;
}

namespace mhla::te {

/// Order in which BTs are considered for extension.  The paper's Figure 1
/// uses TimePerByte (BT_time / size, descending); the others exist for the
/// ablation benchmark.
enum class ExtensionOrder { TimePerByte, Fifo, BySizeDescending, Reverse };

struct TeOptions {
  ExtensionOrder order = ExtensionOrder::TimePerByte;
  int max_lookahead = 3;  ///< max extra buffers per copy (iteration lookahead)

  /// Charge the pipeline fill: with a lookahead of k, the first k issues of
  /// a BT have no preceding iteration to hide behind and stay exposed.
  /// Off by default (steady-state model, like the paper's estimates); the
  /// refinement benches/tests turn it on.
  bool charge_cold_start = false;

  /// Probe each freedom unit on an incremental assign::FootprintTracker
  /// (speculative extend, undo on rejection) instead of cloning the
  /// extension vector and recomputing every footprint from scratch per
  /// unit.  Decisions are exact either way, so the TE result is
  /// bit-identical; off is the reference path for the equivalence tests.
  bool use_footprint_tracker = true;

  /// Cooperative run budget (one probe per BT plus one per freedom unit,
  /// charged before the unit is tried).  An expired budget stops extending
  /// at a unit boundary: extensions accepted so far keep their exact
  /// footprint state, unprocessed BTs stay unextended, and the result is
  /// marked budget_exhausted.  The pipeline shares its search budget here
  /// so one deadline covers search + TE.  Not serialized; compared by
  /// identity in operator==.
  core::RunBudget* budget = nullptr;

  friend bool operator==(const TeOptions&, const TeOptions&) = default;
};

/// Extension decision for one block transfer.
struct BtExtension {
  int bt_id = -1;
  double hidden_cycles = 0.0;   ///< cycles hidden per issue (steady state)
  int extra_buffers = 0;        ///< iteration-lookahead depth chosen
  int start_nest = -1;          ///< cross-nest prefetch start (-1 = own nest)
  bool fully_hidden = false;    ///< hidden_cycles >= BT cycles
  int dma_priority = 0;         ///< issue priority (0 = most urgent)
  double cold_start_stall_cycles = 0.0;  ///< extra exposed cycles (pipeline fill)
};

/// Result of the TE step.
struct TeResult {
  std::vector<BtExtension> extensions;      ///< one per BT, indexed by bt id
  std::vector<assign::CopyExtension> footprint_extensions;  ///< for inplace checks
  double total_hidden_cycles = 0.0;         ///< sum over all issues
  bool budget_exhausted = false;  ///< run budget expired before every BT was processed

  const BtExtension& for_bt(int bt_id) const {
    return extensions.at(static_cast<std::size_t>(bt_id));
  }
};

/// The paper's Figure-1 algorithm, applied after step 1:
///
///   foreach DMA BT: estimate cycles, sort factor = time/size, dependence
///   freedom; sort; foreach BT in greedy order: extend the DMA issue one
///   loop earlier at a time while the grown copy lifetime still fits the
///   on-chip size constraint, accumulating hideable CPU cycles, until the
///   transfer is fully hidden; finally assign DMA priorities.
///
/// Two kinds of "one loop earlier" units are modeled:
///  * iteration lookahead for level>0 copies (fetch iteration i+k during
///    iteration i; costs k extra buffers, hides k carrying-iteration CPU
///    times per issue), and
///  * cross-nest prefetch for level-0 copies (issue during an earlier nest,
///    bounded by the dependence producer; extends the buffer's live range).
///
/// Note: the published pseudo-code reads `if (fits_size(...)) break;`, which
/// would abandon a BT exactly when it fits; we implement the evident intent
/// (stop extending when the grown lifetime no longer fits).
TeResult time_extend(const assign::AssignContext& ctx, const assign::Assignment& assignment,
                     const std::vector<BlockTransfer>& bts, const TeOptions& options = {});

}  // namespace mhla::te
