#include "te/block_transfer.h"

namespace mhla::te {

std::vector<BlockTransfer> collect_block_transfers(const assign::AssignContext& ctx,
                                                   const assign::Assignment& assignment) {
  std::vector<BlockTransfer> bts;
  assign::Resolution res = assign::resolve(ctx, assignment);
  for (const assign::TransferEdge& edge : res.transfers) {
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(edge.cc_id);
    if (cc.transfers <= 0 || cc.bytes_per_transfer() <= 0) continue;

    BlockTransfer bt;
    bt.id = static_cast<int>(bts.size());
    bt.cc_id = edge.cc_id;
    bt.nest = cc.nest;
    bt.level = cc.level;
    bt.bytes = cc.bytes_per_transfer();
    bt.issues = cc.transfers;
    bt.src_layer = edge.src_layer;
    bt.dst_layer = edge.dst_layer;
    bt.write_back = edge.write_back;
    bt.has_fill = !cc.fill_free;
    if (!bt.has_fill && !bt.write_back) continue;  // no traffic at all
    bt.cycles = ctx.dma.transfer_cycles(bt.bytes, ctx.hierarchy.layer(edge.src_layer),
                                        ctx.hierarchy.layer(edge.dst_layer));
    bt.sort_factor = bt.cycles / static_cast<double>(bt.bytes);
    bts.push_back(bt);
  }
  return bts;
}

}  // namespace mhla::te
