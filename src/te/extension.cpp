#include "te/extension.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "assign/footprint_tracker.h"
#include "core/run_budget.h"

namespace mhla::te {

namespace {

/// One "extend the DMA one loop earlier" opportunity for a BT.
struct FreedomUnit {
  double hideable_cycles = 0.0;
  int extra_buffers = 0;   ///< delta buffers if this unit is taken
  int start_nest = -1;     ///< new live-range start if taken (-1 = unchanged)
};

std::vector<std::size_t> order_indices(const std::vector<BlockTransfer>& bts,
                                       ExtensionOrder order) {
  std::vector<std::size_t> idx(bts.size());
  std::iota(idx.begin(), idx.end(), 0);
  switch (order) {
    case ExtensionOrder::TimePerByte:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return bts[a].sort_factor > bts[b].sort_factor;
      });
      break;
    case ExtensionOrder::Fifo:
      break;
    case ExtensionOrder::BySizeDescending:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return bts[a].bytes > bts[b].bytes;
      });
      break;
    case ExtensionOrder::Reverse:
      std::reverse(idx.begin(), idx.end());
      break;
  }
  return idx;
}

}  // namespace

TeResult time_extend(const assign::AssignContext& ctx, const assign::Assignment& assignment,
                     const std::vector<BlockTransfer>& bts, const TeOptions& options) {
  TeResult result;
  result.extensions.resize(bts.size());
  for (std::size_t i = 0; i < bts.size(); ++i) {
    result.extensions[i].bt_id = static_cast<int>(i);
  }
  if (!ctx.dma.present) return result;  // TE not applicable without an engine

  // The assignment is fixed for the whole pass: resolve once and share the
  // resolution across the per-nest and per-BT lookahead queries below.
  assign::Resolution res = assign::resolve(ctx, assignment);
  std::vector<double> nest_cycles = assign::nest_cpu_cycles(ctx, res);

  // Tracker path: one load of the fixed assignment, then every freedom unit
  // is a speculative extend_copy probed in O(extended lifetime) and undone
  // on rejection — accepted extensions simply stay in the tracker, so the
  // accumulated state always equals the reference path's extension vector.
  std::optional<assign::FootprintTracker> tracker;
  if (options.use_footprint_tracker) tracker.emplace(ctx, assignment);

  // Budget probes land at BT and freedom-unit boundaries only, so an
  // expired budget never leaves a half-probed extension: the tracker holds
  // exactly the accepted extensions and the priority pass below still runs
  // over a consistent (partial) extension vector.
  bool out_of_budget = false;
  auto probe = [&]() {
    if (!out_of_budget && options.budget && !options.budget->probe()) out_of_budget = true;
    return !out_of_budget;
  };

  // Hoisted out of the BT loop so its buffer is allocated once and reused.
  std::vector<FreedomUnit> units;
  for (std::size_t index : order_indices(bts, options.order)) {
    if (!probe()) break;
    const BlockTransfer& bt = bts[index];
    if (!bt.has_fill) continue;  // nothing to prefetch, only a flush stream
    BtExtension& ext = result.extensions[index];
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(bt.cc_id);

    // Dependence freedom: how far back may this BT's first issue move?
    int producer = ctx.deps.producer_before(cc.array, bt.nest);

    // Build the freedom-unit list, nearest extension first.
    units.clear();
    if (bt.level > 0) {
      // Iteration lookahead across the carrying loop: unit k prefetches
      // iteration i+k during iteration i; each step costs one extra buffer
      // and hides one more carrying-iteration of CPU time per issue.
      double per_iter =
          assign::loop_iteration_cpu_cycles(ctx, res, bt.nest, cc.carrying_loop());
      for (int k = 1; k <= options.max_lookahead; ++k) {
        FreedomUnit unit;
        unit.hideable_cycles = per_iter;
        unit.extra_buffers = 1;
        units.push_back(unit);
      }
    } else {
      // Single fill per nest: issue it during an earlier nest, no earlier
      // than just after the producing nest.
      for (int n = bt.nest - 1; n > producer; --n) {
        FreedomUnit unit;
        unit.hideable_cycles = nest_cycles[static_cast<std::size_t>(n)];
        unit.start_nest = n;
        units.push_back(unit);
      }
    }

    // Greedy extension, paper Figure 1: accumulate hideable cycles while the
    // grown copy lifetime still fits the on-chip constraint.
    double ext_cycles = 0.0;
    for (const FreedomUnit& unit : units) {
      if (ext_cycles >= bt.cycles) break;  // fully time extended
      if (!probe()) break;

      assign::CopyExtension grow;
      grow.cc_id = bt.cc_id;
      grow.extra_buffers = ext.extra_buffers + unit.extra_buffers;
      grow.start_nest = unit.start_nest >= 0 ? unit.start_nest : ext.start_nest;

      if (tracker) {
        assign::FootprintTracker::Checkpoint mark = tracker->checkpoint();
        tracker->extend_copy(grow.cc_id, grow.start_nest, grow.extra_buffers);
        if (!tracker->feasible()) {
          tracker->undo_to(mark);  // size constraint hit
          break;
        }
      } else {
        // Reference path: clone the extension vector, replace this copy's
        // entry, and recompute every footprint from scratch.
        std::vector<assign::CopyExtension> tentative = result.footprint_extensions;
        std::erase_if(tentative,
                      [&](const assign::CopyExtension& e) { return e.cc_id == bt.cc_id; });
        tentative.push_back(grow);
        if (!assign::fits(ctx, assignment, tentative)) break;  // size constraint hit
        result.footprint_extensions = std::move(tentative);
      }

      ext.extra_buffers = grow.extra_buffers;
      ext.start_nest = grow.start_nest;
      ext_cycles += unit.hideable_cycles;
    }
    if (tracker && (ext.extra_buffers > 0 || ext.start_nest >= 0)) {
      // One entry per extended BT, in greedy processing order — exactly the
      // final vector the reference path's replace-entry loop leaves behind
      // (each BT owns a distinct copy, so entries never collide).
      result.footprint_extensions.push_back({bt.cc_id, ext.start_nest, ext.extra_buffers});
    }

    ext.hidden_cycles = std::min(ext_cycles, bt.cycles);
    ext.fully_hidden = ext_cycles >= bt.cycles;
    if (options.charge_cold_start && ext.extra_buffers > 0) {
      i64 cold_issues = std::min<i64>(ext.extra_buffers, bt.issues);
      ext.cold_start_stall_cycles = static_cast<double>(cold_issues) * ext.hidden_cycles;
    }
    result.total_hidden_cycles +=
        ext.hidden_cycles * static_cast<double>(bt.issues) - ext.cold_start_stall_cycles;
  }

  result.budget_exhausted = out_of_budget;

  // dma_priority(): issue order = earliest start first, then the greedy
  // sort factor as tie break (urgent transfers drain first).
  std::vector<std::size_t> by_priority(bts.size());
  std::iota(by_priority.begin(), by_priority.end(), 0);
  std::stable_sort(by_priority.begin(), by_priority.end(), [&](std::size_t a, std::size_t b) {
    const BtExtension& ea = result.extensions[a];
    const BtExtension& eb = result.extensions[b];
    int start_a = ea.start_nest >= 0 ? ea.start_nest : bts[a].nest;
    int start_b = eb.start_nest >= 0 ? eb.start_nest : bts[b].nest;
    if (start_a != start_b) return start_a < start_b;
    return bts[a].sort_factor > bts[b].sort_factor;
  });
  for (std::size_t rank = 0; rank < by_priority.size(); ++rank) {
    result.extensions[by_priority[rank]].dma_priority = static_cast<int>(rank);
  }
  return result;
}

}  // namespace mhla::te
