#include "te/schedule.h"

#include <algorithm>
#include <stdexcept>

namespace mhla::te {

double bt_stall_cycles(const BlockTransfer& bt, TransferMode mode, const BtExtension* ext) {
  if (!bt.has_fill) return 0.0;  // fill-free: only the flush stream exists
  switch (mode) {
    case TransferMode::Blocking:
      return bt.total_cycles();
    case TransferMode::Ideal:
      return 0.0;
    case TransferMode::TimeExtended: {
      if (!ext) throw std::invalid_argument("bt_stall_cycles: TE mode needs an extension record");
      double residual = std::max(0.0, bt.cycles - ext->hidden_cycles);
      return residual * static_cast<double>(bt.issues) + ext->cold_start_stall_cycles;
    }
  }
  return 0.0;
}

double total_stall_cycles(const std::vector<BlockTransfer>& bts, TransferMode mode,
                          const TeResult* te) {
  double stall = 0.0;
  for (const BlockTransfer& bt : bts) {
    const BtExtension* ext = nullptr;
    if (mode == TransferMode::TimeExtended) {
      if (!te) throw std::invalid_argument("total_stall_cycles: TE mode needs a TeResult");
      ext = &te->for_bt(bt.id);
    }
    stall += bt_stall_cycles(bt, mode, ext);
    if (bt.write_back && mode != TransferMode::Ideal) {
      // Flushes cannot be prefetched; they block symmetrically to the fill.
      stall += bt.total_cycles();
    }
    if (bt.write_back && mode == TransferMode::Ideal) {
      // The ideal bar of the paper hides *all* transfer time.
      stall += 0.0;
    }
  }
  return stall;
}

double total_dma_busy_cycles(const std::vector<BlockTransfer>& bts) {
  double busy = 0.0;
  for (const BlockTransfer& bt : bts) {
    if (bt.has_fill) busy += bt.total_cycles();
    if (bt.write_back) busy += bt.total_cycles();
  }
  return busy;
}

}  // namespace mhla::te
