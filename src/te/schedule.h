#pragma once

#include "te/extension.h"

namespace mhla::te {

/// How block transfers are charged to the processor.
enum class TransferMode {
  Blocking,      ///< MHLA step 1: the CPU waits out every transfer
  TimeExtended,  ///< step 2: TE-hidden cycles are overlapped with compute
  Ideal,         ///< paper's reference bar: every transfer costs 0 wait cycles
};

/// Residual processor stall cycles of one BT stream under a mode.
/// In TimeExtended mode `ext` must be the BT's extension record.
double bt_stall_cycles(const BlockTransfer& bt, TransferMode mode, const BtExtension* ext);

/// Total residual stall over a BT list (+ write-back flush streams, which
/// are never prefetchable and always block in non-ideal modes).
double total_stall_cycles(const std::vector<BlockTransfer>& bts, TransferMode mode,
                          const TeResult* te);

/// Total DMA-engine busy cycles of a BT list (mode independent).
double total_dma_busy_cycles(const std::vector<BlockTransfer>& bts);

}  // namespace mhla::te
