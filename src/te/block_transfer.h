#pragma once

#include "assign/assignment.h"

namespace mhla::te {

using ir::i64;

/// One DMA block transfer stream: the repeated fill of a selected copy
/// candidate from its parent store.  `cycles` is the DMA-engine occupancy of
/// one issue; `sort_factor` is the paper's greedy key, BT_time / size —
/// stall cycles hidden per byte of extra on-chip buffering.
struct BlockTransfer {
  int id = -1;
  int cc_id = -1;
  int nest = 0;        ///< top-level nest the transfers execute in
  int level = 0;       ///< copy level (0 = single fill per nest)
  i64 bytes = 0;       ///< bytes per issue
  i64 issues = 0;      ///< number of issues over the whole program
  int src_layer = -1;
  int dst_layer = -1;
  bool write_back = false;  ///< a mirrored flush stream exists (not prefetchable)
  bool has_fill = true;     ///< false for fill-free copies (write-allocate, no fetch)
  double cycles = 0.0;      ///< DMA occupancy per issue
  double sort_factor = 0.0; ///< cycles / bytes

  double total_cycles() const { return static_cast<double>(issues) * cycles; }
};

/// Materialize the block-transfer list of an assignment.  Transfers with
/// zero bytes or zero issues are dropped.  Requires a DMA engine; callers
/// must not apply TE when `ctx.dma.present` is false (paper, section 1).
std::vector<BlockTransfer> collect_block_transfers(const assign::AssignContext& ctx,
                                                   const assign::Assignment& assignment);

}  // namespace mhla::te
