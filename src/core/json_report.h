#pragma once

#include <string>
#include <vector>

#include "explore/pareto.h"
#include "sim/simulator.h"

namespace mhla::core {

/// Machine-readable result export (JSON), so the reproduced figures can be
/// plotted without scraping the text tables.  Emission only — the library
/// never needs to parse these back.

/// One simulation result as a JSON object.
std::string to_json(const sim::SimResult& result, int indent = 0);

/// The four reference points of Figure 2/3 for one application.
std::string to_json(const std::string& app_name, const sim::FourPoint& points, int indent = 0);

/// A trade-off sample set (e.g. a sweep or its Pareto frontier).
std::string to_json(const std::vector<xplore::TradeoffPoint>& points, int indent = 0);

/// Escape a string for embedding in JSON.
std::string json_escape(const std::string& text);

}  // namespace mhla::core
