#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "explore/pareto.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace mhla::core {

/// Machine-readable export (JSON) of results, so the reproduced figures can
/// be plotted without scraping the text tables — plus the PipelineConfig
/// document round-trip (emit + parse) that lets batch drivers and external
/// tooling describe runs as files.

/// One simulation result as a JSON object.
std::string to_json(const sim::SimResult& result, int indent = 0);

/// The four reference points of Figure 2/3 for one application.
std::string to_json(const std::string& app_name, const sim::FourPoint& points, int indent = 0);

/// A full pipeline run: the four points plus strategy metadata (name,
/// search effort) and per-stage wall-clock timings.
std::string to_json(const std::string& app_name, const PipelineResult& result, int indent = 0);

/// A trade-off sample set (e.g. a sweep or its Pareto frontier).
std::string to_json(const std::vector<xplore::TradeoffPoint>& points, int indent = 0);

/// A footprint report (per-layer/per-nest live bytes, peaks, feasibility);
/// layer names and capacities come from the hierarchy.  Backs the CLI's
/// `--footprints --json` dump.
std::string to_json(const assign::FootprintReport& report, const mem::Hierarchy& hierarchy,
                    int indent = 0);

/// A process-metrics snapshot (obs registry), so report assemblers embed
/// the counters next to the results they explain ("metrics" block of the
/// CLI's `--metrics --json` document) without spelling the obs namespace.
std::string to_json(const obs::MetricsSnapshot& snapshot);

/// A pipeline configuration.  Doubles are emitted with enough digits that
/// `pipeline_config_from_json(to_json(c)) == c` holds exactly.
std::string to_json(const PipelineConfig& config, int indent = 0);

/// Parse a configuration document.  Every key is optional (absent keys keep
/// their defaults); unknown keys, type mismatches, and malformed JSON throw
/// std::invalid_argument with a message pinpointing the problem.
PipelineConfig pipeline_config_from_json(const std::string& text);

/// Escape a string for embedding in JSON.
std::string json_escape(const std::string& text);

/// Classic-locale double formatting shared by every JSON emitter in the
/// tree (report, result cache, explorer): 15 significant digits for
/// display values, max_digits10 for round-trip-exact storage (parsing
/// `json_number_exact(v)` gives back v's bits — the config and cache
/// round-trip contracts rely on it).
std::string json_number(double value);
std::string json_number_exact(double value);

}  // namespace mhla::core
