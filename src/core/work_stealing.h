#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace mhla::core {

class RunBudget;

/// A pool of workers draining per-worker deques of tasks, with on-demand
/// stealing — the load balancer behind the parallel branch-and-bound
/// ("bnb-par") search, whose subtrees are far too uneven for a static split.
///
/// Each worker owns one lock-striped deque: it pushes and pops its own tasks
/// LIFO (depth-first, cache-warm), and steals from a victim's deque FIFO
/// when its own runs dry — the oldest task of a busy worker is the
/// shallowest, i.e. the largest stolen subtree.  Tasks may `spawn` further
/// tasks at any point; `starving()` is the cheap hint a task consults to
/// decide whether splitting itself up is worth the bookkeeping (it is true
/// while some worker is hunting for work or the queues are near-empty).
///
/// Semantics, matching `core::parallel_for`:
///
///  * `run` blocks until every task (seeded and spawned) has finished, then
///    returns the number of tasks *skipped*.  Tasks are skipped — claimed
///    and discarded unrun — once the budget has expired or a peer task has
///    thrown; already-running tasks always run to completion.  A zero
///    return means complete coverage.
///  * The first exception thrown by any task is rethrown on the calling
///    thread after the pool has drained; the remaining tasks are skipped.
///  * With `num_threads <= 1` the calling thread runs every task itself (no
///    worker threads are spawned), so a single-worker run is an ordinary
///    deterministic loop.
///  * The budget is observed, never charged — tasks that want to spend
///    probes do so themselves.
///
/// The pool makes no ordering promise between tasks: callers needing a
/// deterministic reduction must make their per-task results order-free
/// (the branch-and-bound search keys its incumbents by canonical path for
/// exactly this reason).
class WorkStealingPool {
 public:
  /// A unit of work; receives the index of the worker executing it, which
  /// is also the only valid `spawn` target for tasks it creates.
  using Task = std::function<void(unsigned worker)>;

  explicit WorkStealingPool(unsigned num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned num_workers() const { return num_workers_; }

  /// Push a task onto `worker`'s deque.  Called with the executing worker's
  /// own index from inside tasks, or with any index to seed the pool before
  /// `run`.  Thread-safe.
  void spawn(unsigned worker, Task task);

  /// True while some worker is idle or the queues are shallower than the
  /// worker count — the moment a task should offload subtrees it would
  /// otherwise recurse into.  One relaxed load per call; a stale verdict
  /// merely splits a little earlier or later than ideal.
  bool starving() const {
    return idle_.load(std::memory_order_relaxed) > 0 ||
           queued_.load(std::memory_order_relaxed) < static_cast<long>(num_workers_);
  }

  /// Drain the pool: run every seeded and spawned task, return the number
  /// skipped (see class comment).  Call once per pool instance.
  std::size_t run(RunBudget* budget = nullptr);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  bool try_pop(unsigned worker, Task& out);
  bool try_steal(unsigned thief, Task& out);
  void worker_loop(unsigned worker);
  void finish_task();

  unsigned num_workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<long> pending_{0};  ///< spawned but not yet finished/skipped
  std::atomic<long> queued_{0};   ///< sitting in a deque right now
  std::atomic<unsigned> idle_{0};
  std::atomic<bool> failed_{false};
  std::atomic<std::size_t> skipped_{0};
  RunBudget* budget_ = nullptr;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace mhla::core
