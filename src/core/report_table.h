#pragma once

#include <string>
#include <vector>

namespace mhla::core {

/// Minimal fixed-width text table used by the benchmark harnesses to print
/// the reproduced figure rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns (first column left, rest right aligned).
  std::string str() const;

  /// Format helper: fixed-point with `digits` decimals.
  static std::string num(double value, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mhla::core
