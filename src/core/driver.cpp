#include "core/driver.h"

#include "ir/validate.h"

namespace mhla::core {

Workspace::Workspace(ir::Program program, const mem::PlatformConfig& platform,
                     const mem::DmaEngine& dma)
    : program_(std::move(program)),
      hierarchy_(mem::make_hierarchy(platform)),
      dma_(dma),
      sites_(analysis::collect_sites(program_)),
      reuse_(analysis::ReuseAnalysis::run(program_, sites_)),
      live_(analysis::array_live_ranges(program_, sites_)),
      deps_(analysis::DependenceInfo::run(program_, sites_)) {}

std::unique_ptr<Workspace> make_workspace(ir::Program program, const mem::PlatformConfig& platform,
                                          const mem::DmaEngine& dma) {
  ir::validate_or_throw(program);
  return std::unique_ptr<Workspace>(new Workspace(std::move(program), platform, dma));
}

RunResult run_mhla(const Workspace& workspace, assign::Target target,
                   const te::TeOptions& te_options) {
  assign::AssignContext ctx = workspace.context();
  assign::Step1Options step1_options;
  step1_options.target = target;

  RunResult result;
  result.step1 = assign::mhla_step1(ctx, step1_options);
  result.points = sim::simulate_four_points(ctx, result.step1.assignment, te_options);
  return result;
}

}  // namespace mhla::core
