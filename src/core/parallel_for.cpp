#include "core/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mhla::core {

unsigned default_parallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (num_threads == 0) num_threads = default_parallelism();
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, count));

  if (num_threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&]() {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mhla::core
