#include "core/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "core/run_budget.h"

namespace mhla::core {
namespace {

/// Joins every joinable thread in the vector on scope exit.  Guards both
/// the normal path and a throwing `threads.emplace_back` mid-spawn, where
/// destructing an unjoined std::thread would call std::terminate.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::vector<std::thread>& threads) : threads_(threads) {}
  ~ThreadJoiner() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::vector<std::thread>& threads_;
};

void invoke_body(const std::function<void(std::size_t)>& body, std::size_t i) {
  if (FaultInjector::fire(FaultInjector::Site::ParallelBody)) {
    throw FaultInjectedError("parallel_for: injected fault in body " + std::to_string(i));
  }
  body(i);
}

}  // namespace

unsigned default_parallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& body, RunBudget* budget) {
  if (count == 0) return;
  if (num_threads == 0) num_threads = default_parallelism();
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, count));

  if (num_threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (budget && budget->expired()) return;
      invoke_body(body, i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&]() {
    for (;;) {
      // Check for a peer's failure (and budget expiry) before claiming, so
      // an index is never consumed by a worker that won't run it.
      if (failed.load(std::memory_order_relaxed)) return;
      if (budget && budget->expired()) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        invoke_body(body, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  {
    ThreadJoiner joiner(threads);
    for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mhla::core
