#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

namespace mhla::core {

/// Why a budgeted run stopped early.  `None` means the budget never bound
/// (the run completed on its own terms).
enum class StopReason {
  None,         ///< budget never expired
  Deadline,     ///< wall-clock deadline passed
  ProbeBudget,  ///< cooperative probe allowance spent
  Cancelled,    ///< external cancel flag raised
  Injected,     ///< fault injector forced an expiry (tests only)
};

std::string to_string(StopReason reason);

/// Serializable knobs of a cooperative run budget.  Part of
/// `assign::SearchOptions` (JSON keys "deadline_seconds"/"max_probes" in the
/// "search" object), so a config document can bound any search; the cancel
/// flag is a live process object and deliberately never serialized.
struct BudgetSpec {
  /// Wall-clock allowance in seconds, counted from RunBudget construction;
  /// <= 0 means no deadline.
  double deadline_seconds = 0.0;

  /// Cooperative probe allowance (every engine charges one probe per unit
  /// of work: a search state, a scored candidate, an annealing iteration, a
  /// TE freedom unit); <= 0 means unlimited.
  long max_probes = 0;

  /// External cancel flag: the budget expires as soon as the flag is set.
  /// Shared so a controller thread can hold the flag while any number of
  /// budgeted runs observe it.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// True when any knob can make the budget expire.  Engines use this to
  /// decide whether an over-guard instance may run in anytime mode.
  bool bounded() const {
    return deadline_seconds > 0.0 || max_probes > 0 || cancel != nullptr;
  }

  friend bool operator==(const BudgetSpec&, const BudgetSpec&) = default;
};

/// Cooperative cancellation / deadline / probe-budget token.
///
/// One RunBudget is threaded through a whole run — search, time extension,
/// batch, exploration — and every engine calls `probe()` at each unit of
/// work.  The first probe past the allowance (or past the deadline, or
/// after the cancel flag rises) marks the budget expired; every later probe
/// on any thread observes the expiry, so a parallel run drains promptly.
/// Expiry is sticky and one-way: a budget never un-expires.
///
/// Thread-safe throughout; `probe()` is one relaxed atomic increment plus a
/// flag read on the hot path (the wall clock is only consulted every 64th
/// probe, so tight search loops do not pay a syscall per state).
///
/// The fault injector's `BudgetProbe` site hooks `probe()`: an armed
/// injector forces expiry at the Nth probe with reason
/// `StopReason::Injected`, which is how the fault-injection suite exercises
/// every engine's degradation path deterministically.
class RunBudget {
 public:
  /// Unlimited budget: probes count but never expire (the fault injector
  /// can still force an expiry).
  RunBudget();

  /// Budget per `spec`; the deadline clock starts now.
  explicit RunBudget(const BudgetSpec& spec);

  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  /// Charge `n` units of work.  Returns true while the budget holds;
  /// returns false — forever after — once it has expired.
  bool probe(long n = 1);

  /// Non-charging expiry check (used between waves / before claiming work).
  bool expired() const {
    return reason_.load(std::memory_order_relaxed) != StopReason::None;
  }

  /// Why the budget expired; StopReason::None while it holds.
  StopReason reason() const { return reason_.load(std::memory_order_relaxed); }

  /// Expire the budget now (default reason Cancelled).  Idempotent: the
  /// first reason recorded wins.
  void expire(StopReason reason = StopReason::Cancelled);

  /// Probes charged so far.
  long probes() const { return probes_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<StopReason> reason_{StopReason::None};
  std::atomic<long> probes_{0};
  long max_probes_ = 0;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::shared_ptr<std::atomic<bool>> cancel_;
};

}  // namespace mhla::core
