#pragma once

#include <stdexcept>
#include <string>

namespace mhla::core {

/// Error thrown by a fault-injected failure point.  Distinct from the
/// production error types so tests can assert that a failure came from the
/// injector and not from a real defect.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what) : std::runtime_error(what) {}
};

/// Deterministic process-wide fault-injection hook layer.
///
/// Production code calls `fire(site)` at each failure point it wants to be
/// testable; the call is a single relaxed atomic load while no site is
/// armed, so shipping the hooks costs nothing measurable.  A test arms a
/// site with `arm(site, nth)` and the injector fires on exactly the nth
/// subsequent hit (1-based, one-shot): the nth `IoWrite` hit makes
/// `ResultCache::save` fail mid-write, the nth `BudgetProbe` hit expires a
/// `RunBudget` with `StopReason::Injected`, the nth `ParallelBody` hit
/// throws `FaultInjectedError` out of a `parallel_for` body.  Because the
/// trigger is a hit count, not a timer or a random draw, every injected
/// failure is reproducible run to run.
///
/// The registry is process-global (the hooks live in hot paths that cannot
/// thread a handle), so tests that arm sites must not run concurrently
/// with each other; the suite keeps them in one test binary.  Prefer
/// `ScopedFault` over raw arm/disarm so a failing assertion cannot leak an
/// armed site into later tests.
class FaultInjector {
 public:
  enum class Site : int {
    IoWrite = 0,       ///< persistence write/flush/rename steps
    BudgetProbe = 1,   ///< RunBudget::probe
    ParallelBody = 2,  ///< parallel_for body invocation
  };
  static constexpr int kNumSites = 3;

  /// Arm `site` to fire on its `nth` hit from now (1-based).  Re-arming
  /// resets the hit count.  `nth <= 0` disarms.
  static void arm(Site site, long nth);

  /// Disarm `site`; its hit count keeps the value it had.
  static void disarm(Site site);

  /// Disarm every site and zero all hit counts.
  static void reset();

  /// Production hook: record a hit at `site` and return true iff the site
  /// is armed and this hit is the one it was armed for.
  static bool fire(Site site);

  /// Hits recorded at `site` since it was last armed (or reset).  Lets a
  /// test count the hits of a clean run, then re-run with a fault at each
  /// k in [1, hits].
  static long hits(Site site);
};

/// Arms a site for the current scope and disarms it on exit, so a throwing
/// assertion cannot leave the process-global injector armed.
class ScopedFault {
 public:
  ScopedFault(FaultInjector::Site site, long nth) : site_(site) {
    FaultInjector::arm(site, nth);
  }
  ~ScopedFault() { FaultInjector::disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultInjector::Site site_;
};

}  // namespace mhla::core
