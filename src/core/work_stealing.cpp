#include "core/work_stealing.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/fault_injector.h"
#include "core/run_budget.h"

namespace mhla::core {

namespace {

/// Joins every joinable thread on scope exit (same guard parallel_for uses):
/// a throwing emplace_back mid-spawn must not destruct an unjoined thread.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::vector<std::thread>& threads) : threads_(threads) {}
  ~ThreadJoiner() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::vector<std::thread>& threads_;
};

}  // namespace

WorkStealingPool::WorkStealingPool(unsigned num_threads)
    : num_workers_(num_threads > 0 ? num_threads : 1) {
  queues_.reserve(num_workers_);
  for (unsigned w = 0; w < num_workers_; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
}

WorkStealingPool::~WorkStealingPool() = default;

void WorkStealingPool::spawn(unsigned worker, Task task) {
  // pending before the push: a worker that drains the deque between the
  // push and the increment would otherwise observe pending == 0 and exit
  // with this task still queued.
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    WorkerQueue& queue = *queues_[worker % num_workers_];
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  if (idle_.load(std::memory_order_relaxed) > 0) sleep_cv_.notify_one();
}

bool WorkStealingPool::try_pop(unsigned worker, Task& out) {
  WorkerQueue& queue = *queues_[worker];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.tasks.empty()) return false;
  out = std::move(queue.tasks.back());  // own deque: LIFO, depth-first
  queue.tasks.pop_back();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool WorkStealingPool::try_steal(unsigned thief, Task& out) {
  for (unsigned offset = 1; offset < num_workers_; ++offset) {
    WorkerQueue& victim = *queues_[(thief + offset) % num_workers_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.front());  // victim: FIFO, largest subtree
    victim.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::finish_task() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task down: wake every sleeper so the pool can drain out.
    sleep_cv_.notify_all();
  }
}

void WorkStealingPool::worker_loop(unsigned worker) {
  Task task;
  for (;;) {
    if (!try_pop(worker, task) && !try_steal(worker, task)) {
      if (pending_.load(std::memory_order_acquire) == 0) return;
      // Starved but tasks are still in flight elsewhere: sleep until a
      // spawn or the final finish.  The timeout is a backstop against the
      // benign notify race (spawn's notify can fire between our queue scan
      // and the wait) — it costs at most one extra scan per millisecond.
      std::unique_lock<std::mutex> lock(sleep_mu_);
      idle_.fetch_add(1, std::memory_order_relaxed);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return queued_.load(std::memory_order_relaxed) > 0 ||
               pending_.load(std::memory_order_acquire) == 0;
      });
      idle_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    // Claim-then-check keeps the drain path trivial: once the budget has
    // expired or a peer has thrown, every worker keeps claiming tasks and
    // discards them unrun until the pool is empty.
    bool skip = failed_.load(std::memory_order_relaxed) ||
                (budget_ && budget_->expired());
    if (skip) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        if (FaultInjector::fire(FaultInjector::Site::ParallelBody)) {
          throw FaultInjectedError("work_stealing: injected fault in task");
        }
        task(worker);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu_);
          if (!error_) error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    task = nullptr;  // release captures before sleeping on an empty pool
    finish_task();
  }
}

std::size_t WorkStealingPool::run(RunBudget* budget) {
  budget_ = budget;
  if (num_workers_ <= 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers_);
    {
      ThreadJoiner joiner(threads);
      for (unsigned w = 0; w < num_workers_; ++w) {
        threads.emplace_back([this, w] { worker_loop(w); });
      }
    }
  }
  if (error_) std::rethrow_exception(error_);
  return skipped_.load(std::memory_order_relaxed);
}

}  // namespace mhla::core
