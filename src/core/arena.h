#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace mhla::core {

/// Reserve-once stack for trivially-copyable records — the backing store of
/// the engines' undo journals and the branch-and-bound site journal.
///
/// The hot loops push and pop journal records on every speculative move;
/// with a std::vector the journal reaches its high-water capacity quickly,
/// but nothing *guarantees* the steady state stays off the heap, and a
/// cleared vector forgets nothing about how it got sized.  ArenaStack makes
/// the discipline explicit:
///
///  * `reserve(n)` once at setup sizes the arena for the expected journal
///    depth; every later push/pop is a store/load into the same block,
///  * popping (or `clear()`) never releases memory, so engine reuse —
///    work-stealing workers rewinding to `undo_to(0)` between tasks, anneal
///    checkpoints, greedy rounds — runs allocation-free indefinitely,
///  * an overflowing push still works (geometric regrowth), but each
///    regrowth is counted: `regrowths()` lets the allocation-regression
///    tests assert the setup reservation actually covered the workload.
///
/// T must be trivially copyable: growth and copies are memcpy, destruction
/// is free, and pop is a size decrement.
template <typename T>
class ArenaStack {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaStack records must be trivially copyable");

 public:
  ArenaStack() = default;

  ArenaStack(const ArenaStack& other) { *this = other; }
  ArenaStack& operator=(const ArenaStack& other) {
    if (this == &other) return *this;
    if (capacity_ < other.size_) {
      data_ = std::make_unique<T[]>(other.capacity_);
      capacity_ = other.capacity_;
    }
    size_ = other.size_;
    if (size_ > 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
    return *this;
  }
  ArenaStack(ArenaStack&&) noexcept = default;
  ArenaStack& operator=(ArenaStack&&) noexcept = default;

  /// Grow the arena to at least `capacity` records (never shrinks).  Setup
  /// time only; does not count as a regrowth.
  void reserve(std::size_t capacity) {
    if (capacity > capacity_) grow_to(capacity);
  }

  void push_back(const T& record) {
    if (size_ == capacity_) {
      grow_to(capacity_ < 16 ? 32 : capacity_ * 2);
      ++regrowths_;
    }
    data_[size_++] = record;
  }

  void pop_back() { --size_; }
  const T& back() const { return data_[size_ - 1]; }
  T& back() { return data_[size_ - 1]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& operator[](std::size_t i) { return data_[i]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Drop every record, keeping the arena block for reuse.
  void clear() { size_ = 0; }

  /// Number of pushes that outgrew the reservation since construction.  A
  /// correctly sized arena reports 0 after any amount of steady-state work.
  long regrowths() const { return regrowths_; }

 private:
  void grow_to(std::size_t capacity) {
    if (capacity <= capacity_) return;
    auto grown = std::make_unique<T[]>(capacity);
    // size_ <= capacity_ < capacity always holds; the min keeps the bound
    // visible to the compiler's overflow analysis.
    std::size_t count = size_ < capacity ? size_ : capacity;
    if (count > 0) std::memcpy(grown.get(), data_.get(), count * sizeof(T));
    data_ = std::move(grown);
    capacity_ = capacity;
  }

  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  long regrowths_ = 0;
};

}  // namespace mhla::core
