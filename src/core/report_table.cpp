#include "core/report_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mhla::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c == 0) {
        out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      } else {
        out << "  " << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace mhla::core
