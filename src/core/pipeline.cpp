#include "core/pipeline.h"

#include <chrono>
#include <mutex>
#include <optional>

#include "core/parallel_for.h"
#include "core/run_budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mhla::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  assign::searcher(config_.strategy);  // validate the name eagerly
}

PipelineResult Pipeline::run(ir::Program program) const {
  obs::Span span("analyze", "pipeline");
  std::unique_ptr<Workspace> workspace =
      make_workspace(std::move(program), config_.platform, config_.dma);
  double analyze_s = span.finish();
  if (progress_) progress_("analyze", analyze_s);

  PipelineResult result = run(*workspace);
  result.timings.front().seconds = analyze_s;  // run() reported 0 for "analyze"
  result.total_seconds += analyze_s;
  return result;
}

PipelineResult Pipeline::run(const Workspace& workspace) const {
  PipelineResult result;
  result.strategy = config_.strategy;
  result.timings.push_back({"analyze", 0.0});

  assign::AssignContext ctx = workspace.context();
  assign::SearchOptions options = config_.search;
  options.set_target(config_.target);

  // One budget token covers the whole run: the search and the TE pass
  // share it, so a deadline never restarts per stage.  A batch/exploration
  // driver that already holds a token passes it through unchanged.
  std::optional<RunBudget> local_budget;
  if (!options.shared_budget && options.budget.bounded()) {
    local_budget.emplace(options.budget);
    options.shared_budget = &*local_budget;
  }

  // Stage spans carry the StageTiming rows: the span's monotonic clock is
  // the measurement, the trace ring sees the same interval, and with
  // tracing off a span is exactly the two clock reads the old code made.
  {
    obs::Span span("assign", "pipeline");
    result.search = assign::searcher(config_.strategy).search(ctx, options);
    double assign_s = span.finish();
    result.timings.push_back({"assign", assign_s});
    if (progress_) progress_("assign", assign_s);
  }

  // The four reference points of the paper's figures.  The TE'd simulation
  // runs the time-extension pass; timing it separately keeps the staged
  // view honest while the values stay bit-identical to simulate_four_points
  // (each point is an independent simulation).
  {
    obs::Span span("time_extend", "pipeline");
    te::TeOptions te_options = config_.te;
    te_options.budget = options.shared_budget;
    result.points.mhla_te = sim::simulate(ctx, result.search.assignment,
                                          {te::TransferMode::TimeExtended, te_options, false});
    double te_s = span.finish();
    result.timings.push_back({"time_extend", te_s});
    if (progress_) progress_("time_extend", te_s);
  }

  {
    obs::Span span("simulate", "pipeline");
    result.points.out_of_box =
        sim::simulate(ctx, assign::out_of_box(ctx), {te::TransferMode::Blocking, {}, false});
    result.points.mhla =
        sim::simulate(ctx, result.search.assignment, {te::TransferMode::Blocking, {}, false});
    result.points.ideal =
        sim::simulate(ctx, result.search.assignment, {te::TransferMode::Ideal, {}, false});
    double simulate_s = span.finish();
    result.timings.push_back({"simulate", simulate_s});
    if (progress_) progress_("simulate", simulate_s);
  }

  for (const StageTiming& timing : result.timings) result.total_seconds += timing.seconds;

  // Flush the run's observation counters once, after every stage: the hot
  // loops accumulated locally (SearchResult carries its own totals), so
  // this is the only place the registry is touched per run.
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("pipeline.runs").add();
  registry.counter("search.states_explored").add(result.search.states_explored);
  registry.counter("search.bound_prunes").add(result.search.bound_prunes);
  registry.counter("search.capacity_prunes").add(result.search.capacity_prunes);
  registry.counter("search.evaluations").add(result.search.evaluations);
  registry.histogram("search.states_per_run").record(result.search.states_explored);
  if (local_budget) registry.counter("search.budget_probes").add(local_budget->probes());
  return result;
}

std::vector<PipelineResult> Pipeline::run_batch(std::vector<ir::Program> programs) const {
  // Workers run a progress-silent copy (per-stage callbacks from worker
  // threads would interleave); completion is reported per program instead.
  Pipeline worker(config_);
  std::mutex progress_mutex;

  // A bounded budget spec is promoted to one batch-wide token: every
  // program still runs (degraded, not skipped — results stay positionally
  // aligned), but all of them race the same deadline/probe allowance.
  std::optional<RunBudget> batch_budget;
  if (!config_.search.shared_budget && config_.search.budget.bounded()) {
    batch_budget.emplace(config_.search.budget);
    worker.config_.search.shared_budget = &*batch_budget;
  }

  std::vector<PipelineResult> results(programs.size());
  parallel_for(programs.size(), config_.num_threads, [&](std::size_t i) {
    auto t0 = Clock::now();
    std::string name = programs[i].name();
    results[i] = worker.run(std::move(programs[i]));
    if (progress_) {
      double seconds = seconds_since(t0);
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress_(name, seconds);
    }
  });
  return results;
}

}  // namespace mhla::core
