#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace mhla::core {

class RunBudget;

/// Number of worker threads `parallel_for` uses when the caller passes 0:
/// the hardware concurrency, with a floor of 1.
unsigned default_parallelism();

/// Run `body(i)` for every i in [0, count) on a small pool of std::thread
/// workers pulling indices from a shared atomic counter.
///
///  * `num_threads == 0` picks `default_parallelism()`; a single worker (or
///    `count <= 1`) degenerates to a plain serial loop on the calling thread.
///  * Each index is executed exactly once; workers share nothing else, so a
///    body that only writes to its own index's slot is deterministic for any
///    thread count.
///  * The first exception thrown by any body is rethrown on the calling
///    thread after all workers have joined; remaining indices may be skipped.
///    Workers re-check the failure flag before claiming another index, so a
///    peer's exception stops the pool after at most one in-flight body per
///    worker.  Spawned threads are joined on every path (including a failed
///    spawn), never leaked to std::terminate.
///  * With a `budget`, workers stop claiming new indices once the budget has
///    expired; already-claimed bodies run to completion.  The caller decides
///    what a partially covered index space means (e.g. mark the run budget-
///    exhausted).  The budget is observed, never charged — bodies that want
///    to spend probes do so themselves.
///  * The fault injector's `ParallelBody` site wraps every body invocation:
///    an armed injector makes the Nth body throw `FaultInjectedError`, which
///    then follows the normal exception path above.
void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& body,
                  RunBudget* budget = nullptr);

/// Lock-free running minimum over doubles, shared by `parallel_for` workers.
///
/// `update` folds a candidate in with a compare-exchange loop; min is
/// commutative and associative, so the final value is the true minimum of
/// every folded candidate regardless of interleaving.  `load` may observe a
/// stale (larger) value mid-run but never a smaller-than-true one, which is
/// exactly the guarantee a parallel branch-and-bound needs from its shared
/// incumbent: pruning against a stale bound is merely less effective, never
/// unsound.  NaN candidates are ignored.
class AtomicMin {
 public:
  explicit AtomicMin(double initial) : value_(initial) {}

  double load() const { return value_.load(std::memory_order_relaxed); }

  /// Returns true if `candidate` became the new minimum.
  bool update(double candidate) {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<double> value_;
};

}  // namespace mhla::core
