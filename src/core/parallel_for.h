#pragma once

#include <cstddef>
#include <functional>

namespace mhla::core {

/// Number of worker threads `parallel_for` uses when the caller passes 0:
/// the hardware concurrency, with a floor of 1.
unsigned default_parallelism();

/// Run `body(i)` for every i in [0, count) on a small pool of std::thread
/// workers pulling indices from a shared atomic counter.
///
///  * `num_threads == 0` picks `default_parallelism()`; a single worker (or
///    `count <= 1`) degenerates to a plain serial loop on the calling thread.
///  * Each index is executed exactly once; workers share nothing else, so a
///    body that only writes to its own index's slot is deterministic for any
///    thread count.
///  * The first exception thrown by any body is rethrown on the calling
///    thread after all workers have joined; remaining indices may be skipped.
void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace mhla::core
