#pragma once

#include <cstddef>

namespace mhla::core {

/// Borrowed view of a contiguous run of const T — the accessor type for the
/// flattened (CSR-style) jagged tables: one flat item array plus an offset
/// array per outer index, viewed row by row.  Deliberately minimal (no
/// std::span dependency pinned to a library level): pointer pair, range-for,
/// size, indexing.  Never owns; valid only while the backing array lives and
/// is not reallocated.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* first, const T* last) : first_(first), last_(last) {}

  const T* begin() const { return first_; }
  const T* end() const { return last_; }
  std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }
  const T& operator[](std::size_t i) const { return first_[i]; }
  const T& front() const { return *first_; }
  const T& back() const { return *(last_ - 1); }

 private:
  const T* first_ = nullptr;
  const T* last_ = nullptr;
};

using IntSpan = Span<int>;

}  // namespace mhla::core
