#pragma once

#include <memory>

#include "assign/mhla_step1.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace mhla::core {

/// Owns one program plus every analysis and platform model needed to run
/// MHLA on it.  Non-movable: access sites hold pointers into the program.
class Workspace {
 public:
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  const ir::Program& program() const { return program_; }
  const mem::Hierarchy& hierarchy() const { return hierarchy_; }
  const mem::DmaEngine& dma() const { return dma_; }
  const std::vector<analysis::AccessSite>& sites() const { return sites_; }
  const analysis::ReuseAnalysis& reuse() const { return reuse_; }

  /// Borrowed view bundling everything for the assign/te/sim passes.
  assign::AssignContext context() const {
    return assign::AssignContext{program_, sites_, reuse_, live_, deps_, hierarchy_, dma_};
  }

 private:
  friend std::unique_ptr<Workspace> make_workspace(ir::Program, const mem::PlatformConfig&,
                                                   const mem::DmaEngine&);
  Workspace(ir::Program program, const mem::PlatformConfig& platform, const mem::DmaEngine& dma);

  ir::Program program_;
  mem::Hierarchy hierarchy_;
  mem::DmaEngine dma_;
  std::vector<analysis::AccessSite> sites_;
  analysis::ReuseAnalysis reuse_;
  std::map<std::string, analysis::LiveRange> live_;
  analysis::DependenceInfo deps_;
};

/// Build a workspace: validates the program and runs all program-level
/// analyses once.
std::unique_ptr<Workspace> make_workspace(ir::Program program,
                                          const mem::PlatformConfig& platform = {},
                                          const mem::DmaEngine& dma = {});

/// One end-to-end MHLA run (step 1 + step 2) with the four reference
/// simulations of the paper's figures.
///
/// Legacy fixed-strategy entry point, kept as the independent reference the
/// pipeline equivalence tests compare against.  New code should drive
/// `core::Pipeline` (core/pipeline.h): one PipelineConfig selects the
/// strategy by registry name and adds stage timings, progress reporting,
/// batch runs, and JSON config round-trip.
struct RunResult {
  assign::GreedyResult step1;
  sim::FourPoint points;
};

RunResult run_mhla(const Workspace& workspace,
                   assign::Target target = assign::Target::Balanced,
                   const te::TeOptions& te_options = {});

}  // namespace mhla::core
