#pragma once

#include <functional>
#include <string>
#include <vector>

#include "assign/search.h"
#include "core/driver.h"

namespace mhla::core {

/// Everything one MHLA run needs, in one value: the platform, the transfer
/// engine, the search strategy (by registry name) with its options, the
/// time-extension options, and the batch parallelism.  Serializes to/from
/// JSON (core/json_report.h) so batch drivers and external tooling can
/// describe runs as documents.
struct PipelineConfig {
  mem::PlatformConfig platform;
  mem::DmaEngine dma;

  std::string strategy = "greedy";  ///< assign::searcher() registry name
  assign::Target target = assign::Target::Balanced;

  /// Strategy options.  For the named targets the weights are replaced by
  /// `target`'s canonical mapping when the pipeline runs (`target` is
  /// authoritative); `Target::Custom` keeps the explicit weights below.
  /// Every other field passes through to the selected strategy.
  assign::SearchOptions search;

  te::TeOptions te;

  /// Worker threads for `run_batch`: 0 picks the hardware concurrency,
  /// 1 forces the serial path.  Single runs ignore it.
  unsigned num_threads = 0;

  friend bool operator==(const PipelineConfig&, const PipelineConfig&) = default;
};

/// Wall-clock of one pipeline stage.
struct StageTiming {
  std::string stage;  ///< "analyze", "assign", "time_extend", "simulate"
  double seconds = 0.0;
};

/// Result of one pipeline run: the search outcome, the four reference
/// simulation points of the paper's figures, and per-stage timings.
struct PipelineResult {
  std::string strategy;  ///< registry name that produced `search`
  assign::SearchResult search;
  sim::FourPoint points;
  std::vector<StageTiming> timings;
  double total_seconds = 0.0;
};

/// Staged MHLA driver: analyze -> assign -> time-extend -> simulate, with
/// one PipelineConfig driving every stage.  With the default "greedy"
/// strategy the simulation points are bit-identical to `run_mhla` on the
/// same workspace (covered by tests/core/pipeline_test.cpp).
class Pipeline {
 public:
  /// Validates the strategy name against the registry (throws
  /// std::out_of_range listing the registered names on a miss).
  explicit Pipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }

  /// Called after each stage with the stage name and its wall-clock.
  /// `run_batch` reports once per finished program instead (stage =
  /// program name), serialized by an internal mutex.
  using ProgressFn = std::function<void(const std::string& stage, double seconds)>;
  void set_progress(ProgressFn progress) { progress_ = std::move(progress); }

  /// Full run including the analyze stage (workspace construction).
  PipelineResult run(ir::Program program) const;

  /// Run on an existing workspace; the analyze stage is reported as 0 s.
  /// The workspace's platform/DMA must match the config (the caller built
  /// it; the pipeline cannot re-derive it from the workspace).
  PipelineResult run(const Workspace& workspace) const;

  /// One run per program, evaluated on a `core::parallel_for` pool of
  /// `config().num_threads` workers.  Results are positionally aligned with
  /// the inputs and identical for every thread count.
  std::vector<PipelineResult> run_batch(std::vector<ir::Program> programs) const;

 private:
  PipelineConfig config_;
  ProgressFn progress_;
};

}  // namespace mhla::core
