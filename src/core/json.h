#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mhla::core {

/// A parsed JSON document.  Minimal by design: the library only needs to
/// read back the configuration documents it emits itself (core/json_report
/// stays the emission side), so this favors clear errors over speed.
///
/// Accessors are checked: asking an object for a string, or indexing a
/// missing key, throws std::invalid_argument naming the offending path —
/// the error the config loader surfaces to the user unchanged.
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Parse a complete document (one value plus trailing whitespace).
  /// Throws std::invalid_argument with a line:column position on any
  /// syntax error, trailing garbage, or duplicate object key.
  static Json parse(const std::string& text);

  Json() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  /// Checked scalar accessors.
  bool boolean() const;
  double number() const;
  std::int64_t integer() const;  ///< number(), checked to be integral and in range
  const std::string& string() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member lookup: `find` returns nullptr when absent, `at` throws.
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;

  /// Re-serialize this value as one compact JSON document.  Numbers are
  /// emitted with max_digits10 (integral values without a fraction), so
  /// `parse(dump())` reproduces every double bit for bit — which is what
  /// lets the server pass an embedded config object on to
  /// `pipeline_config_from_json` without loss.
  std::string dump() const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mhla::core
