#include "core/fault_injector.h"

#include <atomic>

namespace mhla::core {
namespace {

struct SiteState {
  std::atomic<long> nth{0};  ///< 0 = disarmed
  std::atomic<long> hits{0};
};

SiteState g_sites[FaultInjector::kNumSites];

/// Number of currently armed sites; the fast path in fire() is one relaxed
/// load of this counter, so disarmed hooks stay free.
std::atomic<int> g_armed{0};

SiteState& state(FaultInjector::Site site) {
  return g_sites[static_cast<int>(site)];
}

}  // namespace

void FaultInjector::arm(Site site, long nth) {
  if (nth <= 0) {
    disarm(site);
    return;
  }
  SiteState& s = state(site);
  s.hits.store(0, std::memory_order_relaxed);
  if (s.nth.exchange(nth, std::memory_order_relaxed) == 0) {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm(Site site) {
  if (state(site).nth.exchange(0, std::memory_order_relaxed) != 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::reset() {
  for (int i = 0; i < kNumSites; ++i) {
    disarm(static_cast<Site>(i));
    g_sites[i].hits.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::fire(Site site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  SiteState& s = state(site);
  long nth = s.nth.load(std::memory_order_relaxed);
  if (nth == 0) return false;
  return s.hits.fetch_add(1, std::memory_order_relaxed) + 1 == nth;
}

long FaultInjector::hits(Site site) {
  return state(site).hits.load(std::memory_order_relaxed);
}

}  // namespace mhla::core
