#include "core/json_report.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/json.h"

namespace mhla::core {

namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

/// All emission goes through classic-locale streams: a host application
/// that installs a grouping/comma-decimal global locale must not change
/// the documents we produce.
std::ostringstream c_stream() {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  return out;
}

/// Local shorthands for the public formatters.
std::string num(double value) { return json_number(value); }
std::string num_exact(double value) { return json_number_exact(value); }

std::string bool_text(bool value) { return value ? "true" : "false"; }

const char* order_name(te::ExtensionOrder order) {
  switch (order) {
    case te::ExtensionOrder::TimePerByte: return "time_per_byte";
    case te::ExtensionOrder::Fifo: return "fifo";
    case te::ExtensionOrder::BySizeDescending: return "by_size_descending";
    case te::ExtensionOrder::Reverse: return "reverse";
  }
  return "?";
}

te::ExtensionOrder parse_order(const std::string& name) {
  if (name == "time_per_byte") return te::ExtensionOrder::TimePerByte;
  if (name == "fifo") return te::ExtensionOrder::Fifo;
  if (name == "by_size_descending") return te::ExtensionOrder::BySizeDescending;
  if (name == "reverse") return te::ExtensionOrder::Reverse;
  throw std::invalid_argument("unknown te order '" + name +
                              "' (time_per_byte|fifo|by_size_descending|reverse)");
}

/// Walk an object's members through per-key handlers; any key without a
/// handler is an error (catches config typos instead of silently ignoring
/// them).
class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string where)
      : json_(json), where_(std::move(where)) {
    json.object();  // type check up front
  }

  template <typename T, typename Fn>
  ObjectReader& field(const std::string& key, T& out, Fn&& get) {
    handled_.push_back(key);
    if (const Json* member = json_.find(key)) {
      try {
        out = get(*member);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(where_ + "." + key + ": " + e.what());
      }
    }
    return *this;
  }

  ~ObjectReader() noexcept(false) {
    if (std::uncaught_exceptions()) return;
    for (const auto& [key, _] : json_.object()) {
      if (std::find(handled_.begin(), handled_.end(), key) == handled_.end()) {
        throw std::invalid_argument("unknown key \"" + where_ + "." + key + "\"");
      }
    }
  }

 private:
  const Json& json_;
  std::string where_;
  std::vector<std::string> handled_;
};

double as_double(const Json& j) { return j.number(); }
bool as_bool(const Json& j) { return j.boolean(); }

/// Checked narrowing: an out-of-range value must throw, never wrap (a
/// wrapped max_moves of 0 would silently disable the whole search).
template <typename T>
T as_integer(const Json& j) {
  std::int64_t value = j.integer();
  if (value < static_cast<std::int64_t>(std::numeric_limits<T>::min()) ||
      value > static_cast<std::int64_t>(std::numeric_limits<T>::max())) {
    throw std::invalid_argument("integer " + std::to_string(value) + " out of range");
  }
  return static_cast<T>(value);
}

int as_int(const Json& j) { return as_integer<int>(j); }
long as_long(const Json& j) { return as_integer<long>(j); }
ir::i64 as_i64(const Json& j) { return as_integer<ir::i64>(j); }
unsigned as_unsigned(const Json& j) { return as_integer<unsigned>(j); }

}  // namespace

std::string json_number(double value) {
  std::ostringstream out = c_stream();
  out << std::setprecision(15) << value;
  return out.str();
}

std::string json_number_exact(double value) {
  std::ostringstream out = c_stream();
  out << std::setprecision(17) << value;
  return out.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const sim::SimResult& result, int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"total_cycles\": " << num(result.total_cycles()) << ",\n";
  out << p1 << "\"compute_cycles\": " << num(result.compute_cycles) << ",\n";
  out << p1 << "\"access_cycles\": " << num(result.access_cycles) << ",\n";
  out << p1 << "\"stall_cycles\": " << num(result.stall_cycles) << ",\n";
  out << p1 << "\"energy_nj\": " << num(result.energy_nj) << ",\n";
  out << p1 << "\"dma_busy_cycles\": " << num(result.dma_busy_cycles) << ",\n";
  out << p1 << "\"block_transfer_streams\": " << result.num_block_transfers << ",\n";
  out << p1 << "\"feasible\": " << bool_text(result.feasible) << ",\n";
  out << p1 << "\"layers\": [\n";
  for (std::size_t l = 0; l < result.layers.size(); ++l) {
    const sim::LayerStats& layer = result.layers[l];
    out << p2 << "{\"name\": \"" << json_escape(layer.name) << "\", \"reads\": " << layer.reads
        << ", \"writes\": " << layer.writes << ", \"energy_nj\": " << num(layer.energy_nj) << "}"
        << (l + 1 < result.layers.size() ? "," : "") << "\n";
  }
  out << p1 << "]\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const std::string& app_name, const sim::FourPoint& points, int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  out << p0 << "{\n";
  out << p1 << "\"application\": \"" << json_escape(app_name) << "\",\n";
  out << p1 << "\"out_of_box\":\n" << to_json(points.out_of_box, indent + 1) << ",\n";
  out << p1 << "\"mhla\":\n" << to_json(points.mhla, indent + 1) << ",\n";
  out << p1 << "\"mhla_te\":\n" << to_json(points.mhla_te, indent + 1) << ",\n";
  out << p1 << "\"ideal\":\n" << to_json(points.ideal, indent + 1) << "\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const std::string& app_name, const PipelineResult& result, int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"application\": \"" << json_escape(app_name) << "\",\n";
  out << p1 << "\"strategy\": \"" << json_escape(result.strategy) << "\",\n";
  out << p1 << "\"search\": {\"scalar\": " << num(result.search.scalar)
      << ", \"moves\": " << result.search.moves.size()
      << ", \"evaluations\": " << result.search.evaluations
      << ", \"states_explored\": " << result.search.states_explored
      << ", \"status\": \"" << assign::to_string(result.search.status) << "\""
      << ", \"gap\": " << num(result.search.gap)
      << ", \"exhausted_budget\": " << bool_text(result.search.exhausted_budget) << "},\n";
  out << p1 << "\"timings\": [\n";
  for (std::size_t i = 0; i < result.timings.size(); ++i) {
    out << p2 << "{\"stage\": \"" << json_escape(result.timings[i].stage)
        << "\", \"seconds\": " << num(result.timings[i].seconds) << "}"
        << (i + 1 < result.timings.size() ? "," : "") << "\n";
  }
  out << p1 << "],\n";
  out << p1 << "\"total_seconds\": " << num(result.total_seconds) << ",\n";
  out << p1 << "\"points\":\n" << to_json(app_name, result.points, indent + 1) << "\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const std::vector<xplore::TradeoffPoint>& points, int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  out << p0 << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const xplore::TradeoffPoint& point = points[i];
    out << p1 << "{\"l1_bytes\": " << point.l1_bytes << ", \"l2_bytes\": " << point.l2_bytes
        << ", \"cycles\": " << num(point.cycles) << ", \"energy_nj\": " << num(point.energy_nj)
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << p0 << "]";
  return out.str();
}

std::string to_json(const assign::FootprintReport& report, const mem::Hierarchy& hierarchy,
                    int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"feasible\": " << bool_text(report.feasible) << ",\n";
  out << p1 << "\"layers\": [\n";
  for (std::size_t l = 0; l < report.usage.size(); ++l) {
    const mem::MemLayer& layer = hierarchy.layer(static_cast<int>(l));
    out << p2 << "{\"name\": \"" << json_escape(layer.name)
        << "\", \"capacity_bytes\": " << layer.capacity_bytes
        << ", \"peak_bytes\": " << report.peak_bytes[l] << ", \"usage\": [";
    const std::vector<ir::i64>& row = report.usage[l];
    for (std::size_t t = 0; t < row.size(); ++t) {
      out << row[t] << (t + 1 < row.size() ? ", " : "");
    }
    out << "]}" << (l + 1 < report.usage.size() ? "," : "") << "\n";
  }
  out << p1 << "]\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const obs::MetricsSnapshot& snapshot) { return obs::to_json(snapshot); }

std::string to_json(const PipelineConfig& config, int indent) {
  std::ostringstream out = c_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"platform\": {\n";
  out << p2 << "\"l1_bytes\": " << config.platform.l1_bytes << ",\n";
  out << p2 << "\"l2_bytes\": " << config.platform.l2_bytes << ",\n";
  const mem::SramModelParams& sram = config.platform.sram;
  out << p2 << "\"sram\": {\"base_energy_nj\": " << num_exact(sram.base_energy_nj)
      << ", \"slope_energy_nj\": " << num_exact(sram.slope_energy_nj)
      << ", \"write_factor\": " << num_exact(sram.write_factor)
      << ", \"base_latency\": " << sram.base_latency
      << ", \"latency_step_bytes\": " << sram.latency_step_bytes
      << ", \"bytes_per_cycle\": " << num_exact(sram.bytes_per_cycle) << "},\n";
  const mem::SdramModelParams& sdram = config.platform.sdram;
  out << p2 << "\"sdram\": {\"read_energy_nj\": " << num_exact(sdram.read_energy_nj)
      << ", \"write_energy_nj\": " << num_exact(sdram.write_energy_nj)
      << ", \"read_latency\": " << sdram.read_latency
      << ", \"write_latency\": " << sdram.write_latency
      << ", \"bytes_per_cycle\": " << num_exact(sdram.bytes_per_cycle) << "}\n";
  out << p1 << "},\n";
  out << p1 << "\"dma\": {\"present\": " << bool_text(config.dma.present)
      << ", \"setup_cycles\": " << config.dma.setup_cycles
      << ", \"bytes_per_cycle\": " << num_exact(config.dma.bytes_per_cycle)
      << ", \"channels\": " << config.dma.channels << "},\n";
  out << p1 << "\"strategy\": \"" << json_escape(config.strategy) << "\",\n";
  out << p1 << "\"target\": \"" << assign::to_string(config.target) << "\",\n";
  const assign::SearchOptions& search = config.search;
  out << p1 << "\"search\": {\"energy_weight\": " << num_exact(search.energy_weight)
      << ", \"time_weight\": " << num_exact(search.time_weight)
      << ", \"max_moves\": " << search.max_moves << ", \"max_states\": " << search.max_states
      << ", \"allow_array_migration\": " << bool_text(search.allow_array_migration)
      << ", \"use_cost_engine\": " << bool_text(search.use_cost_engine)
      << ", \"use_branch_and_bound\": " << bool_text(search.use_branch_and_bound)
      << ", \"use_footprint_tracker\": " << bool_text(search.use_footprint_tracker)
      << ", \"greedy_batched_scoring\": " << bool_text(search.greedy_batched_scoring)
      << ", \"use_footprint_bound\": " << bool_text(search.use_footprint_bound)
      << ",\n" << p1 << "             \"anneal_iterations\": " << search.anneal_iterations
      << ", \"anneal_seed\": " << search.anneal_seed
      << ", \"anneal_initial_temp\": " << num_exact(search.anneal_initial_temp)
      << ", \"anneal_cooling\": " << num_exact(search.anneal_cooling)
      << ",\n" << p1 << "             \"bnb_threads\": " << search.bnb_threads
      << ", \"bnb_tasks_per_thread\": " << search.bnb_tasks_per_thread
      << ", \"bnb_seed_incumbent\": " << bool_text(search.bnb_seed_incumbent)
      << ", \"bnb_work_stealing\": " << bool_text(search.bnb_work_stealing)
      << ",\n" << p1 << "             \"deadline_seconds\": "
      << num_exact(search.budget.deadline_seconds)
      << ", \"max_probes\": " << search.budget.max_probes << "},\n";
  out << p1 << "\"te\": {\"order\": \"" << order_name(config.te.order)
      << "\", \"max_lookahead\": " << config.te.max_lookahead
      << ", \"charge_cold_start\": " << bool_text(config.te.charge_cold_start)
      << ", \"use_footprint_tracker\": " << bool_text(config.te.use_footprint_tracker) << "},\n";
  out << p1 << "\"num_threads\": " << config.num_threads << "\n";
  out << p0 << "}";
  return out.str();
}

PipelineConfig pipeline_config_from_json(const std::string& text) {
  Json document = Json::parse(text);
  PipelineConfig config;
  ObjectReader(document, "config")
      .field("platform", config.platform,
             [](const Json& j) {
               mem::PlatformConfig platform;
               ObjectReader(j, "platform")
                   .field("l1_bytes", platform.l1_bytes, as_i64)
                   .field("l2_bytes", platform.l2_bytes, as_i64)
                   .field("sram", platform.sram,
                          [](const Json& s) {
                            mem::SramModelParams sram;
                            ObjectReader(s, "platform.sram")
                                .field("base_energy_nj", sram.base_energy_nj, as_double)
                                .field("slope_energy_nj", sram.slope_energy_nj, as_double)
                                .field("write_factor", sram.write_factor, as_double)
                                .field("base_latency", sram.base_latency, as_int)
                                .field("latency_step_bytes", sram.latency_step_bytes, as_i64)
                                .field("bytes_per_cycle", sram.bytes_per_cycle, as_double);
                            return sram;
                          })
                   .field("sdram", platform.sdram, [](const Json& s) {
                     mem::SdramModelParams sdram;
                     ObjectReader(s, "platform.sdram")
                         .field("read_energy_nj", sdram.read_energy_nj, as_double)
                         .field("write_energy_nj", sdram.write_energy_nj, as_double)
                         .field("read_latency", sdram.read_latency, as_int)
                         .field("write_latency", sdram.write_latency, as_int)
                         .field("bytes_per_cycle", sdram.bytes_per_cycle, as_double);
                     return sdram;
                   });
               return platform;
             })
      .field("dma", config.dma,
             [](const Json& j) {
               mem::DmaEngine dma;
               ObjectReader(j, "dma")
                   .field("present", dma.present, as_bool)
                   .field("setup_cycles", dma.setup_cycles, as_int)
                   .field("bytes_per_cycle", dma.bytes_per_cycle, as_double)
                   .field("channels", dma.channels, as_int);
               return dma;
             })
      .field("strategy", config.strategy, [](const Json& j) { return j.string(); })
      .field("target", config.target,
             [](const Json& j) { return assign::parse_target(j.string()); })
      .field("search", config.search,
             [](const Json& j) {
               assign::SearchOptions search;
               ObjectReader(j, "search")
                   .field("energy_weight", search.energy_weight, as_double)
                   .field("time_weight", search.time_weight, as_double)
                   .field("max_moves", search.max_moves, as_int)
                   .field("max_states", search.max_states, as_long)
                   .field("allow_array_migration", search.allow_array_migration, as_bool)
                   .field("use_cost_engine", search.use_cost_engine, as_bool)
                   .field("use_branch_and_bound", search.use_branch_and_bound, as_bool)
                   .field("use_footprint_tracker", search.use_footprint_tracker, as_bool)
                   .field("greedy_batched_scoring", search.greedy_batched_scoring, as_bool)
                   .field("use_footprint_bound", search.use_footprint_bound, as_bool)
                   .field("anneal_iterations", search.anneal_iterations, as_int)
                   .field("anneal_seed", search.anneal_seed, as_integer<std::uint32_t>)
                   .field("anneal_initial_temp", search.anneal_initial_temp, as_double)
                   .field("anneal_cooling", search.anneal_cooling, as_double)
                   .field("bnb_threads", search.bnb_threads, as_unsigned)
                   .field("bnb_tasks_per_thread", search.bnb_tasks_per_thread, as_int)
                   .field("bnb_seed_incumbent", search.bnb_seed_incumbent, as_bool)
                   .field("bnb_work_stealing", search.bnb_work_stealing, as_bool)
                   .field("deadline_seconds", search.budget.deadline_seconds, as_double)
                   .field("max_probes", search.budget.max_probes, as_long);
               return search;
             })
      .field("te", config.te,
             [](const Json& j) {
               te::TeOptions te;
               ObjectReader(j, "te")
                   .field("order", te.order, [](const Json& o) { return parse_order(o.string()); })
                   .field("max_lookahead", te.max_lookahead, as_int)
                   .field("charge_cold_start", te.charge_cold_start, as_bool)
                   .field("use_footprint_tracker", te.use_footprint_tracker, as_bool);
               return te;
             })
      .field("num_threads", config.num_threads, as_unsigned);
  return config;
}

}  // namespace mhla::core
