#include "core/json_report.h"

#include <iomanip>
#include <sstream>

namespace mhla::core {

namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string num(double value) {
  std::ostringstream out;
  out << std::setprecision(15) << value;
  return out.str();
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const sim::SimResult& result, int indent) {
  std::ostringstream out;
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"total_cycles\": " << num(result.total_cycles()) << ",\n";
  out << p1 << "\"compute_cycles\": " << num(result.compute_cycles) << ",\n";
  out << p1 << "\"access_cycles\": " << num(result.access_cycles) << ",\n";
  out << p1 << "\"stall_cycles\": " << num(result.stall_cycles) << ",\n";
  out << p1 << "\"energy_nj\": " << num(result.energy_nj) << ",\n";
  out << p1 << "\"dma_busy_cycles\": " << num(result.dma_busy_cycles) << ",\n";
  out << p1 << "\"block_transfer_streams\": " << result.num_block_transfers << ",\n";
  out << p1 << "\"feasible\": " << (result.feasible ? "true" : "false") << ",\n";
  out << p1 << "\"layers\": [\n";
  for (std::size_t l = 0; l < result.layers.size(); ++l) {
    const sim::LayerStats& layer = result.layers[l];
    out << p2 << "{\"name\": \"" << json_escape(layer.name) << "\", \"reads\": " << layer.reads
        << ", \"writes\": " << layer.writes << ", \"energy_nj\": " << num(layer.energy_nj) << "}"
        << (l + 1 < result.layers.size() ? "," : "") << "\n";
  }
  out << p1 << "]\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const std::string& app_name, const sim::FourPoint& points, int indent) {
  std::ostringstream out;
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  out << p0 << "{\n";
  out << p1 << "\"application\": \"" << json_escape(app_name) << "\",\n";
  out << p1 << "\"out_of_box\":\n" << to_json(points.out_of_box, indent + 1) << ",\n";
  out << p1 << "\"mhla\":\n" << to_json(points.mhla, indent + 1) << ",\n";
  out << p1 << "\"mhla_te\":\n" << to_json(points.mhla_te, indent + 1) << ",\n";
  out << p1 << "\"ideal\":\n" << to_json(points.ideal, indent + 1) << "\n";
  out << p0 << "}";
  return out.str();
}

std::string to_json(const std::vector<xplore::TradeoffPoint>& points, int indent) {
  std::ostringstream out;
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  out << p0 << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const xplore::TradeoffPoint& point = points[i];
    out << p1 << "{\"l1_bytes\": " << point.l1_bytes << ", \"l2_bytes\": " << point.l2_bytes
        << ", \"cycles\": " << num(point.cycles) << ", \"energy_nj\": " << num(point.energy_nj)
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << p0 << "]";
  return out.str();
}

}  // namespace mhla::core
