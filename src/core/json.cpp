#include "core/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/json_report.h"

namespace mhla::core {

namespace {

std::string kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return "bool";
    case Json::Kind::Number: return "number";
    case Json::Kind::String: return "string";
    case Json::Kind::Array: return "array";
    case Json::Kind::Object: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* wanted, Json::Kind got) {
  throw std::invalid_argument(std::string("JSON: expected ") + wanted + ", got " +
                              kind_name(got));
}

}  // namespace

bool Json::boolean() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

double Json::number() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  return number_;
}

std::int64_t Json::integer() const {
  double value = number();
  if (std::nearbyint(value) != value ||
      value < -9007199254740992.0 || value > 9007199254740992.0) {
    throw std::invalid_argument("JSON: number " + std::to_string(value) +
                                " is not an exactly-representable integer");
  }
  return static_cast<std::int64_t>(value);
}

const std::string& Json::string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return string_;
}

const Json::Array& Json::array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return array_;
}

const Json::Object& Json::object() const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return object_;
}

const Json* Json::find(const std::string& key) const {
  const Object& members = object();
  auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  const Json* member = find(key);
  if (!member) throw std::invalid_argument("JSON: missing key \"" + key + "\"");
  return *member;
}

std::string Json::dump() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  switch (kind_) {
    case Kind::Null:
      out << "null";
      break;
    case Kind::Bool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::Number:
      // Integral values print without a fraction (they parse back exactly);
      // everything else goes through max_digits10 for a bit-exact round trip.
      if (std::nearbyint(number_) == number_ && number_ >= -9007199254740992.0 &&
          number_ <= 9007199254740992.0) {
        out << static_cast<std::int64_t>(number_);
      } else {
        out << json_number_exact(number_);
      }
      break;
    case Kind::String:
      out << '"' << json_escape(string_) << '"';
      break;
    case Kind::Array: {
      out << '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out << ", ";
        first = false;
        out << item.dump();
      }
      out << ']';
      break;
    }
    case Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out << ", ";
        first = false;
        out << '"' << json_escape(key) << "\": " << value.dump();
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

/// Recursive-descent parser over the raw text.  Tracks the byte offset and
/// reports errors as line:column.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream message;
    message << "JSON parse error at " << line << ":" << column << ": " << what;
    throw std::invalid_argument(message.str());
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_keyword(const char* keyword) {
    std::size_t n = std::char_traits<char>::length(keyword);
    if (text_.compare(pos_, n, keyword) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    if (depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return make_string(parse_string());
      case 't':
        if (consume_keyword("true")) return make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_keyword("false")) return make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_keyword("null")) return Json{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    Json value;
    value.kind_ = Json::Kind::Object;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = parse_string();
      if (value.object_.count(key)) fail("duplicate object key \"" + key + "\"");
      skip_whitespace();
      expect(':');
      value.object_.emplace(std::move(key), parse_value());
      skip_whitespace();
      char c = take();
      if (c == '}') {
        --depth_;
        return value;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    ++depth_;
    Json value;
    value.kind_ = Json::Kind::Array;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      value.array_.push_back(parse_value());
      skip_whitespace();
      char c = take();
      if (c == ']') {
        --depth_;
        return value;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A') + 10;
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs are rejected:
    // nothing the library emits ever needs them).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes are not supported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    Json value;
    value.kind_ = Json::Kind::Number;
    // std::from_chars: locale-independent, unlike strtod (a host that sets
    // a comma-decimal LC_NUMERIC must not change what a config means).
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value.number_);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return value;
  }

  static Json make_string(std::string s) {
    Json value;
    value.kind_ = Json::Kind::String;
    value.string_ = std::move(s);
    return value;
  }

  static Json make_bool(bool b) {
    Json value;
    value.kind_ = Json::Kind::Bool;
    value.bool_ = b;
    return value;
  }

  /// Parser and Json destructor both recurse per nesting level; the cap
  /// turns a hostile deeply-nested document into the documented
  /// std::invalid_argument instead of a stack overflow.
  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

Json Json::parse(const std::string& text) { return JsonParser(text).parse_document(); }

}  // namespace mhla::core
