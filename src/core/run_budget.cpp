#include "core/run_budget.h"

#include "core/fault_injector.h"

namespace mhla::core {

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::None: return "none";
    case StopReason::Deadline: return "deadline";
    case StopReason::ProbeBudget: return "probe_budget";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Injected: return "injected";
  }
  return "none";
}

RunBudget::RunBudget() = default;

RunBudget::RunBudget(const BudgetSpec& spec)
    : max_probes_(spec.max_probes > 0 ? spec.max_probes : 0), cancel_(spec.cancel) {
  if (spec.deadline_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(spec.deadline_seconds));
  }
}

void RunBudget::expire(StopReason reason) {
  if (reason == StopReason::None) return;
  StopReason expected = StopReason::None;
  reason_.compare_exchange_strong(expected, reason, std::memory_order_relaxed);
}

bool RunBudget::probe(long n) {
  long count = probes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (FaultInjector::fire(FaultInjector::Site::BudgetProbe)) {
    expire(StopReason::Injected);
  }
  if (expired()) return false;
  if (max_probes_ > 0 && count > max_probes_) {
    expire(StopReason::ProbeBudget);
    return false;
  }
  if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
    expire(StopReason::Cancelled);
    return false;
  }
  // The clock is a syscall, so only consult it on the first probe and then
  // every 64th; a tight search loop pays pure-arithmetic probes in between.
  if (has_deadline_ && (count <= n || (count & 63) < n) && Clock::now() >= deadline_) {
    expire(StopReason::Deadline);
    return false;
  }
  return true;
}

}  // namespace mhla::core
