#pragma once

#include "assign/cost.h"

namespace mhla::assign {

/// The prior-art comparison point the paper positions itself against
/// ("most of the previous work do not explore trade-offs systematically"):
/// classic static scratchpad allocation in the style of Panda/Dutt/Nicolau.
///
/// Whole arrays are ranked by access density (dynamic accesses per byte)
/// and greedily pinned into the on-chip layers, closest layer first, using
/// a *sum-of-sizes* capacity model — no copy candidates, no lifetime-aware
/// in-place sharing, no prefetching.  Everything that does not fit stays
/// off-chip.
struct StaticBaselineResult {
  Assignment assignment;
  int arrays_placed = 0;
};

StaticBaselineResult static_baseline_assign(const AssignContext& ctx);

}  // namespace mhla::assign
