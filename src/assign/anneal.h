#pragma once

#include <cstdint>

#include "assign/cost.h"
#include "assign/inplace.h"
#include "assign/search_status.h"
#include "core/run_budget.h"

namespace mhla::assign {

/// Options for the simulated-annealing search (registry name "anneal").
///
/// The walk is a Metropolis chain over the same move set the greedy search
/// uses — select a copy candidate onto an on-chip layer, remove a selected
/// copy, migrate an array's home — applied and undone through the
/// incremental CostEngine.  Every random draw comes from one PRNG seeded
/// with `seed` and bounded by plain modulo, so a (program, options) pair
/// names exactly one walk on every platform and thread count.
struct AnnealOptions {
  double energy_weight = 1.0;  ///< relative weight of normalized energy
  double time_weight = 1.0;    ///< relative weight of normalized time

  int iterations = 2000;        ///< proposed moves (integral evaluation budget)
  std::uint32_t seed = 1;       ///< PRNG seed; same seed => bit-identical result
  double initial_temp = 0.05;   ///< start temperature, in normalized-scalar units
  double cooling = 0.997;       ///< geometric per-iteration temperature decay
  bool allow_array_migration = true;  ///< propose whole-array home moves

  /// Answer per-proposal feasibility from the engine's incremental
  /// FootprintTracker (O(1)) instead of a from-scratch `fits()` rebuild.
  /// Verdicts are exact either way, so the walk is bit-identical.
  bool use_footprint_tracker = true;

  /// Cooperative run budget: one probe per iteration, checked before the
  /// proposal is drawn, so an expired budget truncates the walk at an
  /// iteration boundary and the best-so-far state is returned (status
  /// BudgetExhausted).  `shared_budget` takes precedence over `budget`.
  core::BudgetSpec budget;
  core::RunBudget* shared_budget = nullptr;
};

/// Result of one annealing walk.  `assignment` is the best feasible state
/// visited (never worse than out-of-box: the walk starts there and the best
/// tracker only moves on strict improvement).
struct AnnealResult {
  Assignment assignment;
  double scalar = 0.0;  ///< objective of the best state
  int evaluations = 0;  ///< feasible proposals scored
  int accepted = 0;     ///< proposals accepted by the Metropolis rule

  /// Feasible on completion, BudgetExhausted when the run budget truncated
  /// the walk; the best-so-far assignment is returned either way.
  SearchStatus status = SearchStatus::Feasible;
};

/// Simulated-annealing search over copy selections and array homes.
/// Starts from the out-of-box assignment; infeasible or layering-invalid
/// proposals are rejected before scoring.
AnnealResult anneal_assign(const AssignContext& ctx, const AnnealOptions& options = {});

}  // namespace mhla::assign
