#include "assign/assignment.h"

#include <algorithm>
#include <stdexcept>

namespace mhla::assign {

int Assignment::copy_layer(int cc_id) const {
  for (const PlacedCopy& pc : copies) {
    if (pc.cc_id == cc_id) return pc.layer;
  }
  return -1;
}

int Assignment::layer_of(const std::string& array, int fallback) const {
  auto it = array_layer.find(array);
  return it == array_layer.end() ? fallback : it->second;
}

Assignment out_of_box(const AssignContext& ctx) {
  Assignment a;
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    a.array_layer[array.name] = ctx.hierarchy.background();
  }
  return a;
}

bool cc_covers_site(const analysis::CopyCandidate& cc, const analysis::AccessSite& site) {
  if (cc.nest != site.nest) return false;
  if (cc.array != site.access->array) return false;
  if (site.path.size() < cc.prefix.size()) return false;
  for (std::size_t i = 0; i < cc.prefix.size(); ++i) {
    if (cc.prefix[i] != site.path[i]) return false;
  }
  return true;
}

bool cc_is_ancestor(const analysis::CopyCandidate& parent, const analysis::CopyCandidate& child) {
  if (parent.array != child.array || parent.nest != child.nest) return false;
  if (parent.level >= child.level) return false;
  for (std::size_t i = 0; i < parent.prefix.size(); ++i) {
    if (parent.prefix[i] != child.prefix[i]) return false;
  }
  return true;
}

namespace {

/// Layer of the parent store of `cc` under `assignment`: the deepest selected
/// ancestor CC, or the array's home layer.
int parent_layer_of(const AssignContext& ctx, const Assignment& assignment,
                    const analysis::CopyCandidate& cc) {
  int best_level = -1;
  int best_layer = assignment.layer_of(cc.array, ctx.hierarchy.background());
  for (const PlacedCopy& pc : assignment.copies) {
    const analysis::CopyCandidate& other = ctx.reuse.candidate(pc.cc_id);
    if (cc_is_ancestor(other, cc) && other.level > best_level) {
      best_level = other.level;
      best_layer = pc.layer;
    }
  }
  return best_layer;
}

}  // namespace

Resolution resolve(const AssignContext& ctx, const Assignment& assignment) {
  Resolution res;
  int background = ctx.hierarchy.background();

  for (const PlacedCopy& pc : assignment.copies) {
    if (pc.cc_id < 0 || pc.cc_id >= static_cast<int>(ctx.reuse.candidates().size())) {
      throw std::invalid_argument("resolve: unknown copy candidate id " +
                                  std::to_string(pc.cc_id));
    }
    if (pc.layer < 0 || pc.layer >= ctx.hierarchy.num_layers()) {
      throw std::invalid_argument("resolve: copy placed on unknown layer " +
                                  std::to_string(pc.layer));
    }
  }

  res.site_layer.assign(ctx.sites.size(), background);
  for (const analysis::AccessSite& site : ctx.sites) {
    int serving = assignment.layer_of(site.access->array, background);
    int best_level = -1;
    for (const PlacedCopy& pc : assignment.copies) {
      const analysis::CopyCandidate& cc = ctx.reuse.candidate(pc.cc_id);
      if (cc_covers_site(cc, site) && cc.level > best_level) {
        best_level = cc.level;
        serving = pc.layer;
      }
    }
    res.site_layer[static_cast<std::size_t>(site.id)] = serving;
  }

  for (const PlacedCopy& pc : assignment.copies) {
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(pc.cc_id);
    TransferEdge edge;
    edge.cc_id = pc.cc_id;
    edge.dst_layer = pc.layer;
    edge.src_layer = parent_layer_of(ctx, assignment, cc);
    edge.write_back = cc.has_writes();
    res.transfers.push_back(edge);
  }
  return res;
}

bool layering_valid(const AssignContext& ctx, const Assignment& assignment) {
  Resolution res = resolve(ctx, assignment);
  return std::all_of(res.transfers.begin(), res.transfers.end(),
                     [](const TransferEdge& e) { return e.dst_layer < e.src_layer; });
}

std::vector<PinnedTraffic> pinned_array_traffic(const AssignContext& ctx,
                                                const Assignment& assignment) {
  std::vector<PinnedTraffic> traffic;
  int background = ctx.hierarchy.background();
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    int home = assignment.layer_of(array.name, background);
    if (home == background) continue;
    if (array.is_input) traffic.push_back({&array, home, true});
    if (array.is_output) traffic.push_back({&array, home, false});
  }
  return traffic;
}

int drop_invalid_copies(const AssignContext& ctx, Assignment& assignment) {
  int dropped = 0;
  for (;;) {
    Resolution res = resolve(ctx, assignment);
    std::vector<int> offenders;
    for (const TransferEdge& edge : res.transfers) {
      if (edge.dst_layer >= edge.src_layer) offenders.push_back(edge.cc_id);
    }
    if (offenders.empty()) return dropped;
    std::erase_if(assignment.copies, [&](const PlacedCopy& pc) {
      return std::find(offenders.begin(), offenders.end(), pc.cc_id) != offenders.end();
    });
    dropped += static_cast<int>(offenders.size());
  }
}

}  // namespace mhla::assign
