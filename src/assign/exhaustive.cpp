#include "assign/exhaustive.h"

#include <stdexcept>

namespace mhla::assign {

namespace {

struct SearchState {
  const AssignContext& ctx;
  const ExhaustiveOptions& options;
  Objective objective;
  Assignment best;
  double best_scalar;
  long states = 0;
  bool budget_hit = false;

  void evaluate(const Assignment& assignment) {
    if (budget_hit) return;
    if (++states > options.max_states) {
      budget_hit = true;
      return;
    }
    if (!fits(ctx, assignment)) return;
    if (!layering_valid(ctx, assignment)) return;
    double scalar = objective.scalar(estimate_cost(ctx, assignment));
    if (scalar < best_scalar) {
      best_scalar = scalar;
      best = assignment;
    }
  }

  /// Choose a layer for each copy candidate (or leave it unselected).
  void recurse_copies(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    const auto& candidates = ctx.reuse.candidates();
    if (index == candidates.size()) {
      evaluate(assignment);
      return;
    }
    // Option A: skip this candidate.
    recurse_copies(assignment, index + 1);
    // Option B: place it on every on-chip layer it could fit.
    const analysis::CopyCandidate& cc = candidates[index];
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      assignment.copies.push_back({cc.id, layer});
      recurse_copies(assignment, index + 1);
      assignment.copies.pop_back();
    }
  }

  /// Choose a home layer for each array, then enumerate copies.
  void recurse_arrays(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    const auto& arrays = ctx.program.arrays();
    if (index == arrays.size()) {
      recurse_copies(assignment, 0);
      return;
    }
    const ir::ArrayDecl& array = arrays[index];
    int last = options.allow_array_migration ? ctx.hierarchy.num_layers() - 1 : 0;
    for (int offset = 0; offset <= last; ++offset) {
      // Enumerate background first so small instances find the canonical
      // everything-off-chip baseline immediately.
      int layer = (ctx.hierarchy.background() + ctx.hierarchy.num_layers() - offset) %
                  ctx.hierarchy.num_layers();
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
      assignment.array_layer[array.name] = layer;
      recurse_arrays(assignment, index + 1);
    }
    assignment.array_layer[array.name] = ctx.hierarchy.background();
  }
};

}  // namespace

ExhaustiveResult exhaustive_assign(const AssignContext& ctx, const ExhaustiveOptions& options) {
  std::size_t placements = ctx.reuse.candidates().size() *
                           static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
  if (placements > 24) {
    throw std::invalid_argument(
        "exhaustive_assign: instance too large (" + std::to_string(placements) +
        " candidate placements); use greedy_assign");
  }

  SearchState state{ctx, options, make_objective(ctx, options.energy_weight, options.time_weight),
                    out_of_box(ctx), 0.0, 0, false};
  state.best_scalar = state.objective.scalar(estimate_cost(ctx, state.best));

  Assignment scratch = out_of_box(ctx);
  state.recurse_arrays(scratch, 0);

  ExhaustiveResult result;
  result.assignment = std::move(state.best);
  result.scalar = state.best_scalar;
  result.states_explored = state.states;
  result.exhausted_budget = state.budget_hit;
  return result;
}

}  // namespace mhla::assign
