#include "assign/exhaustive.h"

#include <limits>
#include <stdexcept>

#include "assign/cost_engine.h"

namespace mhla::assign {

namespace {

/// Reference enumeration: from-scratch estimate_cost per state, no pruning
/// beyond per-placement capacity.  Kept as the oracle the engine path is
/// equivalence-tested against.
struct SearchState {
  const AssignContext& ctx;
  const ExhaustiveOptions& options;
  Objective objective;
  Assignment best;
  double best_scalar;
  long states = 0;
  bool budget_hit = false;

  void evaluate(const Assignment& assignment) {
    if (budget_hit) return;
    if (++states > options.max_states) {
      budget_hit = true;
      return;
    }
    if (!fits(ctx, assignment)) return;
    if (!layering_valid(ctx, assignment)) return;
    double scalar = objective.scalar(estimate_cost(ctx, assignment));
    if (scalar < best_scalar) {
      best_scalar = scalar;
      best = assignment;
    }
  }

  /// Choose a layer for each copy candidate (or leave it unselected).
  void recurse_copies(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    const auto& candidates = ctx.reuse.candidates();
    if (index == candidates.size()) {
      evaluate(assignment);
      return;
    }
    // Option A: skip this candidate.
    recurse_copies(assignment, index + 1);
    // Option B: place it on every on-chip layer it could fit.
    const analysis::CopyCandidate& cc = candidates[index];
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      assignment.copies.push_back({cc.id, layer});
      recurse_copies(assignment, index + 1);
      assignment.copies.pop_back();
    }
  }

  /// Choose a home layer for each array, then enumerate copies.
  void recurse_arrays(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    const auto& arrays = ctx.program.arrays();
    if (index == arrays.size()) {
      recurse_copies(assignment, 0);
      return;
    }
    const ir::ArrayDecl& array = arrays[index];
    int entry = assignment.layer_of(array.name, ctx.hierarchy.background());
    int last = options.allow_array_migration ? ctx.hierarchy.num_layers() - 1 : 0;
    for (int offset = 0; offset <= last; ++offset) {
      // Enumerate background first so small instances find the canonical
      // everything-off-chip baseline immediately.
      int layer = (ctx.hierarchy.background() + ctx.hierarchy.num_layers() - offset) %
                  ctx.hierarchy.num_layers();
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
      assignment.array_layer[array.name] = layer;
      recurse_arrays(assignment, index + 1);
    }
    // Restore the entry value, not the background: the caller's scratch may
    // legitimately hold a non-background home for this array.
    assignment.array_layer[array.name] = entry;
  }
};

ExhaustiveResult exhaustive_reference(const AssignContext& ctx, const ExhaustiveOptions& options) {
  SearchState state{ctx, options, make_objective(ctx, options.energy_weight, options.time_weight),
                    out_of_box(ctx), 0.0, 0, false};
  state.best_scalar = state.objective.scalar(estimate_cost(ctx, state.best));

  Assignment scratch = out_of_box(ctx);
  state.recurse_arrays(scratch, 0);

  ExhaustiveResult result;
  result.assignment = std::move(state.best);
  result.scalar = state.best_scalar;
  result.states_explored = state.states;
  result.exhausted_budget = state.budget_hit;
  return result;
}

/// Engine-backed branch-and-bound.  Same DFS order as the reference, so the
/// first strictly-improving state is found identically; pruning discards
/// only subtrees whose admissible lower bound shows they cannot *strictly*
/// beat the incumbent, and placements whose cumulative (layer, nest)
/// footprint already overflows a bounded layer (copy selection only ever
/// adds footprint, so no completion of such a branch is feasible).
struct EngineSearch {
  const AssignContext& ctx;
  const ExhaustiveOptions& options;
  CostEngine engine;
  Objective objective;
  Assignment best;
  double best_scalar = 0.0;
  long states = 0;
  bool budget_hit = false;
  long bound_prunes = 0;
  long capacity_prunes = 0;
  bool bnb = true;            ///< pruning on; off = state-exact mirror of the reference
  int overfull_cells = 0;     ///< mirror mode: overflowing (layer, nest) cells on the path
  bool base_infeasible_ = false;  ///< mirror mode: array homes alone overflow a layer

  /// Running lower bound, split into an exact part (terms whose final value
  /// is already fixed) and an optimistic part (admissible minima for the
  /// still-open decisions).  Passed by value down the DFS so backtracking
  /// restores it exactly.
  struct Bound {
    double exact_e = 0.0;
    double exact_c = 0.0;
    double opt_e = 0.0;
    double opt_c = 0.0;
  };

  // -- static bound tables (per context) --
  std::vector<std::vector<int>> final_at_;  ///< [j] -> sites decided entering step j
  std::vector<double> site_opt_e_;  ///< per site: min on-chip covering-cc term (+inf if none)
  std::vector<double> site_opt_c_;
  std::vector<double> cc_lb_e_;  ///< [cc * L + dst]: min over src > dst
  std::vector<double> cc_lb_c_;
  // -- per copy phase --
  std::vector<double> site_lb_e_;  ///< min(home term, site_opt)
  std::vector<double> site_lb_c_;
  std::vector<std::vector<i64>> usage_;  ///< [layer][nest] running footprint

  EngineSearch(const AssignContext& c, const ExhaustiveOptions& o)
      : ctx(c),
        options(o),
        engine(c),
        objective(make_objective(c, o.energy_weight, o.time_weight)),
        bnb(o.use_branch_and_bound) {
    best_scalar = engine.scalar(objective);
    best = engine.assignment();
    if (bnb) precompute_bounds();
  }

  void precompute_bounds() {
    const double inf = std::numeric_limits<double>::infinity();
    const auto& candidates = ctx.reuse.candidates();
    const std::size_t S = engine.num_sites();
    const std::size_t C = candidates.size();
    const int L = ctx.hierarchy.num_layers();
    const int background = ctx.hierarchy.background();

    final_at_.assign(C + 1, {});
    site_opt_e_.assign(S, inf);
    site_opt_c_.assign(S, inf);
    for (std::size_t s = 0; s < S; ++s) {
      int last_cc = -1;
      for (int cc_id : engine.covering(s)) {
        last_cc = std::max(last_cc, cc_id);
        const analysis::CopyCandidate& cc = candidates[static_cast<std::size_t>(cc_id)];
        for (int layer = 0; layer < background; ++layer) {
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
          site_opt_e_[s] = std::min(site_opt_e_[s], engine.site_energy_term(s, layer));
          site_opt_c_[s] = std::min(site_opt_c_[s], engine.site_cycle_term(s, layer));
        }
      }
      final_at_[static_cast<std::size_t>(last_cc + 1)].push_back(static_cast<int>(s));
    }

    cc_lb_e_.assign(C * static_cast<std::size_t>(L), 0.0);
    cc_lb_c_.assign(C * static_cast<std::size_t>(L), 0.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (int dst = 0; dst < background; ++dst) {
        double lb_e = inf;
        double lb_c = inf;
        // Layering-valid states have src > dst; invalid leaves are rejected,
        // so bounding over valid parents only is admissible.
        for (int src = dst + 1; src < L; ++src) {
          lb_e = std::min(lb_e, engine.cc_energy_term(static_cast<int>(c), src, dst));
          lb_c = std::min(lb_c, engine.cc_cycle_term(static_cast<int>(c), src, dst));
        }
        cc_lb_e_[c * static_cast<std::size_t>(L) + static_cast<std::size_t>(dst)] = lb_e;
        cc_lb_c_[c * static_cast<std::size_t>(L) + static_cast<std::size_t>(dst)] = lb_c;
      }
    }
  }

  /// Admissible scalar lower bound for every completion of the current node.
  /// The tiny relative margin absorbs floating-point drift in the running
  /// sums so pruning never discards a state that could strictly improve.
  bool prune(const Bound& bound) {
    double lb = objective.scalar_terms(bound.exact_e + bound.opt_e, bound.exact_c + bound.opt_c);
    if (lb * (1.0 - 1e-9) >= best_scalar) {
      ++bound_prunes;
      return true;
    }
    return false;
  }

  void evaluate_leaf() {
    if (budget_hit) return;
    if (++states > options.max_states) {
      budget_hit = true;
      return;
    }
    // With pruning on, feasibility holds by construction: every placement on
    // the path passed the incremental (layer, nest) footprint check.  The
    // mirror mode visits infeasible states like the reference does and
    // rejects them here — the running footprint makes the check O(1).
    if (base_infeasible_ || overfull_cells > 0) return;
    if (!engine.layering_valid()) return;
    double scalar = engine.scalar(objective);
    if (scalar < best_scalar) {
      best_scalar = scalar;
      best = engine.assignment();
    }
  }

  void recurse_copies(std::size_t j, Bound bound) {
    if (budget_hit) return;
    if (bnb) {
      // Sites whose last covering candidate is now decided move from the
      // optimistic to the exact part of the bound.
      for (int site : final_at_[j]) {
        std::size_t s = static_cast<std::size_t>(site);
        bound.opt_e -= site_lb_e_[s];
        bound.opt_c -= site_lb_c_[s];
        int layer = engine.serving_layer(s);
        bound.exact_e += engine.site_energy_term(s, layer);
        bound.exact_c += engine.site_cycle_term(s, layer);
      }
      if (prune(bound)) return;
    }

    const auto& candidates = ctx.reuse.candidates();
    if (j == candidates.size()) {
      evaluate_leaf();
      return;
    }
    // Option A: skip this candidate.
    recurse_copies(j + 1, bound);
    // Option B: place it on every on-chip layer it fits individually; the
    // cumulative (lifetime-aware) footprint of its nest either prunes the
    // branch (bnb) or marks it infeasible while mirroring the reference DFS.
    const analysis::CopyCandidate& cc = candidates[j];
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      i64& cell = usage_[static_cast<std::size_t>(layer)][static_cast<std::size_t>(cc.nest)];
      bool overflows = !target.unbounded() && cell + cc.bytes > target.capacity_bytes;
      if (overflows && bnb) {
        ++capacity_prunes;
        continue;
      }
      cell += cc.bytes;
      if (overflows) ++overfull_cells;
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.select_copy(cc.id, layer);
      Bound child = bound;
      if (bnb) {
        child.opt_e += cc_lb_e_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                                static_cast<std::size_t>(layer)];
        child.opt_c += cc_lb_c_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                                static_cast<std::size_t>(layer)];
      }
      recurse_copies(j + 1, child);
      engine.undo_to(cp);
      if (overflows) --overfull_cells;
      cell -= cc.bytes;
    }
  }

  void enter_copy_phase() {
    // Array homes are fixed from here on: the pinned traffic and the
    // array-only footprint are exact.
    FootprintReport base = compute_footprints(ctx, engine.assignment());
    if (!base.feasible && bnb) return;  // no copy subset can shrink an array overflow
    base_infeasible_ = !base.feasible;
    usage_ = std::move(base.usage);

    Bound bound;
    if (bnb) {
      auto [pin_e, pin_c] = engine.pinned_totals();
      bound.exact_e = pin_e;
      bound.exact_c = engine.compute_cycles() + pin_c;

      const std::size_t S = engine.num_sites();
      site_lb_e_.assign(S, 0.0);
      site_lb_c_.assign(S, 0.0);
      for (std::size_t s = 0; s < S; ++s) {
        // No copies are selected yet, so serving_layer == the array's home.
        int home = engine.serving_layer(s);
        site_lb_e_[s] = std::min(engine.site_energy_term(s, home), site_opt_e_[s]);
        site_lb_c_[s] = std::min(engine.site_cycle_term(s, home), site_opt_c_[s]);
        bound.opt_e += site_lb_e_[s];
        bound.opt_c += site_lb_c_[s];
      }
    }
    recurse_copies(0, bound);
  }

  void recurse_arrays(std::size_t index) {
    if (budget_hit) return;
    const auto& arrays = ctx.program.arrays();
    if (index == arrays.size()) {
      enter_copy_phase();
      return;
    }
    const ir::ArrayDecl& array = arrays[index];
    int last = options.allow_array_migration ? ctx.hierarchy.num_layers() - 1 : 0;
    for (int offset = 0; offset <= last; ++offset) {
      int layer = (ctx.hierarchy.background() + ctx.hierarchy.num_layers() - offset) %
                  ctx.hierarchy.num_layers();
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.set_home(array.name, layer);
      recurse_arrays(index + 1);
      engine.undo_to(cp);
    }
  }
};

ExhaustiveResult exhaustive_engine(const AssignContext& ctx, const ExhaustiveOptions& options) {
  EngineSearch search(ctx, options);
  search.recurse_arrays(0);

  ExhaustiveResult result;
  result.assignment = std::move(search.best);
  result.scalar = search.best_scalar;
  result.states_explored = search.states;
  result.exhausted_budget = search.budget_hit;
  result.bound_prunes = search.bound_prunes;
  result.capacity_prunes = search.capacity_prunes;
  return result;
}

}  // namespace

ExhaustiveResult exhaustive_assign(const AssignContext& ctx, const ExhaustiveOptions& options) {
  std::size_t placements = ctx.reuse.candidates().size() *
                           static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
  std::size_t guard = options.use_cost_engine ? kEnginePlacementGuard : kReferencePlacementGuard;
  if (placements > guard) {
    throw std::invalid_argument(
        "exhaustive_assign: instance too large (" + std::to_string(placements) +
        " candidate placements, guard " + std::to_string(guard) + "); use greedy_assign");
  }
  return options.use_cost_engine ? exhaustive_engine(ctx, options)
                                 : exhaustive_reference(ctx, options);
}

}  // namespace mhla::assign
