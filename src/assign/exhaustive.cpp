#include "assign/exhaustive.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include <cstddef>
#include <cstdio>

#include "assign/cost_engine.h"
#include "assign/greedy.h"
#include "core/parallel_for.h"
#include "core/run_budget.h"
#include "core/work_stealing.h"
#include "obs/trace.h"

namespace mhla::assign {

namespace {

/// The canonical feasible-home enumeration: background first, then the
/// on-chip layers outermost-in, skipping layers the array does not fit.
/// Every phase that walks or mirrors the array-home decision — the
/// reference DFS, the engine DFS, the bound precompute and the bnb-par
/// root-frontier split — goes through here: the bit-identity guarantees
/// (engine vs reference, parallel vs serial) lean on all of them visiting
/// homes in exactly this order.
template <typename Fn>
void for_each_feasible_home(const AssignContext& ctx, const ir::ArrayDecl& array,
                            bool allow_migration, Fn&& fn) {
  const int L = ctx.hierarchy.num_layers();
  const int background = ctx.hierarchy.background();
  int last = allow_migration ? L - 1 : 0;
  for (int offset = 0; offset <= last; ++offset) {
    int layer = (background + L - offset) % L;
    const mem::MemLayer& target = ctx.hierarchy.layer(layer);
    if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
    fn(layer);
  }
}

/// The work-stealing copy phase offloads its Option-B branches only while
/// at least this many candidates remain undecided: below it, replaying a
/// task's prefix costs about as much as searching the subtree in place.
constexpr std::size_t kMinCopySplit = 8;

/// Reference enumeration: from-scratch estimate_cost per state, no pruning
/// beyond per-placement capacity.  Kept as the oracle the engine path is
/// equivalence-tested against.
struct SearchState {
  const AssignContext& ctx;
  const ExhaustiveOptions& options;
  Objective objective;
  Assignment best;
  double best_scalar;
  long states = 0;
  bool budget_hit = false;
  core::RunBudget* run_budget = nullptr;

  void evaluate(const Assignment& assignment) {
    if (budget_hit) return;
    if (run_budget && !run_budget->probe()) {
      budget_hit = true;
      return;
    }
    if (++states > options.max_states) {
      budget_hit = true;
      return;
    }
    if (!fits(ctx, assignment)) return;
    if (!layering_valid(ctx, assignment)) return;
    double scalar = objective.scalar(estimate_cost(ctx, assignment));
    if (scalar < best_scalar) {
      best_scalar = scalar;
      best = assignment;
    }
  }

  /// Choose a layer for each copy candidate (or leave it unselected).
  void recurse_copies(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    const auto& candidates = ctx.reuse.candidates();
    if (index == candidates.size()) {
      evaluate(assignment);
      return;
    }
    // Option A: skip this candidate.
    recurse_copies(assignment, index + 1);
    // Option B: place it on every on-chip layer it could fit.
    const analysis::CopyCandidate& cc = candidates[index];
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      assignment.copies.push_back({cc.id, layer});
      recurse_copies(assignment, index + 1);
      assignment.copies.pop_back();
    }
  }

  /// Choose a home layer for each array, then enumerate copies.
  void recurse_arrays(Assignment& assignment, std::size_t index) {
    if (budget_hit) return;
    if (run_budget && !run_budget->probe()) {
      budget_hit = true;
      return;
    }
    const auto& arrays = ctx.program.arrays();
    if (index == arrays.size()) {
      recurse_copies(assignment, 0);
      return;
    }
    const ir::ArrayDecl& array = arrays[index];
    int entry = assignment.layer_of(array.name, ctx.hierarchy.background());
    // Background first, so small instances find the canonical
    // everything-off-chip baseline immediately.
    for_each_feasible_home(ctx, array, options.allow_array_migration, [&](int layer) {
      assignment.array_layer[array.name] = layer;
      recurse_arrays(assignment, index + 1);
    });
    // Restore the entry value, not the background: the caller's scratch may
    // legitimately hold a non-background home for this array.
    assignment.array_layer[array.name] = entry;
  }
};

/// Stamp the anytime contract fields onto a finished (or truncated) result:
/// map a completed run to Optimal/gap 0; on a truncated run substitute the
/// greedy fallback when it beats the incumbent, certify the gap against the
/// global root lower bound when one exists (engine B&B), and verify the
/// returned assignment is actually consumable.
void finalize_anytime(ExhaustiveResult& result, const AssignContext& ctx, bool budget_hit,
                      bool have_bound, double lower_bound, const GreedyResult* fallback) {
  result.exhausted_budget = budget_hit;
  if (have_bound) result.lower_bound = lower_bound;
  if (!budget_hit) {
    result.status = SearchStatus::Optimal;
    result.gap = 0.0;
    return;
  }
  if (fallback && fallback->final_scalar < result.scalar) {
    result.assignment = fallback->assignment;
    result.scalar = fallback->final_scalar;
  }
  result.status = fits(ctx, result.assignment) && layering_valid(ctx, result.assignment)
                      ? SearchStatus::BudgetExhausted
                      : SearchStatus::Infeasible;
  if (have_bound && result.scalar > 0.0) {
    result.gap = std::max(0.0, (result.scalar - lower_bound) / result.scalar);
  } else {
    result.gap = -1.0;
  }
}

ExhaustiveResult exhaustive_reference(const AssignContext& ctx, const ExhaustiveOptions& options,
                                      core::RunBudget* run_budget) {
  SearchState state{ctx, options, make_objective(ctx, options.energy_weight, options.time_weight),
                    out_of_box(ctx), 0.0, 0, false, run_budget};
  state.best_scalar = state.objective.scalar(estimate_cost(ctx, state.best));

  Assignment scratch = out_of_box(ctx);
  state.recurse_arrays(scratch, 0);

  ExhaustiveResult result;
  result.assignment = std::move(state.best);
  result.scalar = state.best_scalar;
  result.states_explored = state.states;
  finalize_anytime(result, ctx, state.budget_hit, /*have_bound=*/false, 0.0, nullptr);
  return result;
}

/// Engine-backed branch-and-bound.  Same DFS order as the reference, so the
/// first strictly-improving state is found identically; pruning discards
/// only subtrees whose admissible lower bound shows they cannot *strictly*
/// beat the incumbent, and placements whose cumulative (layer, nest)
/// footprint already overflows a bounded layer (copy selection only ever
/// adds footprint, so no completion of such a branch is feasible).
///
/// Copyable on purpose: the parallel search stamps one task search per
/// root-frontier subtree from a shared prototype, reusing the engine
/// precompute and the bound tables instead of rebuilding them per task.
struct EngineSearch {
  const AssignContext& ctx;
  const ExhaustiveOptions& options;
  CostEngine engine;
  Objective objective;
  Assignment best;
  double best_scalar = 0.0;
  long states = 0;
  bool budget_hit = false;
  long bound_prunes = 0;
  long capacity_prunes = 0;
  bool bnb = true;            ///< pruning on; off = state-exact mirror of the reference

  /// Cooperative run budget (never null in practice: the entry points
  /// always resolve one, if only an unlimited local).  Probed once per
  /// evaluated leaf and once per array-phase node; never affects any
  /// decision unless it expires, so run-to-completion results are
  /// bit-identical with or without a budget attached.
  core::RunBudget* run_budget = nullptr;

  /// Shared incumbent of a parallel search (null when serial).  Tasks
  /// publish every locally improving scalar and prune against it *strictly*
  /// — a subtree is cut only when it provably cannot even equal the shared
  /// value — so the canonical-DFS-order optimum survives in its own task
  /// regardless of which task lowered the bound first.
  core::AtomicMin* shared_incumbent = nullptr;

  // ---- work-stealing mode (one search per pool worker) ----
  /// On: this search is one worker of a work-stealing parallel run and
  /// accumulates bests from subtree tasks visited in *arbitrary* order, so
  /// canonical-first tie semantics cannot lean on visit order.  Instead the
  /// search keys every leaf by its canonical path: local pruning turns
  /// strict (a subtree that could still tie survives) and a tied leaf
  /// replaces the incumbent iff its path is lexicographically smaller — see
  /// `evaluate_leaf` and the reduction in `exhaustive_parallel_ws`.
  bool ws_mode = false;
  core::WorkStealingPool* pool = nullptr;
  /// Offload hook: hand a canonical ordinal prefix to the pool as a new
  /// task.  Set per worker by the parallel driver; consulted only when the
  /// pool is starving.
  std::function<void(std::vector<int>)> spawn_subtree;
  /// Canonical DFS path of the current node, one ordinal per decision:
  /// entry a < A is the position of array a's home in the canonical
  /// feasible-home enumeration; entry A + j is candidate j's choice — 0 to
  /// skip, k >= 1 for the k-th on-chip layer the candidate *individually*
  /// fits.  The mapping is assignment-state-independent (cumulative
  /// overflow never renumbers), so a prefix replays to the identical
  /// subtree on any worker, and lexicographic order over full paths equals
  /// canonical DFS order.  Maintained only in ws_mode.
  std::vector<int> cur_path_;
  std::vector<int> best_path_;  ///< path of `best` (all zeros = out-of-box)

  /// Running lower bound, split into an exact part (terms whose final value
  /// is already fixed) and an optimistic part (admissible minima for the
  /// still-open decisions).  Passed by value down the DFS so backtracking
  /// restores it exactly.
  struct Bound {
    double exact_e = 0.0;
    double exact_c = 0.0;
    double opt_e = 0.0;
    double opt_c = 0.0;
  };

  // -- static bound tables (per context) --
  std::vector<double> cc_lb_e_;  ///< [cc * L + dst]: min over src > dst
  std::vector<double> cc_lb_c_;
  /// [j] -> sites whose suffix minimum actually changes when candidate j is
  /// decided (engine.site_suffix at j+1 differs from j).  With candidates
  /// sorted (array, nest, level) the deepest chain member usually carries
  /// the minimum, so for most candidates this list is empty and the
  /// per-node tightening costs nothing; a site whose last useful candidate
  /// dies mid-chain tightens the moment it does.  CSR-flattened (items +
  /// offsets) so per-worker copies are two contiguous blocks.
  std::vector<int> tighten_items_;
  std::vector<std::size_t> tighten_off_;
  core::IntSpan tighten_at(std::size_t j) const {
    const int* base = tighten_items_.data();
    return {base + tighten_off_[j], base + tighten_off_[j + 1]};
  }
  /// Per-site optimistic term before the array's home is decided: min over
  /// the homes the DFS may choose (background always qualifies) and over
  /// the copy suffix minima — the array-home-phase part of the bound.
  std::vector<double> site_open_e_;
  std::vector<double> site_open_c_;
  std::vector<int> array_sites_items_;  ///< array index -> site ids (CSR)
  std::vector<std::size_t> array_sites_off_;
  core::IntSpan array_sites(std::size_t a) const {
    const int* base = array_sites_items_.data();
    return {base + array_sites_off_[a], base + array_sites_off_[a + 1]};
  }
  // -- per copy phase --
  std::vector<double> site_lb_e_;  ///< current per-site bound contribution
  std::vector<double> site_lb_c_;

  // -- footprint-aware copy-phase bound (rebuilt at each copy-phase entry) --
  /// The engine's static suffix tables min over every layer a candidate
  /// *individually* fits — too optimistic once the homes-only footprint of
  /// this copy-phase entry already denies some of those placements.  When
  /// that happens the dynamic tables below rebuild the identical suffix
  /// recurrence over only the placements with entry headroom
  /// (usage(layer, nest) + bytes <= capacity).  Copy selection only ever
  /// adds footprint, so entry-feasible is a superset of selectable anywhere
  /// in the subtree: dropping the denied terms keeps the bound admissible
  /// while a site whose every remaining placement is denied contributes its
  /// exact serving term (suffix +inf) instead of an unreachable optimistic
  /// one.  When nothing is denied, `dyn_active_` stays false and the bound
  /// reads the static tables untouched.
  bool dyn_active_ = false;
  std::vector<double> dyn_suffix_e_;  ///< [site * (C + 1) + next_cc]
  std::vector<double> dyn_suffix_c_;
  std::vector<char> entry_fits_;      ///< scratch: [cc * background + layer]

  double suffix_e(std::size_t site, std::size_t next_cc) const {
    return dyn_active_ ? dyn_suffix_e_[site * (ctx.reuse.candidates().size() + 1) + next_cc]
                       : engine.site_suffix_energy(site, next_cc);
  }
  double suffix_c(std::size_t site, std::size_t next_cc) const {
    return dyn_active_ ? dyn_suffix_c_[site * (ctx.reuse.candidates().size() + 1) + next_cc]
                       : engine.site_suffix_cycles(site, next_cc);
  }

  /// Recompute the entry-feasibility filter and, if it denies anything, the
  /// dynamic suffix tables.  Called once per copy-phase entry, before any
  /// copy is selected, so `engine.footprint()` holds exactly the homes-only
  /// usage; a replayed task recomputes byte-identical tables because the
  /// same homes produce the same footprint.
  void prepare_copy_bound() {
    dyn_active_ = false;
    if (!options.use_footprint_bound) return;
    const auto& candidates = ctx.reuse.candidates();
    const std::size_t C = candidates.size();
    const int background = ctx.hierarchy.background();
    entry_fits_.assign(C * static_cast<std::size_t>(background), 0);
    bool denied = false;
    for (std::size_t c = 0; c < C; ++c) {
      const analysis::CopyCandidate& cc = candidates[c];
      for (int layer = 0; layer < background; ++layer) {
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
        bool fits_here = target.unbounded() ||
                         engine.footprint().usage(layer, cc.nest) + cc.bytes <=
                             target.capacity_bytes;
        if (fits_here) {
          entry_fits_[c * static_cast<std::size_t>(background) +
                      static_cast<std::size_t>(layer)] = 1;
        } else {
          denied = true;
        }
      }
    }
    if (!denied) return;  // static tables already exact for this entry
    dyn_active_ = true;
    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t S = engine.num_sites();
    dyn_suffix_e_.assign(S * (C + 1), inf);
    dyn_suffix_c_.assign(S * (C + 1), inf);
    // Same recurrence as the engine's static precompute, filtered: column C
    // is "no candidate left"; walking ids downward folds in the cheapest
    // *entry-feasible* term candidate c could still give each member site.
    for (std::size_t c = C; c-- > 0;) {
      for (std::size_t s = 0; s < S; ++s) {
        dyn_suffix_e_[s * (C + 1) + c] = dyn_suffix_e_[s * (C + 1) + c + 1];
        dyn_suffix_c_[s * (C + 1) + c] = dyn_suffix_c_[s * (C + 1) + c + 1];
      }
      for (int layer = 0; layer < background; ++layer) {
        if (!entry_fits_[c * static_cast<std::size_t>(background) +
                         static_cast<std::size_t>(layer)]) {
          continue;
        }
        for (int site : engine.candidate_sites(static_cast<int>(c))) {
          std::size_t s = static_cast<std::size_t>(site);
          dyn_suffix_e_[s * (C + 1) + c] =
              std::min(dyn_suffix_e_[s * (C + 1) + c], engine.site_energy_term(s, layer));
          dyn_suffix_c_[s * (C + 1) + c] =
              std::min(dyn_suffix_c_[s * (C + 1) + c], engine.site_cycle_term(s, layer));
        }
      }
    }
  }

  /// Backtracking journal for the per-site bound contributions; tighten
  /// pushes the displaced values, restore pops to a mark.  An arena stack
  /// reserved for the deepest possible DFS path (every tighten list fully
  /// pushed at once) keeps the hot path allocation-free outright.
  struct SavedSite {
    int site;
    double e;
    double c;
  };
  core::ArenaStack<SavedSite> saved_sites_;

  EngineSearch(const AssignContext& c, const ExhaustiveOptions& o)
      : ctx(c),
        options(o),
        engine(c),
        objective(make_objective(c, o.energy_weight, o.time_weight)),
        bnb(o.use_branch_and_bound) {
    best_scalar = engine.scalar(objective);
    best = engine.assignment();
    if (bnb) precompute_bounds();
  }

  void precompute_bounds() {
    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t C = ctx.reuse.candidates().size();
    const std::size_t S = engine.num_sites();
    const int L = ctx.hierarchy.num_layers();
    const int background = ctx.hierarchy.background();

    cc_lb_e_.assign(C * static_cast<std::size_t>(L), 0.0);
    cc_lb_c_.assign(C * static_cast<std::size_t>(L), 0.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (int dst = 0; dst < background; ++dst) {
        double lb_e = inf;
        double lb_c = inf;
        // Layering-valid states have src > dst; invalid leaves are rejected,
        // so bounding over valid parents only is admissible.
        for (int src = dst + 1; src < L; ++src) {
          lb_e = std::min(lb_e, engine.cc_energy_term(static_cast<int>(c), src, dst));
          lb_c = std::min(lb_c, engine.cc_cycle_term(static_cast<int>(c), src, dst));
        }
        cc_lb_e_[c * static_cast<std::size_t>(L) + static_cast<std::size_t>(dst)] = lb_e;
        cc_lb_c_[c * static_cast<std::size_t>(L) + static_cast<std::size_t>(dst)] = lb_c;
      }
    }

    // Both per-index site lists are built row by row and flattened to CSR:
    // tighten lists directly into the flat arrays (candidate order), the
    // array->sites map via a counting sort over the site->array table.
    tighten_off_.assign(C + 1, 0);
    tighten_items_.clear();
    for (std::size_t c = 0; c < C; ++c) {
      for (int site : engine.candidate_sites(static_cast<int>(c))) {
        std::size_t s = static_cast<std::size_t>(site);
        if (engine.site_suffix_energy(s, c + 1) != engine.site_suffix_energy(s, c) ||
            engine.site_suffix_cycles(s, c + 1) != engine.site_suffix_cycles(s, c)) {
          tighten_items_.push_back(site);
        }
      }
      tighten_off_[c + 1] = tighten_items_.size();
    }
    // The deepest DFS path pushes every tighten list at most once, so the
    // flat item count bounds the journal depth exactly.
    saved_sites_.reserve(tighten_items_.size());

    const auto& arrays = ctx.program.arrays();
    array_sites_off_.assign(arrays.size() + 1, 0);
    for (std::size_t s = 0; s < S; ++s) ++array_sites_off_[engine.site_array(s) + 1];
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      array_sites_off_[a + 1] += array_sites_off_[a];
    }
    array_sites_items_.assign(S, 0);
    {
      std::vector<std::size_t> cursor(array_sites_off_.begin(), array_sites_off_.end() - 1);
      for (std::size_t s = 0; s < S; ++s) {
        array_sites_items_[cursor[engine.site_array(s)]++] = static_cast<int>(s);
      }
    }
    site_open_e_.assign(S, inf);
    site_open_c_.assign(S, inf);
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      for_each_feasible_home(ctx, arrays[a], options.allow_array_migration, [&](int home) {
        for (int site : array_sites(a)) {
          std::size_t s = static_cast<std::size_t>(site);
          site_open_e_[s] = std::min(site_open_e_[s], engine.site_energy_term(s, home));
          site_open_c_[s] = std::min(site_open_c_[s], engine.site_cycle_term(s, home));
        }
      });
    }
    for (std::size_t s = 0; s < S; ++s) {
      site_open_e_[s] = std::min(site_open_e_[s], engine.site_suffix_energy(s, 0));
      site_open_c_[s] = std::min(site_open_c_[s], engine.site_suffix_cycles(s, 0));
    }
  }

  /// Admissible scalar lower bound for every completion of the current node.
  /// The tiny relative margin absorbs floating-point drift in the running
  /// sums so pruning never discards a state that could strictly improve.
  /// Against the local incumbent the cut is `>=` in serial mode (first
  /// state found in DFS order keeps a tied scalar, so a later tie is
  /// useless) but strictly `>` in ws_mode: the worker's best may come from
  /// a canonically *later* task, so a subtree that could still tie may hold
  /// the canonical-first optimum and must survive for the path tie-break.
  /// Against the shared incumbent of a parallel search the cut is always
  /// strict for the same reason.
  bool prune(const Bound& bound) {
    double lb = objective.scalar_terms(bound.exact_e + bound.opt_e, bound.exact_c + bound.opt_c);
    double discounted = lb * (1.0 - 1e-9);
    bool local_cut = ws_mode ? discounted > best_scalar : discounted >= best_scalar;
    if (local_cut || (shared_incumbent && discounted > shared_incumbent->load())) {
      ++bound_prunes;
      return true;
    }
    return false;
  }

  void evaluate_leaf() {
    if (budget_hit) return;
    if (run_budget && !run_budget->probe()) {
      budget_hit = true;
      return;
    }
    if (++states > options.max_states) {
      budget_hit = true;
      return;
    }
    // With pruning on, feasibility holds by construction: every placement on
    // the path passed the incremental (layer, nest) footprint check.  The
    // mirror mode visits infeasible states like the reference does and
    // rejects them here — the engine's tracker makes the check O(1); the
    // reference-feasibility toggle recomputes from scratch instead.
    bool feasible = options.use_footprint_tracker ? engine.fits()
                                                  : fits(ctx, engine.assignment());
    if (!feasible) return;
    if (!engine.layering_valid()) return;
    double scalar = engine.scalar(objective);
    // Serial tie semantics fall out of visit order (first tie wins, later
    // ties are not improvements).  In ws_mode ties are decided by canonical
    // path instead, because this worker visits subtrees in steal order.
    bool improved = scalar < best_scalar ||
                    (ws_mode && scalar == best_scalar && cur_path_ < best_path_);
    if (improved) {
      best_scalar = scalar;
      best = engine.assignment();
      if (ws_mode) best_path_ = cur_path_;
      if (shared_incumbent) shared_incumbent->update(scalar);
      // Incumbent timeline: rare (once per improvement), observation-only,
      // and gated on one relaxed load, so the search path never changes.
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        char args[64];
        std::snprintf(args, sizeof args, "{\"scalar\": %.17g, \"state\": %ld}", scalar, states);
        tracer.instant("incumbent", "search", args);
      }
    }
  }

  /// Candidate j has just been decided (skipped, or selected on the engine):
  /// its member sites can no longer receive a copy from it, so each bound
  /// contribution tightens to min(current serving term, suffix minimum over
  /// candidates > j).  Once a site's last covering candidate is decided the
  /// suffix is +inf and the contribution becomes the exact serving term.
  /// Displaced values go on `saved_sites_`; the caller restores to its mark.
  /// Only sites whose *static* suffix minimum moves are touched — with the
  /// dynamic (footprint-filtered) tables active a site may keep a stale,
  /// smaller contribution past the step where only its dynamic suffix rose;
  /// that is merely a weaker admissible bound, and spawn/replay tighten at
  /// identical steps either way.
  void tighten_sites(std::size_t j, Bound& bound) {
    for (int site : tighten_at(j)) {
      std::size_t s = static_cast<std::size_t>(site);
      int layer = engine.serving_layer(s);
      double e = std::min(engine.site_energy_term(s, layer), suffix_e(s, j + 1));
      double c = std::min(engine.site_cycle_term(s, layer), suffix_c(s, j + 1));
      saved_sites_.push_back({site, site_lb_e_[s], site_lb_c_[s]});
      bound.opt_e += e - site_lb_e_[s];
      bound.opt_c += c - site_lb_c_[s];
      site_lb_e_[s] = e;
      site_lb_c_[s] = c;
    }
  }

  void restore_sites(std::size_t mark) {
    while (saved_sites_.size() > mark) {
      const SavedSite& saved = saved_sites_.back();
      std::size_t s = static_cast<std::size_t>(saved.site);
      site_lb_e_[s] = saved.e;
      site_lb_c_[s] = saved.c;
      saved_sites_.pop_back();
    }
  }

  void recurse_copies(std::size_t j, Bound bound) {
    if (budget_hit) return;
    if (bnb && prune(bound)) return;

    const auto& candidates = ctx.reuse.candidates();
    if (j == candidates.size()) {
      evaluate_leaf();
      return;
    }
    const std::size_t A = ctx.program.arrays().size();
    // Work-stealing split: when peers are starving and enough candidates
    // remain for the subtree to outweigh a prefix replay, hand every
    // Option-B branch to the pool and keep only the skip branch locally.
    // The spawn-time guards mirror the local branch guards exactly —
    // individual fit assigns the ordinal, cumulative overflow prunes — so a
    // spawned ordinal always replays to a branch this DFS would have
    // entered, with the identical capacity_prunes count.
    if (ws_mode && spawn_subtree && candidates.size() - j >= kMinCopySplit &&
        pool->starving()) {
      const analysis::CopyCandidate& split_cc = candidates[j];
      int ordinal = 0;
      for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && split_cc.bytes > target.capacity_bytes) continue;
        ++ordinal;
        if (!target.unbounded() &&
            engine.footprint().usage(layer, split_cc.nest) + split_cc.bytes >
                target.capacity_bytes) {
          ++capacity_prunes;
          continue;
        }
        std::vector<int> prefix(cur_path_.begin(),
                                cur_path_.begin() + static_cast<std::ptrdiff_t>(A + j));
        prefix.push_back(ordinal);
        spawn_subtree(std::move(prefix));
      }
      cur_path_[A + j] = 0;
      Bound child = bound;
      std::size_t mark = saved_sites_.size();
      tighten_sites(j, child);
      recurse_copies(j + 1, child);
      restore_sites(mark);
      return;
    }
    // Option A: skip this candidate.
    {
      if (ws_mode) cur_path_[A + j] = 0;
      Bound child = bound;
      std::size_t mark = saved_sites_.size();
      if (bnb) tighten_sites(j, child);
      recurse_copies(j + 1, child);
      if (bnb) restore_sites(mark);
    }
    // Option B: place it on every on-chip layer it fits individually; the
    // cumulative (lifetime-aware) footprint of its nest either prunes the
    // branch (bnb) or marks it infeasible while mirroring the reference DFS.
    const analysis::CopyCandidate& cc = candidates[j];
    int ordinal = 0;
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      ++ordinal;
      // The engine's tracker carries the cumulative (layer, nest) footprint
      // of the whole path — array homes plus the copies selected so far —
      // so one cell read decides whether this placement can still fit.
      // Copy selection only ever adds footprint: an overflowing branch has
      // no feasible completion and branch-and-bound cuts it here; the
      // mirror mode enters it like the reference does and lets the leaf
      // feasibility check reject it.
      bool overflows = !target.unbounded() &&
                       engine.footprint().usage(layer, cc.nest) + cc.bytes >
                           target.capacity_bytes;
      if (overflows && bnb) {
        ++capacity_prunes;
        continue;
      }
      if (ws_mode) cur_path_[A + j] = ordinal;
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.select_copy(cc.id, layer);
      Bound child = bound;
      std::size_t mark = saved_sites_.size();
      if (bnb) {
        child.opt_e += cc_lb_e_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                                static_cast<std::size_t>(layer)];
        child.opt_c += cc_lb_c_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                                static_cast<std::size_t>(layer)];
        tighten_sites(j, child);
      }
      recurse_copies(j + 1, child);
      if (bnb) restore_sites(mark);
      engine.undo_to(cp);
    }
  }

  /// Map a home ordinal back to the layer at that position of the canonical
  /// feasible-home enumeration for array `a` — the inverse of the numbering
  /// in `recurse_arrays`.
  int home_ordinal_layer(std::size_t a, int ordinal) const {
    int found = -1;
    int seen = 0;
    for_each_feasible_home(ctx, ctx.program.arrays()[a], options.allow_array_migration,
                           [&](int layer) {
                             if (seen++ == ordinal) found = layer;
                           });
    if (found < 0) throw std::logic_error("exhaustive: home ordinal out of range");
    return found;
  }

  /// Map a copy ordinal k >= 1 back to the k-th on-chip layer candidate `j`
  /// individually fits — the inverse of the numbering in `recurse_copies`.
  int copy_ordinal_layer(std::size_t j, int ordinal) const {
    const analysis::CopyCandidate& cc = ctx.reuse.candidates()[j];
    int seen = 0;
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      const mem::MemLayer& target = ctx.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      if (++seen == ordinal) return layer;
    }
    throw std::logic_error("exhaustive: copy ordinal out of range");
  }

  /// Replay one copy decision of a stolen task's prefix onto the engine and
  /// the bound (ws_mode only, so bnb is on).  No prune or feasibility
  /// re-checks: the spawning worker ran them on the identical deterministic
  /// state before offloading, so re-running could only agree.
  void apply_copy_ordinal(std::size_t j, int ordinal, Bound& bound) {
    cur_path_[ctx.program.arrays().size() + j] = ordinal;
    if (ordinal > 0) {
      int layer = copy_ordinal_layer(j, ordinal);
      engine.select_copy(ctx.reuse.candidates()[j].id, layer);
      bound.opt_e += cc_lb_e_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                              static_cast<std::size_t>(layer)];
      bound.opt_c += cc_lb_c_[j * static_cast<std::size_t>(ctx.hierarchy.num_layers()) +
                              static_cast<std::size_t>(layer)];
    }
    tighten_sites(j, bound);
  }

  /// Copy-phase entry, optionally replaying the copy-ordinal prefix of a
  /// stolen task before recursing at candidate `j0`.  Array homes are fixed
  /// from here on: the pinned traffic and the array-only footprint are
  /// exact, and no copies are selected yet, so the engine's tracker holds
  /// exactly the homes-only footprint the footprint-aware bound filters
  /// against.  The bound is rebuilt from scratch — the same homes always
  /// produce the same numbers, so a replayed subtree prunes identically to
  /// the subtree the spawning worker would have descended.
  void enter_copy_phase_at(std::size_t j0, const int* ordinals) {
    bool base_feasible = options.use_footprint_tracker
                             ? engine.fits()
                             : compute_footprints(ctx, engine.assignment()).feasible;
    if (!base_feasible && bnb) return;  // no copy subset can shrink an array overflow

    Bound bound;
    if (bnb) {
      prepare_copy_bound();
      auto [pin_e, pin_c] = engine.pinned_totals();
      bound.exact_e = pin_e;
      bound.exact_c = engine.compute_cycles() + pin_c;

      const std::size_t S = engine.num_sites();
      site_lb_e_.assign(S, 0.0);
      site_lb_c_.assign(S, 0.0);
      for (std::size_t s = 0; s < S; ++s) {
        // No copies are selected yet, so serving_layer == the array's home;
        // suffix 0 is the minimum over every covering candidate.
        int home = engine.serving_layer(s);
        site_lb_e_[s] = std::min(engine.site_energy_term(s, home), suffix_e(s, 0));
        site_lb_c_[s] = std::min(engine.site_cycle_term(s, home), suffix_c(s, 0));
        bound.opt_e += site_lb_e_[s];
        bound.opt_c += site_lb_c_[s];
      }
    }
    for (std::size_t j = 0; j < j0; ++j) apply_copy_ordinal(j, ordinals[j], bound);
    recurse_copies(j0, bound);
  }

  void enter_copy_phase() { enter_copy_phase_at(0, nullptr); }

  /// Fold array `a`'s home decision into the array-phase bound: its pinned
  /// traffic becomes exact and its sites' contributions move from the
  /// any-home optimistic term to min(term at the chosen home, copy suffix).
  /// The bound travels by value down the DFS, so no restore is needed.
  void apply_home_to_bound(std::size_t a, int home, Bound& bound) {
    bound.exact_e += engine.pinned_energy_term(a, home);
    bound.exact_c += engine.pinned_cycle_term(a, home);
    for (int site : array_sites(a)) {
      std::size_t s = static_cast<std::size_t>(site);
      double e = std::min(engine.site_energy_term(s, home), engine.site_suffix_energy(s, 0));
      double c = std::min(engine.site_cycle_term(s, home), engine.site_suffix_cycles(s, 0));
      bound.opt_e += e - site_open_e_[s];
      bound.opt_c += c - site_open_c_[s];
    }
  }

  void recurse_arrays(std::size_t index, Bound bound) {
    if (budget_hit) return;
    if (run_budget && !run_budget->probe()) {
      budget_hit = true;
      return;
    }
    if (bnb && prune(bound)) return;
    const auto& arrays = ctx.program.arrays();
    if (index == arrays.size()) {
      enter_copy_phase();
      return;
    }
    const ir::ArrayDecl& array = arrays[index];
    // Work-stealing split: offload every sibling home but the canonical
    // first and descend only that one.  The array phase is shallow and
    // every subtree under it is large, so it splits whenever peers starve.
    if (ws_mode && spawn_subtree && pool->starving()) {
      int count = 0;
      for_each_feasible_home(ctx, array, options.allow_array_migration, [&](int) { ++count; });
      for (int ordinal = 1; ordinal < count; ++ordinal) {
        std::vector<int> prefix(cur_path_.begin(),
                                cur_path_.begin() + static_cast<std::ptrdiff_t>(index));
        prefix.push_back(ordinal);
        spawn_subtree(std::move(prefix));
      }
      if (count > 0) {
        int first = home_ordinal_layer(index, 0);
        cur_path_[index] = 0;
        CostEngine::Checkpoint cp = engine.checkpoint();
        engine.set_home(index, first);
        Bound child = bound;
        apply_home_to_bound(index, first, child);
        recurse_arrays(index + 1, child);
        engine.undo_to(cp);
      }
      return;
    }
    int ordinal = 0;
    for_each_feasible_home(ctx, array, options.allow_array_migration, [&](int layer) {
      if (ws_mode) cur_path_[index] = ordinal;
      ++ordinal;
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.set_home(index, layer);
      Bound child = bound;
      if (bnb) apply_home_to_bound(index, layer, child);
      recurse_arrays(index + 1, child);
      engine.undo_to(cp);
    });
  }

  /// Global admissible scalar lower bound of the whole search (the root
  /// bound of `run(0)` before any decision): every feasible assignment
  /// costs at least this much.  Built from the static per-site/per-array
  /// tables, so it is independent of the engine's current state — the
  /// anytime gap certificate compares the incumbent against it.
  double root_scalar_bound() {
    Bound bound;
    bound.exact_c = engine.compute_cycles();
    const std::size_t S = engine.num_sites();
    for (std::size_t s = 0; s < S; ++s) {
      bound.opt_e += site_open_e_[s];
      bound.opt_c += site_open_c_[s];
    }
    return objective.scalar_terms(bound.exact_e + bound.opt_e, bound.exact_c + bound.opt_c);
  }

  /// Run the search from array index `start` on; homes of arrays before
  /// `start` must already be set on the engine (the static-split parallel
  /// tasks replay their root-frontier prefix that way, the serial search
  /// starts at 0).
  void run(std::size_t start) {
    Bound bound;
    if (bnb) {
      bound.exact_c = engine.compute_cycles();
      const std::size_t S = engine.num_sites();
      for (std::size_t s = 0; s < S; ++s) {
        bound.opt_e += site_open_e_[s];
        bound.opt_c += site_open_c_[s];
      }
      for (std::size_t a = 0; a < start; ++a) {
        apply_home_to_bound(a, engine.home_of(a), bound);
      }
    }
    recurse_arrays(start, bound);
  }

  /// Execute one work-stealing task: replay the canonical ordinal prefix
  /// onto this worker's engine, search the subtree under it, and unwind so
  /// the next task this worker claims starts from a pristine out-of-box
  /// engine.  A prefix inside the array phase rebuilds the root bound
  /// exactly as `run(0)` does; a prefix reaching the copy phase lets
  /// `enter_copy_phase_at` rebuild its own bound — either way replay needs
  /// nothing from the spawning worker beyond the ordinals.
  ///
  /// `states` and `budget_hit` accumulate across every task this worker
  /// runs, so `max_states` bounds each *worker*, not each task; once hit,
  /// later tasks return immediately and the run reports as truncated.
  void run_task(const std::vector<int>& prefix) {
    if (budget_hit) return;
    const auto& arrays = ctx.program.arrays();
    const std::size_t A = arrays.size();
    std::size_t homes = std::min(prefix.size(), A);
    for (std::size_t a = 0; a < homes; ++a) {
      cur_path_[a] = prefix[a];
      engine.set_home(a, home_ordinal_layer(a, prefix[a]));
    }
    if (prefix.size() < A) {
      Bound bound;
      bound.exact_c = engine.compute_cycles();
      const std::size_t S = engine.num_sites();
      for (std::size_t s = 0; s < S; ++s) {
        bound.opt_e += site_open_e_[s];
        bound.opt_c += site_open_c_[s];
      }
      for (std::size_t a = 0; a < homes; ++a) {
        apply_home_to_bound(a, engine.home_of(a), bound);
      }
      recurse_arrays(prefix.size(), bound);
    } else {
      enter_copy_phase_at(prefix.size() - A, prefix.data() + A);
    }
    // Blanket unwind: drop the replay's journal entries and rewind the
    // engine to out-of-box for the next task.
    restore_sites(0);
    engine.undo_to(0);
  }
};

/// A greedy run gives an *achievable* scalar, so pruning strictly above it
/// can only discard non-optimal subtrees: admissible bounds satisfy
/// lb <= optimum <= seed on any subtree holding an optimal state.  The seed
/// scalar rides in `shared_incumbent` — whose prune is strict — rather than
/// the local best, so tie states (scalar == seed) still enumerate and the
/// returned optimum is bit-identical to an unseeded search.  The full
/// greedy result is kept as the anytime fallback: if the budget expires
/// before the enumeration beats it, its assignment is the best answer.
/// The seed search itself observes the run budget, so a cancelled run
/// degrades all the way down.
GreedyResult greedy_incumbent_seed(const AssignContext& ctx, const ExhaustiveOptions& options,
                                   core::RunBudget* run_budget) {
  GreedyOptions greedy;
  greedy.energy_weight = options.energy_weight;
  greedy.time_weight = options.time_weight;
  greedy.allow_array_migration = options.allow_array_migration;
  greedy.shared_budget = run_budget;
  return greedy_assign(ctx, greedy);
}

ExhaustiveResult exhaustive_engine(const AssignContext& ctx, const ExhaustiveOptions& options,
                                   core::RunBudget* run_budget) {
  EngineSearch search(ctx, options);
  search.run_budget = run_budget;
  core::AtomicMin seed(search.best_scalar);
  std::optional<GreedyResult> fallback;
  if (search.bnb && options.seed_incumbent) {
    fallback = greedy_incumbent_seed(ctx, options, run_budget);
    seed.update(fallback->final_scalar);
    search.shared_incumbent = &seed;
  }
  double root_lb = search.bnb ? search.root_scalar_bound() : 0.0;
  {
    obs::Span span(search.bnb ? "bnb_walk" : "exhaustive_walk", "search");
    search.run(0);
  }

  ExhaustiveResult result;
  result.assignment = std::move(search.best);
  result.scalar = search.best_scalar;
  result.states_explored = search.states;
  result.bound_prunes = search.bound_prunes;
  result.capacity_prunes = search.capacity_prunes;
  finalize_anytime(result, ctx, search.budget_hit, search.bnb, root_lb,
                   fallback ? &*fallback : nullptr);
  return result;
}

/// A root-frontier task of the parallel search: the home layers of the
/// first `layers.size()` arrays, in declaration order.  Expanding the
/// array-home prefix tree breadth-first — prefixes in order, layers in the
/// serial branch order — keeps the task list in canonical DFS-subtree
/// order, which the tie-breaking reduction below relies on.
std::vector<std::vector<int>> split_root_frontier(const AssignContext& ctx,
                                                  const ExhaustiveOptions& options,
                                                  std::size_t target_tasks) {
  const auto& arrays = ctx.program.arrays();

  std::vector<std::vector<int>> frontier{{}};
  for (std::size_t depth = 0; depth < arrays.size() && frontier.size() < target_tasks; ++depth) {
    std::vector<std::vector<int>> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(ctx.hierarchy.num_layers()));
    for (const std::vector<int>& prefix : frontier) {
      for_each_feasible_home(ctx, arrays[depth], options.allow_array_migration, [&](int layer) {
        std::vector<int> child = prefix;
        child.push_back(layer);
        next.push_back(std::move(child));
      });
    }
    frontier = std::move(next);
  }
  return frontier;
}

/// The original static split, kept behind `work_stealing = false` as the
/// comparison baseline: the root frontier is carved into a fixed task list
/// up front, so uneven subtrees idle workers that finished early.
ExhaustiveResult exhaustive_parallel_static(const AssignContext& ctx,
                                            const ExhaustiveOptions& options,
                                            core::RunBudget* run_budget) {
  // One prototype carries the engine precompute and the bound tables; every
  // task copies it instead of rebuilding them.  Its out-of-box incumbent is
  // also the serial search's starting incumbent.
  EngineSearch prototype(ctx, options);
  prototype.run_budget = run_budget;
  double root_lb = prototype.root_scalar_bound();

  ExhaustiveResult result;
  result.assignment = prototype.best;
  result.scalar = prototype.best_scalar;

  unsigned threads = options.num_threads ? options.num_threads : core::default_parallelism();
  std::size_t target_tasks = static_cast<std::size_t>(threads) *
                             static_cast<std::size_t>(std::max(options.tasks_per_thread, 1));
  std::vector<std::vector<int>> tasks = split_root_frontier(ctx, options, target_tasks);
  // Unreachable while the background layer is unbounded (every array always
  // has at least one feasible home); kept as a cheap defense so a future
  // bounded-background hierarchy degrades to the serial no-leaves result.
  if (tasks.empty()) {
    finalize_anytime(result, ctx, /*budget_hit=*/false, /*have_bound=*/true, root_lb, nullptr);
    return result;
  }

  // The shared incumbent starts at the out-of-box scalar and, optionally,
  // the greedy scalar: both are costs of feasible assignments, so pruning
  // strictly above them never cuts an optimal state.  The seed is a bound
  // only — the returned assignment always comes from the enumeration, with
  // the greedy fallback substituted only on a budget-truncated run.
  core::AtomicMin incumbent(prototype.best_scalar);
  std::optional<GreedyResult> fallback;
  if (options.seed_incumbent) {
    fallback = greedy_incumbent_seed(ctx, options, run_budget);
    incumbent.update(fallback->final_scalar);
  }

  struct TaskOutcome {
    Assignment best;
    double scalar = 0.0;
    long states = 0;
    bool budget_hit = false;
    long bound_prunes = 0;
    long capacity_prunes = 0;
    bool ran = false;  ///< false when the budget expired before the task started
  };
  std::vector<TaskOutcome> outcomes(tasks.size());
  core::parallel_for(tasks.size(), threads, [&](std::size_t t) {
    obs::Span span("bnb_task", "search");
    EngineSearch search(prototype);
    search.shared_incumbent = &incumbent;
    for (std::size_t a = 0; a < tasks[t].size(); ++a) {
      search.engine.set_home(a, tasks[t][a]);
    }
    search.run(tasks[t].size());
    outcomes[t] = {std::move(search.best),      search.best_scalar,
                   search.states,               search.budget_hit,
                   search.bound_prunes,         search.capacity_prunes,
                   /*ran=*/true};
  }, run_budget);

  // Canonical-order reduction: strict improvement keeps the earliest task on
  // ties, exactly as the serial DFS keeps the first state it visits.  A task
  // the expired budget prevented from running leaves a default outcome that
  // must not win the reduction — it only marks the run truncated.
  bool budget_hit = false;
  for (TaskOutcome& outcome : outcomes) {
    if (!outcome.ran) {
      budget_hit = true;
      continue;
    }
    if (outcome.scalar < result.scalar) {
      result.scalar = outcome.scalar;
      result.assignment = std::move(outcome.best);
    }
    result.states_explored += outcome.states;
    budget_hit = budget_hit || outcome.budget_hit;
    result.bound_prunes += outcome.bound_prunes;
    result.capacity_prunes += outcome.capacity_prunes;
  }
  finalize_anytime(result, ctx, budget_hit, /*have_bound=*/true, root_lb,
                   fallback ? &*fallback : nullptr);
  return result;
}

/// Work-stealing parallel search: one `EngineSearch` per pool worker
/// (lazily copied from the shared prototype), subtree tasks that split
/// themselves on demand — root homes first, then down into the copy phase —
/// whenever peers starve, a shared strictly-pruning incumbent, and a
/// (scalar, canonical-path) reduction over the per-worker bests that
/// returns exactly the serial `"bnb"` optimum for any thread count and any
/// steal interleaving (see the ws_mode notes on `EngineSearch`).
ExhaustiveResult exhaustive_parallel_ws(const AssignContext& ctx, const ExhaustiveOptions& options,
                                        core::RunBudget* run_budget) {
  EngineSearch prototype(ctx, options);
  prototype.run_budget = run_budget;
  double root_lb = prototype.root_scalar_bound();

  ExhaustiveResult result;
  result.assignment = prototype.best;
  result.scalar = prototype.best_scalar;

  // Both seeds are costs of feasible assignments, so strict pruning above
  // them never cuts an optimal state; the returned assignment always comes
  // from the enumeration (greedy substitutes only on a truncated run).
  core::AtomicMin incumbent(prototype.best_scalar);
  std::optional<GreedyResult> fallback;
  if (options.seed_incumbent) {
    fallback = greedy_incumbent_seed(ctx, options, run_budget);
    incumbent.update(fallback->final_scalar);
  }

  unsigned threads = options.num_threads ? options.num_threads : core::default_parallelism();
  core::WorkStealingPool pool(threads);

  const std::size_t path_len = ctx.program.arrays().size() + ctx.reuse.candidates().size();
  prototype.ws_mode = true;
  prototype.pool = &pool;
  prototype.shared_incumbent = &incumbent;
  prototype.cur_path_.assign(path_len, 0);
  prototype.best_path_.assign(path_len, 0);  // the out-of-box incumbent is the all-zero leaf

  // One search per worker, created on its first task so idle workers never
  // pay the engine copy; the search (and its engine) is reused for every
  // task that worker claims.
  std::vector<std::unique_ptr<EngineSearch>> workers(pool.num_workers());
  std::function<void(unsigned, const std::vector<int>&)> run_subtree =
      [&](unsigned w, const std::vector<int>& prefix) {
        obs::Span span("bnb_task", "search");
        if (!workers[w]) {
          workers[w] = std::make_unique<EngineSearch>(prototype);
          workers[w]->spawn_subtree = [&pool, &run_subtree, w](std::vector<int> child) {
            pool.spawn(w, [&run_subtree, child = std::move(child)](unsigned worker) {
              run_subtree(worker, child);
            });
          };
        }
        workers[w]->run_task(prefix);
      };
  pool.spawn(0, [&run_subtree](unsigned w) { run_subtree(w, std::vector<int>{}); });
  std::size_t skipped = pool.run(run_budget);

  // (scalar, canonical path) reduction over the per-worker searches: the
  // smallest scalar wins and path order breaks ties exactly as serial DFS
  // visit order would.  A null winner path stands for the all-zero
  // out-of-box path, which no other path can precede.  Tasks the expired
  // budget made the pool discard mark the run truncated.
  bool budget_hit = skipped > 0;
  const std::vector<int>* best_path = nullptr;
  for (const std::unique_ptr<EngineSearch>& worker : workers) {
    if (!worker) continue;
    result.states_explored += worker->states;
    result.bound_prunes += worker->bound_prunes;
    result.capacity_prunes += worker->capacity_prunes;
    budget_hit = budget_hit || worker->budget_hit;
    bool wins = worker->best_scalar < result.scalar ||
                (worker->best_scalar == result.scalar && best_path &&
                 worker->best_path_ < *best_path);
    if (wins) {
      result.scalar = worker->best_scalar;
      result.assignment = worker->best;
      best_path = &worker->best_path_;
    }
  }
  finalize_anytime(result, ctx, budget_hit, /*have_bound=*/true, root_lb,
                   fallback ? &*fallback : nullptr);
  return result;
}

ExhaustiveResult exhaustive_parallel(const AssignContext& ctx, const ExhaustiveOptions& options,
                                     core::RunBudget* run_budget) {
  return options.work_stealing ? exhaustive_parallel_ws(ctx, options, run_budget)
                               : exhaustive_parallel_static(ctx, options, run_budget);
}

}  // namespace

namespace {

/// The guard throws only when there is nothing to bound the runtime: on the
/// engine path a bounded run budget lifts it (anytime mode — the budget
/// truncates the search where the guard would have refused it).
void check_placement_guard(const AssignContext& ctx, std::size_t guard, bool anytime) {
  std::size_t placements = ctx.reuse.candidates().size() *
                           static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
  if (placements <= guard || anytime) return;
  throw std::invalid_argument(
      "exhaustive_assign: instance too large (" + std::to_string(placements) +
      " candidate placements, guard " + std::to_string(guard) +
      "); use greedy_assign, or attach a run budget (deadline/max_probes/cancel) "
      "for an anytime search");
}

/// Resolve the active budget token: the caller's shared token wins; else a
/// local one is built from the spec.  A local token is created even for an
/// unbounded spec so the fault injector's BudgetProbe site is always live.
core::RunBudget* resolve_budget(const ExhaustiveOptions& options,
                                std::optional<core::RunBudget>& local) {
  if (options.shared_budget) return options.shared_budget;
  local.emplace(options.budget);
  return &*local;
}

bool has_bounded_budget(const ExhaustiveOptions& options) {
  return options.shared_budget != nullptr || options.budget.bounded();
}

}  // namespace

ExhaustiveResult exhaustive_assign(const AssignContext& ctx, const ExhaustiveOptions& options) {
  bool anytime = options.use_cost_engine && has_bounded_budget(options);
  check_placement_guard(
      ctx, options.use_cost_engine ? kEnginePlacementGuard : kReferencePlacementGuard, anytime);
  std::optional<core::RunBudget> local;
  core::RunBudget* budget = resolve_budget(options, local);
  return options.use_cost_engine ? exhaustive_engine(ctx, options, budget)
                                 : exhaustive_reference(ctx, options, budget);
}

ExhaustiveResult exhaustive_parallel_assign(const AssignContext& ctx,
                                            const ExhaustiveOptions& options) {
  check_placement_guard(ctx, kEnginePlacementGuard, has_bounded_budget(options));
  ExhaustiveOptions forced = options;
  forced.use_cost_engine = true;
  forced.use_branch_and_bound = true;
  std::optional<core::RunBudget> local;
  core::RunBudget* budget = resolve_budget(forced, local);
  return exhaustive_parallel(ctx, forced, budget);
}

}  // namespace mhla::assign
