#include "assign/inplace.h"

#include <algorithm>

namespace mhla::assign {

FootprintReport compute_footprints(const AssignContext& ctx, const Assignment& assignment,
                                   const std::vector<CopyExtension>& extensions) {
  int num_layers = ctx.hierarchy.num_layers();
  int num_nests = static_cast<int>(ctx.program.top().size());
  int background = ctx.hierarchy.background();

  FootprintReport report;
  report.usage.assign(static_cast<std::size_t>(num_layers),
                      std::vector<i64>(static_cast<std::size_t>(std::max(num_nests, 1)), 0));

  // Arrays: live over their range on their home layer.
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    auto it = ctx.live.find(array.name);
    if (it == ctx.live.end() || analysis::is_dead(it->second)) continue;
    int layer = assignment.layer_of(array.name, background);
    for (int t = it->second.first; t <= it->second.last && t < num_nests; ++t) {
      if (t < 0) continue;
      report.usage[static_cast<std::size_t>(layer)][static_cast<std::size_t>(t)] += array.bytes();
    }
  }

  // Copies: live during their own nest, possibly extended by TE.
  for (const PlacedCopy& pc : assignment.copies) {
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(pc.cc_id);
    int start = cc.nest;
    i64 buffers = 1;
    for (const CopyExtension& ext : extensions) {
      if (ext.cc_id != pc.cc_id) continue;
      if (ext.start_nest >= 0) start = std::min(start, ext.start_nest);
      buffers += ext.extra_buffers;
    }
    for (int t = start; t <= cc.nest && t < num_nests; ++t) {
      if (t < 0) continue;
      // Multi-buffering only matters while the copy is actually being cycled,
      // i.e. during its own nest; the prefetch tail occupies one buffer.
      i64 bytes = (t == cc.nest) ? cc.bytes * buffers : cc.bytes;
      report.usage[static_cast<std::size_t>(pc.layer)][static_cast<std::size_t>(t)] += bytes;
    }
  }

  report.peak_bytes.assign(static_cast<std::size_t>(num_layers), 0);
  for (int l = 0; l < num_layers; ++l) {
    const std::vector<i64>& row = report.usage[static_cast<std::size_t>(l)];
    i64 peak = row.empty() ? 0 : *std::max_element(row.begin(), row.end());
    report.peak_bytes[static_cast<std::size_t>(l)] = peak;
    const mem::MemLayer& layer = ctx.hierarchy.layer(l);
    if (!layer.unbounded() && peak > layer.capacity_bytes) report.feasible = false;
  }
  return report;
}

bool fits(const AssignContext& ctx, const Assignment& assignment,
          const std::vector<CopyExtension>& extensions) {
  return compute_footprints(ctx, assignment, extensions).feasible;
}

}  // namespace mhla::assign
