#include "assign/anneal.h"

#include <cmath>
#include <optional>
#include <random>

#include "assign/cost_engine.h"
#include "obs/trace.h"

namespace mhla::assign {

namespace {

/// Portable bounded draw: plain modulo over the raw 32-bit output.  The
/// (negligible) modulo bias is a fair price for determinism across standard
/// libraries — std::uniform_int_distribution is implementation-defined.
std::size_t draw(std::mt19937& rng, std::size_t n) { return rng() % n; }

double draw_unit(std::mt19937& rng) {
  return static_cast<double>(rng()) * (1.0 / 4294967296.0);
}

}  // namespace

AnnealResult anneal_assign(const AssignContext& ctx, const AnnealOptions& options) {
  obs::Span span("anneal_walk", "search");
  AnnealResult result;

  CostEngine engine(ctx);  // loads out_of_box
  Objective objective = make_objective(ctx, options.energy_weight, options.time_weight);
  double current = engine.scalar(objective);
  result.evaluations = 1;

  result.assignment = engine.assignment();
  result.scalar = current;

  std::mt19937 rng(options.seed);
  const int background = ctx.hierarchy.background();
  const auto& candidates = ctx.reuse.candidates();
  const auto& arrays = ctx.program.arrays();
  const std::size_t num_kinds = options.allow_array_migration ? 3 : 2;

  // One probe per iteration, checked before the proposal is drawn: an
  // expired budget truncates the walk at an iteration boundary, where the
  // engine holds the last accepted state and the best tracker is complete.
  std::optional<core::RunBudget> local_budget;
  core::RunBudget* budget = options.shared_budget;
  if (!budget) {
    local_budget.emplace(options.budget);
    budget = &*local_budget;
  }

  double temp = options.initial_temp;
  for (int iter = 0; iter < options.iterations; ++iter, temp *= options.cooling) {
    if (!budget->probe()) {
      result.status = SearchStatus::BudgetExhausted;
      break;
    }
    // Propose one move on the engine; `proposed` stays false when the draw
    // lands on nothing applicable (the iteration still cools the chain).
    CostEngine::Checkpoint cp = engine.checkpoint();
    bool proposed = false;
    bool needs_layering_check = false;

    switch (background == 0 ? 1 : draw(rng, num_kinds)) {
      case 0: {  // select a copy candidate onto an on-chip layer
        if (candidates.empty()) break;
        const analysis::CopyCandidate& cc = candidates[draw(rng, candidates.size())];
        int layer = static_cast<int>(draw(rng, static_cast<std::size_t>(background)));
        if (cc.elems <= 0 || engine.has_copy(cc.id)) break;
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && cc.bytes > target.capacity_bytes) break;
        engine.select_copy(cc.id, layer);
        needs_layering_check = true;
        proposed = true;
        break;
      }
      case 1: {  // remove a selected copy
        const auto& copies = engine.placed_copies();
        if (copies.empty()) break;
        engine.remove_copy(copies[draw(rng, copies.size())].cc_id);
        proposed = true;
        break;
      }
      default: {  // migrate an array's home layer (drawn index == array id)
        if (arrays.empty()) break;
        std::size_t a = draw(rng, arrays.size());
        int layer = static_cast<int>(draw(rng, static_cast<std::size_t>(ctx.hierarchy.num_layers())));
        if (layer == engine.home_of(a)) break;
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && arrays[a].bytes() > target.capacity_bytes) break;
        engine.migrate_array(a, layer);
        proposed = true;
        break;
      }
    }
    if (!proposed) continue;

    bool feasible = options.use_footprint_tracker ? engine.fits()
                                                  : fits(ctx, engine.assignment());
    if ((needs_layering_check && !engine.layering_valid()) || !feasible) {
      engine.undo_to(cp);
      continue;
    }

    double scalar = engine.scalar(objective);
    ++result.evaluations;
    double delta = scalar - current;
    bool accept = delta <= 0.0 || (temp > 0.0 && draw_unit(rng) < std::exp(-delta / temp));
    if (!accept) {
      engine.undo_to(cp);
      continue;
    }
    current = scalar;
    ++result.accepted;
    if (current < result.scalar) {
      result.scalar = current;
      result.assignment = engine.assignment();
    }
  }
  return result;
}

}  // namespace mhla::assign
