#pragma once

#include "assign/cost.h"
#include "assign/inplace.h"
#include "assign/search_status.h"
#include "core/run_budget.h"

namespace mhla::assign {

/// Options for the exhaustive (oracle) search.  Only usable on small inputs;
/// the search space is pruned by capacity, by an admissible branch-and-bound
/// lower bound (engine path), and by a hard state budget.
struct ExhaustiveOptions {
  double energy_weight = 1.0;
  double time_weight = 1.0;
  long max_states = 2'000'000;       ///< hard bound on evaluated states
  bool allow_array_migration = true;

  /// Search with the incremental CostEngine plus branch-and-bound pruning.
  /// Produces the same best assignment and scalar as the reference
  /// enumeration (pruning only discards states that cannot strictly beat
  /// the incumbent), explores far fewer states, and accepts instances up
  /// to `kEnginePlacementGuard` instead of `kReferencePlacementGuard`.
  bool use_cost_engine = true;

  /// Engine path only: disable the lower-bound and cumulative-capacity
  /// pruning so the DFS mirrors the reference enumeration state for state
  /// (same states_explored, same budget behavior).  Used to measure pure
  /// per-state evaluation throughput and by the equivalence tests.
  bool use_branch_and_bound = true;

  /// Engine path only: answer leaf/base feasibility from the engine's
  /// incremental FootprintTracker (O(1)) instead of a from-scratch
  /// `compute_footprints` rebuild.  Verdicts are exact either way, so the
  /// search result is bit-identical; the toggle exists for the equivalence
  /// tests.  (The branch-and-bound capacity pruning always reads the
  /// tracker's usage cells — it is integer-exact by construction.)
  bool use_footprint_tracker = true;

  /// Engine branch-and-bound only: at each copy-phase entry, filter the
  /// suffix-minimum bound tables by the homes-only footprint headroom of
  /// the `FootprintTracker` — a placement whose (layer, nest) usage already
  /// overflows at entry can never be selected below that node, so its term
  /// is dropped and a site with no surviving placement contributes its
  /// exact serving term instead of an optimistic minimum.  Strictly
  /// tightens pruning for both serial and parallel search; any admissible
  /// bound returns the same optimum, so results are bit-identical with the
  /// toggle on or off (only the state/prune counters move).
  bool use_footprint_bound = true;

  /// `exhaustive_parallel_assign` knobs; `seed_incumbent` also applies to
  /// the serial engine path when branch-and-bound is on.  The greedy seed
  /// only ever prunes (strictly, so tied states still enumerate) — the
  /// returned optimum is bit-identical with or without it.
  unsigned num_threads = 0;    ///< worker threads (0 = hardware concurrency)
  int tasks_per_thread = 4;    ///< static split only: target root tasks per worker
  bool seed_incumbent = true;  ///< seed the incumbent bound with the greedy scalar

  /// Parallel path only: schedule subtree tasks on `core::WorkStealingPool`
  /// deques, splitting on demand whenever a worker starves (default),
  /// instead of the fixed breadth-first root-frontier split.  Both
  /// schedulers return the bit-identical serial optimum; the static split
  /// is kept as the scaling-comparison baseline.
  bool work_stealing = true;

  /// Cooperative run budget: one probe per evaluated state (plus one per
  /// array-phase node, so prune-heavy searches still observe a deadline
  /// promptly).  When the budget expires the search unwinds and returns
  /// best-so-far with a certified optimality gap — see ExhaustiveResult.
  /// A bounded budget also lifts the placement guard on the engine path
  /// (anytime mode); `shared_budget` takes precedence over `budget`.
  core::BudgetSpec budget;
  core::RunBudget* shared_budget = nullptr;
};

/// Instance-size guards: candidate placements (candidates x on-chip layers)
/// above the guard throw std::invalid_argument.  Branch-and-bound raises the
/// exact-solvable ceiling well beyond the reference enumeration's.
inline constexpr std::size_t kReferencePlacementGuard = 24;
inline constexpr std::size_t kEnginePlacementGuard = 64;

struct ExhaustiveResult {
  Assignment assignment;
  double scalar = 0.0;
  long states_explored = 0;       ///< evaluated leaf states
  bool exhausted_budget = false;  ///< true if a state/run budget was hit
  long bound_prunes = 0;     ///< subtrees cut by the lower bound (engine path)
  long capacity_prunes = 0;  ///< placements cut by cumulative capacity (engine path)

  /// Anytime contract.  Optimal (gap == 0) when the enumeration ran to
  /// completion; BudgetExhausted when `max_states` or the run budget bound,
  /// in which case `assignment` is the best feasible state seen (the greedy
  /// incumbent seed serves as a floor when branch-and-bound is on) and
  /// `gap` certifies (scalar - lower_bound) / scalar against the global
  /// admissible root lower bound — the true optimum lies within gap of the
  /// returned scalar.  Without a bound (branch-and-bound off, or the
  /// reference path) a truncated run reports gap = -1 (unknown).
  SearchStatus status = SearchStatus::Optimal;
  double gap = -1.0;
  double lower_bound = 0.0;  ///< global admissible root bound (engine B&B only)
};

/// Enumerate every feasible (assignment of arrays to layers) x (subset of
/// copy candidates with a layer each) configuration and return the best
/// under the scalarized objective.  Intended as a test oracle for the greedy
/// heuristic and for the search benchmarks; throws std::invalid_argument
/// if the instance exceeds the placement guard of the selected path —
/// except on the engine path with a bounded run budget attached, where an
/// over-guard instance runs in anytime mode: best-so-far plus certified
/// gap when the budget expires (the guard exists to bound runtime, and a
/// budget bounds it better).
ExhaustiveResult exhaustive_assign(const AssignContext& ctx, const ExhaustiveOptions& options = {});

/// Parallel branch-and-bound (registry strategy "bnb-par").  By default
/// (`work_stealing`) subtree tasks live on per-worker work-stealing deques:
/// one seed task descends from the root and every task offloads sibling
/// branches — array homes first, then down into the copy phase — the moment
/// the pool starves, so uneven subtrees rebalance onto idle workers instead
/// of idling them.  Tasks are canonical ordinal prefixes, replayed onto a
/// per-worker engine; every worker prunes against a shared atomic incumbent
/// bound (optionally seeded with the greedy scalar).  With `work_stealing`
/// off, the original fixed breadth-first root-frontier split
/// (~`num_threads x tasks_per_thread` tasks) runs instead.
///
/// The result — best assignment and scalar — is **bit-identical to serial
/// branch-and-bound for any thread count and any steal interleaving**: the
/// shared incumbent only ever holds scalars of feasible assignments,
/// cross-task pruning is strict (a subtree is cut only when it provably
/// cannot *equal* the incumbent), and under work stealing every leaf is
/// keyed by its canonical DFS path, with local pruning strict too and ties
/// resolved to the lexicographically-first path — exactly the leaf serial
/// DFS reaches first.  The state/prune counters, by contrast, depend on
/// incumbent-propagation timing and are not reproducible run to run;
/// `max_states` bounds each worker (each static-split task), and the
/// determinism guarantee requires the budget not to bind.  Engine and
/// branch-and-bound are always on; the instance guard is
/// `kEnginePlacementGuard`, as for the serial engine path.
ExhaustiveResult exhaustive_parallel_assign(const AssignContext& ctx,
                                            const ExhaustiveOptions& options = {});

}  // namespace mhla::assign
