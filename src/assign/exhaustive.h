#pragma once

#include "assign/cost.h"
#include "assign/inplace.h"

namespace mhla::assign {

/// Options for the exhaustive (oracle) search.  Only usable on small inputs;
/// the search space is pruned by capacity and by a hard state budget.
struct ExhaustiveOptions {
  double energy_weight = 1.0;
  double time_weight = 1.0;
  long max_states = 2'000'000;       ///< hard bound on explored states
  bool allow_array_migration = true;
};

struct ExhaustiveResult {
  Assignment assignment;
  double scalar = 0.0;
  long states_explored = 0;
  bool exhausted_budget = false;  ///< true if the state budget was hit
};

/// Enumerate every feasible (assignment of arrays to layers) x (subset of
/// copy candidates with a layer each) configuration and return the best
/// under the scalarized objective.  Intended as a test oracle for the greedy
/// heuristic and for the tool-runtime benchmark; throws std::invalid_argument
/// if the instance is clearly too large (> 24 candidate placements).
ExhaustiveResult exhaustive_assign(const AssignContext& ctx, const ExhaustiveOptions& options = {});

}  // namespace mhla::assign
