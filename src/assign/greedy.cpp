#include "assign/greedy.h"

#include <algorithm>
#include <optional>

#include "assign/cost_engine.h"
#include "obs/trace.h"

namespace mhla::assign {

namespace {

/// A candidate move with its evaluation (reference path only; the engine
/// path re-applies the winning move instead of storing a full assignment).
struct ScoredMove {
  GreedyMove move;
  Assignment next;
};

/// Bytes the move claims on its target layer (>= 0; 0 for pure migrations
/// that free space elsewhere).  Used for the gain-per-byte steering metric.
i64 claimed_bytes(const AssignContext& ctx, const GreedyMove& move) {
  switch (move.kind) {
    case GreedyMove::Kind::SelectCopy:
      return ctx.reuse.candidate(move.cc_id).bytes;
    case GreedyMove::Kind::MigrateArray:
      return ctx.program.array(move.array).bytes();
    case GreedyMove::Kind::RemoveCopy:
      return 1;  // removal frees space; any gain is pure win
  }
  return 1;
}

/// Reference implementation: every candidate move is scored by a fresh
/// estimate_cost over a copied assignment.  Kept as the from-scratch oracle
/// the engine path is property-tested against.
GreedyResult greedy_assign_reference(const AssignContext& ctx, const GreedyOptions& options) {
  GreedyResult result;
  result.assignment = out_of_box(ctx);

  Objective objective = make_objective(ctx, options.energy_weight, options.time_weight);
  double current_scalar = objective.scalar(estimate_cost(ctx, result.assignment));
  result.evaluations = 1;

  int background = ctx.hierarchy.background();

  // One probe per enumerated candidate, charged before the candidate is
  // scored; expiry abandons the round before any move is applied, so the
  // result is always the exact state after the last accepted move.  The
  // reference and engine paths enumerate candidates identically, so they
  // charge probes at identical points and a bounded budget truncates both
  // at the same move.
  std::optional<core::RunBudget> local_budget;
  core::RunBudget* budget = options.shared_budget;
  if (!budget) {
    local_budget.emplace(options.budget);
    budget = &*local_budget;
  }
  bool cancelled = false;
  auto probe = [&]() {
    if (!cancelled && !budget->probe()) cancelled = true;
    return !cancelled;
  };

  for (int accepted = 0; accepted < options.max_moves && !cancelled; ++accepted) {
    std::optional<ScoredMove> best;
    double best_per_byte = 0.0;

    auto consider = [&](GreedyMove move, Assignment next) {
      if (!fits(ctx, next)) return;
      if (move.kind == GreedyMove::Kind::SelectCopy && !layering_valid(ctx, next)) return;
      double scalar = objective.scalar(estimate_cost(ctx, next));
      ++result.evaluations;
      double gain = current_scalar - scalar;
      if (gain <= 1e-12) return;
      double per_byte = gain / static_cast<double>(std::max<i64>(claimed_bytes(ctx, move), 1));
      move.gain = gain;
      move.gain_per_byte = per_byte;
      if (!best || per_byte > best_per_byte) {
        best_per_byte = per_byte;
        best = ScoredMove{std::move(move), std::move(next)};
      }
    };

    // Move type 1: select an unselected copy candidate onto an on-chip layer.
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      if (cancelled) break;
      if (result.assignment.has_copy(cc.id)) continue;
      if (cc.elems <= 0) continue;
      for (int layer = 0; layer < background; ++layer) {
        if (!probe()) break;
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
        Assignment next = result.assignment;
        next.copies.push_back({cc.id, layer});
        GreedyMove move;
        move.kind = GreedyMove::Kind::SelectCopy;
        move.cc_id = cc.id;
        move.layer = layer;
        consider(std::move(move), std::move(next));
      }
    }

    // Move type 2: migrate an array's home layer.  Copies that the new home
    // renders layering-invalid (e.g. a copy on the very layer the array
    // moves to) are dropped as part of the compound move.
    if (options.allow_array_migration) {
      for (const ir::ArrayDecl& array : ctx.program.arrays()) {
        if (cancelled) break;
        int home = result.assignment.layer_of(array.name, background);
        for (int layer = 0; layer < ctx.hierarchy.num_layers(); ++layer) {
          if (!probe()) break;
          if (layer == home) continue;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
          Assignment next = result.assignment;
          next.array_layer[array.name] = layer;
          drop_invalid_copies(ctx, next);
          GreedyMove move;
          move.kind = GreedyMove::Kind::MigrateArray;
          move.array = array.name;
          move.layer = layer;
          consider(std::move(move), std::move(next));
        }
      }
    }

    // Move type 3: deselect a copy.  Earlier selections can turn harmful
    // once arrays migrate on-chip (the copy then duplicates a cheap layer
    // and only adds transfer traffic); removal also unblocks better chain
    // configurations.  The objective strictly decreases with every accepted
    // move, so add/remove sequences cannot cycle.
    for (const PlacedCopy& pc : result.assignment.copies) {
      if (!probe()) break;
      Assignment next = result.assignment;
      std::erase_if(next.copies,
                    [&](const PlacedCopy& other) { return other.cc_id == pc.cc_id; });
      GreedyMove move;
      move.kind = GreedyMove::Kind::RemoveCopy;
      move.cc_id = pc.cc_id;
      move.layer = pc.layer;
      consider(std::move(move), std::move(next));
    }

    if (cancelled || !best) break;
    current_scalar -= best->move.gain;
    result.assignment = std::move(best->next);
    result.moves.push_back(std::move(best->move));
  }

  result.final_scalar = current_scalar;
  result.status = cancelled ? SearchStatus::BudgetExhausted : SearchStatus::Feasible;
  return result;
}

/// Engine path: identical move enumeration, scoring and tie-breaking, but
/// every candidate is applied to the engine, scored from cached terms, and
/// undone — no per-candidate assignment copy, no per-candidate resolve.
/// The whole walk is id-based and allocation-free in steady state: arrays
/// and candidates move by dense index, the best move of a round is tracked
/// as PODs (its name materialized once on acceptance), and with
/// `batched_scoring` the select-copy moves of each round are scored in one
/// pass over the engine's contiguous term tables.
GreedyResult greedy_assign_engine(const AssignContext& ctx, const GreedyOptions& options) {
  obs::Span span("greedy_walk", "search");
  GreedyResult result;

  CostEngine engine(ctx);  // loads out_of_box
  Objective objective = make_objective(ctx, options.energy_weight, options.time_weight);
  double current_scalar = engine.scalar(objective);
  result.evaluations = 1;

  int background = ctx.hierarchy.background();
  const auto& arrays = ctx.program.arrays();
  const auto& candidates = ctx.reuse.candidates();

  // Identical probe points to the reference path (see there); charged
  // before each candidate's checkpoint/apply, so expiry never leaves a
  // speculative move on the engine.
  std::optional<core::RunBudget> local_budget;
  core::RunBudget* budget = options.shared_budget;
  if (!budget) {
    local_budget.emplace(options.budget);
    budget = &*local_budget;
  }
  bool cancelled = false;
  auto probe = [&]() {
    if (!cancelled && !budget->probe()) cancelled = true;
    return !cancelled;
  };

  /// Round-best move as plain ids; `array` is meaningful for MigrateArray.
  struct Best {
    GreedyMove::Kind kind = GreedyMove::Kind::SelectCopy;
    int cc_id = -1;
    std::size_t array = 0;
    int layer = -1;
    double gain = 0.0;
    double per_byte = 0.0;
    bool valid = false;
  };

  // Batched-scoring slot arrays, sized once and reused round over round.
  std::vector<int> slot_cc;
  std::vector<int> slot_layer;
  std::vector<i64> slot_bytes;
  std::vector<double> slot_scalar;
  std::vector<unsigned char> slot_ok;
  if (options.batched_scoring) {
    std::size_t max_slots =
        candidates.size() * static_cast<std::size_t>(std::max(background, 1));
    slot_cc.reserve(max_slots);
    slot_layer.reserve(max_slots);
    slot_bytes.reserve(max_slots);
    slot_scalar.reserve(max_slots);
    slot_ok.reserve(max_slots);
  }

  for (int accepted = 0; accepted < options.max_moves && !cancelled; ++accepted) {
    Best best;

    // A move that passed its feasibility/validity gates, with its post-move
    // scalar: count the evaluation, keep it when it wins the per-byte race
    // (strict — the first of equals wins, matching the reference path).
    auto offer = [&](GreedyMove::Kind kind, int cc_id, std::size_t array, int layer,
                     double scalar, i64 bytes) {
      ++result.evaluations;
      double gain = current_scalar - scalar;
      if (gain <= 1e-12) return;
      double per_byte = gain / static_cast<double>(std::max<i64>(bytes, 1));
      if (!best.valid || per_byte > best.per_byte) {
        best = {kind, cc_id, array, layer, gain, per_byte, true};
      }
    };

    // The candidate move is already applied to the engine when this runs;
    // it inspects the engine state and is followed by an undo.
    auto consider_applied = [&](GreedyMove::Kind kind, int cc_id, std::size_t array, int layer,
                                i64 bytes) {
      bool feasible = options.use_footprint_tracker ? engine.fits()
                                                    : fits(ctx, engine.assignment());
      if (!feasible) return;
      if (kind == GreedyMove::Kind::SelectCopy && !engine.layering_valid()) return;
      offer(kind, cc_id, array, layer, engine.scalar(objective), bytes);
    };

    // Move type 1: select an unselected copy candidate onto an on-chip layer.
    if (options.batched_scoring) {
      // Identical enumeration (and probe charges) to the sequential loop,
      // collected into slots; one engine pass scores them all.  When the
      // budget expires mid-enumeration the collected prefix is exactly the
      // set the sequential loop scored before expiry, so evaluation counts
      // stay identical — the round itself is abandoned below either way.
      slot_cc.clear();
      slot_layer.clear();
      slot_bytes.clear();
      for (const analysis::CopyCandidate& cc : candidates) {
        if (cancelled) break;
        if (engine.has_copy(cc.id)) continue;
        if (cc.elems <= 0) continue;
        for (int layer = 0; layer < background; ++layer) {
          if (!probe()) break;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
          slot_cc.push_back(cc.id);
          slot_layer.push_back(layer);
          slot_bytes.push_back(cc.bytes);
        }
      }
      if (!slot_cc.empty()) {
        slot_scalar.resize(slot_cc.size());
        slot_ok.resize(slot_cc.size());
        engine.score_select_candidates(objective, slot_cc.data(), slot_layer.data(),
                                       slot_cc.size(), slot_scalar.data(), slot_ok.data());
        for (std::size_t m = 0; m < slot_cc.size(); ++m) {
          if (!slot_ok[m]) continue;
          offer(GreedyMove::Kind::SelectCopy, slot_cc[m], 0, slot_layer[m], slot_scalar[m],
                slot_bytes[m]);
        }
      }
    } else {
      for (const analysis::CopyCandidate& cc : candidates) {
        if (cancelled) break;
        if (engine.has_copy(cc.id)) continue;
        if (cc.elems <= 0) continue;
        for (int layer = 0; layer < background; ++layer) {
          if (!probe()) break;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
          CostEngine::Checkpoint cp = engine.checkpoint();
          engine.select_copy(cc.id, layer);
          consider_applied(GreedyMove::Kind::SelectCopy, cc.id, 0, layer, cc.bytes);
          engine.undo_to(cp);
        }
      }
    }

    // Move type 2: migrate an array's home layer (drops invalidated copies
    // as part of the compound move, all rewound by one checkpoint).
    if (options.allow_array_migration) {
      for (std::size_t a = 0; a < arrays.size(); ++a) {
        if (cancelled) break;
        int home = engine.home_of(a);
        for (int layer = 0; layer < ctx.hierarchy.num_layers(); ++layer) {
          if (!probe()) break;
          if (layer == home) continue;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && arrays[a].bytes() > target.capacity_bytes) continue;
          CostEngine::Checkpoint cp = engine.checkpoint();
          engine.migrate_array(a, layer);
          consider_applied(GreedyMove::Kind::MigrateArray, -1, a, layer, arrays[a].bytes());
          engine.undo_to(cp);
        }
      }
    }

    // Move type 3: deselect a copy.  Indexed loop: apply/undo restores the
    // copies vector exactly, so positions stay stable across iterations.
    for (std::size_t i = 0; i < engine.placed_copies().size(); ++i) {
      if (!probe()) break;
      PlacedCopy pc = engine.placed_copies()[i];
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.remove_copy(pc.cc_id);
      consider_applied(GreedyMove::Kind::RemoveCopy, pc.cc_id, 0, pc.layer, 1);
      engine.undo_to(cp);
    }

    if (cancelled || !best.valid) break;
    GreedyMove move;
    move.kind = best.kind;
    move.layer = best.layer;
    move.gain = best.gain;
    move.gain_per_byte = best.per_byte;
    switch (best.kind) {
      case GreedyMove::Kind::SelectCopy:
        move.cc_id = best.cc_id;
        engine.select_copy(best.cc_id, best.layer);
        break;
      case GreedyMove::Kind::MigrateArray:
        move.array = arrays[best.array].name;
        engine.migrate_array(best.array, best.layer);
        break;
      case GreedyMove::Kind::RemoveCopy:
        move.cc_id = best.cc_id;
        engine.remove_copy(best.cc_id);
        break;
    }
    current_scalar -= best.gain;
    result.moves.push_back(std::move(move));
  }

  result.assignment = engine.assignment();
  result.final_scalar = current_scalar;
  result.status = cancelled ? SearchStatus::BudgetExhausted : SearchStatus::Feasible;
  return result;
}

}  // namespace

GreedyResult greedy_assign(const AssignContext& ctx, const GreedyOptions& options) {
  return options.use_cost_engine ? greedy_assign_engine(ctx, options)
                                 : greedy_assign_reference(ctx, options);
}

}  // namespace mhla::assign
