#include "assign/greedy.h"

#include <algorithm>
#include <optional>

#include "assign/cost_engine.h"
#include "obs/trace.h"

namespace mhla::assign {

namespace {

/// A candidate move with its evaluation (reference path only; the engine
/// path re-applies the winning move instead of storing a full assignment).
struct ScoredMove {
  GreedyMove move;
  Assignment next;
};

/// Bytes the move claims on its target layer (>= 0; 0 for pure migrations
/// that free space elsewhere).  Used for the gain-per-byte steering metric.
i64 claimed_bytes(const AssignContext& ctx, const GreedyMove& move) {
  switch (move.kind) {
    case GreedyMove::Kind::SelectCopy:
      return ctx.reuse.candidate(move.cc_id).bytes;
    case GreedyMove::Kind::MigrateArray:
      return ctx.program.array(move.array).bytes();
    case GreedyMove::Kind::RemoveCopy:
      return 1;  // removal frees space; any gain is pure win
  }
  return 1;
}

/// Reference implementation: every candidate move is scored by a fresh
/// estimate_cost over a copied assignment.  Kept as the from-scratch oracle
/// the engine path is property-tested against.
GreedyResult greedy_assign_reference(const AssignContext& ctx, const GreedyOptions& options) {
  GreedyResult result;
  result.assignment = out_of_box(ctx);

  Objective objective = make_objective(ctx, options.energy_weight, options.time_weight);
  double current_scalar = objective.scalar(estimate_cost(ctx, result.assignment));
  result.evaluations = 1;

  int background = ctx.hierarchy.background();

  // One probe per enumerated candidate, charged before the candidate is
  // scored; expiry abandons the round before any move is applied, so the
  // result is always the exact state after the last accepted move.  The
  // reference and engine paths enumerate candidates identically, so they
  // charge probes at identical points and a bounded budget truncates both
  // at the same move.
  std::optional<core::RunBudget> local_budget;
  core::RunBudget* budget = options.shared_budget;
  if (!budget) {
    local_budget.emplace(options.budget);
    budget = &*local_budget;
  }
  bool cancelled = false;
  auto probe = [&]() {
    if (!cancelled && !budget->probe()) cancelled = true;
    return !cancelled;
  };

  for (int accepted = 0; accepted < options.max_moves && !cancelled; ++accepted) {
    std::optional<ScoredMove> best;
    double best_per_byte = 0.0;

    auto consider = [&](GreedyMove move, Assignment next) {
      if (!fits(ctx, next)) return;
      if (move.kind == GreedyMove::Kind::SelectCopy && !layering_valid(ctx, next)) return;
      double scalar = objective.scalar(estimate_cost(ctx, next));
      ++result.evaluations;
      double gain = current_scalar - scalar;
      if (gain <= 1e-12) return;
      double per_byte = gain / static_cast<double>(std::max<i64>(claimed_bytes(ctx, move), 1));
      move.gain = gain;
      move.gain_per_byte = per_byte;
      if (!best || per_byte > best_per_byte) {
        best_per_byte = per_byte;
        best = ScoredMove{std::move(move), std::move(next)};
      }
    };

    // Move type 1: select an unselected copy candidate onto an on-chip layer.
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      if (cancelled) break;
      if (result.assignment.has_copy(cc.id)) continue;
      if (cc.elems <= 0) continue;
      for (int layer = 0; layer < background; ++layer) {
        if (!probe()) break;
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
        Assignment next = result.assignment;
        next.copies.push_back({cc.id, layer});
        GreedyMove move;
        move.kind = GreedyMove::Kind::SelectCopy;
        move.cc_id = cc.id;
        move.layer = layer;
        consider(std::move(move), std::move(next));
      }
    }

    // Move type 2: migrate an array's home layer.  Copies that the new home
    // renders layering-invalid (e.g. a copy on the very layer the array
    // moves to) are dropped as part of the compound move.
    if (options.allow_array_migration) {
      for (const ir::ArrayDecl& array : ctx.program.arrays()) {
        if (cancelled) break;
        int home = result.assignment.layer_of(array.name, background);
        for (int layer = 0; layer < ctx.hierarchy.num_layers(); ++layer) {
          if (!probe()) break;
          if (layer == home) continue;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
          Assignment next = result.assignment;
          next.array_layer[array.name] = layer;
          drop_invalid_copies(ctx, next);
          GreedyMove move;
          move.kind = GreedyMove::Kind::MigrateArray;
          move.array = array.name;
          move.layer = layer;
          consider(std::move(move), std::move(next));
        }
      }
    }

    // Move type 3: deselect a copy.  Earlier selections can turn harmful
    // once arrays migrate on-chip (the copy then duplicates a cheap layer
    // and only adds transfer traffic); removal also unblocks better chain
    // configurations.  The objective strictly decreases with every accepted
    // move, so add/remove sequences cannot cycle.
    for (const PlacedCopy& pc : result.assignment.copies) {
      if (!probe()) break;
      Assignment next = result.assignment;
      std::erase_if(next.copies,
                    [&](const PlacedCopy& other) { return other.cc_id == pc.cc_id; });
      GreedyMove move;
      move.kind = GreedyMove::Kind::RemoveCopy;
      move.cc_id = pc.cc_id;
      move.layer = pc.layer;
      consider(std::move(move), std::move(next));
    }

    if (cancelled || !best) break;
    current_scalar -= best->move.gain;
    result.assignment = std::move(best->next);
    result.moves.push_back(std::move(best->move));
  }

  result.final_scalar = current_scalar;
  result.status = cancelled ? SearchStatus::BudgetExhausted : SearchStatus::Feasible;
  return result;
}

/// Engine path: identical move enumeration, scoring and tie-breaking, but
/// every candidate is applied to the engine, scored from cached terms, and
/// undone — no per-candidate assignment copy, no per-candidate resolve.
GreedyResult greedy_assign_engine(const AssignContext& ctx, const GreedyOptions& options) {
  obs::Span span("greedy_walk", "search");
  GreedyResult result;

  CostEngine engine(ctx);  // loads out_of_box
  Objective objective = make_objective(ctx, options.energy_weight, options.time_weight);
  double current_scalar = engine.scalar(objective);
  result.evaluations = 1;

  int background = ctx.hierarchy.background();

  // Identical probe points to the reference path (see there); charged
  // before each candidate's checkpoint/apply, so expiry never leaves a
  // speculative move on the engine.
  std::optional<core::RunBudget> local_budget;
  core::RunBudget* budget = options.shared_budget;
  if (!budget) {
    local_budget.emplace(options.budget);
    budget = &*local_budget;
  }
  bool cancelled = false;
  auto probe = [&]() {
    if (!cancelled && !budget->probe()) cancelled = true;
    return !cancelled;
  };

  for (int accepted = 0; accepted < options.max_moves && !cancelled; ++accepted) {
    std::optional<GreedyMove> best;
    double best_per_byte = 0.0;

    // The candidate move is already applied to the engine when this runs;
    // it inspects the engine state and is followed by an undo.
    auto consider = [&](GreedyMove move) {
      bool feasible = options.use_footprint_tracker ? engine.fits()
                                                    : fits(ctx, engine.assignment());
      if (!feasible) return;
      if (move.kind == GreedyMove::Kind::SelectCopy && !engine.layering_valid()) return;
      double scalar = engine.scalar(objective);
      ++result.evaluations;
      double gain = current_scalar - scalar;
      if (gain <= 1e-12) return;
      double per_byte = gain / static_cast<double>(std::max<i64>(claimed_bytes(ctx, move), 1));
      move.gain = gain;
      move.gain_per_byte = per_byte;
      if (!best || per_byte > best_per_byte) {
        best_per_byte = per_byte;
        best = std::move(move);
      }
    };

    // Move type 1: select an unselected copy candidate onto an on-chip layer.
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      if (cancelled) break;
      if (engine.has_copy(cc.id)) continue;
      if (cc.elems <= 0) continue;
      for (int layer = 0; layer < background; ++layer) {
        if (!probe()) break;
        const mem::MemLayer& target = ctx.hierarchy.layer(layer);
        if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
        CostEngine::Checkpoint cp = engine.checkpoint();
        engine.select_copy(cc.id, layer);
        GreedyMove move;
        move.kind = GreedyMove::Kind::SelectCopy;
        move.cc_id = cc.id;
        move.layer = layer;
        consider(std::move(move));
        engine.undo_to(cp);
      }
    }

    // Move type 2: migrate an array's home layer (drops invalidated copies
    // as part of the compound move, all rewound by one checkpoint).
    if (options.allow_array_migration) {
      for (const ir::ArrayDecl& array : ctx.program.arrays()) {
        if (cancelled) break;
        int home = engine.assignment().layer_of(array.name, background);
        for (int layer = 0; layer < ctx.hierarchy.num_layers(); ++layer) {
          if (!probe()) break;
          if (layer == home) continue;
          const mem::MemLayer& target = ctx.hierarchy.layer(layer);
          if (!target.unbounded() && array.bytes() > target.capacity_bytes) continue;
          CostEngine::Checkpoint cp = engine.checkpoint();
          engine.migrate_array(array.name, layer);
          GreedyMove move;
          move.kind = GreedyMove::Kind::MigrateArray;
          move.array = array.name;
          move.layer = layer;
          consider(std::move(move));
          engine.undo_to(cp);
        }
      }
    }

    // Move type 3: deselect a copy.  Indexed loop: apply/undo restores the
    // copies vector exactly, so positions stay stable across iterations.
    for (std::size_t i = 0; i < engine.assignment().copies.size(); ++i) {
      if (!probe()) break;
      PlacedCopy pc = engine.assignment().copies[i];
      CostEngine::Checkpoint cp = engine.checkpoint();
      engine.remove_copy(pc.cc_id);
      GreedyMove move;
      move.kind = GreedyMove::Kind::RemoveCopy;
      move.cc_id = pc.cc_id;
      move.layer = pc.layer;
      consider(std::move(move));
      engine.undo_to(cp);
    }

    if (cancelled || !best) break;
    switch (best->kind) {
      case GreedyMove::Kind::SelectCopy:
        engine.select_copy(best->cc_id, best->layer);
        break;
      case GreedyMove::Kind::MigrateArray:
        engine.migrate_array(best->array, best->layer);
        break;
      case GreedyMove::Kind::RemoveCopy:
        engine.remove_copy(best->cc_id);
        break;
    }
    current_scalar -= best->gain;
    result.moves.push_back(std::move(*best));
  }

  result.assignment = engine.assignment();
  result.final_scalar = current_scalar;
  result.status = cancelled ? SearchStatus::BudgetExhausted : SearchStatus::Feasible;
  return result;
}

}  // namespace

GreedyResult greedy_assign(const AssignContext& ctx, const GreedyOptions& options) {
  return options.use_cost_engine ? greedy_assign_engine(ctx, options)
                                 : greedy_assign_reference(ctx, options);
}

}  // namespace mhla::assign
