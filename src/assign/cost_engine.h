#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "assign/cost.h"
#include "assign/footprint_tracker.h"
#include "core/arena.h"
#include "core/span.h"

namespace mhla::assign {

/// Incremental cost evaluator for the MHLA searches.
///
/// `estimate_cost()` pays a full `resolve()` (O(sites x copies) with string
/// map lookups), a complete IR statement walk for the assignment-independent
/// compute cycles, and a pass over every access site — for *every* candidate
/// state a search scores.  The engine precomputes every assignment-independent
/// term once per `AssignContext`:
///
///  * total compute cycles (one IR walk at construction),
///  * per-site access counts and the energy/latency term for every possible
///    serving layer,
///  * per-candidate transfer terms for every (source, destination) layer pair,
///  * per-array pinned fill/flush terms for every possible home layer,
///  * the site -> covering-candidate and candidate -> ancestor maps that
///    `resolve()` rederives from scratch each call,
///
/// and then maintains the resolution (serving layer per site, parent store
/// per selected copy) incrementally under `select_copy` / `remove_copy` /
/// `migrate_array` moves, each undoable in LIFO order via checkpoints.
/// Applying or undoing a move costs O(sites covered by the touched candidate)
/// — O(changed sites + changed transfers), not O(program).
///
/// ## Data layout
///
/// The hot paths are allocation-free in steady state and string-free
/// throughout: array and candidate names are interned into dense integer ids
/// at construction (the string overloads of `set_home` / `migrate_array` are
/// setup-time shims that validate and forward to the id overloads), the
/// site -> covering and candidate -> sites/ancestors maps are flattened into
/// contiguous offset-indexed arrays (accessors return `core::IntSpan` views),
/// and the undo journal lives in a reserve-once `core::ArenaStack` that
/// rewinding never returns to the heap.
///
/// ## Exactness contract
///
/// `cost()` / `totals()` / `scalar()` are **bit-identical** to
/// `estimate_cost(ctx, assignment())` (and `Objective::scalar` of it): the
/// engine caches the very term values the from-scratch path computes and
/// re-accumulates them in the same canonical order (sites in id order, then
/// transfers in copy-selection order, then pinned arrays in declaration
/// order).  Floating-point summation order is part of the contract; searches
/// built on the engine make exactly the decisions the from-scratch searches
/// make.  The scalar read is O(sites + copies) cached additions; the
/// expensive parts (resolution, model lookups, IR walks, allocation) are
/// all precomputed or maintained incrementally.
///
/// The engine's assignment must not hold duplicate copy-candidate entries
/// (`load` throws std::invalid_argument; searches never create duplicates).
class CostEngine {
 public:
  explicit CostEngine(const AssignContext& ctx);

  /// Full (re)load of an assignment: one O(sites x covering) resolution.
  /// Clears the undo history.
  void load(const Assignment& assignment);

  /// The live assignment the engine mirrors.  Mutated in place by the move
  /// methods; copy it if you need a snapshot.  The `array_layer` map is
  /// synced lazily on read (home moves only touch the dense id-indexed
  /// table); `placed_copies()` is the map-free hot-path view.
  const Assignment& assignment() const {
    if (assignment_dirty_) sync_assignment();
    return assignment_;
  }

  /// The live placed-copy list, in selection order — the same vector
  /// `assignment().copies` exposes, without triggering the array_layer sync.
  const std::vector<PlacedCopy>& placed_copies() const { return assignment_.copies; }

  const AssignContext& context() const { return ctx_; }

  // -------------------------------------------------------------- moves
  /// A checkpoint marks a point in the undo history; `undo_to` rewinds to
  /// it.  Checkpoints nest (LIFO): rewind to an older checkpoint undoes
  /// everything after it, compound moves included.
  using Checkpoint = std::size_t;
  Checkpoint checkpoint() const { return undo_.size(); }
  void undo_to(Checkpoint mark);

  /// Select candidate `cc_id` on `layer`.  Throws std::invalid_argument on
  /// unknown ids/layers or if the candidate is already selected (mirrors
  /// `resolve()`'s validation).
  void select_copy(int cc_id, int layer);

  /// Deselect candidate `cc_id` (must be selected).
  void remove_copy(int cc_id);

  /// Move the array's home to `layer` and drop every copy the new home makes
  /// layering-invalid, exactly like `drop_invalid_copies`.  Returns the
  /// number of copies dropped.  The whole compound move rewinds as one unit
  /// via a checkpoint taken before the call.
  ///
  /// The id overload is the hot path (debug-asserted arguments only); the
  /// string overload validates and forwards — setup-time convenience.
  int migrate_array(std::size_t array_index, int layer);
  int migrate_array(const std::string& array, int layer);

  /// Primitive home change without the invalid-copy sweep (exhaustive
  /// enumeration sets homes before any copy exists).  Same id/string split
  /// as `migrate_array`.
  void set_home(std::size_t array_index, int layer);
  void set_home(const std::string& array, int layer);

  /// Dense id of a declared array name (throws std::invalid_argument on
  /// unknown names).  Intern once at setup; move with the id overloads.
  std::size_t array_id(const std::string& name) const { return array_index(name); }
  std::size_t num_arrays() const { return array_names_.size(); }

  // ------------------------------------------------------------ queries
  bool has_copy(int cc_id) const { return copy_layer_[static_cast<std::size_t>(cc_id)] >= 0; }
  int copy_layer(int cc_id) const { return copy_layer_[static_cast<std::size_t>(cc_id)]; }
  int home_of(std::size_t array_index) const { return home_[array_index]; }

  /// Layer serving access site `site` under the current assignment
  /// (== resolve().site_layer[site]).
  int serving_layer(std::size_t site) const {
    int cc = serving_cc_[site];
    return cc >= 0 ? copy_layer_[static_cast<std::size_t>(cc)] : home_[site_array_[site]];
  }

  /// Parent-store layer of candidate `cc_id` (deepest selected ancestor, or
  /// the array's home layer) under the current assignment.
  int parent_layer(int cc_id) const;

  /// True iff every selected copy sits strictly closer to the processor than
  /// its parent store.  O(copies x chain depth), no resolve.
  bool layering_valid() const;

  /// O(1) feasibility of the live assignment — exactly
  /// `fits(ctx, assignment())`, answered from the composed FootprintTracker
  /// (maintained in lockstep with every move and undo).
  bool fits() const { return footprint_.feasible(); }

  /// The composed tracker, for searches that need the usage matrix itself
  /// (the branch-and-bound capacity pruning reads single cells).
  const FootprintTracker& footprint() const { return footprint_; }

  // --------------------------------------------------------- evaluation
  /// The scalar-relevant accumulators of a CostEstimate, without the
  /// per-layer access-count vectors (no allocation on the hot path).
  struct Totals {
    double energy_nj = 0.0;
    double compute_cycles = 0.0;
    double access_cycles = 0.0;
    double transfer_cycles = 0.0;
    double total_cycles() const { return compute_cycles + access_cycles + transfer_cycles; }
  };

  /// Bit-identical to the double fields of `estimate_cost(ctx, assignment())`.
  Totals totals() const;

  /// Bit-identical to `estimate_cost(ctx, assignment())`, counts included.
  CostEstimate cost() const;

  /// Bit-identical to `objective.scalar(estimate_cost(ctx, assignment()))`.
  double scalar(const Objective& objective) const {
    Totals t = totals();
    return objective.scalar_terms(t.energy_nj, t.total_cycles());
  }

  /// Batched scoring of one round of select-copy moves.  For each slot `m`,
  /// decides whether selecting candidate `cc_ids[m]` on `layers[m]` keeps
  /// the assignment feasible *and* layering-valid (`ok[m]`), and when it
  /// does, computes the post-move objective scalar into `scalars[m]` —
  /// bit-identical, slot for slot, to the sequential
  /// `checkpoint / select_copy / fits() && layering_valid() / scalar() /
  /// undo_to` cycle.
  ///
  /// One site-major pass over the contiguous term tables scores every slot:
  /// each slot's accumulators receive exactly the additions `totals()` would
  /// perform after the move, in the same canonical order (sites in id order,
  /// then transfers in copy order with the new copy last, then pinned arrays
  /// in declaration order), so the floating-point results match the
  /// sequential path bit for bit.
  ///
  /// Preconditions (the searches' standing invariants): every `cc_ids[m]` is
  /// a currently unselected candidate, and the live assignment is
  /// layering-valid.  The engine state is never touched; internal scratch is
  /// reused across calls, so steady-state calls are allocation-free.
  void score_select_candidates(const Objective& objective, const int* cc_ids, const int* layers,
                               std::size_t count, double* scalars, unsigned char* ok) const;

  // ------------------------------------------- precomputed term accessors
  // Exposed for the branch-and-bound lower bound in exhaustive_assign: the
  // bound is built from the same cached terms the evaluation uses, so it is
  // admissible by construction.
  std::size_t num_sites() const { return site_n_.size(); }
  std::size_t num_candidates() const { return cc_level_.size(); }
  double compute_cycles() const { return compute_cycles_; }

  /// n * access_energy / n * access_latency of `site` if served by `layer`.
  double site_energy_term(std::size_t site, int layer) const {
    return site_energy_[site * static_cast<std::size_t>(num_layers_) +
                        static_cast<std::size_t>(layer)];
  }
  double site_cycle_term(std::size_t site, int layer) const {
    return site_cycles_[site * static_cast<std::size_t>(num_layers_) +
                        static_cast<std::size_t>(layer)];
  }

  /// Candidate ids covering `site`, deepest (highest level) first.
  core::IntSpan covering(std::size_t site) const {
    const int* base = covering_items_.data();
    return {base + covering_off_[site], base + covering_off_[site + 1]};
  }

  /// Member site ids of candidate `cc_id` (the sites whose serving layer a
  /// selection of the candidate can change).
  core::IntSpan candidate_sites(int cc_id) const {
    std::size_t c = static_cast<std::size_t>(cc_id);
    const int* base = cc_sites_items_.data();
    return {base + cc_sites_off_[c], base + cc_sites_off_[c + 1]};
  }

  /// Suffix minima over undecided candidates, for bound tightening in the
  /// branch-and-bound searches.  With candidates decided in id order,
  /// `site_suffix_energy(s, j)` is the cheapest energy term any *undecided*
  /// candidate (id >= j) covering `s` could still give the site — the min
  /// over those candidates and every on-chip layer each individually fits —
  /// or +infinity once no covering candidate remains open.  Together with
  /// the site's current serving term this bounds the site's final term from
  /// below (admissibly: the final serving layer is either the current one or
  /// one offered by an undecided covering candidate).
  double site_suffix_energy(std::size_t site, std::size_t next_cc) const {
    return site_suffix_e_[site * (num_candidates() + 1) + next_cc];
  }
  double site_suffix_cycles(std::size_t site, std::size_t next_cc) const {
    return site_suffix_c_[site * (num_candidates() + 1) + next_cc];
  }

  /// Energy / blocking-cycle contribution of selecting `cc_id` with parent
  /// store `src` and own layer `dst` (fill + write-back as applicable).
  double cc_energy_term(int cc_id, int src, int dst) const;
  double cc_cycle_term(int cc_id, int src, int dst) const;

  /// Pinned fill/flush (energy, cycles) totals for the current array homes.
  std::pair<double, double> pinned_totals() const;

  /// Index of the array access site `site` belongs to.
  std::size_t site_array(std::size_t site) const { return site_array_[site]; }

  /// Pinned fill+flush contribution of homing array `array` on `home`
  /// (zero for the background home) — the per-array terms `pinned_totals`
  /// sums for the current homes.
  double pinned_energy_term(std::size_t array, int home) const;
  double pinned_cycle_term(std::size_t array, int home) const;

 private:
  struct UndoRec {
    enum class Kind { Serving, CopyPush, CopyErase, Home };
    Kind kind;
    int a = 0;  ///< Serving: site     CopyPush/CopyErase: cc_id  Home: array idx
    int b = 0;  ///< Serving: old cc   CopyErase: layer           Home: old layer
    int c = 0;  ///< CopyErase: index in copies
  };

  std::size_t table_index(int cc_id, int src, int dst) const {
    return (static_cast<std::size_t>(cc_id) * static_cast<std::size_t>(num_layers_) +
            static_cast<std::size_t>(src)) *
               static_cast<std::size_t>(num_layers_) +
           static_cast<std::size_t>(dst);
  }

  core::IntSpan ancestors(int cc_id) const {
    std::size_t c = static_cast<std::size_t>(cc_id);
    const int* base = cc_anc_items_.data();
    return {base + cc_anc_off_[c], base + cc_anc_off_[c + 1]};
  }

  void set_serving(std::size_t site, int cc_id);
  void validate_copy(int cc_id, int layer) const;
  std::size_t array_index(const std::string& name) const;
  /// Replay every home change since load into assignment_.array_layer —
  /// writes exactly the entries the eager per-move map writes produced.
  void sync_assignment() const;

  const AssignContext& ctx_;
  int num_layers_ = 0;
  int background_ = 0;

  // ---- assignment-independent precomputation
  double compute_cycles_ = 0.0;
  std::vector<i64> site_n_;            ///< dynamic accesses per site
  std::vector<bool> site_write_;
  std::vector<std::size_t> site_array_;  ///< site -> array index
  std::vector<double> site_energy_;    ///< [site][layer]
  std::vector<double> site_cycles_;    ///< [site][layer]
  std::vector<int> covering_items_;          ///< site -> cc ids, level desc (CSR)
  std::vector<std::size_t> covering_off_;    ///< size sites + 1
  std::vector<int> cc_level_;
  std::vector<bool> cc_fill_free_;
  std::vector<bool> cc_write_back_;
  std::vector<i64> cc_elems_moved_;
  std::vector<int> cc_sites_items_;          ///< cc -> member site ids (CSR)
  std::vector<std::size_t> cc_sites_off_;    ///< size candidates + 1
  std::vector<int> cc_anc_items_;            ///< cc -> ancestor ids, level desc (CSR)
  std::vector<std::size_t> cc_anc_off_;      ///< size candidates + 1
  std::vector<std::size_t> cc_array_;          ///< cc -> array index
  std::vector<double> fill_energy_;    ///< [cc][src][dst]
  std::vector<double> wb_energy_;      ///< [cc][src][dst]
  std::vector<double> xfer_cycles_;    ///< [cc][src][dst] (per direction)
  std::vector<double> site_suffix_e_;  ///< [site][next_cc] suffix minima
  std::vector<double> site_suffix_c_;  ///< [site][next_cc]
  std::vector<std::string> array_names_;          ///< array index -> name
  std::map<std::string, std::size_t> array_index_;  ///< setup-time interning only
  std::vector<bool> array_input_;
  std::vector<bool> array_output_;
  std::vector<i64> array_elems_;
  std::vector<double> pin_fill_energy_;   ///< [array][home]
  std::vector<double> pin_fill_cycles_;   ///< [array][home]
  std::vector<double> pin_flush_energy_;  ///< [array][home]
  std::vector<double> pin_flush_cycles_;  ///< [array][home]

  // ---- incremental state
  /// The copies vector is maintained eagerly (selection order is the
  /// canonical transfer order); array_layer is synced lazily from home_ on
  /// `assignment()` reads, hence mutable together with the dirty flag.
  mutable Assignment assignment_;
  mutable bool assignment_dirty_ = false;
  std::vector<char> home_touched_;      ///< array changed home since load()
  std::vector<int> home_touched_list_;
  std::vector<int> copy_layer_;   ///< cc -> layer or -1
  std::vector<int> serving_cc_;   ///< site -> deepest selected covering cc or -1
  std::vector<int> home_;         ///< array index -> home layer
  core::ArenaStack<UndoRec> undo_;
  std::vector<int> offenders_;    ///< migrate_array fixpoint scratch
  FootprintTracker footprint_;    ///< usage matrix, mirrored move for move

  // ---- batched-scoring scratch (sized once at construction, reused per
  // call; mutable because scoring is logically const)
  mutable std::vector<int> scr_stamp_;            ///< cc -> site currently marking it affected
  mutable std::vector<int> scr_desc_max_;         ///< cc -> deepest displaced-copy layer
  mutable std::vector<int> scr_parent_;           ///< placed-copy slot -> current parent layer
  mutable std::vector<unsigned char> scr_displaces_;  ///< [cc][placed-copy slot]
  mutable std::vector<double> scr_e_;             ///< per-slot energy accumulator
  mutable std::vector<double> scr_ac_;            ///< per-slot access-cycle accumulator
  mutable std::vector<double> scr_pin_e_;         ///< active pinned terms, declaration order
  mutable std::vector<double> scr_pin_c_;
};

}  // namespace mhla::assign
