#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assign/anneal.h"
#include "assign/exhaustive.h"
#include "assign/greedy.h"
#include "assign/search_status.h"
#include "core/run_budget.h"

namespace mhla::assign {

/// Optimization target of an MHLA search (the paper's trade-off axes).
enum class Target {
  Energy,    ///< minimize memory energy
  Time,      ///< minimize execution cycles
  Balanced,  ///< equal normalized weight on both (paper's trade-off points)
  Custom,    ///< keep the caller's explicit energy/time weights
};

/// The one named-Target -> (energy_weight, time_weight) mapping.  Every
/// caller — the legacy `mhla_step1` shim, the pipeline, the sweep — goes
/// through here, so a target always means the same weights everywhere.
/// Target::Custom has no canonical weights and throws; use
/// `SearchOptions::set_target`, which keeps the explicit weights for it.
std::pair<double, double> target_weights(Target target);

/// Parse "energy" / "time" / "balanced" / "custom"; throws
/// std::invalid_argument on anything else.  Inverse of `to_string(Target)`.
Target parse_target(const std::string& name);
std::string to_string(Target target);

/// Unified options for every registered search strategy.  The strategy
/// consumes the subset that applies to it (greedy reads `max_moves`,
/// exhaustive reads `max_states`, ...) and ignores the rest, so one struct
/// configures any strategy selected by name.
struct SearchOptions {
  double energy_weight = 1.0;  ///< relative weight of normalized energy
  double time_weight = 1.0;    ///< relative weight of normalized time

  int max_moves = 100000;        ///< greedy: safety bound on accepted moves
  long max_states = 2'000'000;   ///< exhaustive: hard bound on evaluated states
  bool allow_array_migration = true;  ///< consider moving whole arrays on-chip

  /// "anneal" knobs (see AnnealOptions for semantics).  The seed is part of
  /// the options on purpose: a config document pins the whole stochastic
  /// walk, so annealing results reproduce bit-identically from a file.
  int anneal_iterations = 2000;
  std::uint32_t anneal_seed = 1;
  double anneal_initial_temp = 0.05;
  double anneal_cooling = 0.997;

  /// Engine toggles (see GreedyOptions / ExhaustiveOptions for semantics).
  /// The "-ref" registry strategies, "bnb" and "bnb-par" override these;
  /// "greedy" and "exhaustive" honor them.
  bool use_cost_engine = true;
  bool use_branch_and_bound = true;

  /// Answer feasibility probes from the engine's incremental
  /// FootprintTracker instead of a from-scratch `fits()` rebuild per probe
  /// (engine-backed strategies: greedy, bnb, bnb-par, exhaustive, anneal).
  /// Verdicts are exact either way, so results are bit-identical; off is
  /// the reference path for the equivalence tests.
  bool use_footprint_tracker = true;

  /// Score each greedy round's select-copy moves in one batched pass over
  /// the engine's contiguous term tables instead of a checkpoint/apply/undo
  /// cycle per candidate (see GreedyOptions::batched_scoring).  Per-slot
  /// accumulation preserves the canonical summation order, so the walk is
  /// bit-identical; off is the reference path for the equivalence tests.
  bool greedy_batched_scoring = true;

  /// Filter the branch-and-bound copy-phase bound tables by the tracker's
  /// homes-only per-nest headroom at each copy-phase entry (see
  /// ExhaustiveOptions::use_footprint_bound).  Strictly tightens pruning;
  /// results are bit-identical on or off.
  bool use_footprint_bound = true;

  /// "bnb-par" knobs: parallel branch-and-bound over subtree tasks sharing
  /// one atomic incumbent bound.  The result is bit-identical to serial
  /// "bnb" for any thread count (the incumbent only prunes); the knobs
  /// trade setup overhead against load balance and bound strength.
  unsigned bnb_threads = 0;        ///< worker threads (0 = hardware concurrency)
  int bnb_tasks_per_thread = 4;    ///< static split only: target root tasks per worker
  bool bnb_seed_incumbent = true;  ///< seed the shared bound with the greedy scalar
  /// Schedule "bnb-par" subtree tasks on work-stealing deques that split on
  /// demand (default) instead of the fixed root-frontier split; off keeps
  /// the static split as the scaling-comparison baseline.
  bool bnb_work_stealing = true;

  /// Cooperative run budget for any strategy (see core::BudgetSpec).  The
  /// deadline/probe knobs round-trip through the JSON config ("search"
  /// object keys "deadline_seconds" / "max_probes"); the cancel flag is a
  /// live process object and never serialized.  When the budget binds, the
  /// strategy returns best-so-far with status BudgetExhausted instead of
  /// running on (exact strategies also certify an optimality gap), and a
  /// bounded budget lifts the placement guard for engine-backed exact
  /// search (anytime mode).
  core::BudgetSpec budget;

  /// Live budget token shared across stages (search + time extension +
  /// batch / exploration siblings).  When set it takes precedence over
  /// `budget`, so a driver can start one deadline clock for a whole run
  /// instead of restarting it per stage.  Not serialized; compared by
  /// identity in operator==.
  core::RunBudget* shared_budget = nullptr;

  /// Replace the weights with the canonical mapping for `target`;
  /// Target::Custom leaves the explicit weights untouched.
  SearchOptions& set_target(Target target);

  friend bool operator==(const SearchOptions&, const SearchOptions&) = default;
};

/// Unified result of any strategy.  Greedy strategies fill the move trace
/// and `evaluations`; exhaustive strategies fill the state counters.
struct SearchResult {
  Assignment assignment;
  double scalar = 0.0;  ///< final scalarized objective value

  std::vector<GreedyMove> moves;  ///< accepted-move trace (greedy strategies)
  int evaluations = 0;            ///< cost-model invocations (greedy strategies)

  long states_explored = 0;       ///< evaluated states (exhaustive strategies)
  bool exhausted_budget = false;  ///< status == BudgetExhausted (legacy mirror)
  long bound_prunes = 0;          ///< subtrees cut by the lower bound
  long capacity_prunes = 0;       ///< placements cut by cumulative capacity

  /// Outcome contract (see assign/search_status.h).  Exact strategies that
  /// ran to completion report Optimal with gap 0; a budget-truncated exact
  /// search reports BudgetExhausted with a certified gap against
  /// `lower_bound` (gap = -1 when no admissible bound was available);
  /// heuristics report Feasible / BudgetExhausted with gap -1.
  SearchStatus status = SearchStatus::Feasible;
  double gap = -1.0;
  double lower_bound = 0.0;  ///< global admissible root bound (engine B&B only)
};

/// A search strategy selectable by name.  Implementations must be
/// stateless across `search` calls (one registered instance serves every
/// caller, including parallel batch drivers).
class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual SearchResult search(const AssignContext& ctx, const SearchOptions& options) const = 0;
};

/// Registered strategy names, sorted.  Built-ins: "anneal" (seeded
/// simulated annealing on the cost engine), "greedy" (engine-backed
/// steering heuristic), "greedy-ref" (from-scratch reference), "bnb"
/// (branch-and-bound exhaustive), "bnb-par" (parallel branch-and-bound with
/// a shared incumbent, bit-identical to "bnb"), "exhaustive" (engine
/// enumeration honoring the toggles), "exhaustive-ref" (from-scratch
/// enumeration).
std::vector<std::string> searcher_names();

/// Look up a strategy by name; throws std::out_of_range whose message lists
/// every registered name (surfaced verbatim by the CLI tool).
const Searcher& searcher(const std::string& name);

/// Factory-style alias for `searcher(name)`.  The exploration subsystem and
/// its docs refer to strategies through this name.
inline const Searcher& make_searcher(const std::string& name) { return searcher(name); }

/// Register a custom strategy (replaces any previous entry with the same
/// name).  Not thread-safe against concurrent lookups; register during
/// startup.
void register_searcher(std::unique_ptr<Searcher> strategy);

}  // namespace mhla::assign
