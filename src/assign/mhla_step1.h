#pragma once

#include "assign/search.h"

namespace mhla::assign {

/// Step-1 driver options (legacy shim; new code drives the strategy
/// registry through `searcher("greedy")` + `SearchOptions::set_target`,
/// see assign/search.h).
struct Step1Options {
  Target target = Target::Balanced;
  GreedyOptions greedy;
};

/// Run MHLA step 1 ("selection and assignment"): generate nothing — the
/// analyses live in the context — and steer the greedy search with the
/// requested target weights (the one mapping in `target_weights`).
GreedyResult mhla_step1(const AssignContext& ctx, const Step1Options& options = {});

}  // namespace mhla::assign
