#pragma once

#include "assign/greedy.h"

namespace mhla::assign {

/// Optimization target of MHLA step 1.
enum class Target {
  Energy,    ///< minimize memory energy
  Time,      ///< minimize execution cycles
  Balanced,  ///< equal normalized weight on both (paper's trade-off points)
};

/// Step-1 driver options.
struct Step1Options {
  Target target = Target::Balanced;
  GreedyOptions greedy;
};

/// Run MHLA step 1 ("selection and assignment"): generate nothing — the
/// analyses live in the context — and steer the greedy search with the
/// requested target weights.
GreedyResult mhla_step1(const AssignContext& ctx, const Step1Options& options = {});

}  // namespace mhla::assign
