#include "assign/cost.h"

#include "ir/walk.h"

namespace mhla::assign {

CostEstimate estimate_cost(const AssignContext& ctx, const Assignment& assignment) {
  return estimate_cost(ctx, assignment, resolve(ctx, assignment));
}

CostEstimate estimate_cost(const AssignContext& ctx, const Assignment& assignment,
                           const Resolution& res) {
  CostEstimate cost;
  int num_layers = ctx.hierarchy.num_layers();
  cost.layer_reads.assign(static_cast<std::size_t>(num_layers), 0);
  cost.layer_writes.assign(static_cast<std::size_t>(num_layers), 0);

  // Statement computation.
  ir::walk_statements(ctx.program,
                      [&](int /*nest*/, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        cost.compute_cycles += static_cast<double>(ir::iterations_of(path)) *
                                               static_cast<double>(stmt.op_cycles());
                      });

  // Processor accesses, served by the resolved layer per site.
  for (const analysis::AccessSite& site : ctx.sites) {
    int layer_idx = res.site_layer[static_cast<std::size_t>(site.id)];
    const mem::MemLayer& layer = ctx.hierarchy.layer(layer_idx);
    i64 n = site.dynamic_accesses();
    bool is_write = site.is_write();
    cost.energy_nj += static_cast<double>(n) * layer.access_energy_nj(is_write);
    cost.access_cycles += static_cast<double>(n) * layer.access_latency(is_write);
    if (is_write) {
      cost.layer_writes[static_cast<std::size_t>(layer_idx)] += n;
    } else {
      cost.layer_reads[static_cast<std::size_t>(layer_idx)] += n;
    }
  }

  // Copy traffic: each selected CC is refilled `transfers` times with
  // `elems_per_transfer` elements; each element is one read at the source
  // layer and one write at the destination layer.  Dirty copies flush back.
  for (const TransferEdge& edge : res.transfers) {
    const analysis::CopyCandidate& cc = ctx.reuse.candidate(edge.cc_id);
    const mem::MemLayer& src = ctx.hierarchy.layer(edge.src_layer);
    const mem::MemLayer& dst = ctx.hierarchy.layer(edge.dst_layer);
    i64 elems_moved = cc.transfers * cc.elems_per_transfer;
    double fills = static_cast<double>(elems_moved);

    double per_issue =
        mem::blocking_transfer_cycles(cc.bytes_per_transfer(), src, dst, ctx.dma);

    if (!cc.fill_free) {
      cost.energy_nj += fills * (src.access_energy_nj(false) + dst.access_energy_nj(true));
      cost.layer_reads[static_cast<std::size_t>(edge.src_layer)] += elems_moved;
      cost.layer_writes[static_cast<std::size_t>(edge.dst_layer)] += elems_moved;
      cost.transfer_cycles += static_cast<double>(cc.transfers) * per_issue;
    }

    if (edge.write_back) {
      cost.energy_nj += fills * (dst.access_energy_nj(false) + src.access_energy_nj(true));
      cost.layer_reads[static_cast<std::size_t>(edge.dst_layer)] += elems_moved;
      cost.layer_writes[static_cast<std::size_t>(edge.src_layer)] += elems_moved;
      cost.transfer_cycles += static_cast<double>(cc.transfers) * per_issue;
    }
  }
  // One-time fills/flushes of pinned on-chip inputs/outputs (see
  // PinnedTraffic): one element read at the source + write at the
  // destination, plus a blocking whole-array transfer.
  for (const PinnedTraffic& pinned : pinned_array_traffic(ctx, assignment)) {
    const mem::MemLayer& home = ctx.hierarchy.layer(pinned.home);
    const mem::MemLayer& bg = ctx.hierarchy.layer(ctx.hierarchy.background());
    const mem::MemLayer& src = pinned.fill ? bg : home;
    const mem::MemLayer& dst = pinned.fill ? home : bg;
    double elems = static_cast<double>(pinned.array->elems());
    cost.energy_nj += elems * (src.access_energy_nj(false) + dst.access_energy_nj(true));
    int src_layer = pinned.fill ? ctx.hierarchy.background() : pinned.home;
    int dst_layer = pinned.fill ? pinned.home : ctx.hierarchy.background();
    cost.layer_reads[static_cast<std::size_t>(src_layer)] += pinned.array->elems();
    cost.layer_writes[static_cast<std::size_t>(dst_layer)] += pinned.array->elems();
    cost.transfer_cycles += mem::blocking_transfer_cycles(pinned.array->bytes(), src, dst, ctx.dma);
  }

  return cost;
}

std::vector<double> nest_cpu_cycles(const AssignContext& ctx, const Assignment& assignment) {
  return nest_cpu_cycles(ctx, resolve(ctx, assignment));
}

std::vector<double> nest_cpu_cycles(const AssignContext& ctx, const Resolution& res) {
  std::vector<double> cycles(ctx.program.top().size(), 0.0);

  ir::walk_statements(ctx.program,
                      [&](int nest, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        cycles[static_cast<std::size_t>(nest)] +=
                            static_cast<double>(ir::iterations_of(path)) *
                            static_cast<double>(stmt.op_cycles());
                      });
  for (const analysis::AccessSite& site : ctx.sites) {
    int layer_idx = res.site_layer[static_cast<std::size_t>(site.id)];
    const mem::MemLayer& layer = ctx.hierarchy.layer(layer_idx);
    cycles[static_cast<std::size_t>(site.nest)] += static_cast<double>(site.dynamic_accesses()) *
                                                   layer.access_latency(site.is_write());
  }
  return cycles;
}

double loop_iteration_cpu_cycles(const AssignContext& ctx, const Assignment& assignment, int nest,
                                 const ir::LoopNode* loop) {
  return loop_iteration_cpu_cycles(ctx, resolve(ctx, assignment), nest, loop);
}

double loop_iteration_cpu_cycles(const AssignContext& ctx, const Resolution& res, int nest,
                                 const ir::LoopNode* loop) {
  double cycles = 0.0;

  auto inner_iterations = [&](const ir::LoopPath& path) -> i64 {
    // Iterations of everything strictly inside `loop` along `path`;
    // -1 signals that `loop` is not on this statement's path.
    i64 inner = 1;
    bool found = false;
    for (const ir::LoopNode* node : path) {
      if (found) inner *= node->trip();
      if (node == loop) found = true;
    }
    return found ? inner : -1;
  };

  ir::walk_statements(ctx.program,
                      [&](int n, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        if (n != nest) return;
                        i64 inner = inner_iterations(path);
                        if (inner < 0) return;
                        cycles += static_cast<double>(inner) *
                                  static_cast<double>(stmt.op_cycles());
                      });
  for (const analysis::AccessSite& site : ctx.sites) {
    if (site.nest != nest) continue;
    i64 inner = inner_iterations(site.path);
    if (inner < 0) continue;
    int layer_idx = res.site_layer[static_cast<std::size_t>(site.id)];
    const mem::MemLayer& layer = ctx.hierarchy.layer(layer_idx);
    cycles += static_cast<double>(inner * site.access->count) *
              layer.access_latency(site.is_write());
  }
  return cycles;
}

Objective make_objective(const AssignContext& ctx, double energy_weight, double time_weight) {
  CostEstimate baseline = estimate_cost(ctx, out_of_box(ctx));
  Objective obj;
  obj.energy_weight = energy_weight;
  obj.time_weight = time_weight;
  obj.baseline_energy_nj = baseline.energy_nj > 0 ? baseline.energy_nj : 1.0;
  obj.baseline_cycles = baseline.total_cycles() > 0 ? baseline.total_cycles() : 1.0;
  return obj;
}

}  // namespace mhla::assign
