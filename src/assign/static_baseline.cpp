#include "assign/static_baseline.h"

#include <algorithm>
#include <vector>

namespace mhla::assign {

StaticBaselineResult static_baseline_assign(const AssignContext& ctx) {
  StaticBaselineResult result;
  result.assignment = out_of_box(ctx);

  // Rank arrays by dynamic accesses per byte, densest first.
  struct Ranked {
    const ir::ArrayDecl* array;
    double density;
  };
  std::vector<Ranked> ranked;
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    i64 accesses = 0;
    for (const analysis::AccessSite& site : ctx.sites) {
      if (site.access->array == array.name) accesses += site.dynamic_accesses();
    }
    if (accesses == 0) continue;
    ranked.push_back({&array, static_cast<double>(accesses) / static_cast<double>(array.bytes())});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) { return a.density > b.density; });

  // First-fit into the on-chip layers, closest first, sum-of-sizes model.
  std::vector<i64> remaining;
  for (int l = 0; l < ctx.hierarchy.background(); ++l) {
    remaining.push_back(ctx.hierarchy.layer(l).capacity_bytes);
  }
  for (const Ranked& r : ranked) {
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (r.array->bytes() <= remaining[l]) {
        remaining[l] -= r.array->bytes();
        result.assignment.array_layer[r.array->name] = static_cast<int>(l);
        ++result.arrays_placed;
        break;
      }
    }
  }
  return result;
}

}  // namespace mhla::assign
