#include "assign/mhla_step1.h"

namespace mhla::assign {

GreedyResult mhla_step1(const AssignContext& ctx, const Step1Options& options) {
  GreedyOptions greedy = options.greedy;
  switch (options.target) {
    case Target::Energy:
      greedy.energy_weight = 1.0;
      greedy.time_weight = 0.0;
      break;
    case Target::Time:
      greedy.energy_weight = 0.0;
      greedy.time_weight = 1.0;
      break;
    case Target::Balanced:
      greedy.energy_weight = 1.0;
      greedy.time_weight = 1.0;
      break;
  }
  return greedy_assign(ctx, greedy);
}

}  // namespace mhla::assign
