#include "assign/mhla_step1.h"

#include <tuple>

namespace mhla::assign {

GreedyResult mhla_step1(const AssignContext& ctx, const Step1Options& options) {
  GreedyOptions greedy = options.greedy;
  if (options.target != Target::Custom) {
    std::tie(greedy.energy_weight, greedy.time_weight) = target_weights(options.target);
  }
  return greedy_assign(ctx, greedy);
}

}  // namespace mhla::assign
