#include "assign/footprint_tracker.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mhla::assign {

FootprintTracker::FootprintTracker(const AssignContext& ctx)
    : FootprintTracker(ctx, out_of_box(ctx)) {}

FootprintTracker::FootprintTracker(const AssignContext& ctx, const Assignment& assignment,
                                   const std::vector<CopyExtension>& extensions)
    : ctx_(ctx),
      num_layers_(ctx.hierarchy.num_layers()),
      num_nests_(static_cast<int>(ctx.program.top().size())),
      background_(ctx.hierarchy.background()),
      row_(static_cast<std::size_t>(std::max(num_nests_, 1))) {
  layer_capacity_.resize(static_cast<std::size_t>(num_layers_));
  for (int l = 0; l < num_layers_; ++l) {
    const mem::MemLayer& layer = ctx_.hierarchy.layer(l);
    layer_capacity_[static_cast<std::size_t>(l)] = layer.unbounded() ? 0 : layer.capacity_bytes;
  }

  min_placeable_ = min_placeable_bytes(ctx_.program, ctx_.reuse);
  const auto& arrays = ctx_.program.arrays();
  array_bytes_.resize(arrays.size());
  array_first_.assign(arrays.size(), 0);
  array_last_.assign(arrays.size(), -1);  // dead unless a live range says otherwise
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    array_names_.push_back(arrays[a].name);
    array_index_.emplace(arrays[a].name, a);
    array_bytes_[a] = arrays[a].bytes();
    auto it = ctx_.live.find(arrays[a].name);
    if (it == ctx_.live.end() || analysis::is_dead(it->second)) continue;
    // Clip to the matrix exactly like compute_footprints' loop bounds.
    array_first_[a] = std::max(it->second.first, 0);
    array_last_[a] = std::min(it->second.last, num_nests_ - 1);
  }

  const auto& candidates = ctx_.reuse.candidates();
  cc_nest_.resize(candidates.size());
  cc_bytes_.resize(candidates.size());
  for (const analysis::CopyCandidate& cc : candidates) {
    std::size_t c = static_cast<std::size_t>(cc.id);
    cc_nest_[c] = cc.nest;
    cc_bytes_[c] = cc.bytes;
  }

  // Size the undo arena so steady-state move/undo traffic (searches, TE
  // freedom-unit loops, work-stealing engine reuse) never regrows it.
  undo_.reserve(64 + 4 * candidates.size() + 2 * arrays.size());

  load(assignment, extensions);
}

i64 FootprintTracker::min_placeable_bytes(const ir::Program& program,
                                          const analysis::ReuseAnalysis& reuse) {
  i64 min_bytes = std::numeric_limits<i64>::max();
  for (const ir::ArrayDecl& array : program.arrays()) {
    if (array.bytes() > 0) min_bytes = std::min(min_bytes, array.bytes());
  }
  for (const analysis::CopyCandidate& cc : reuse.candidates()) {
    if (cc.elems > 0 && cc.bytes > 0) min_bytes = std::min(min_bytes, cc.bytes);
  }
  return min_bytes;
}

std::size_t FootprintTracker::array_index(const std::string& name) const {
  auto it = array_index_.find(name);
  if (it == array_index_.end()) {
    throw std::invalid_argument("FootprintTracker: unknown array " + name);
  }
  return it->second;
}

void FootprintTracker::validate_copy(int cc_id, int layer) const {
  if (cc_id < 0 || static_cast<std::size_t>(cc_id) >= cc_nest_.size()) {
    throw std::invalid_argument("FootprintTracker: unknown copy candidate id " +
                                std::to_string(cc_id));
  }
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("FootprintTracker: copy placed on unknown layer " +
                                std::to_string(layer));
  }
}

void FootprintTracker::add_cell(int layer, int nest, i64 delta) {
  std::size_t idx = static_cast<std::size_t>(layer) * row_ + static_cast<std::size_t>(nest);
  i64 capacity = layer_capacity_[static_cast<std::size_t>(layer)];
  i64& cell = usage_[idx];
  if (capacity > 0) {
    bool was_over = cell > capacity;
    cell += delta;
    bool is_over = cell > capacity;
    overfull_cells_ += static_cast<long>(is_over) - static_cast<long>(was_over);
  } else {
    cell += delta;
  }
}

void FootprintTracker::apply_copy(std::size_t c, int sign) {
  int nest = cc_nest_[c];
  int layer = cc_layer_[c];
  i64 bytes = cc_bytes_[c];
  int ext_start = cc_ext_start_[c];
  int start = ext_start >= 0 ? std::min(nest, ext_start) : nest;
  i64 buffers = 1 + cc_ext_buffers_[c];
  for (int t = start; t <= nest && t < num_nests_; ++t) {
    if (t < 0) continue;
    // Multi-buffering only matters during the copy's own nest; the
    // prefetch tail occupies one buffer (same rule as compute_footprints).
    i64 cell_bytes = (t == nest) ? bytes * buffers : bytes;
    add_cell(layer, t, sign * cell_bytes);
  }
}

void FootprintTracker::apply_array(std::size_t a, int layer, int sign) {
  i64 bytes = array_bytes_[a];
  for (int t = array_first_[a]; t <= array_last_[a]; ++t) {
    add_cell(layer, t, sign * bytes);
  }
}

void FootprintTracker::load(const Assignment& assignment,
                            const std::vector<CopyExtension>& extensions) {
  undo_.clear();
  usage_.assign(static_cast<std::size_t>(num_layers_) * row_, 0);
  overfull_cells_ = 0;

  home_.resize(array_names_.size());
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    home_[a] = assignment.layer_of(array_names_[a], background_);
    apply_array(a, home_[a], +1);
  }

  cc_layer_.assign(cc_nest_.size(), -1);
  cc_ext_start_.assign(cc_nest_.size(), -1);
  cc_ext_buffers_.assign(cc_nest_.size(), 0);
  for (const PlacedCopy& pc : assignment.copies) {
    validate_copy(pc.cc_id, pc.layer);
    std::size_t c = static_cast<std::size_t>(pc.cc_id);
    if (cc_layer_[c] >= 0) {
      throw std::invalid_argument("FootprintTracker: duplicate copy candidate " +
                                  std::to_string(pc.cc_id));
    }
    cc_layer_[c] = pc.layer;
    // Fold every matching extension entry like compute_footprints: earliest
    // start wins, extra buffers accumulate.
    int start = cc_nest_[c];
    for (const CopyExtension& ext : extensions) {
      if (ext.cc_id != pc.cc_id) continue;
      if (ext.start_nest >= 0) start = std::min(start, ext.start_nest);
      cc_ext_buffers_[c] += ext.extra_buffers;
    }
    if (start < cc_nest_[c]) cc_ext_start_[c] = start;
    apply_copy(c, +1);
  }
}

void FootprintTracker::place_copy(int cc_id, int layer) {
  validate_copy(cc_id, layer);
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (cc_layer_[c] >= 0) {
    throw std::invalid_argument("FootprintTracker: candidate already placed " +
                                std::to_string(cc_id));
  }
  cc_layer_[c] = layer;
  apply_copy(c, +1);
  undo_.push_back({UndoRec::Kind::Place, cc_id, 0, 0, 0});
}

void FootprintTracker::remove_copy(int cc_id) {
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (cc_id < 0 || c >= cc_layer_.size() || cc_layer_[c] < 0) {
    throw std::invalid_argument("FootprintTracker: candidate not placed " +
                                std::to_string(cc_id));
  }
  undo_.push_back({UndoRec::Kind::Remove, cc_id, cc_layer_[c], cc_ext_start_[c],
                   cc_ext_buffers_[c]});
  apply_copy(c, -1);
  cc_layer_[c] = -1;
  cc_ext_start_[c] = -1;
  cc_ext_buffers_[c] = 0;
}

void FootprintTracker::set_home(const std::string& array, int layer) {
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("FootprintTracker: home on unknown layer " +
                                std::to_string(layer));
  }
  set_home(array_index(array), layer);
}

void FootprintTracker::set_home(std::size_t array_index, int layer) {
  assert(array_index < home_.size() && "FootprintTracker: unknown array id");
  assert(layer >= 0 && layer < num_layers_ && "FootprintTracker: home on unknown layer");
  if (home_[array_index] == layer) return;
  undo_.push_back({UndoRec::Kind::Home, static_cast<int>(array_index), home_[array_index], 0, 0});
  apply_array(array_index, home_[array_index], -1);
  home_[array_index] = layer;
  apply_array(array_index, layer, +1);
}

void FootprintTracker::extend_copy(int cc_id, int start_nest, int extra_buffers) {
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (cc_id < 0 || c >= cc_layer_.size() || cc_layer_[c] < 0) {
    throw std::invalid_argument("FootprintTracker: extending unplaced candidate " +
                                std::to_string(cc_id));
  }
  undo_.push_back({UndoRec::Kind::Extend, cc_id, 0, cc_ext_start_[c], cc_ext_buffers_[c]});
  apply_copy(c, -1);
  cc_ext_start_[c] = (start_nest >= 0 && start_nest < cc_nest_[c]) ? start_nest : -1;
  cc_ext_buffers_[c] = extra_buffers;
  apply_copy(c, +1);
}

void FootprintTracker::undo_one() {
  const UndoRec rec = undo_.back();
  undo_.pop_back();
  std::size_t c = static_cast<std::size_t>(rec.a);
  switch (rec.kind) {
    case UndoRec::Kind::Place:
      apply_copy(c, -1);
      cc_layer_[c] = -1;
      break;
    case UndoRec::Kind::Remove:
      cc_layer_[c] = rec.b;
      cc_ext_start_[c] = rec.c;
      cc_ext_buffers_[c] = rec.d;
      apply_copy(c, +1);
      break;
    case UndoRec::Kind::Home:
      apply_array(c, home_[c], -1);
      home_[c] = rec.b;
      apply_array(c, rec.b, +1);
      break;
    case UndoRec::Kind::Extend:
      apply_copy(c, -1);
      cc_ext_start_[c] = rec.c;
      cc_ext_buffers_[c] = rec.d;
      apply_copy(c, +1);
      break;
  }
}

void FootprintTracker::undo_to(Checkpoint mark) {
  while (undo_.size() > mark) undo_one();
}

bool FootprintTracker::feasible_with_copy(int cc_id, int layer) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  assert(cc_id >= 0 && c < cc_nest_.size() && "FootprintTracker: unknown copy candidate id");
  assert(layer >= 0 && layer < num_layers_ && "FootprintTracker: copy placed on unknown layer");
  long over = overfull_cells_;
  int nest = cc_nest_[c];
  // Mirrors apply_copy with no extension: exactly one cell — (layer, own
  // nest) — gains the copy's bytes, when that nest exists at all.
  if (nest >= 0 && nest < num_nests_) {
    i64 capacity = layer_capacity_[static_cast<std::size_t>(layer)];
    if (capacity > 0) {
      i64 cell = usage(layer, nest);
      over += static_cast<long>(cell + cc_bytes_[c] > capacity) - static_cast<long>(cell > capacity);
    }
  }
  return over == 0;
}

i64 FootprintTracker::peak(int layer) const {
  if (num_nests_ <= 0) return 0;
  auto begin = usage_.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(layer) * row_);
  return *std::max_element(begin, begin + num_nests_);
}

FootprintReport FootprintTracker::report() const {
  FootprintReport report;
  report.usage.resize(static_cast<std::size_t>(num_layers_));
  report.peak_bytes.resize(static_cast<std::size_t>(num_layers_));
  for (int l = 0; l < num_layers_; ++l) {
    auto begin = usage_.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(l) * row_);
    report.usage[static_cast<std::size_t>(l)].assign(begin, begin + static_cast<std::ptrdiff_t>(row_));
    // compute_footprints takes the max over the whole (padded) row, whose
    // pad cells are always zero, so the padded max equals the clipped max.
    report.peak_bytes[static_cast<std::size_t>(l)] =
        *std::max_element(begin, begin + static_cast<std::ptrdiff_t>(row_));
  }
  report.feasible = feasible();
  return report;
}

bool FootprintTracker::provably_out_of_box() const {
  return provably_out_of_box(ctx_.hierarchy, min_placeable_);
}

bool FootprintTracker::provably_out_of_box(const mem::Hierarchy& hierarchy, i64 min_placeable) {
  if (min_placeable <= 0) return false;  // defensive: nothing degenerate skips
  for (int l = 0; l < hierarchy.background(); ++l) {
    const mem::MemLayer& layer = hierarchy.layer(l);
    if (layer.unbounded() || layer.capacity_bytes >= min_placeable) {
      return false;  // this layer can hold something
    }
  }
  return true;
}

}  // namespace mhla::assign
