#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/lifetime.h"
#include "analysis/reuse.h"
#include "analysis/sites.h"
#include "mem/dma.h"
#include "mem/hierarchy.h"

namespace mhla::assign {

using ir::i64;

/// Everything the assignment and simulation passes need about one program on
/// one platform.  Non-owning; the driver (core/) owns the pieces.
struct AssignContext {
  const ir::Program& program;
  const std::vector<analysis::AccessSite>& sites;
  const analysis::ReuseAnalysis& reuse;
  const std::map<std::string, analysis::LiveRange>& live;
  const analysis::DependenceInfo& deps;
  const mem::Hierarchy& hierarchy;
  const mem::DmaEngine& dma;
};

/// A selected copy candidate placed on a memory layer.
struct PlacedCopy {
  int cc_id = -1;
  int layer = -1;

  friend bool operator==(const PlacedCopy&, const PlacedCopy&) = default;
};

/// MHLA step-1 result: a home layer for every array plus a set of selected,
/// placed copy candidates.
struct Assignment {
  std::map<std::string, int> array_layer;
  std::vector<PlacedCopy> copies;

  /// Layer of a selected CC, or -1 if the CC is not selected.
  int copy_layer(int cc_id) const;
  bool has_copy(int cc_id) const { return copy_layer(cc_id) >= 0; }

  /// Home layer of `array`; defaults to `fallback` when unassigned.
  int layer_of(const std::string& array, int fallback) const;

  /// Structural equality, including copy selection order (the order matters
  /// for the canonical cost-accumulation sequence).
  friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// The out-of-the-box configuration the paper normalizes against: every
/// array in background memory, no copies.
Assignment out_of_box(const AssignContext& ctx);

/// One materialized copy edge: the block transfers that fill a selected CC
/// from its parent store (next selected shallower CC of the same chain, or
/// the array's home layer).
struct TransferEdge {
  int cc_id = -1;
  int src_layer = -1;   ///< parent store layer
  int dst_layer = -1;   ///< the CC's own layer
  bool write_back = false;  ///< CC also flushes dirty data back to the parent
};

/// The assignment resolved against the reuse chains:
///  * which layer serves every access site (deepest selected covering CC), and
///  * the list of copy edges with their source/destination layers.
struct Resolution {
  std::vector<int> site_layer;          ///< indexed by AccessSite::id
  std::vector<TransferEdge> transfers;  ///< one per selected CC
};

/// True iff `site` is a member of candidate `cc` (same array, same nest,
/// site lies under the CC's fixed loop prefix).
bool cc_covers_site(const analysis::CopyCandidate& cc, const analysis::AccessSite& site);

/// True iff selected candidate `parent` is an ancestor of `child` in the
/// reuse chain (same array/nest, parent's prefix is a proper prefix).
bool cc_is_ancestor(const analysis::CopyCandidate& parent, const analysis::CopyCandidate& child);

/// Resolve an assignment.  Does not check feasibility (see inplace.h) but
/// throws std::invalid_argument on structurally broken assignments
/// (unknown cc ids, copy on the background layer with no gain, etc. are
/// permitted — they are merely bad, not broken).
Resolution resolve(const AssignContext& ctx, const Assignment& assignment);

/// Structural validity: every selected CC sits strictly closer to the
/// processor than its parent store.  (Capacity is checked separately.)
bool layering_valid(const AssignContext& ctx, const Assignment& assignment);

/// Remove every selected copy that violates the layering rule (its layer is
/// not strictly closer than its parent store), repeating until the
/// assignment is layering-valid.  Returns the number of copies dropped.
/// Used for compound moves: migrating an array on-chip can make copies of
/// it redundant/invalid; dropping them is part of the move.
int drop_invalid_copies(const AssignContext& ctx, Assignment& assignment);

/// One-time whole-array transfer implied by homing a pinned array on-chip:
/// an *input* array must be filled from background memory before use, an
/// *output* array must be flushed back after its last write.  Without this
/// charge, migrating inputs on-chip would be free — an unphysical loophole
/// the cost model and the simulator both close.
struct PinnedTraffic {
  const ir::ArrayDecl* array = nullptr;
  int home = -1;     ///< on-chip layer the array lives on
  bool fill = true;  ///< true: background -> home (input); false: flush back
};

/// Enumerate the init-fill / final-flush transfers of an assignment.
std::vector<PinnedTraffic> pinned_array_traffic(const AssignContext& ctx,
                                                const Assignment& assignment);

}  // namespace mhla::assign
