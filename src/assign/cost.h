#pragma once

#include "assign/assignment.h"

namespace mhla::assign {

/// Static cost estimate of an assignment (MHLA step 1 view: block transfers
/// block the processor; time extensions are applied later).
///
/// The energy model counts memory-hierarchy accesses only, exactly like the
/// paper ("in our models we only consider accesses to the memory
/// hierarchy"), so time extensions never change the energy column.
struct CostEstimate {
  double energy_nj = 0.0;        ///< all processor accesses + copy traffic
  double compute_cycles = 0.0;   ///< statement op cycles
  double access_cycles = 0.0;    ///< processor load/store stall cycles
  double transfer_cycles = 0.0;  ///< blocking block-transfer cycles
  double total_cycles() const { return compute_cycles + access_cycles + transfer_cycles; }

  /// Per-layer dynamic access counts (processor + copy traffic),
  /// reads and writes separately.
  std::vector<i64> layer_reads;
  std::vector<i64> layer_writes;
};

/// Evaluate an assignment with the static model.  Independent of (and
/// cross-checked against) the simulator in sim/.
CostEstimate estimate_cost(const AssignContext& ctx, const Assignment& assignment);

/// Same, but reusing a `Resolution` the caller already computed for
/// `assignment`.  Callers that evaluate several views of one assignment
/// (cost + per-nest cycles + per-loop cycles) resolve once and share it.
CostEstimate estimate_cost(const AssignContext& ctx, const Assignment& assignment,
                           const Resolution& res);

/// Scalarization of (energy, time) used by the search heuristics.
/// Weights are relative to the out-of-box baseline, so energy_weight = 1,
/// time_weight = 1 values both objectives equally regardless of units.
struct Objective {
  double energy_weight = 1.0;
  double time_weight = 0.0;
  double baseline_energy_nj = 1.0;
  double baseline_cycles = 1.0;

  /// Scalarize raw (energy, cycles) totals.  `scalar()` delegates here so
  /// the incremental CostEngine can score without materializing a full
  /// CostEstimate; both paths share the exact same arithmetic.
  double scalar_terms(double energy_nj, double total_cycles) const {
    double e = energy_nj / baseline_energy_nj;
    double t = total_cycles / baseline_cycles;
    return energy_weight * e + time_weight * t;
  }

  double scalar(const CostEstimate& cost) const {
    return scalar_terms(cost.energy_nj, cost.total_cycles());
  }
};

/// Build an Objective normalized against the out-of-box baseline of `ctx`.
Objective make_objective(const AssignContext& ctx, double energy_weight, double time_weight);

/// CPU cycles (statement computation + processor access latency, *excluding*
/// block-transfer stalls) spent in each top-level nest under `assignment`.
/// This is the "hiding budget" the time extensions draw from.
std::vector<double> nest_cpu_cycles(const AssignContext& ctx, const Assignment& assignment);

/// Resolution-reusing variant: no internal `resolve()` call.
std::vector<double> nest_cpu_cycles(const AssignContext& ctx, const Resolution& res);

/// CPU cycles of a single iteration of `loop` (which must belong to nest
/// `nest`), again excluding transfer stalls.  Used by TE's iteration
/// lookahead: prefetching one carrying-loop iteration ahead can hide at most
/// this many cycles per block transfer.
double loop_iteration_cpu_cycles(const AssignContext& ctx, const Assignment& assignment, int nest,
                                 const ir::LoopNode* loop);

/// Resolution-reusing variant: no internal `resolve()` call.  TE's lookahead
/// invokes this once per block transfer for one fixed assignment; resolving
/// per call made it O(transfers x program).
double loop_iteration_cpu_cycles(const AssignContext& ctx, const Resolution& res, int nest,
                                 const ir::LoopNode* loop);

}  // namespace mhla::assign
