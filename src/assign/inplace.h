#pragma once

#include "assign/assignment.h"

namespace mhla::assign {

/// Lifetime extension of one copy buffer caused by time extensions:
/// the buffer becomes live from `start_nest` (instead of only during its own
/// nest) and `extra_buffers` additional buffer instances coexist during its
/// own nest (multi-buffering for iteration lookahead).
struct CopyExtension {
  int cc_id = -1;
  int start_nest = -1;   ///< -1 means "no earlier than its own nest"
  int extra_buffers = 0;
};

/// Result of the in-place (lifetime-aware) footprint computation.
struct FootprintReport {
  std::vector<i64> peak_bytes;          ///< per layer, max over the time axis
  std::vector<std::vector<i64>> usage;  ///< [layer][nest] live bytes
  bool feasible = true;                 ///< all bounded layers within capacity
};

/// Compute per-layer peak footprints with inter-array in-place optimization:
/// at every step of the coarse time axis (top-level nest index), a layer
/// holds the arrays whose live ranges cover that step plus the copy buffers
/// of that nest (extended per `extensions`).  A dead-range array contributes
/// nothing.
///
/// This models the paper's "limited lifetime of the arrays" exploitation:
/// layer usage is the *peak* concurrent footprint, not the sum of sizes.
FootprintReport compute_footprints(const AssignContext& ctx, const Assignment& assignment,
                                   const std::vector<CopyExtension>& extensions = {});

/// Convenience: feasibility only.
bool fits(const AssignContext& ctx, const Assignment& assignment,
          const std::vector<CopyExtension>& extensions = {});

}  // namespace mhla::assign
