#pragma once

#include "assign/cost.h"
#include "assign/inplace.h"
#include "assign/search_status.h"
#include "core/run_budget.h"

namespace mhla::assign {

/// Options for the greedy steering search (MHLA step-1 heuristic).
struct GreedyOptions {
  double energy_weight = 1.0;  ///< relative weight of normalized energy
  double time_weight = 1.0;    ///< relative weight of normalized time
  int max_moves = 100000;      ///< safety bound on accepted moves
  bool allow_array_migration = true;  ///< consider moving whole arrays on-chip

  /// Score candidate moves with the incremental CostEngine (apply/undo
  /// deltas) instead of a from-scratch estimate_cost per candidate.  Both
  /// paths are bit-identical in every decision and result; the reference
  /// path exists for the equivalence tests and the search_scaling bench.
  bool use_cost_engine = true;

  /// Engine path only: answer per-candidate feasibility from the engine's
  /// incremental FootprintTracker (O(1)) instead of a from-scratch
  /// `fits()` rebuild (O(arrays x nests)) per probe.  Verdicts are exact
  /// either way, so the search result is bit-identical; the toggle exists
  /// for the equivalence tests and the search_scaling feasibility bench.
  bool use_footprint_tracker = true;

  /// Engine path only: score each round's select-copy moves in one batched
  /// pass over the engine's contiguous term tables
  /// (`CostEngine::score_select_candidates`) instead of a
  /// checkpoint/apply/undo cycle per candidate.  Per-slot accumulation
  /// preserves the canonical summation order, so every score, verdict, probe
  /// point, and tie-break — hence the whole walk — is bit-identical; the
  /// toggle exists for the equivalence tests and the search_scaling bench.
  bool batched_scoring = true;

  /// Cooperative run budget: one probe is charged per scored candidate.
  /// When the budget expires the search stops before applying the next
  /// move, so the returned assignment is always the consistent state after
  /// the last accepted move (status BudgetExhausted).  `shared_budget`
  /// takes precedence over `budget` (the pipeline threads one token
  /// through search + TE so a deadline never restarts per stage).
  core::BudgetSpec budget;
  core::RunBudget* shared_budget = nullptr;
};

/// Trace entry for one accepted move, for diagnostics and the tool-runtime
/// benchmark.
struct GreedyMove {
  enum class Kind { SelectCopy, MigrateArray, RemoveCopy };
  Kind kind = Kind::SelectCopy;
  int cc_id = -1;           ///< for SelectCopy
  std::string array;        ///< for MigrateArray
  int layer = -1;
  double gain = 0.0;        ///< scalar objective improvement
  double gain_per_byte = 0.0;
};

struct GreedyResult {
  Assignment assignment;
  std::vector<GreedyMove> moves;
  double final_scalar = 0.0;
  int evaluations = 0;  ///< cost-model invocations (search effort metric)

  /// Feasible on completion, BudgetExhausted when the run budget bound
  /// first.  Either way `assignment` replays exactly from `moves`.
  SearchStatus status = SearchStatus::Feasible;
};

/// Greedy steering heuristic: start from the out-of-box assignment and
/// repeatedly apply the feasible move (select a copy candidate onto a layer,
/// or migrate an array's home layer) with the best objective gain per byte
/// of on-chip space claimed; stop when no improving feasible move remains.
GreedyResult greedy_assign(const AssignContext& ctx, const GreedyOptions& options = {});

}  // namespace mhla::assign
