#pragma once

#include <string>

namespace mhla::assign {

/// Outcome contract of a search.  Lives in its own header so the engine
/// headers (greedy/exhaustive/anneal) can name it without pulling in the
/// registry from search.h.
///
///  * Optimal — the search proved its answer optimal (exact engines that
///    ran to completion; gap is exactly 0).
///  * Feasible — a feasible answer with no optimality claim (heuristics
///    that ran to completion).
///  * BudgetExhausted — the run budget bound before completion; the answer
///    is the best feasible assignment seen so far (anytime result).  Exact
///    engines additionally certify an optimality gap against the global
///    admissible lower bound.
///  * Infeasible — the returned assignment violates a capacity constraint
///    (only possible when a budget bound before any feasible improvement
///    could be locked in; callers must not consume the assignment).
enum class SearchStatus { Optimal, Feasible, BudgetExhausted, Infeasible };

/// Snake-case wire name ("optimal", "feasible", "budget_exhausted",
/// "infeasible") used by the JSON reports.
std::string to_string(SearchStatus status);

/// Inverse of to_string; throws std::invalid_argument on an unknown name.
SearchStatus parse_search_status(const std::string& name);

}  // namespace mhla::assign
