#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "assign/inplace.h"
#include "core/arena.h"

namespace mhla::assign {

/// Incremental footprint/feasibility tracker for the MHLA searches and the
/// time-extension stage.
///
/// `fits()` pays a full `compute_footprints` — a rebuild of the complete
/// per-layer x per-nest usage matrix from every array live range and every
/// placed copy — for *every* feasibility probe a search makes.  The tracker
/// owns that matrix and maintains it incrementally under undoable moves:
///
///  * `place_copy` / `remove_copy` — a copy's footprint touches only the
///    cells of its (possibly extended) lifetime, O(lifetime) instead of
///    O(arrays x nests),
///  * `set_home` — an array home change moves the array's bytes between two
///    rows over its clipped live range, O(live range),
///  * `extend_copy` — grow or shrink a `CopyExtension` (extra buffers,
///    earlier start nest) for the TE freedom-unit loop, O(extended lifetime).
///
/// Feasibility is answered in O(1) from a running count of overfull
/// (layer, nest) cells: a bounded layer's peak exceeds its capacity iff at
/// least one of its cells does, so `feasible()` is exactly
/// `compute_footprints(...).feasible` — verdicts are exact, never
/// approximated.  All arithmetic is integer, so there is no accumulation
///-order concern: `report()` is bit-identical to `compute_footprints` on
/// the mirrored (assignment, extensions) state by construction, and
/// tests/assign/footprint_tracker_test.cpp property-tests the contract over
/// randomized move/undo sequences.
///
/// ## Undo discipline
///
/// Every primitive move appends exactly one undo record.  `checkpoint()` /
/// `undo_to(mark)` rewind any sequence LIFO, like `CostEngine`;
/// `undo_one()` rewinds a single primitive (the engine uses it to pop its
/// own journal and the tracker's in lockstep).
///
/// ## Extension semantics
///
/// The tracker holds at most one extension per placed copy (the
/// replace-entry discipline `time_extend` previously implemented with a
/// clone + `std::erase_if` per freedom unit).  `extend_copy` replaces the
/// copy's extension outright; `remove_copy` clears it (and undo restores
/// it).  `load(assignment, extensions)` folds duplicate entries exactly
/// like `compute_footprints` (earliest start, summed extra buffers).
class FootprintTracker {
 public:
  /// Precomputes the per-array clipped live spans and the cheapest
  /// placeable object, then loads `out_of_box(ctx)`.
  explicit FootprintTracker(const AssignContext& ctx);

  /// Same precompute, but loads `assignment` directly — callers with a
  /// known start state (TE, the benches) skip the out-of-box load.
  FootprintTracker(const AssignContext& ctx, const Assignment& assignment,
                   const std::vector<CopyExtension>& extensions = {});

  /// Full (re)load of an assignment plus optional extensions.  Clears the
  /// undo history.  Throws std::invalid_argument on unknown/duplicate copy
  /// candidates or unknown layers (mirrors CostEngine::load).
  void load(const Assignment& assignment, const std::vector<CopyExtension>& extensions = {});

  // -------------------------------------------------------------- moves
  using Checkpoint = std::size_t;
  Checkpoint checkpoint() const { return undo_.size(); }
  void undo_to(Checkpoint mark);
  /// Rewind exactly one primitive move (undo history must be non-empty).
  void undo_one();

  /// Add the footprint of candidate `cc_id` placed on `layer` (one buffer,
  /// own nest — no extension).  Throws if the candidate is already placed.
  void place_copy(int cc_id, int layer);

  /// Remove a placed copy's footprint, extension included.
  void remove_copy(int cc_id);

  /// Move `array`'s home row; no-op (and no undo record) when unchanged.
  /// The id overload is the hot path — arguments are debug-asserted only;
  /// the string overload validates both name and layer and forwards.
  void set_home(const std::string& array, int layer);
  void set_home(std::size_t array_index, int layer);

  /// Replace the extension of placed copy `cc_id` with
  /// `{start_nest, extra_buffers}` (start_nest < 0 = own nest only).
  void extend_copy(int cc_id, int start_nest, int extra_buffers);

  // ------------------------------------------------------------ queries
  /// O(1): true iff no bounded layer holds an over-capacity cell — exactly
  /// `compute_footprints(ctx, mirrored state).feasible`.
  bool feasible() const { return overfull_cells_ == 0; }

  /// Live bytes of one (layer, nest) cell.
  i64 usage(int layer, int nest) const {
    return usage_[static_cast<std::size_t>(layer) * row_ + static_cast<std::size_t>(nest)];
  }

  /// Exact feasibility of the state `place_copy(cc_id, layer)` would reach,
  /// answered without mutating anything: an unextended placement touches a
  /// single (layer, own-nest) cell, so the post-move overfull count is the
  /// live count plus that one cell's transition.  Lets batched scorers probe
  /// a whole round of placements against the live matrix.
  bool feasible_with_copy(int cc_id, int layer) const;

  /// Peak of one layer over the time axis (O(nests), for reporting).
  i64 peak(int layer) const;

  /// Full report, bit-identical to `compute_footprints` on the mirrored
  /// (assignment, extensions) state.
  FootprintReport report() const;

  int copy_layer(int cc_id) const { return cc_layer_[static_cast<std::size_t>(cc_id)]; }
  int extension_start(int cc_id) const { return cc_ext_start_[static_cast<std::size_t>(cc_id)]; }
  int extension_buffers(int cc_id) const {
    return cc_ext_buffers_[static_cast<std::size_t>(cc_id)];
  }

  /// Bytes of the cheapest object any search could place on-chip: the
  /// smallest non-empty array and the smallest non-degenerate copy box
  /// (i64 max when nothing is placeable).  The static form is hierarchy-
  /// independent, so sweeps hoist it out of their per-cell loop.
  i64 min_placeable_bytes() const { return min_placeable_; }
  static i64 min_placeable_bytes(const ir::Program& program,
                                 const analysis::ReuseAnalysis& reuse);

  /// Out-of-box probe: true when every on-chip layer is bounded below the
  /// cheapest placeable object, so no copy selection or migration can ever
  /// fit and every strategy provably returns the out-of-box assignment.
  /// The static form probes a hierarchy against a hoisted constant without
  /// constructing a tracker.
  bool provably_out_of_box() const;
  static bool provably_out_of_box(const mem::Hierarchy& hierarchy, i64 min_placeable);

 private:
  struct UndoRec {
    enum class Kind { Place, Remove, Home, Extend };
    Kind kind;
    int a = 0;  ///< Place/Remove/Extend: cc_id       Home: array index
    int b = 0;  ///< Remove: layer                    Home: old layer
    int c = 0;  ///< Remove/Extend: old ext start
    int d = 0;  ///< Remove/Extend: old ext buffers
  };

  /// Apply `delta` bytes to one cell, keeping the overfull count exact.
  void add_cell(int layer, int nest, i64 delta);
  /// Add (+1) or subtract (-1) a placed copy's current footprint.
  void apply_copy(std::size_t c, int sign);
  /// Add or subtract an array's footprint on `layer` over its live span.
  void apply_array(std::size_t a, int layer, int sign);
  void validate_copy(int cc_id, int layer) const;
  std::size_t array_index(const std::string& name) const;

  const AssignContext& ctx_;
  int num_layers_ = 0;
  int num_nests_ = 0;
  int background_ = 0;
  std::size_t row_ = 1;  ///< cells per layer row == max(num_nests, 1)
  i64 min_placeable_ = 0;

  // ---- assignment-independent precomputation
  std::vector<i64> layer_capacity_;  ///< per layer; <= 0 = unbounded
  std::vector<std::string> array_names_;
  std::map<std::string, std::size_t> array_index_;
  std::vector<i64> array_bytes_;
  std::vector<int> array_first_;  ///< clipped live span (first > last = dead)
  std::vector<int> array_last_;
  std::vector<int> cc_nest_;
  std::vector<i64> cc_bytes_;

  // ---- incremental state
  std::vector<i64> usage_;        ///< [layer][nest], flat
  long overfull_cells_ = 0;       ///< bounded cells with usage > capacity
  std::vector<int> home_;         ///< array index -> home layer
  std::vector<int> cc_layer_;     ///< cc -> layer or -1
  std::vector<int> cc_ext_start_; ///< cc -> extension start nest or -1
  std::vector<int> cc_ext_buffers_;  ///< cc -> extra buffers
  core::ArenaStack<UndoRec> undo_;
};

}  // namespace mhla::assign
