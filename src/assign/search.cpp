#include "assign/search.h"

#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace mhla::assign {

std::pair<double, double> target_weights(Target target) {
  switch (target) {
    case Target::Energy: return {1.0, 0.0};
    case Target::Time: return {0.0, 1.0};
    case Target::Balanced: return {1.0, 1.0};
    case Target::Custom: break;
  }
  throw std::invalid_argument("Target::Custom has no canonical weights");
}

Target parse_target(const std::string& name) {
  if (name == "energy") return Target::Energy;
  if (name == "time") return Target::Time;
  if (name == "balanced") return Target::Balanced;
  if (name == "custom") return Target::Custom;
  throw std::invalid_argument("unknown target '" + name + "' (energy|time|balanced|custom)");
}

std::string to_string(Target target) {
  switch (target) {
    case Target::Energy: return "energy";
    case Target::Time: return "time";
    case Target::Custom: return "custom";
    case Target::Balanced: break;
  }
  return "balanced";
}

SearchOptions& SearchOptions::set_target(Target target) {
  if (target != Target::Custom) {
    std::tie(energy_weight, time_weight) = target_weights(target);
  }
  return *this;
}

std::string to_string(SearchStatus status) {
  switch (status) {
    case SearchStatus::Optimal: return "optimal";
    case SearchStatus::Feasible: return "feasible";
    case SearchStatus::BudgetExhausted: return "budget_exhausted";
    case SearchStatus::Infeasible: return "infeasible";
  }
  return "feasible";
}

SearchStatus parse_search_status(const std::string& name) {
  if (name == "optimal") return SearchStatus::Optimal;
  if (name == "feasible") return SearchStatus::Feasible;
  if (name == "budget_exhausted") return SearchStatus::BudgetExhausted;
  if (name == "infeasible") return SearchStatus::Infeasible;
  throw std::invalid_argument("unknown search status '" + name +
                              "' (optimal|feasible|budget_exhausted|infeasible)");
}

namespace {

/// Narrowing views of SearchOptions for the concrete implementations.
GreedyOptions to_greedy_options(const SearchOptions& options) {
  GreedyOptions greedy;
  greedy.energy_weight = options.energy_weight;
  greedy.time_weight = options.time_weight;
  greedy.max_moves = options.max_moves;
  greedy.allow_array_migration = options.allow_array_migration;
  greedy.use_cost_engine = options.use_cost_engine;
  greedy.use_footprint_tracker = options.use_footprint_tracker;
  greedy.batched_scoring = options.greedy_batched_scoring;
  greedy.budget = options.budget;
  greedy.shared_budget = options.shared_budget;
  return greedy;
}

ExhaustiveOptions to_exhaustive_options(const SearchOptions& options) {
  ExhaustiveOptions exhaustive;
  exhaustive.energy_weight = options.energy_weight;
  exhaustive.time_weight = options.time_weight;
  exhaustive.max_states = options.max_states;
  exhaustive.allow_array_migration = options.allow_array_migration;
  exhaustive.use_cost_engine = options.use_cost_engine;
  exhaustive.use_branch_and_bound = options.use_branch_and_bound;
  exhaustive.use_footprint_tracker = options.use_footprint_tracker;
  exhaustive.use_footprint_bound = options.use_footprint_bound;
  exhaustive.num_threads = options.bnb_threads;
  exhaustive.tasks_per_thread = options.bnb_tasks_per_thread;
  exhaustive.seed_incumbent = options.bnb_seed_incumbent;
  exhaustive.work_stealing = options.bnb_work_stealing;
  exhaustive.budget = options.budget;
  exhaustive.shared_budget = options.shared_budget;
  return exhaustive;
}

AnnealOptions to_anneal_options(const SearchOptions& options) {
  AnnealOptions anneal;
  anneal.energy_weight = options.energy_weight;
  anneal.time_weight = options.time_weight;
  anneal.iterations = options.anneal_iterations;
  anneal.seed = options.anneal_seed;
  anneal.initial_temp = options.anneal_initial_temp;
  anneal.cooling = options.anneal_cooling;
  anneal.allow_array_migration = options.allow_array_migration;
  anneal.use_footprint_tracker = options.use_footprint_tracker;
  anneal.budget = options.budget;
  anneal.shared_budget = options.shared_budget;
  return anneal;
}

SearchResult from_greedy(GreedyResult greedy) {
  SearchResult result;
  result.assignment = std::move(greedy.assignment);
  result.scalar = greedy.final_scalar;
  result.moves = std::move(greedy.moves);
  result.evaluations = greedy.evaluations;
  result.status = greedy.status;
  result.exhausted_budget = greedy.status == SearchStatus::BudgetExhausted;
  return result;
}

SearchResult from_exhaustive(ExhaustiveResult exhaustive) {
  SearchResult result;
  result.assignment = std::move(exhaustive.assignment);
  result.scalar = exhaustive.scalar;
  result.states_explored = exhaustive.states_explored;
  result.exhausted_budget = exhaustive.exhausted_budget;
  result.bound_prunes = exhaustive.bound_prunes;
  result.capacity_prunes = exhaustive.capacity_prunes;
  result.status = exhaustive.status;
  result.gap = exhaustive.gap;
  result.lower_bound = exhaustive.lower_bound;
  return result;
}

/// Greedy steering heuristic; `force_reference` pins the from-scratch path
/// regardless of the options (the "greedy-ref" strategy).
class GreedySearcher final : public Searcher {
 public:
  GreedySearcher(std::string name, std::string description, bool force_reference)
      : name_(std::move(name)), description_(std::move(description)),
        force_reference_(force_reference) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }

  SearchResult search(const AssignContext& ctx, const SearchOptions& options) const override {
    GreedyOptions greedy = to_greedy_options(options);
    if (force_reference_) greedy.use_cost_engine = false;
    return from_greedy(greedy_assign(ctx, greedy));
  }

 private:
  std::string name_;
  std::string description_;
  bool force_reference_;
};

/// Exhaustive enumeration.  The named variants pin the engine toggles so a
/// strategy string alone selects a well-defined search behavior.
class ExhaustiveSearcher final : public Searcher {
 public:
  enum class Mode {
    Free,       ///< honor the options' engine/bound toggles
    BnB,        ///< force engine + branch-and-bound
    Parallel,   ///< parallel branch-and-bound with a shared incumbent
    Reference,  ///< force the from-scratch enumeration
  };

  ExhaustiveSearcher(std::string name, std::string description, Mode mode)
      : name_(std::move(name)), description_(std::move(description)), mode_(mode) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }

  SearchResult search(const AssignContext& ctx, const SearchOptions& options) const override {
    ExhaustiveOptions exhaustive = to_exhaustive_options(options);
    if (mode_ == Mode::Parallel) {
      return from_exhaustive(exhaustive_parallel_assign(ctx, exhaustive));
    }
    if (mode_ == Mode::BnB) {
      exhaustive.use_cost_engine = true;
      exhaustive.use_branch_and_bound = true;
    } else if (mode_ == Mode::Reference) {
      exhaustive.use_cost_engine = false;
    }
    return from_exhaustive(exhaustive_assign(ctx, exhaustive));
  }

 private:
  std::string name_;
  std::string description_;
  Mode mode_;
};

/// Seeded simulated annealing (assign/anneal.h).  Stateless across calls:
/// every walk re-seeds from the options, so one registered instance serves
/// parallel sweeps and explorations deterministically.
class AnnealSearcher final : public Searcher {
 public:
  std::string name() const override { return "anneal"; }
  std::string description() const override {
    return "seeded simulated annealing over the cost-engine move set";
  }

  SearchResult search(const AssignContext& ctx, const SearchOptions& options) const override {
    AnnealResult anneal = anneal_assign(ctx, to_anneal_options(options));
    SearchResult result;
    result.assignment = std::move(anneal.assignment);
    result.scalar = anneal.scalar;
    result.evaluations = anneal.evaluations;
    result.status = anneal.status;
    result.exhausted_budget = anneal.status == SearchStatus::BudgetExhausted;
    return result;
  }
};

std::map<std::string, std::unique_ptr<Searcher>>& registry() {
  static std::map<std::string, std::unique_ptr<Searcher>> searchers = [] {
    std::map<std::string, std::unique_ptr<Searcher>> built_in;
    auto add = [&](std::unique_ptr<Searcher> s) { built_in[s->name()] = std::move(s); };
    add(std::make_unique<GreedySearcher>(
        "greedy", "engine-backed greedy steering heuristic (MHLA step 1)", false));
    add(std::make_unique<GreedySearcher>(
        "greedy-ref", "from-scratch greedy reference (bit-identical, slower)", true));
    add(std::make_unique<ExhaustiveSearcher>(
        "bnb", "branch-and-bound exhaustive search (engine lower bound + capacity pruning)",
        ExhaustiveSearcher::Mode::BnB));
    add(std::make_unique<ExhaustiveSearcher>(
        "bnb-par",
        "parallel branch-and-bound (work-stealing subtree tasks, shared incumbent; bit-identical to bnb)",
        ExhaustiveSearcher::Mode::Parallel));
    add(std::make_unique<ExhaustiveSearcher>(
        "exhaustive", "exhaustive enumeration honoring the engine/bound toggles",
        ExhaustiveSearcher::Mode::Free));
    add(std::make_unique<ExhaustiveSearcher>(
        "exhaustive-ref", "from-scratch exhaustive reference enumeration",
        ExhaustiveSearcher::Mode::Reference));
    add(std::make_unique<AnnealSearcher>());
    return built_in;
  }();
  return searchers;
}

}  // namespace

std::vector<std::string> searcher_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, _] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

const Searcher& searcher(const std::string& name) {
  const auto& searchers = registry();
  auto it = searchers.find(name);
  if (it == searchers.end()) {
    std::ostringstream message;
    message << "unknown search strategy '" << name << "'; registered strategies:";
    for (const auto& [known, _] : searchers) message << " " << known;
    throw std::out_of_range(message.str());
  }
  return *it->second;
}

void register_searcher(std::unique_ptr<Searcher> strategy) {
  if (!strategy) throw std::invalid_argument("register_searcher: null strategy");
  registry()[strategy->name()] = std::move(strategy);
}

}  // namespace mhla::assign
