#include "assign/cost_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "ir/walk.h"

namespace mhla::assign {

namespace {

/// Flatten a jagged row collection into CSR form: one contiguous item array
/// plus a size+1 offset array.  Construction-time only.
void flatten_rows(const std::vector<std::vector<int>>& rows, std::vector<int>& items,
                  std::vector<std::size_t>& offsets) {
  offsets.assign(rows.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    total += rows[r].size();
    offsets[r + 1] = total;
  }
  items.clear();
  items.reserve(total);
  for (const std::vector<int>& row : rows) {
    items.insert(items.end(), row.begin(), row.end());
  }
}

}  // namespace

CostEngine::CostEngine(const AssignContext& ctx)
    : ctx_(ctx),
      num_layers_(ctx.hierarchy.num_layers()),
      background_(ctx.hierarchy.background()),
      footprint_(ctx) {
  const std::size_t L = static_cast<std::size_t>(num_layers_);

  // Assignment-independent compute cycles: one IR walk, accumulated exactly
  // like estimate_cost so the cached value is bit-identical.
  ir::walk_statements(ctx_.program,
                      [&](int /*nest*/, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        compute_cycles_ += static_cast<double>(ir::iterations_of(path)) *
                                           static_cast<double>(stmt.op_cycles());
                      });

  // Array catalog.
  const auto& arrays = ctx_.program.arrays();
  array_input_.resize(arrays.size());
  array_output_.resize(arrays.size());
  array_elems_.resize(arrays.size());
  pin_fill_energy_.assign(arrays.size() * L, 0.0);
  pin_fill_cycles_.assign(arrays.size() * L, 0.0);
  pin_flush_energy_.assign(arrays.size() * L, 0.0);
  pin_flush_cycles_.assign(arrays.size() * L, 0.0);
  const mem::MemLayer& bg = ctx_.hierarchy.layer(background_);
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    array_names_.push_back(arrays[a].name);
    array_index_.emplace(arrays[a].name, a);
    array_input_[a] = arrays[a].is_input;
    array_output_[a] = arrays[a].is_output;
    array_elems_[a] = arrays[a].elems();
    double elems = static_cast<double>(arrays[a].elems());
    for (int home = 0; home < background_; ++home) {
      const mem::MemLayer& hl = ctx_.hierarchy.layer(home);
      std::size_t idx = a * L + static_cast<std::size_t>(home);
      pin_fill_energy_[idx] = elems * (bg.access_energy_nj(false) + hl.access_energy_nj(true));
      pin_fill_cycles_[idx] = mem::blocking_transfer_cycles(arrays[a].bytes(), bg, hl, ctx_.dma);
      pin_flush_energy_[idx] = elems * (hl.access_energy_nj(false) + bg.access_energy_nj(true));
      pin_flush_cycles_[idx] = mem::blocking_transfer_cycles(arrays[a].bytes(), hl, bg, ctx_.dma);
    }
  }

  // Per-site terms for every possible serving layer.
  const std::size_t S = ctx_.sites.size();
  site_n_.resize(S);
  site_write_.resize(S);
  site_array_.resize(S);
  site_energy_.assign(S * L, 0.0);
  site_cycles_.assign(S * L, 0.0);
  std::vector<std::vector<int>> covering(S);
  for (const analysis::AccessSite& site : ctx_.sites) {
    std::size_t s = static_cast<std::size_t>(site.id);
    i64 n = site.dynamic_accesses();
    bool is_write = site.is_write();
    site_n_[s] = n;
    site_write_[s] = is_write;
    site_array_[s] = array_index(site.access->array);
    for (int l = 0; l < num_layers_; ++l) {
      const mem::MemLayer& layer = ctx_.hierarchy.layer(l);
      site_energy_[s * L + static_cast<std::size_t>(l)] =
          static_cast<double>(n) * layer.access_energy_nj(is_write);
      site_cycles_[s * L + static_cast<std::size_t>(l)] =
          static_cast<double>(n) * layer.access_latency(is_write);
    }
  }

  // Per-candidate structure and transfer terms for every layer pair.  The
  // jagged covering / member-site / ancestor rows are built locally and
  // flattened into CSR arrays once sorted.
  const auto& candidates = ctx_.reuse.candidates();
  const std::size_t C = candidates.size();
  cc_level_.resize(C);
  cc_fill_free_.resize(C);
  cc_write_back_.resize(C);
  cc_elems_moved_.resize(C);
  cc_array_.resize(C);
  std::vector<std::vector<int>> cc_sites(C);
  std::vector<std::vector<int>> cc_ancestors(C);
  fill_energy_.assign(C * L * L, 0.0);
  wb_energy_.assign(C * L * L, 0.0);
  xfer_cycles_.assign(C * L * L, 0.0);
  for (const analysis::CopyCandidate& cc : candidates) {
    std::size_t c = static_cast<std::size_t>(cc.id);
    cc_level_[c] = cc.level;
    cc_fill_free_[c] = cc.fill_free;
    cc_write_back_[c] = cc.has_writes();
    cc_elems_moved_[c] = cc.transfers * cc.elems_per_transfer;
    cc_array_[c] = array_index(cc.array);
    double fills = static_cast<double>(cc_elems_moved_[c]);
    for (int src = 0; src < num_layers_; ++src) {
      const mem::MemLayer& sl = ctx_.hierarchy.layer(src);
      for (int dst = 0; dst < num_layers_; ++dst) {
        const mem::MemLayer& dl = ctx_.hierarchy.layer(dst);
        std::size_t idx = table_index(cc.id, src, dst);
        double per_issue = mem::blocking_transfer_cycles(cc.bytes_per_transfer(), sl, dl, ctx_.dma);
        fill_energy_[idx] = fills * (sl.access_energy_nj(false) + dl.access_energy_nj(true));
        wb_energy_[idx] = fills * (dl.access_energy_nj(false) + sl.access_energy_nj(true));
        xfer_cycles_[idx] = static_cast<double>(cc.transfers) * per_issue;
      }
    }
    for (const analysis::AccessSite& site : ctx_.sites) {
      if (cc_covers_site(cc, site)) {
        cc_sites[c].push_back(site.id);
        covering[static_cast<std::size_t>(site.id)].push_back(cc.id);
      }
    }
    for (const analysis::CopyCandidate& other : candidates) {
      if (cc_is_ancestor(other, cc)) cc_ancestors[c].push_back(other.id);
    }
    std::sort(cc_ancestors[c].begin(), cc_ancestors[c].end(),
              [&](int a, int b) { return candidates[static_cast<std::size_t>(a)].level >
                                         candidates[static_cast<std::size_t>(b)].level; });
  }
  for (std::vector<int>& cov : covering) {
    std::sort(cov.begin(), cov.end(), [&](int a, int b) {
      return candidates[static_cast<std::size_t>(a)].level >
             candidates[static_cast<std::size_t>(b)].level;
    });
  }

  // Suffix minima for the branch-and-bound bound: column C is "no candidate
  // left" (+inf); walking candidate ids downward folds in the cheapest term
  // candidate j could still give each of its member sites.
  const double inf = std::numeric_limits<double>::infinity();
  site_suffix_e_.assign(S * (C + 1), inf);
  site_suffix_c_.assign(S * (C + 1), inf);
  for (std::size_t c = C; c-- > 0;) {
    for (std::size_t s = 0; s < S; ++s) {
      site_suffix_e_[s * (C + 1) + c] = site_suffix_e_[s * (C + 1) + c + 1];
      site_suffix_c_[s * (C + 1) + c] = site_suffix_c_[s * (C + 1) + c + 1];
    }
    const analysis::CopyCandidate& cc = candidates[c];
    for (int layer = 0; layer < background_; ++layer) {
      const mem::MemLayer& target = ctx_.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      for (int site : cc_sites[c]) {
        std::size_t s = static_cast<std::size_t>(site);
        site_suffix_e_[s * (C + 1) + c] =
            std::min(site_suffix_e_[s * (C + 1) + c], site_energy_term(s, layer));
        site_suffix_c_[s * (C + 1) + c] =
            std::min(site_suffix_c_[s * (C + 1) + c], site_cycle_term(s, layer));
      }
    }
  }

  flatten_rows(covering, covering_items_, covering_off_);
  flatten_rows(cc_sites, cc_sites_items_, cc_sites_off_);
  flatten_rows(cc_ancestors, cc_anc_items_, cc_anc_off_);

  // Steady-state allocation discipline: size the undo arena for a deep
  // speculative excursion plus a healthy accepted-move history, and every
  // scratch vector for its worst case, so the moves and the batched scorer
  // never touch the heap after this point (ArenaStack regrows — counted —
  // if a walk outruns the reservation).
  undo_.reserve(64 + S + 4 * C + 2 * arrays.size());
  offenders_.reserve(C);
  home_touched_list_.reserve(arrays.size());
  scr_stamp_.reserve(C);
  scr_desc_max_.reserve(C);
  scr_parent_.reserve(C);
  scr_displaces_.reserve(C * C);
  scr_e_.reserve(C * L);
  scr_ac_.reserve(C * L);
  scr_pin_e_.reserve(2 * arrays.size());
  scr_pin_c_.reserve(2 * arrays.size());

  load(out_of_box(ctx_));
}

std::size_t CostEngine::array_index(const std::string& name) const {
  auto it = array_index_.find(name);
  if (it == array_index_.end()) {
    throw std::invalid_argument("CostEngine: unknown array " + name);
  }
  return it->second;
}

void CostEngine::validate_copy(int cc_id, int layer) const {
  if (cc_id < 0 || static_cast<std::size_t>(cc_id) >= copy_layer_.size()) {
    throw std::invalid_argument("CostEngine: unknown copy candidate id " + std::to_string(cc_id));
  }
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("CostEngine: copy placed on unknown layer " +
                                std::to_string(layer));
  }
}

void CostEngine::load(const Assignment& assignment) {
  undo_.clear();
  copy_layer_.assign(ctx_.reuse.candidates().size(), -1);
  for (const PlacedCopy& pc : assignment.copies) {
    validate_copy(pc.cc_id, pc.layer);
    if (copy_layer_[static_cast<std::size_t>(pc.cc_id)] >= 0) {
      throw std::invalid_argument("CostEngine: duplicate copy candidate " +
                                  std::to_string(pc.cc_id));
    }
    copy_layer_[static_cast<std::size_t>(pc.cc_id)] = pc.layer;
  }
  assignment_ = assignment;
  // Every candidate can be placed at most once, so reserving C slots makes
  // select_copy's push_back (and undo's re-insert) allocation-free for good.
  assignment_.copies.reserve(copy_layer_.size());
  assignment_dirty_ = false;
  home_touched_.assign(array_names_.size(), 0);
  home_touched_list_.clear();

  home_.resize(array_names_.size());
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    home_[a] = assignment_.layer_of(array_names_[a], background_);
  }

  serving_cc_.assign(site_n_.size(), -1);
  for (std::size_t s = 0; s < serving_cc_.size(); ++s) {
    for (int cc : covering(s)) {
      if (copy_layer_[static_cast<std::size_t>(cc)] >= 0) {
        serving_cc_[s] = cc;  // covering is level-descending: first hit is deepest
        break;
      }
    }
  }

  footprint_.load(assignment_);
}

void CostEngine::sync_assignment() const {
  for (int a : home_touched_list_) {
    std::size_t idx = static_cast<std::size_t>(a);
    assignment_.array_layer[array_names_[idx]] = home_[idx];
  }
  assignment_dirty_ = false;
}

void CostEngine::set_serving(std::size_t site, int cc_id) {
  undo_.push_back({UndoRec::Kind::Serving, static_cast<int>(site), serving_cc_[site], 0});
  serving_cc_[site] = cc_id;
}

void CostEngine::select_copy(int cc_id, int layer) {
  validate_copy(cc_id, layer);
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (copy_layer_[c] >= 0) {
    throw std::invalid_argument("CostEngine: candidate already selected " + std::to_string(cc_id));
  }
  copy_layer_[c] = layer;
  assignment_.copies.push_back({cc_id, layer});
  undo_.push_back({UndoRec::Kind::CopyPush, cc_id, 0, 0});
  footprint_.place_copy(cc_id, layer);
  for (int site : candidate_sites(cc_id)) {
    std::size_t s = static_cast<std::size_t>(site);
    int cur = serving_cc_[s];
    if (cur < 0 || cc_level_[static_cast<std::size_t>(cur)] < cc_level_[c]) {
      set_serving(s, cc_id);
    }
  }
}

void CostEngine::remove_copy(int cc_id) {
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (cc_id < 0 || c >= copy_layer_.size() || copy_layer_[c] < 0) {
    throw std::invalid_argument("CostEngine: candidate not selected " + std::to_string(cc_id));
  }
  int index = -1;
  for (std::size_t i = 0; i < assignment_.copies.size(); ++i) {
    if (assignment_.copies[i].cc_id == cc_id) {
      index = static_cast<int>(i);
      break;
    }
  }
  undo_.push_back({UndoRec::Kind::CopyErase, cc_id, copy_layer_[c], index});
  assignment_.copies.erase(assignment_.copies.begin() + index);
  copy_layer_[c] = -1;
  footprint_.remove_copy(cc_id);
  for (int site : candidate_sites(cc_id)) {
    std::size_t s = static_cast<std::size_t>(site);
    if (serving_cc_[s] != cc_id) continue;
    int replacement = -1;
    for (int other : covering(s)) {
      if (copy_layer_[static_cast<std::size_t>(other)] >= 0) {
        replacement = other;
        break;
      }
    }
    set_serving(s, replacement);
  }
}

void CostEngine::set_home(std::size_t array_index, int layer) {
  assert(array_index < home_.size() && "CostEngine: unknown array id");
  assert(layer >= 0 && layer < num_layers_ && "CostEngine: home on unknown layer");
  if (home_[array_index] == layer) return;
  undo_.push_back({UndoRec::Kind::Home, static_cast<int>(array_index), home_[array_index], 0});
  home_[array_index] = layer;
  if (!home_touched_[array_index]) {
    home_touched_[array_index] = 1;
    home_touched_list_.push_back(static_cast<int>(array_index));
  }
  assignment_dirty_ = true;
  footprint_.set_home(array_index, layer);
}

void CostEngine::set_home(const std::string& array, int layer) {
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("CostEngine: home on unknown layer " + std::to_string(layer));
  }
  set_home(array_index(array), layer);
}

int CostEngine::migrate_array(std::size_t array_index, int layer) {
  set_home(array_index, layer);
  // Same fixpoint as drop_invalid_copies: offenders of one pass are computed
  // against the state entering the pass, then removed together.
  int dropped = 0;
  for (;;) {
    offenders_.clear();
    for (const PlacedCopy& pc : assignment_.copies) {
      if (pc.layer >= parent_layer(pc.cc_id)) offenders_.push_back(pc.cc_id);
    }
    if (offenders_.empty()) break;
    for (int cc : offenders_) remove_copy(cc);
    dropped += static_cast<int>(offenders_.size());
  }
  return dropped;
}

int CostEngine::migrate_array(const std::string& array, int layer) {
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("CostEngine: home on unknown layer " + std::to_string(layer));
  }
  return migrate_array(array_index(array), layer);
}

void CostEngine::undo_to(Checkpoint mark) {
  while (undo_.size() > mark) {
    const UndoRec rec = undo_.back();
    undo_.pop_back();
    switch (rec.kind) {
      case UndoRec::Kind::Serving:
        serving_cc_[static_cast<std::size_t>(rec.a)] = rec.b;
        break;
      case UndoRec::Kind::CopyPush:
        assignment_.copies.pop_back();
        copy_layer_[static_cast<std::size_t>(rec.a)] = -1;
        footprint_.undo_one();
        break;
      case UndoRec::Kind::CopyErase:
        assignment_.copies.insert(assignment_.copies.begin() + rec.c, {rec.a, rec.b});
        copy_layer_[static_cast<std::size_t>(rec.a)] = rec.b;
        footprint_.undo_one();
        break;
      case UndoRec::Kind::Home:
        home_[static_cast<std::size_t>(rec.a)] = rec.b;
        assignment_dirty_ = true;
        footprint_.undo_one();
        break;
    }
  }
}

int CostEngine::parent_layer(int cc_id) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  for (int anc : ancestors(cc_id)) {
    int layer = copy_layer_[static_cast<std::size_t>(anc)];
    if (layer >= 0) return layer;  // ancestors are level-descending: deepest first
  }
  return home_[cc_array_[c]];
}

bool CostEngine::layering_valid() const {
  for (const PlacedCopy& pc : assignment_.copies) {
    if (pc.layer >= parent_layer(pc.cc_id)) return false;
  }
  return true;
}

CostEngine::Totals CostEngine::totals() const {
  // Accumulation mirrors estimate_cost term by term and in the same order:
  // sites in id order, transfers in copy-selection order, pinned arrays in
  // declaration order.  Identical doubles in, identical order, identical out.
  Totals t;
  t.compute_cycles = compute_cycles_;
  const std::size_t L = static_cast<std::size_t>(num_layers_);
  for (std::size_t s = 0; s < site_n_.size(); ++s) {
    std::size_t l = static_cast<std::size_t>(serving_layer(s));
    t.energy_nj += site_energy_[s * L + l];
    t.access_cycles += site_cycles_[s * L + l];
  }
  for (const PlacedCopy& pc : assignment_.copies) {
    std::size_t c = static_cast<std::size_t>(pc.cc_id);
    std::size_t idx = table_index(pc.cc_id, parent_layer(pc.cc_id), pc.layer);
    if (!cc_fill_free_[c]) {
      t.energy_nj += fill_energy_[idx];
      t.transfer_cycles += xfer_cycles_[idx];
    }
    if (cc_write_back_[c]) {
      t.energy_nj += wb_energy_[idx];
      t.transfer_cycles += xfer_cycles_[idx];
    }
  }
  const std::size_t Lp = static_cast<std::size_t>(num_layers_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t idx = a * Lp + static_cast<std::size_t>(home);
    if (array_input_[a]) {
      t.energy_nj += pin_fill_energy_[idx];
      t.transfer_cycles += pin_fill_cycles_[idx];
    }
    if (array_output_[a]) {
      t.energy_nj += pin_flush_energy_[idx];
      t.transfer_cycles += pin_flush_cycles_[idx];
    }
  }
  return t;
}

void CostEngine::score_select_candidates(const Objective& objective, const int* cc_ids,
                                         const int* layers, std::size_t count, double* scalars,
                                         unsigned char* ok) const {
  const std::size_t C = cc_level_.size();
  const std::size_t K = assignment_.copies.size();
  const std::size_t L = static_cast<std::size_t>(num_layers_);
  const std::size_t S = site_n_.size();

  // Pass 1 — displacement structure, shared by every slot (independent of
  // the slot's layer).  For each placed copy, its current parent layer, and
  // for each unselected ancestor that precedes the copy's first selected
  // ancestor in the level-descending chain: selecting that ancestor would
  // re-parent the copy onto the new store (parent_layer walks the same chain
  // and stops at the first selected entry).
  scr_parent_.assign(K, 0);
  scr_desc_max_.assign(C, -1);
  scr_displaces_.assign(C * K, 0);
  for (std::size_t k = 0; k < K; ++k) {
    const PlacedCopy& pc = assignment_.copies[k];
    int parent = home_[cc_array_[static_cast<std::size_t>(pc.cc_id)]];
    for (int anc : ancestors(pc.cc_id)) {
      std::size_t ac = static_cast<std::size_t>(anc);
      int layer = copy_layer_[ac];
      if (layer >= 0) {
        parent = layer;
        break;
      }
      scr_displaces_[ac * K + k] = 1;
      if (pc.layer > scr_desc_max_[ac]) scr_desc_max_[ac] = pc.layer;
    }
    scr_parent_[k] = parent;
  }

  // Pass 2 — site-major accumulation.  Every slot's (energy, access-cycle)
  // accumulators receive exactly one addition per site, in site-id order:
  // the redirected term when the slot's candidate would take over the site
  // (the same level-strict condition select_copy applies), the live serving
  // term otherwise.  Per accumulator this is the canonical totals() site
  // pass, so the doubles match the sequential path bit for bit.
  scr_stamp_.assign(C, -1);
  scr_e_.assign(count, 0.0);
  scr_ac_.assign(count, 0.0);
  for (std::size_t s = 0; s < S; ++s) {
    int cur = serving_cc_[s];
    if (cur >= 0) {
      int cur_level = cc_level_[static_cast<std::size_t>(cur)];
      for (int c : covering(s)) {
        if (cc_level_[static_cast<std::size_t>(c)] <= cur_level) break;  // level-descending
        scr_stamp_[static_cast<std::size_t>(c)] = static_cast<int>(s);
      }
    } else {
      for (int c : covering(s)) scr_stamp_[static_cast<std::size_t>(c)] = static_cast<int>(s);
    }
    const double* se = &site_energy_[s * L];
    const double* sc = &site_cycles_[s * L];
    const std::size_t base = static_cast<std::size_t>(serving_layer(s));
    for (std::size_t m = 0; m < count; ++m) {
      std::size_t l = scr_stamp_[static_cast<std::size_t>(cc_ids[m])] == static_cast<int>(s)
                          ? static_cast<std::size_t>(layers[m])
                          : base;
      scr_e_[m] += se[l];
      scr_ac_[m] += sc[l];
    }
  }

  // Active pinned terms, hoisted once (homes are untouched by a select):
  // the exact (energy, cycles) additions totals() performs, in declaration
  // order.
  scr_pin_e_.clear();
  scr_pin_c_.clear();
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t idx = a * L + static_cast<std::size_t>(home);
    if (array_input_[a]) {
      scr_pin_e_.push_back(pin_fill_energy_[idx]);
      scr_pin_c_.push_back(pin_fill_cycles_[idx]);
    }
    if (array_output_[a]) {
      scr_pin_e_.push_back(pin_flush_energy_[idx]);
      scr_pin_c_.push_back(pin_flush_cycles_[idx]);
    }
  }

  // Pass 3 — per-slot verdicts and transfer/pinned tails.  Feasibility is
  // the tracker's exact post-place answer; layering validity reduces to the
  // two new constraints (pre-move state is layering-valid, the searches'
  // standing invariant): the new copy sits below its parent store, and
  // strictly above every copy it would re-parent.  Transfers are folded in
  // copy-selection order with the new copy last — exactly the order
  // totals() sees after select_copy's push_back.
  for (std::size_t m = 0; m < count; ++m) {
    int cc_id = cc_ids[m];
    int layer = layers[m];
    std::size_t c = static_cast<std::size_t>(cc_id);
    int parent_c = parent_layer(cc_id);
    bool layering_ok = layer < parent_c && layer > scr_desc_max_[c];
    if (!layering_ok || !footprint_.feasible_with_copy(cc_id, layer)) {
      ok[m] = 0;
      continue;
    }
    ok[m] = 1;
    double e = scr_e_[m];
    double ac = scr_ac_[m];
    double tc = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const PlacedCopy& pc = assignment_.copies[k];
      std::size_t pcc = static_cast<std::size_t>(pc.cc_id);
      int src = scr_displaces_[c * K + k] ? layer : scr_parent_[k];
      std::size_t idx = table_index(pc.cc_id, src, pc.layer);
      if (!cc_fill_free_[pcc]) {
        e += fill_energy_[idx];
        tc += xfer_cycles_[idx];
      }
      if (cc_write_back_[pcc]) {
        e += wb_energy_[idx];
        tc += xfer_cycles_[idx];
      }
    }
    std::size_t idx = table_index(cc_id, parent_c, layer);
    if (!cc_fill_free_[c]) {
      e += fill_energy_[idx];
      tc += xfer_cycles_[idx];
    }
    if (cc_write_back_[c]) {
      e += wb_energy_[idx];
      tc += xfer_cycles_[idx];
    }
    for (std::size_t p = 0; p < scr_pin_e_.size(); ++p) {
      e += scr_pin_e_[p];
      tc += scr_pin_c_[p];
    }
    scalars[m] = objective.scalar_terms(e, compute_cycles_ + ac + tc);
  }
}

CostEstimate CostEngine::cost() const {
  CostEstimate cost;
  cost.layer_reads.assign(static_cast<std::size_t>(num_layers_), 0);
  cost.layer_writes.assign(static_cast<std::size_t>(num_layers_), 0);

  Totals t = totals();
  cost.energy_nj = t.energy_nj;
  cost.compute_cycles = t.compute_cycles;
  cost.access_cycles = t.access_cycles;
  cost.transfer_cycles = t.transfer_cycles;

  for (std::size_t s = 0; s < site_n_.size(); ++s) {
    std::size_t l = static_cast<std::size_t>(serving_layer(s));
    if (site_write_[s]) {
      cost.layer_writes[l] += site_n_[s];
    } else {
      cost.layer_reads[l] += site_n_[s];
    }
  }
  for (const PlacedCopy& pc : assignment_.copies) {
    std::size_t c = static_cast<std::size_t>(pc.cc_id);
    std::size_t src = static_cast<std::size_t>(parent_layer(pc.cc_id));
    std::size_t dst = static_cast<std::size_t>(pc.layer);
    if (!cc_fill_free_[c]) {
      cost.layer_reads[src] += cc_elems_moved_[c];
      cost.layer_writes[dst] += cc_elems_moved_[c];
    }
    if (cc_write_back_[c]) {
      cost.layer_reads[dst] += cc_elems_moved_[c];
      cost.layer_writes[src] += cc_elems_moved_[c];
    }
  }
  std::size_t bg = static_cast<std::size_t>(background_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t h = static_cast<std::size_t>(home);
    if (array_input_[a]) {
      cost.layer_reads[bg] += array_elems_[a];
      cost.layer_writes[h] += array_elems_[a];
    }
    if (array_output_[a]) {
      cost.layer_reads[h] += array_elems_[a];
      cost.layer_writes[bg] += array_elems_[a];
    }
  }
  return cost;
}

double CostEngine::cc_energy_term(int cc_id, int src, int dst) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  std::size_t idx = table_index(cc_id, src, dst);
  double energy = 0.0;
  if (!cc_fill_free_[c]) energy += fill_energy_[idx];
  if (cc_write_back_[c]) energy += wb_energy_[idx];
  return energy;
}

double CostEngine::cc_cycle_term(int cc_id, int src, int dst) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  std::size_t idx = table_index(cc_id, src, dst);
  double cycles = 0.0;
  if (!cc_fill_free_[c]) cycles += xfer_cycles_[idx];
  if (cc_write_back_[c]) cycles += xfer_cycles_[idx];
  return cycles;
}

double CostEngine::pinned_energy_term(std::size_t array, int home) const {
  if (home == background_) return 0.0;
  std::size_t idx = array * static_cast<std::size_t>(num_layers_) + static_cast<std::size_t>(home);
  double energy = 0.0;
  if (array_input_[array]) energy += pin_fill_energy_[idx];
  if (array_output_[array]) energy += pin_flush_energy_[idx];
  return energy;
}

double CostEngine::pinned_cycle_term(std::size_t array, int home) const {
  if (home == background_) return 0.0;
  std::size_t idx = array * static_cast<std::size_t>(num_layers_) + static_cast<std::size_t>(home);
  double cycles = 0.0;
  if (array_input_[array]) cycles += pin_fill_cycles_[idx];
  if (array_output_[array]) cycles += pin_flush_cycles_[idx];
  return cycles;
}

std::pair<double, double> CostEngine::pinned_totals() const {
  double energy = 0.0;
  double cycles = 0.0;
  const std::size_t L = static_cast<std::size_t>(num_layers_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t idx = a * L + static_cast<std::size_t>(home);
    if (array_input_[a]) {
      energy += pin_fill_energy_[idx];
      cycles += pin_fill_cycles_[idx];
    }
    if (array_output_[a]) {
      energy += pin_flush_energy_[idx];
      cycles += pin_flush_cycles_[idx];
    }
  }
  return {energy, cycles};
}

}  // namespace mhla::assign
