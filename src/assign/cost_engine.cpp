#include "assign/cost_engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "ir/walk.h"

namespace mhla::assign {

CostEngine::CostEngine(const AssignContext& ctx)
    : ctx_(ctx),
      num_layers_(ctx.hierarchy.num_layers()),
      background_(ctx.hierarchy.background()),
      footprint_(ctx) {
  const std::size_t L = static_cast<std::size_t>(num_layers_);

  // Assignment-independent compute cycles: one IR walk, accumulated exactly
  // like estimate_cost so the cached value is bit-identical.
  ir::walk_statements(ctx_.program,
                      [&](int /*nest*/, const ir::LoopPath& path, const ir::StmtNode& stmt) {
                        compute_cycles_ += static_cast<double>(ir::iterations_of(path)) *
                                           static_cast<double>(stmt.op_cycles());
                      });

  // Array catalog.
  const auto& arrays = ctx_.program.arrays();
  array_input_.resize(arrays.size());
  array_output_.resize(arrays.size());
  array_elems_.resize(arrays.size());
  pin_fill_energy_.assign(arrays.size() * L, 0.0);
  pin_fill_cycles_.assign(arrays.size() * L, 0.0);
  pin_flush_energy_.assign(arrays.size() * L, 0.0);
  pin_flush_cycles_.assign(arrays.size() * L, 0.0);
  const mem::MemLayer& bg = ctx_.hierarchy.layer(background_);
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    array_names_.push_back(arrays[a].name);
    array_index_.emplace(arrays[a].name, a);
    array_input_[a] = arrays[a].is_input;
    array_output_[a] = arrays[a].is_output;
    array_elems_[a] = arrays[a].elems();
    double elems = static_cast<double>(arrays[a].elems());
    for (int home = 0; home < background_; ++home) {
      const mem::MemLayer& hl = ctx_.hierarchy.layer(home);
      std::size_t idx = a * L + static_cast<std::size_t>(home);
      pin_fill_energy_[idx] = elems * (bg.access_energy_nj(false) + hl.access_energy_nj(true));
      pin_fill_cycles_[idx] = mem::blocking_transfer_cycles(arrays[a].bytes(), bg, hl, ctx_.dma);
      pin_flush_energy_[idx] = elems * (hl.access_energy_nj(false) + bg.access_energy_nj(true));
      pin_flush_cycles_[idx] = mem::blocking_transfer_cycles(arrays[a].bytes(), hl, bg, ctx_.dma);
    }
  }

  // Per-site terms for every possible serving layer.
  const std::size_t S = ctx_.sites.size();
  site_n_.resize(S);
  site_write_.resize(S);
  site_array_.resize(S);
  site_energy_.assign(S * L, 0.0);
  site_cycles_.assign(S * L, 0.0);
  covering_.resize(S);
  for (const analysis::AccessSite& site : ctx_.sites) {
    std::size_t s = static_cast<std::size_t>(site.id);
    i64 n = site.dynamic_accesses();
    bool is_write = site.is_write();
    site_n_[s] = n;
    site_write_[s] = is_write;
    site_array_[s] = array_index(site.access->array);
    for (int l = 0; l < num_layers_; ++l) {
      const mem::MemLayer& layer = ctx_.hierarchy.layer(l);
      site_energy_[s * L + static_cast<std::size_t>(l)] =
          static_cast<double>(n) * layer.access_energy_nj(is_write);
      site_cycles_[s * L + static_cast<std::size_t>(l)] =
          static_cast<double>(n) * layer.access_latency(is_write);
    }
  }

  // Per-candidate structure and transfer terms for every layer pair.
  const auto& candidates = ctx_.reuse.candidates();
  const std::size_t C = candidates.size();
  cc_level_.resize(C);
  cc_fill_free_.resize(C);
  cc_write_back_.resize(C);
  cc_elems_moved_.resize(C);
  cc_sites_.resize(C);
  cc_ancestors_.resize(C);
  cc_array_.resize(C);
  fill_energy_.assign(C * L * L, 0.0);
  wb_energy_.assign(C * L * L, 0.0);
  xfer_cycles_.assign(C * L * L, 0.0);
  for (const analysis::CopyCandidate& cc : candidates) {
    std::size_t c = static_cast<std::size_t>(cc.id);
    cc_level_[c] = cc.level;
    cc_fill_free_[c] = cc.fill_free;
    cc_write_back_[c] = cc.has_writes();
    cc_elems_moved_[c] = cc.transfers * cc.elems_per_transfer;
    cc_array_[c] = array_index(cc.array);
    double fills = static_cast<double>(cc_elems_moved_[c]);
    for (int src = 0; src < num_layers_; ++src) {
      const mem::MemLayer& sl = ctx_.hierarchy.layer(src);
      for (int dst = 0; dst < num_layers_; ++dst) {
        const mem::MemLayer& dl = ctx_.hierarchy.layer(dst);
        std::size_t idx = table_index(cc.id, src, dst);
        double per_issue = mem::blocking_transfer_cycles(cc.bytes_per_transfer(), sl, dl, ctx_.dma);
        fill_energy_[idx] = fills * (sl.access_energy_nj(false) + dl.access_energy_nj(true));
        wb_energy_[idx] = fills * (dl.access_energy_nj(false) + sl.access_energy_nj(true));
        xfer_cycles_[idx] = static_cast<double>(cc.transfers) * per_issue;
      }
    }
    for (const analysis::AccessSite& site : ctx_.sites) {
      if (cc_covers_site(cc, site)) {
        cc_sites_[c].push_back(site.id);
        covering_[static_cast<std::size_t>(site.id)].push_back(cc.id);
      }
    }
    for (const analysis::CopyCandidate& other : candidates) {
      if (cc_is_ancestor(other, cc)) cc_ancestors_[c].push_back(other.id);
    }
    std::sort(cc_ancestors_[c].begin(), cc_ancestors_[c].end(),
              [&](int a, int b) { return candidates[static_cast<std::size_t>(a)].level >
                                         candidates[static_cast<std::size_t>(b)].level; });
  }
  for (std::vector<int>& cov : covering_) {
    std::sort(cov.begin(), cov.end(), [&](int a, int b) {
      return candidates[static_cast<std::size_t>(a)].level >
             candidates[static_cast<std::size_t>(b)].level;
    });
  }

  // Suffix minima for the branch-and-bound bound: column C is "no candidate
  // left" (+inf); walking candidate ids downward folds in the cheapest term
  // candidate j could still give each of its member sites.
  const double inf = std::numeric_limits<double>::infinity();
  site_suffix_e_.assign(S * (C + 1), inf);
  site_suffix_c_.assign(S * (C + 1), inf);
  for (std::size_t c = C; c-- > 0;) {
    for (std::size_t s = 0; s < S; ++s) {
      site_suffix_e_[s * (C + 1) + c] = site_suffix_e_[s * (C + 1) + c + 1];
      site_suffix_c_[s * (C + 1) + c] = site_suffix_c_[s * (C + 1) + c + 1];
    }
    const analysis::CopyCandidate& cc = candidates[c];
    for (int layer = 0; layer < background_; ++layer) {
      const mem::MemLayer& target = ctx_.hierarchy.layer(layer);
      if (!target.unbounded() && cc.bytes > target.capacity_bytes) continue;
      for (int site : cc_sites_[c]) {
        std::size_t s = static_cast<std::size_t>(site);
        site_suffix_e_[s * (C + 1) + c] =
            std::min(site_suffix_e_[s * (C + 1) + c], site_energy_term(s, layer));
        site_suffix_c_[s * (C + 1) + c] =
            std::min(site_suffix_c_[s * (C + 1) + c], site_cycle_term(s, layer));
      }
    }
  }

  load(out_of_box(ctx_));
}

std::size_t CostEngine::array_index(const std::string& name) const {
  auto it = array_index_.find(name);
  if (it == array_index_.end()) {
    throw std::invalid_argument("CostEngine: unknown array " + name);
  }
  return it->second;
}

void CostEngine::validate_copy(int cc_id, int layer) const {
  if (cc_id < 0 || static_cast<std::size_t>(cc_id) >= copy_layer_.size()) {
    throw std::invalid_argument("CostEngine: unknown copy candidate id " + std::to_string(cc_id));
  }
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("CostEngine: copy placed on unknown layer " +
                                std::to_string(layer));
  }
}

void CostEngine::load(const Assignment& assignment) {
  undo_.clear();
  copy_layer_.assign(ctx_.reuse.candidates().size(), -1);
  for (const PlacedCopy& pc : assignment.copies) {
    validate_copy(pc.cc_id, pc.layer);
    if (copy_layer_[static_cast<std::size_t>(pc.cc_id)] >= 0) {
      throw std::invalid_argument("CostEngine: duplicate copy candidate " +
                                  std::to_string(pc.cc_id));
    }
    copy_layer_[static_cast<std::size_t>(pc.cc_id)] = pc.layer;
  }
  assignment_ = assignment;

  home_.resize(array_names_.size());
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    home_[a] = assignment_.layer_of(array_names_[a], background_);
  }

  serving_cc_.assign(site_n_.size(), -1);
  for (std::size_t s = 0; s < serving_cc_.size(); ++s) {
    for (int cc : covering_[s]) {
      if (copy_layer_[static_cast<std::size_t>(cc)] >= 0) {
        serving_cc_[s] = cc;  // covering_ is level-descending: first hit is deepest
        break;
      }
    }
  }

  footprint_.load(assignment_);
}

void CostEngine::set_serving(std::size_t site, int cc_id) {
  undo_.push_back({UndoRec::Kind::Serving, static_cast<int>(site), serving_cc_[site], 0});
  serving_cc_[site] = cc_id;
}

void CostEngine::select_copy(int cc_id, int layer) {
  validate_copy(cc_id, layer);
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (copy_layer_[c] >= 0) {
    throw std::invalid_argument("CostEngine: candidate already selected " + std::to_string(cc_id));
  }
  copy_layer_[c] = layer;
  assignment_.copies.push_back({cc_id, layer});
  undo_.push_back({UndoRec::Kind::CopyPush, cc_id, 0, 0});
  footprint_.place_copy(cc_id, layer);
  for (int site : cc_sites_[c]) {
    std::size_t s = static_cast<std::size_t>(site);
    int cur = serving_cc_[s];
    if (cur < 0 || cc_level_[static_cast<std::size_t>(cur)] < cc_level_[c]) {
      set_serving(s, cc_id);
    }
  }
}

void CostEngine::remove_copy(int cc_id) {
  std::size_t c = static_cast<std::size_t>(cc_id);
  if (cc_id < 0 || c >= copy_layer_.size() || copy_layer_[c] < 0) {
    throw std::invalid_argument("CostEngine: candidate not selected " + std::to_string(cc_id));
  }
  int index = -1;
  for (std::size_t i = 0; i < assignment_.copies.size(); ++i) {
    if (assignment_.copies[i].cc_id == cc_id) {
      index = static_cast<int>(i);
      break;
    }
  }
  undo_.push_back({UndoRec::Kind::CopyErase, cc_id, copy_layer_[c], index});
  assignment_.copies.erase(assignment_.copies.begin() + index);
  copy_layer_[c] = -1;
  footprint_.remove_copy(cc_id);
  for (int site : cc_sites_[c]) {
    std::size_t s = static_cast<std::size_t>(site);
    if (serving_cc_[s] != cc_id) continue;
    int replacement = -1;
    for (int other : covering_[s]) {
      if (copy_layer_[static_cast<std::size_t>(other)] >= 0) {
        replacement = other;
        break;
      }
    }
    set_serving(s, replacement);
  }
}

void CostEngine::set_home(const std::string& array, int layer) {
  if (layer < 0 || layer >= num_layers_) {
    throw std::invalid_argument("CostEngine: home on unknown layer " + std::to_string(layer));
  }
  std::size_t a = array_index(array);
  if (home_[a] == layer) return;
  undo_.push_back({UndoRec::Kind::Home, static_cast<int>(a), home_[a], 0});
  home_[a] = layer;
  assignment_.array_layer[array_names_[a]] = layer;
  footprint_.set_home(a, layer);
}

int CostEngine::migrate_array(const std::string& array, int layer) {
  set_home(array, layer);
  // Same fixpoint as drop_invalid_copies: offenders of one pass are computed
  // against the state entering the pass, then removed together.
  int dropped = 0;
  for (;;) {
    std::vector<int> offenders;
    for (const PlacedCopy& pc : assignment_.copies) {
      if (pc.layer >= parent_layer(pc.cc_id)) offenders.push_back(pc.cc_id);
    }
    if (offenders.empty()) break;
    for (int cc : offenders) remove_copy(cc);
    dropped += static_cast<int>(offenders.size());
  }
  return dropped;
}

void CostEngine::undo_to(Checkpoint mark) {
  while (undo_.size() > mark) {
    const UndoRec rec = undo_.back();
    undo_.pop_back();
    switch (rec.kind) {
      case UndoRec::Kind::Serving:
        serving_cc_[static_cast<std::size_t>(rec.a)] = rec.b;
        break;
      case UndoRec::Kind::CopyPush:
        assignment_.copies.pop_back();
        copy_layer_[static_cast<std::size_t>(rec.a)] = -1;
        footprint_.undo_one();
        break;
      case UndoRec::Kind::CopyErase:
        assignment_.copies.insert(assignment_.copies.begin() + rec.c, {rec.a, rec.b});
        copy_layer_[static_cast<std::size_t>(rec.a)] = rec.b;
        footprint_.undo_one();
        break;
      case UndoRec::Kind::Home:
        home_[static_cast<std::size_t>(rec.a)] = rec.b;
        assignment_.array_layer[array_names_[static_cast<std::size_t>(rec.a)]] = rec.b;
        footprint_.undo_one();
        break;
    }
  }
}

int CostEngine::parent_layer(int cc_id) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  for (int anc : cc_ancestors_[c]) {
    int layer = copy_layer_[static_cast<std::size_t>(anc)];
    if (layer >= 0) return layer;  // ancestors are level-descending: deepest first
  }
  return home_[cc_array_[c]];
}

bool CostEngine::layering_valid() const {
  for (const PlacedCopy& pc : assignment_.copies) {
    if (pc.layer >= parent_layer(pc.cc_id)) return false;
  }
  return true;
}

CostEngine::Totals CostEngine::totals() const {
  // Accumulation mirrors estimate_cost term by term and in the same order:
  // sites in id order, transfers in copy-selection order, pinned arrays in
  // declaration order.  Identical doubles in, identical order, identical out.
  Totals t;
  t.compute_cycles = compute_cycles_;
  const std::size_t L = static_cast<std::size_t>(num_layers_);
  for (std::size_t s = 0; s < site_n_.size(); ++s) {
    std::size_t l = static_cast<std::size_t>(serving_layer(s));
    t.energy_nj += site_energy_[s * L + l];
    t.access_cycles += site_cycles_[s * L + l];
  }
  for (const PlacedCopy& pc : assignment_.copies) {
    std::size_t c = static_cast<std::size_t>(pc.cc_id);
    std::size_t idx = table_index(pc.cc_id, parent_layer(pc.cc_id), pc.layer);
    if (!cc_fill_free_[c]) {
      t.energy_nj += fill_energy_[idx];
      t.transfer_cycles += xfer_cycles_[idx];
    }
    if (cc_write_back_[c]) {
      t.energy_nj += wb_energy_[idx];
      t.transfer_cycles += xfer_cycles_[idx];
    }
  }
  const std::size_t Lp = static_cast<std::size_t>(num_layers_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t idx = a * Lp + static_cast<std::size_t>(home);
    if (array_input_[a]) {
      t.energy_nj += pin_fill_energy_[idx];
      t.transfer_cycles += pin_fill_cycles_[idx];
    }
    if (array_output_[a]) {
      t.energy_nj += pin_flush_energy_[idx];
      t.transfer_cycles += pin_flush_cycles_[idx];
    }
  }
  return t;
}

CostEstimate CostEngine::cost() const {
  CostEstimate cost;
  cost.layer_reads.assign(static_cast<std::size_t>(num_layers_), 0);
  cost.layer_writes.assign(static_cast<std::size_t>(num_layers_), 0);

  Totals t = totals();
  cost.energy_nj = t.energy_nj;
  cost.compute_cycles = t.compute_cycles;
  cost.access_cycles = t.access_cycles;
  cost.transfer_cycles = t.transfer_cycles;

  for (std::size_t s = 0; s < site_n_.size(); ++s) {
    std::size_t l = static_cast<std::size_t>(serving_layer(s));
    if (site_write_[s]) {
      cost.layer_writes[l] += site_n_[s];
    } else {
      cost.layer_reads[l] += site_n_[s];
    }
  }
  for (const PlacedCopy& pc : assignment_.copies) {
    std::size_t c = static_cast<std::size_t>(pc.cc_id);
    std::size_t src = static_cast<std::size_t>(parent_layer(pc.cc_id));
    std::size_t dst = static_cast<std::size_t>(pc.layer);
    if (!cc_fill_free_[c]) {
      cost.layer_reads[src] += cc_elems_moved_[c];
      cost.layer_writes[dst] += cc_elems_moved_[c];
    }
    if (cc_write_back_[c]) {
      cost.layer_reads[dst] += cc_elems_moved_[c];
      cost.layer_writes[src] += cc_elems_moved_[c];
    }
  }
  std::size_t bg = static_cast<std::size_t>(background_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t h = static_cast<std::size_t>(home);
    if (array_input_[a]) {
      cost.layer_reads[bg] += array_elems_[a];
      cost.layer_writes[h] += array_elems_[a];
    }
    if (array_output_[a]) {
      cost.layer_reads[h] += array_elems_[a];
      cost.layer_writes[bg] += array_elems_[a];
    }
  }
  return cost;
}

double CostEngine::cc_energy_term(int cc_id, int src, int dst) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  std::size_t idx = table_index(cc_id, src, dst);
  double energy = 0.0;
  if (!cc_fill_free_[c]) energy += fill_energy_[idx];
  if (cc_write_back_[c]) energy += wb_energy_[idx];
  return energy;
}

double CostEngine::cc_cycle_term(int cc_id, int src, int dst) const {
  std::size_t c = static_cast<std::size_t>(cc_id);
  std::size_t idx = table_index(cc_id, src, dst);
  double cycles = 0.0;
  if (!cc_fill_free_[c]) cycles += xfer_cycles_[idx];
  if (cc_write_back_[c]) cycles += xfer_cycles_[idx];
  return cycles;
}

double CostEngine::pinned_energy_term(std::size_t array, int home) const {
  if (home == background_) return 0.0;
  std::size_t idx = array * static_cast<std::size_t>(num_layers_) + static_cast<std::size_t>(home);
  double energy = 0.0;
  if (array_input_[array]) energy += pin_fill_energy_[idx];
  if (array_output_[array]) energy += pin_flush_energy_[idx];
  return energy;
}

double CostEngine::pinned_cycle_term(std::size_t array, int home) const {
  if (home == background_) return 0.0;
  std::size_t idx = array * static_cast<std::size_t>(num_layers_) + static_cast<std::size_t>(home);
  double cycles = 0.0;
  if (array_input_[array]) cycles += pin_fill_cycles_[idx];
  if (array_output_[array]) cycles += pin_flush_cycles_[idx];
  return cycles;
}

std::pair<double, double> CostEngine::pinned_totals() const {
  double energy = 0.0;
  double cycles = 0.0;
  const std::size_t L = static_cast<std::size_t>(num_layers_);
  for (std::size_t a = 0; a < array_names_.size(); ++a) {
    int home = home_[a];
    if (home == background_) continue;
    std::size_t idx = a * L + static_cast<std::size_t>(home);
    if (array_input_[a]) {
      energy += pin_fill_energy_[idx];
      cycles += pin_fill_cycles_[idx];
    }
    if (array_output_[a]) {
      energy += pin_flush_energy_[idx];
      cycles += pin_flush_cycles_[idx];
    }
  }
  return {energy, cycles};
}

}  // namespace mhla::assign
