#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// QSDPCM (quad-tree structured DPCM) video coder front end — one of the
/// classic DTSE video-encoding drivers: both frames are subsampled twice
/// (2:1 each step), coarse motion detection runs on the smallest level, and
/// the full-resolution signal is then DPCM-quantized.
///
/// Reuse / lifetime structure MHLA should discover:
///  * 2x2 / 4x4 gathers during subsampling -> row-band copy candidates,
///  * the subsampled pyramids (s2*, s4*) are small enough for on-chip homes
///    and die after the motion-detection nest,
///  * the coarse-ME nest re-reads 4x4 blocks across 25 candidate offsets.
ir::Program build_qsdpcm() {
  constexpr ir::i64 kH = 144;
  constexpr ir::i64 kW = 176;

  ir::ProgramBuilder pb("qsdpcm");
  pb.array("cur", {kH, kW}, 1).input();
  pb.array("prev", {kH, kW}, 1).input();
  pb.array("s2cur", {kH / 2, kW / 2}, 1);
  pb.array("s2prev", {kH / 2, kW / 2}, 1);
  pb.array("s4cur", {kH / 4, kW / 4}, 1);
  pb.array("s4prev", {kH / 4 + 8, kW / 4 + 8}, 1);  // padded for the +/-4 search
  pb.array("mv4", {9, 11}, 2);
  pb.array("qc", {kH, kW}, 1).output();

  // Nest 0: subsample current frame 2:1.
  pb.begin_loop("y", 0, kH / 2);
  pb.begin_loop("x", 0, kW / 2);
  pb.stmt("sub2_cur", 2)
      .read("cur", {av("y", 2), av("x", 2)})
      .read("cur", {av("y", 2), av("x", 2) + ac(1)})
      .read("cur", {av("y", 2) + ac(1), av("x", 2)})
      .read("cur", {av("y", 2) + ac(1), av("x", 2) + ac(1)})
      .write("s2cur", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 1: subsample previous frame 2:1.
  pb.begin_loop("y", 0, kH / 2);
  pb.begin_loop("x", 0, kW / 2);
  pb.stmt("sub2_prev", 2)
      .read("prev", {av("y", 2), av("x", 2)})
      .read("prev", {av("y", 2), av("x", 2) + ac(1)})
      .read("prev", {av("y", 2) + ac(1), av("x", 2)})
      .read("prev", {av("y", 2) + ac(1), av("x", 2) + ac(1)})
      .write("s2prev", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 2: second subsampling step for both pyramids.
  pb.begin_loop("y", 0, kH / 4);
  pb.begin_loop("x", 0, kW / 4);
  pb.stmt("sub4_cur", 2)
      .read("s2cur", {av("y", 2), av("x", 2)})
      .read("s2cur", {av("y", 2), av("x", 2) + ac(1)})
      .read("s2cur", {av("y", 2) + ac(1), av("x", 2)})
      .read("s2cur", {av("y", 2) + ac(1), av("x", 2) + ac(1)})
      .write("s4cur", {av("y"), av("x")});
  pb.stmt("sub4_prev", 2)
      .read("s2prev", {av("y", 2), av("x", 2)})
      .read("s2prev", {av("y", 2), av("x", 2) + ac(1)})
      .read("s2prev", {av("y", 2) + ac(1), av("x", 2)})
      .read("s2prev", {av("y", 2) + ac(1), av("x", 2) + ac(1)})
      .write("s4prev", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 3: coarse motion detection on the 4:1 level, 4x4 blocks, +/-4.
  pb.begin_loop("by", 0, 9);
  pb.begin_loop("bx", 0, 11);
  pb.begin_loop("my", 0, 9);
  pb.begin_loop("mx", 0, 9);
  pb.begin_loop("y", 0, 4);
  pb.begin_loop("x", 0, 4);
  pb.stmt("sad4", 2)
      .read("s4cur", {av("by", 4) + av("y"), av("bx", 4) + av("x")})
      .read("s4prev", {av("by", 4) + av("my") + av("y"), av("bx", 4) + av("mx") + av("x")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.stmt("pick_mv4", 8).write("mv4", {av("by"), av("bx")});
  pb.end_loop();
  pb.end_loop();

  // Nest 4: full-resolution DPCM quantization against the (compensated)
  // previous frame.
  pb.begin_loop("y", 0, kH);
  pb.begin_loop("x", 0, kW);
  pb.stmt("quantize", 4)
      .read("cur", {av("y"), av("x")})
      .read("prev", {av("y"), av("x")})
      .write("qc", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
