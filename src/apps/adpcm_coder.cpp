#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// ADPCM voice coder: 32768 16-bit samples processed in 128 frames of 256,
/// with table-driven quantization, followed by a decode/verification pass.
///
/// Substitution note: the real coder's step/index tables are indexed by a
/// data-dependent adaptation state; MHLA needs affine subscripts, so the
/// lookups are modeled as frame-position-indexed table reads with the same
/// table sizes and access counts (what matters to MHLA: small, read-only,
/// extremely reused tables).
///
/// Reuse structure MHLA should discover:
///  * step/index tables -> whole-table level-0 copies in L1,
///  * per-frame sample blocks -> level-1 copies with full-block deltas;
///    these are the paper's prototypical double-buffering prefetch targets.
ir::Program build_adpcm_coder() {
  constexpr ir::i64 kSamples = 32768;
  constexpr ir::i64 kFrame = 256;
  constexpr ir::i64 kFrames = kSamples / kFrame;

  ir::ProgramBuilder pb("adpcm_coder");
  pb.array("pcm_in", {kSamples}, 2).input();
  pb.array("step_tab", {kFrame}, 2).input();
  pb.array("idx_tab", {kFrame}, 1).input();
  pb.array("code", {kSamples}, 1);
  pb.array("pcm_out", {kSamples}, 2).output();

  // Nest 0: encode.
  pb.begin_loop("fr", 0, kFrames);
  pb.begin_loop("i", 0, kFrame);
  pb.stmt("encode", 5)
      .read("pcm_in", {av("fr", kFrame) + av("i")})
      .read("step_tab", {av("i")})
      .read("idx_tab", {av("i")})
      .write("code", {av("fr", kFrame) + av("i")});
  pb.end_loop();
  pb.end_loop();

  // Nest 1: decode / verification.
  pb.begin_loop("fr", 0, kFrames);
  pb.begin_loop("i", 0, kFrame);
  pb.stmt("decode", 4)
      .read("code", {av("fr", kFrame) + av("i")})
      .read("step_tab", {av("i")})
      .read("idx_tab", {av("i")})
      .write("pcm_out", {av("fr", kFrame) + av("i")});
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
