#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// JPEG-like still-image compression: 256x256 8-bit input processed in 8x8
/// blocks — load/level-shift, 2-D DCT, quantization with a zigzag-ordered
/// emit.
///
/// Reuse structure MHLA should discover:
///  * the 8x8 working block and coefficient block are tiny rw scratch arrays
///    (ideal L1 residents),
///  * `qtab` (128 B) and `zig` (128 B) are read once per coefficient of
///    every block -> whole-table level-0 copies,
///  * the input image streams through in 8-row bands -> level-1 band copies.
ir::Program build_jpeg_compress() {
  constexpr ir::i64 kSize = 256;
  constexpr ir::i64 kBlocks = kSize / 8;  // 32

  ir::ProgramBuilder pb("jpeg_compress");
  pb.array("img", {kSize, kSize}, 1).input();
  pb.array("block", {8, 8}, 2);
  pb.array("coef", {8, 8}, 2);
  pb.array("qtab", {8, 8}, 2).input();
  pb.array("zig", {64}, 2).input();
  pb.array("stream", {kBlocks, kBlocks, 64}, 2).output();

  pb.begin_loop("by", 0, kBlocks);
  pb.begin_loop("bx", 0, kBlocks);

  pb.begin_loop("y", 0, 8);
  pb.begin_loop("x", 0, 8);
  pb.stmt("load_shift", 1)
      .read("img", {av("by", 8) + av("y"), av("bx", 8) + av("x")})
      .write("block", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("u", 0, 8);
  pb.begin_loop("v", 0, 8);
  pb.stmt("dct8", 5)
      .read("block", {av("u"), av("v")}, 2)  // separable row + column pass
      .write("coef", {av("u"), av("v")});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("u", 0, 8);
  pb.begin_loop("v", 0, 8);
  pb.stmt("quant_zigzag", 3)
      .read("coef", {av("u"), av("v")})
      .read("qtab", {av("u"), av("v")})
      .read("zig", {av("u", 8) + av("v")})
      .write("stream", {av("by"), av("bx"), av("u", 8) + av("v")});
  pb.end_loop();
  pb.end_loop();

  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
