#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace mhla::apps {

/// Catalog entry for one of the nine benchmark applications.
///
/// Substitution note (DESIGN.md): the paper evaluated nine proprietary
/// industrial codes from the motion-estimation / video-encoding / image- and
/// audio-processing domains.  These are faithful loop-nest models of the
/// same domains; MHLA consumes only loop structure, trip counts and affine
/// access functions, all of which are realistic here.
struct AppInfo {
  std::string name;
  std::string domain;
  std::string description;
  ir::Program (*build)();
};

/// All nine applications, in a stable order.
const std::vector<AppInfo>& all_apps();

/// Build one application by name; throws std::out_of_range on unknown names.
ir::Program build_app(const std::string& name);

// Individual builders (each validates its program before returning).
ir::Program build_motion_estimation();
ir::Program build_qsdpcm();
ir::Program build_mpeg2_encoder();
ir::Program build_cavity_detection();
ir::Program build_jpeg_compress();
ir::Program build_wavelet();
ir::Program build_conv_filter();
ir::Program build_adpcm_coder();
ir::Program build_fft_filter();

}  // namespace mhla::apps
