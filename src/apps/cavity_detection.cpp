#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

namespace {

/// Add the nine constant-offset reads of a 3x3 neighbourhood of `array`
/// centered at (y, x).
void read_3x3(ir::ProgramBuilder::StmtRef stmt, const std::string& array) {
  for (ir::i64 dy = -1; dy <= 1; ++dy) {
    for (ir::i64 dx = -1; dx <= 1; ++dx) {
      stmt.read(array, {av("y") + ac(dy), av("x") + ac(dx)});
    }
  }
}

}  // namespace

/// Medical cavity detection — a classic DTSE image-processing driver:
/// a chain of whole-image passes (gauss blur -> gradient -> threshold and
/// label) with 3x3 neighbourhoods.  240x320 8-bit images.
///
/// Reuse / lifetime structure MHLA should discover:
///  * three-row sliding windows per pass -> level-1 row-band copy candidates
///    with one-row delta transfers,
///  * the `gauss` and `grad` intermediates are dead outside their
///    producer/consumer nests -> inter-array in-place sharing in L2.
ir::Program build_cavity_detection() {
  constexpr ir::i64 kH = 240;
  constexpr ir::i64 kW = 320;

  ir::ProgramBuilder pb("cavity_detection");
  pb.array("img_in", {kH, kW}, 1).input();
  pb.array("gauss", {kH, kW}, 1);
  pb.array("grad", {kH, kW}, 1);
  pb.array("label", {kH, kW}, 1).output();

  // Nest 0: gaussian blur, 3x3.
  pb.begin_loop("y", 1, kH - 1);
  pb.begin_loop("x", 1, kW - 1);
  {
    auto stmt = pb.stmt("blur", 4);
    read_3x3(stmt, "img_in");
    stmt.write("gauss", {av("y"), av("x")});
  }
  pb.end_loop();
  pb.end_loop();

  // Nest 1: sobel-style gradient magnitude, 3x3.
  pb.begin_loop("y", 2, kH - 2);
  pb.begin_loop("x", 2, kW - 2);
  {
    auto stmt = pb.stmt("gradient", 6);
    read_3x3(stmt, "gauss");
    stmt.write("grad", {av("y"), av("x")});
  }
  pb.end_loop();
  pb.end_loop();

  // Nest 2: threshold + neighbour-max labeling.
  pb.begin_loop("y", 3, kH - 3);
  pb.begin_loop("x", 3, kW - 3);
  {
    auto stmt = pb.stmt("label", 3);
    read_3x3(stmt, "grad");
    stmt.write("label", {av("y"), av("x")});
  }
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
