#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// Full-search block-matching motion estimation — the paper's flagship
/// domain.  QCIF luma (176x144), 16x16 macroblocks, +/-8 pel search window
/// (modeled on a frame padded by 8 on every side so all subscripts stay in
/// bounds).
///
/// Reuse structure MHLA should discover:
///  * the current macroblock (256 B) is reused across all 289 candidate
///    positions -> prime level-2 copy candidate,
///  * the 32x32 reference search window (1 KiB) is reused within a block and
///    slides by 16 pels between blocks -> level-2 candidate with delta
///    transfers.
ir::Program build_motion_estimation() {
  constexpr ir::i64 kBlocksY = 9;    // 144 / 16
  constexpr ir::i64 kBlocksX = 11;   // 176 / 16
  constexpr ir::i64 kBlock = 16;
  constexpr ir::i64 kPositions = 17;  // -8 .. +8

  ir::ProgramBuilder pb("motion_estimation");
  pb.array("sensor", {144, 176}, 1).input();
  pb.array("cur", {144, 176}, 1);
  pb.array("ref", {160, 192}, 1).input();   // previous frame, padded by 8
  pb.array("mv", {kBlocksY, kBlocksX}, 2).output();

  // Nest 0: frame capture / luma extraction (produces `cur`; gives the
  // motion-estimation copies a real dependence producer for TE).
  pb.begin_loop("cy", 0, 144);
  pb.begin_loop("cx", 0, 176);
  pb.stmt("capture", 1)
      .read("sensor", {av("cy"), av("cx")})
      .write("cur", {av("cy"), av("cx")});
  pb.end_loop();
  pb.end_loop();

  // Nest 1: full-search block matching.
  pb.begin_loop("by", 0, kBlocksY);
  pb.begin_loop("bx", 0, kBlocksX);
  pb.begin_loop("my", 0, kPositions);
  pb.begin_loop("mx", 0, kPositions);
  pb.begin_loop("y", 0, kBlock);
  pb.begin_loop("x", 0, kBlock);
  pb.stmt("sad", 2)
      .read("cur", {av("by", kBlock) + av("y"), av("bx", kBlock) + av("x")})
      .read("ref", {av("by", kBlock) + av("my") + av("y"),
                    av("bx", kBlock) + av("mx") + av("x")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.stmt("select_best", 12).write("mv", {av("by"), av("bx")});
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
