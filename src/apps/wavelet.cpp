#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// Two-level 2-D wavelet decomposition of a 256x256 16-bit image with
/// 5/3-style lifting: each pass reads overlapping 3-tap windows (samples
/// 2x, 2x+1, 2x+2), so neighbouring outputs share input samples — the data
/// reuse MHLA exploits.  Loop bounds stop one step early so the 3-tap
/// windows stay inside the arrays (real coders special-case the border).
///
/// Reuse / lifetime structure MHLA should discover:
///  * the vertical passes read three-row bands that slide by two rows ->
///    level-1 band copies with two-row delta transfers,
///  * all intermediate bands (lowH, highH, lowH2, ...) die after their
///    consumer nest -> heavy inter-array in-place sharing,
///  * the level-2 arrays are small enough to live on-chip wholesale.
ir::Program build_wavelet() {
  constexpr ir::i64 kN = 256;

  ir::ProgramBuilder pb("wavelet");
  pb.array("img", {kN, kN}, 2).input();
  pb.array("lowH", {kN, kN / 2}, 2);
  pb.array("highH", {kN, kN / 2}, 2);
  pb.array("LL", {kN / 2, kN / 2}, 2);
  pb.array("LH", {kN / 2, kN / 2}, 2).output();
  pb.array("HL", {kN / 2, kN / 2}, 2).output();
  pb.array("HH", {kN / 2, kN / 2}, 2).output();
  pb.array("lowH2", {kN / 2, kN / 4}, 2);
  pb.array("highH2", {kN / 2, kN / 4}, 2);
  pb.array("LL2", {kN / 4, kN / 4}, 2).output();
  pb.array("LH2", {kN / 4, kN / 4}, 2).output();
  pb.array("HL2", {kN / 4, kN / 4}, 2).output();
  pb.array("HH2", {kN / 4, kN / 4}, 2).output();

  // Nest 0: level-1 horizontal lifting pass (3-tap overlapping windows).
  pb.begin_loop("y", 0, kN);
  pb.begin_loop("x", 0, kN / 2 - 1);
  pb.stmt("h1", 4)
      .read("img", {av("y"), av("x", 2)})
      .read("img", {av("y"), av("x", 2) + ac(1)})
      .read("img", {av("y"), av("x", 2) + ac(2)})
      .write("lowH", {av("y"), av("x")})
      .write("highH", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 1: level-1 vertical lifting pass (three-row sliding bands).
  pb.begin_loop("y", 0, kN / 2 - 1);
  pb.begin_loop("x", 0, kN / 2);
  pb.stmt("v1_low", 4)
      .read("lowH", {av("y", 2), av("x")})
      .read("lowH", {av("y", 2) + ac(1), av("x")})
      .read("lowH", {av("y", 2) + ac(2), av("x")})
      .write("LL", {av("y"), av("x")})
      .write("LH", {av("y"), av("x")});
  pb.stmt("v1_high", 4)
      .read("highH", {av("y", 2), av("x")})
      .read("highH", {av("y", 2) + ac(1), av("x")})
      .read("highH", {av("y", 2) + ac(2), av("x")})
      .write("HL", {av("y"), av("x")})
      .write("HH", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 2: level-2 horizontal pass on LL.
  pb.begin_loop("y", 0, kN / 2);
  pb.begin_loop("x", 0, kN / 4 - 1);
  pb.stmt("h2", 4)
      .read("LL", {av("y"), av("x", 2)})
      .read("LL", {av("y"), av("x", 2) + ac(1)})
      .read("LL", {av("y"), av("x", 2) + ac(2)})
      .write("lowH2", {av("y"), av("x")})
      .write("highH2", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  // Nest 3: level-2 vertical pass.
  pb.begin_loop("y", 0, kN / 4 - 1);
  pb.begin_loop("x", 0, kN / 4);
  pb.stmt("v2_low", 4)
      .read("lowH2", {av("y", 2), av("x")})
      .read("lowH2", {av("y", 2) + ac(1), av("x")})
      .read("lowH2", {av("y", 2) + ac(2), av("x")})
      .write("LL2", {av("y"), av("x")})
      .write("LH2", {av("y"), av("x")});
  pb.stmt("v2_high", 4)
      .read("highH2", {av("y", 2), av("x")})
      .read("highH2", {av("y", 2) + ac(1), av("x")})
      .read("highH2", {av("y", 2) + ac(2), av("x")})
      .write("HL2", {av("y"), av("x")})
      .write("HH2", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
