#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// Convolution filter bank: 8 independent 5x5 filters over one 128x128
/// 16-bit image (padded to 132x132), a standard front-end of feature
/// extraction pipelines.
///
/// Reuse structure MHLA should discover:
///  * the 400 B coefficient bank is read in every innermost iteration ->
///    level-0 whole-table copy into L1,
///  * a 5-row input band per (f, y) -> level-2 copy with one-row deltas,
///  * output rows written once each -> level-2 write buffer with write-back.
ir::Program build_conv_filter() {
  constexpr ir::i64 kSize = 128;
  constexpr ir::i64 kPad = 132;
  constexpr ir::i64 kFilters = 8;
  constexpr ir::i64 kTaps = 5;

  ir::ProgramBuilder pb("conv_filter");
  pb.array("image", {kPad, kPad}, 2).input();
  pb.array("coef", {kFilters, kTaps, kTaps}, 2).input();
  pb.array("response", {kFilters, kSize, kSize}, 2).output();

  pb.begin_loop("f", 0, kFilters);
  pb.begin_loop("y", 0, kSize);
  pb.begin_loop("x", 0, kSize);
  pb.begin_loop("ky", 0, kTaps);
  pb.begin_loop("kx", 0, kTaps);
  pb.stmt("mac", 1)
      .read("image", {av("y") + av("ky"), av("x") + av("kx")})
      .read("coef", {av("f"), av("ky"), av("kx")});
  pb.end_loop();
  pb.end_loop();
  pb.stmt("store", 1).write("response", {av("f"), av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
