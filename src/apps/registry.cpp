#include "apps/registry.h"

#include <stdexcept>

namespace mhla::apps {

const std::vector<AppInfo>& all_apps() {
  static const std::vector<AppInfo> apps = {
      {"motion_estimation", "motion estimation",
       "full-search block matching on QCIF frames, 16x16 blocks, +/-8 search", build_motion_estimation},
      {"qsdpcm", "video encoding",
       "quad-tree structured DPCM: hierarchical subsampling + coarse motion detection", build_qsdpcm},
      {"mpeg2_encoder", "video encoding",
       "MPEG-2-like macroblock pipeline: motion comp, DCT, quant, reconstruction", build_mpeg2_encoder},
      {"cavity_detection", "image processing",
       "medical cavity detector: gauss blur, gradient, threshold/label chain", build_cavity_detection},
      {"jpeg_compress", "image processing",
       "JPEG-like compression: blockwise DCT, quantization, zigzag coding", build_jpeg_compress},
      {"wavelet", "image processing",
       "two-level 2-D lifting wavelet with tiled vertical passes", build_wavelet},
      {"conv_filter", "image processing",
       "8-filter 5x5 convolution bank over one image", build_conv_filter},
      {"adpcm_coder", "audio processing",
       "ADPCM voice coder: framed streaming with table-driven quantization", build_adpcm_coder},
      {"fft_filter", "audio processing",
       "frame-based FFT filter: forward FFT, spectral multiply, inverse FFT", build_fft_filter},
  };
  return apps;
}

ir::Program build_app(const std::string& name) {
  for (const AppInfo& info : all_apps()) {
    if (info.name == name) return info.build();
  }
  throw std::out_of_range("build_app: unknown application '" + name + "'");
}

}  // namespace mhla::apps
