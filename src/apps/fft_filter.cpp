#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// Frame-based FFT filter: 64 frames of 1024 samples — load, 10 butterfly
/// stages, spectral multiply with a fixed response, 10 inverse stages,
/// store.
///
/// Substitution note: butterfly strides vary per stage (non-affine); the
/// model uses the stage-0 access pattern (k and k+512) for every stage,
/// which preserves the property MHLA cares about: each stage touches the
/// whole working buffer with high reuse.
///
/// Reuse structure MHLA should discover:
///  * the 4 KiB working buffers (xr, xi) are re-read ~20x per frame ->
///    on-chip homes or whole-buffer copies,
///  * twiddle and response tables are read every butterfly -> level-0
///    copies,
///  * per-frame audio blocks stream through -> level-1 prefetchable copies.
ir::Program build_fft_filter() {
  constexpr ir::i64 kN = 1024;
  constexpr ir::i64 kFrames = 64;
  constexpr ir::i64 kHalf = kN / 2;
  constexpr ir::i64 kStages = 10;

  ir::ProgramBuilder pb("fft_filter");
  pb.array("audio", {kFrames * kN}, 2).input();
  pb.array("xr", {kN}, 4);
  pb.array("xi", {kN}, 4);
  pb.array("twr", {kHalf}, 4).input();
  pb.array("twi", {kHalf}, 4).input();
  pb.array("hr", {kN}, 4).input();
  pb.array("hi", {kN}, 4).input();
  pb.array("filtered", {kFrames * kN}, 2).output();

  pb.begin_loop("fr", 0, kFrames);

  pb.begin_loop("i", 0, kN);
  pb.stmt("load", 1)
      .read("audio", {av("fr", kN) + av("i")})
      .write("xr", {av("i")})
      .write("xi", {av("i")});
  pb.end_loop();

  pb.begin_loop("s", 0, kStages);
  pb.begin_loop("k", 0, kHalf);
  pb.stmt("butterfly", 6)
      .read("xr", {av("k")})
      .read("xr", {av("k") + ac(kHalf)})
      .read("xi", {av("k")})
      .read("xi", {av("k") + ac(kHalf)})
      .read("twr", {av("k")})
      .read("twi", {av("k")})
      .write("xr", {av("k")})
      .write("xr", {av("k") + ac(kHalf)})
      .write("xi", {av("k")})
      .write("xi", {av("k") + ac(kHalf)});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("i", 0, kN);
  pb.stmt("spectral_mul", 4)
      .read("xr", {av("i")})
      .read("xi", {av("i")})
      .read("hr", {av("i")})
      .read("hi", {av("i")})
      .write("xr", {av("i")})
      .write("xi", {av("i")});
  pb.end_loop();

  pb.begin_loop("s2", 0, kStages);
  pb.begin_loop("k", 0, kHalf);
  pb.stmt("ibutterfly", 6)
      .read("xr", {av("k")})
      .read("xr", {av("k") + ac(kHalf)})
      .read("xi", {av("k")})
      .read("xi", {av("k") + ac(kHalf)})
      .read("twr", {av("k")})
      .read("twi", {av("k")})
      .write("xr", {av("k")})
      .write("xr", {av("k") + ac(kHalf)})
      .write("xi", {av("k")})
      .write("xi", {av("k") + ac(kHalf)});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("i", 0, kN);
  pb.stmt("store", 1)
      .read("xr", {av("i")})
      .write("filtered", {av("fr", kN) + av("i")});
  pb.end_loop();

  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
