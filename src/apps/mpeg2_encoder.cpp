#include "apps/registry.h"

#include "ir/builder.h"
#include "ir/validate.h"

namespace mhla::apps {

using ir::ac;
using ir::av;

/// MPEG-2-like encoder macroblock pipeline on CIF luma (352x288): coarse
/// motion estimation, then per-macroblock motion compensation, 16x16 DCT
/// (modeled as one transform), quantization against a weight matrix, and
/// reconstruction.
///
/// Reuse structure MHLA should discover:
///  * current macroblock and +/-4 search window copies in the ME nest,
///  * the residual/coefficient scratch blocks (`blk`, `coef`) are tiny,
///    heavily re-read arrays that belong in L1 wholesale,
///  * the 512 B quantizer matrix is read for every coefficient of every
///    macroblock -> whole-table level-0 copy.
ir::Program build_mpeg2_encoder() {
  constexpr ir::i64 kH = 288;
  constexpr ir::i64 kW = 352;
  constexpr ir::i64 kMbY = kH / 16;  // 18
  constexpr ir::i64 kMbX = kW / 16;  // 22
  constexpr ir::i64 kSearch = 9;     // -4 .. +4

  ir::ProgramBuilder pb("mpeg2_encoder");
  pb.array("cur", {kH, kW}, 1).input();
  pb.array("ref", {kH + 16, kW + 16}, 1).input();  // padded by 8
  pb.array("mvs", {kMbY, kMbX}, 2);
  pb.array("blk", {16, 16}, 2);
  pb.array("coef", {16, 16}, 2);
  pb.array("qmat", {16, 16}, 2).input();
  pb.array("recon", {kH, kW}, 1).output();

  // Nest 0: motion estimation, +/-4 full search per macroblock.
  pb.begin_loop("mby", 0, kMbY);
  pb.begin_loop("mbx", 0, kMbX);
  pb.begin_loop("my", 0, kSearch);
  pb.begin_loop("mx", 0, kSearch);
  pb.begin_loop("y", 0, 16);
  pb.begin_loop("x", 0, 16);
  pb.stmt("me_sad", 2)
      .read("cur", {av("mby", 16) + av("y"), av("mbx", 16) + av("x")})
      .read("ref", {av("mby", 16) + av("my") + av("y"), av("mbx", 16) + av("mx") + av("x")});
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.end_loop();
  pb.stmt("me_pick", 10).write("mvs", {av("mby"), av("mbx")});
  pb.end_loop();
  pb.end_loop();

  // Nest 1: per-macroblock compensate -> transform -> quantize -> recon.
  pb.begin_loop("mby", 0, kMbY);
  pb.begin_loop("mbx", 0, kMbX);

  pb.begin_loop("y", 0, 16);
  pb.begin_loop("x", 0, 16);
  pb.stmt("compensate", 2)
      .read("cur", {av("mby", 16) + av("y"), av("mbx", 16) + av("x")})
      .read("ref", {av("mby", 16) + av("y") + ac(8), av("mbx", 16) + av("x") + ac(8)})
      .write("blk", {av("y"), av("x")});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("u", 0, 16);
  pb.begin_loop("v", 0, 16);
  pb.stmt("dct", 6)
      .read("blk", {av("u"), av("v")}, 2)  // row + column pass
      .write("coef", {av("u"), av("v")});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("u", 0, 16);
  pb.begin_loop("v", 0, 16);
  pb.stmt("quant", 3)
      .read("coef", {av("u"), av("v")})
      .read("qmat", {av("u"), av("v")})
      .write("coef", {av("u"), av("v")});
  pb.end_loop();
  pb.end_loop();

  pb.begin_loop("u", 0, 16);
  pb.begin_loop("v", 0, 16);
  pb.stmt("reconstruct", 4)
      .read("coef", {av("u"), av("v")})
      .write("recon", {av("mby", 16) + av("u"), av("mbx", 16) + av("v")});
  pb.end_loop();
  pb.end_loop();

  pb.end_loop();
  pb.end_loop();

  ir::Program program = pb.finish();
  ir::validate_or_throw(program);
  return program;
}

}  // namespace mhla::apps
