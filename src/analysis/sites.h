#pragma once

#include <vector>

#include "ir/program.h"
#include "ir/walk.h"

namespace mhla::analysis {

using ir::i64;

/// One static array reference in its full loop context.
struct AccessSite {
  int id = 0;                    ///< dense index over the whole program
  int nest = 0;                  ///< top-level node index (program time axis)
  ir::LoopPath path;             ///< enclosing loops, outermost first
  const ir::StmtNode* stmt = nullptr;
  const ir::ArrayAccess* access = nullptr;
  const ir::ArrayDecl* array = nullptr;

  /// Dynamic executions of the statement instance.
  i64 iterations() const { return ir::iterations_of(path); }

  /// Total dynamic accesses issued by this site.
  i64 dynamic_accesses() const { return iterations() * access->count; }

  bool is_read() const { return access->kind == ir::AccessKind::Read; }
  bool is_write() const { return access->kind == ir::AccessKind::Write; }
};

/// Collect every access site of the program, in program order.
/// Pointers remain valid as long as the Program is alive and unmodified.
std::vector<AccessSite> collect_sites(const ir::Program& program);

}  // namespace mhla::analysis
