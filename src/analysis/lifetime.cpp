#include "analysis/lifetime.h"

#include <algorithm>

namespace mhla::analysis {

std::map<std::string, LiveRange> array_live_ranges(const ir::Program& program,
                                                   const std::vector<AccessSite>& sites) {
  int last_nest = static_cast<int>(program.top().size()) - 1;
  std::map<std::string, LiveRange> ranges;
  for (const ir::ArrayDecl& array : program.arrays()) {
    LiveRange r;
    r.first = last_nest + 1;  // empty until an access is seen
    r.last = -1;
    ranges[array.name] = r;
  }
  for (const AccessSite& site : sites) {
    LiveRange& r = ranges[site.access->array];
    r.first = std::min(r.first, site.nest);
    r.last = std::max(r.last, site.nest);
  }
  for (const ir::ArrayDecl& array : program.arrays()) {
    LiveRange& r = ranges[array.name];
    if (array.is_input) r.first = 0;
    if (array.is_output) r.last = last_nest;
    if (array.is_input && is_dead(r)) r.last = last_nest;   // pinned but unused
    if (array.is_output && r.first > r.last) r.first = 0;
  }
  return ranges;
}

}  // namespace mhla::analysis
