#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/sites.h"

namespace mhla::analysis {

/// Coarse producer/consumer dependence information on the program time axis.
///
/// MHLA's time extensions need to know how far *backwards* a block transfer
/// reading array A in nest n may be issued: no earlier than the end of the
/// last nest before n that writes A (the data would not exist yet).  For
/// program inputs there is no producer, so the issue may move to the very
/// start of the program.
class DependenceInfo {
 public:
  static DependenceInfo run(const ir::Program& program, const std::vector<AccessSite>& sites);

  /// Latest nest strictly before `nest` that writes `array`; -1 if none
  /// (the array content is a program input at that point).
  int producer_before(const std::string& array, int nest) const;

  /// Nests that write `array`, ascending.
  const std::vector<int>& writer_nests(const std::string& array) const;

  /// Number of whole top-level nests between the producer of `array` (w.r.t.
  /// a consumer in `nest`) and `nest` itself — the prefetch freedom window.
  int freedom_nests(const std::string& array, int nest) const;

 private:
  std::map<std::string, std::vector<int>> writers_;
  std::vector<int> empty_;
};

}  // namespace mhla::analysis
