#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/sites.h"

namespace mhla::analysis {

/// Live range of an array on the coarse program time axis (top-level nest
/// indices, inclusive on both ends).
struct LiveRange {
  int first = 0;
  int last = 0;

  bool overlaps(const LiveRange& o) const { return first <= o.last && o.first <= last; }
  int length() const { return last - first + 1; }
};

/// Compute the live range of every declared array:
///   * inputs are live from nest 0,
///   * outputs are live until the final nest,
///   * otherwise from the first to the last nest touching the array.
/// Arrays never accessed get the empty-ish range [0, -1]... they are
/// reported with first > last and must be treated as dead.
std::map<std::string, LiveRange> array_live_ranges(const ir::Program& program,
                                                   const std::vector<AccessSite>& sites);

/// True if the range is dead (array never accessed and not pinned).
inline bool is_dead(const LiveRange& r) { return r.first > r.last; }

}  // namespace mhla::analysis
