#include "analysis/dependence.h"

#include <algorithm>

namespace mhla::analysis {

DependenceInfo DependenceInfo::run(const ir::Program& program,
                                   const std::vector<AccessSite>& sites) {
  DependenceInfo info;
  for (const ir::ArrayDecl& array : program.arrays()) {
    info.writers_[array.name];  // ensure every array has an entry
  }
  for (const AccessSite& site : sites) {
    if (!site.is_write()) continue;
    std::vector<int>& writers = info.writers_[site.access->array];
    if (writers.empty() || writers.back() != site.nest) {
      writers.push_back(site.nest);
    }
  }
  for (auto& [array, writers] : info.writers_) {
    std::sort(writers.begin(), writers.end());
    writers.erase(std::unique(writers.begin(), writers.end()), writers.end());
  }
  return info;
}

int DependenceInfo::producer_before(const std::string& array, int nest) const {
  const std::vector<int>& writers = writer_nests(array);
  int producer = -1;
  for (int w : writers) {
    if (w >= nest) break;
    producer = w;
  }
  return producer;
}

const std::vector<int>& DependenceInfo::writer_nests(const std::string& array) const {
  auto it = writers_.find(array);
  return it == writers_.end() ? empty_ : it->second;
}

int DependenceInfo::freedom_nests(const std::string& array, int nest) const {
  int producer = producer_before(array, nest);
  return std::max(0, nest - producer - 1);
}

}  // namespace mhla::analysis
