#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/array.h"
#include "ir/node.h"
#include "ir/walk.h"

namespace mhla::analysis {

using ir::i64;

/// A rectangular (bounding-box) footprint: one element-interval width per
/// array dimension.  MHLA's copy candidates are such boxes.
struct Box {
  std::vector<i64> widths;  ///< elements per dimension, outermost first

  i64 elems() const {
    i64 n = 1;
    for (i64 w : widths) n *= w;
    return n;
  }

  /// Component-wise max (union bounding box of aligned boxes).
  static Box merge(const Box& a, const Box& b);
};

/// Bounding box of `access` to `array` when the loops `path[fixed..]` vary
/// over their full ranges and the outer `fixed` loops are held constant.
///
/// Per array dimension:  width = 1 + sum over varying iterators of
/// |coef| * (trip-1) * step, clamped to the array extent.  Iterators of the
/// fixed outer loops contribute a (symbolic) offset only, not width.
Box footprint(const ir::ArrayDecl& array, const ir::ArrayAccess& access, const ir::LoopPath& path,
              std::size_t fixed);

/// Elements of `footprint(...)` that are *new* relative to the previous
/// iteration of loop `fixed-1` (the loop immediately outside the box):
/// consecutive outer iterations shift the box by |coef*step| along each
/// dimension; the non-overlapping slab must be re-transferred each time.
/// For `fixed == 0` this equals the full box (there is no outer loop).
///
/// This models MHLA's inter-copy reuse ("delta" block transfers).
i64 delta_elems(const ir::ArrayDecl& array, const ir::ArrayAccess& access, const ir::LoopPath& path,
                std::size_t fixed);

/// One dimension of a footprint as an interval *relative to the symbolic
/// base* spanned by the fixed outer iterators: the subscript, with fixed
/// iterators treated as unknowns, ranges over [lo, hi] as the varying loops
/// run.  Two accesses under the same fixed loops can be unioned exactly when
/// their fixed-iterator coefficients agree (same symbolic base).
struct DimInterval {
  i64 lo = 0;
  i64 hi = 0;  ///< inclusive
  i64 width() const { return hi - lo + 1; }
};

/// Relative interval per array dimension of `access` with `fixed` outer
/// loops held constant.
std::vector<DimInterval> footprint_intervals(const ir::ArrayDecl& array,
                                             const ir::ArrayAccess& access,
                                             const ir::LoopPath& path, std::size_t fixed);

/// Coefficients of the fixed outer iterators in dimension `dim` of `access`
/// (the "symbolic base" signature).  Union of two accesses' intervals is
/// exact iff their signatures match per dimension.
std::map<std::string, i64> fixed_signature(const ir::ArrayAccess& access, const ir::LoopPath& path,
                                           std::size_t fixed, int dim);

}  // namespace mhla::analysis
