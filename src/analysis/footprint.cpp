#include "analysis/footprint.h"

#include <algorithm>
#include <cstdlib>

namespace mhla::analysis {

Box Box::merge(const Box& a, const Box& b) {
  Box out;
  std::size_t rank = std::max(a.widths.size(), b.widths.size());
  out.widths.resize(rank, 1);
  for (std::size_t d = 0; d < rank; ++d) {
    i64 wa = d < a.widths.size() ? a.widths[d] : 1;
    i64 wb = d < b.widths.size() ? b.widths[d] : 1;
    out.widths[d] = std::max(wa, wb);
  }
  return out;
}

namespace {

/// Width contribution of iterator `var` with coefficient `coef` when the
/// loop runs its full range.
i64 span_of(const ir::LoopNode& loop, i64 coef) {
  if (loop.trip() <= 1) return 0;
  return std::llabs(coef) * (loop.trip() - 1) * loop.step();
}

}  // namespace

Box footprint(const ir::ArrayDecl& array, const ir::ArrayAccess& access, const ir::LoopPath& path,
              std::size_t fixed) {
  Box box;
  box.widths.resize(static_cast<std::size_t>(array.rank()), 1);
  for (int dim = 0; dim < array.rank(); ++dim) {
    const ir::AffineExpr& expr = access.index[static_cast<std::size_t>(dim)];
    i64 width = 1;
    for (std::size_t level = fixed; level < path.size(); ++level) {
      i64 coef = expr.coef(path[level]->iter());
      if (coef != 0) width += span_of(*path[level], coef);
    }
    box.widths[static_cast<std::size_t>(dim)] =
        std::min(width, array.dims[static_cast<std::size_t>(dim)]);
  }
  return box;
}

std::vector<DimInterval> footprint_intervals(const ir::ArrayDecl& array,
                                             const ir::ArrayAccess& access,
                                             const ir::LoopPath& path, std::size_t fixed) {
  std::vector<DimInterval> intervals(static_cast<std::size_t>(array.rank()));
  for (int dim = 0; dim < array.rank(); ++dim) {
    const ir::AffineExpr& expr = access.index[static_cast<std::size_t>(dim)];
    DimInterval iv;
    iv.lo = expr.constant();
    iv.hi = expr.constant();
    for (std::size_t level = fixed; level < path.size(); ++level) {
      const ir::LoopNode& loop = *path[level];
      i64 coef = expr.coef(loop.iter());
      if (coef == 0 || loop.trip() <= 0) continue;
      i64 first = loop.lower();
      i64 last = loop.lower() + (loop.trip() - 1) * loop.step();
      iv.lo += std::min(coef * first, coef * last);
      iv.hi += std::max(coef * first, coef * last);
    }
    intervals[static_cast<std::size_t>(dim)] = iv;
  }
  return intervals;
}

std::map<std::string, i64> fixed_signature(const ir::ArrayAccess& access, const ir::LoopPath& path,
                                           std::size_t fixed, int dim) {
  std::map<std::string, i64> signature;
  const ir::AffineExpr& expr = access.index[static_cast<std::size_t>(dim)];
  for (std::size_t level = 0; level < fixed && level < path.size(); ++level) {
    i64 coef = expr.coef(path[level]->iter());
    if (coef != 0) signature[path[level]->iter()] = coef;
  }
  return signature;
}

i64 delta_elems(const ir::ArrayDecl& array, const ir::ArrayAccess& access, const ir::LoopPath& path,
                std::size_t fixed) {
  Box box = footprint(array, access, path, fixed);
  if (fixed == 0) return box.elems();

  const ir::LoopNode& outer = *path[fixed - 1];
  // Shift of the box per iteration of `outer`, along each array dimension.
  // If the outer iterator does not appear, the same box is reloaded (shift 0
  // => delta 0 would mean a redundant transfer; MHLA still reloads it because
  // the copy buffer is reused between iterations, so treat as full reload
  // only when the box actually moves nowhere but the candidate was created —
  // we keep the full reload to stay conservative).
  bool moves = false;
  i64 delta = 0;
  i64 rest = 1;
  // delta of a moving box = total - overlap; for an axis-aligned box shifted
  // by s_d along each dim:  overlap = prod(max(0, w_d - |s_d|)).
  i64 overlap = 1;
  for (int dim = 0; dim < array.rank(); ++dim) {
    const ir::AffineExpr& expr = access.index[static_cast<std::size_t>(dim)];
    i64 coef = expr.coef(outer.iter());
    i64 shift = std::llabs(coef) * outer.step();
    i64 width = box.widths[static_cast<std::size_t>(dim)];
    if (shift != 0) moves = true;
    overlap *= std::max<i64>(0, width - shift);
    rest *= width;
  }
  if (!moves) return rest;  // box is reloaded wholesale each outer iteration
  delta = rest - overlap;
  return std::max<i64>(delta, 0);
}

}  // namespace mhla::analysis
