#include "analysis/reuse.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

namespace mhla::analysis {

namespace {

/// Key identifying a merge partition: same array, same nest, same fixed
/// loop prefix (by node identity).
struct PartitionKey {
  std::string array;
  int nest;
  std::vector<const ir::LoopNode*> prefix;

  bool operator<(const PartitionKey& o) const {
    return std::tie(array, nest, prefix) < std::tie(o.array, o.nest, o.prefix);
  }
};

/// Delta elements per refresh of the merged box, relative to the iterations
/// of the innermost fixed loop.  If no member access moves along that loop,
/// the buffer content is reloaded wholesale (conservative).
i64 merged_delta(const Box& box, const std::vector<const AccessSite*>& members, int level) {
  if (level == 0) return box.elems();
  const ir::LoopNode& outer = *members.front()->path[static_cast<std::size_t>(level - 1)];
  std::size_t rank = box.widths.size();
  std::vector<i64> shift(rank, 0);
  bool moves = false;
  for (const AccessSite* site : members) {
    for (std::size_t dim = 0; dim < rank; ++dim) {
      i64 coef = site->access->index[dim].coef(outer.iter());
      i64 s = std::llabs(coef) * outer.step();
      shift[dim] = std::max(shift[dim], s);
      if (s != 0) moves = true;
    }
  }
  if (!moves) return box.elems();
  i64 overlap = 1;
  for (std::size_t dim = 0; dim < rank; ++dim) {
    overlap *= std::max<i64>(0, box.widths[dim] - shift[dim]);
  }
  return std::max<i64>(box.elems() - overlap, 0);
}

}  // namespace

ReuseAnalysis ReuseAnalysis::run(const ir::Program& program, const std::vector<AccessSite>& sites) {
  ReuseAnalysis out;
  std::map<PartitionKey, std::vector<const AccessSite*>> partitions;

  for (const AccessSite& site : sites) {
    if (!site.array) continue;  // invalid programs are caught by validate()
    for (std::size_t level = 0; level <= site.path.size(); ++level) {
      PartitionKey key;
      key.array = site.access->array;
      key.nest = site.nest;
      key.prefix.assign(site.path.begin(), site.path.begin() + static_cast<long>(level));
      partitions[key].push_back(&site);
    }
  }

  for (const auto& [key, members] : partitions) {
    const ir::ArrayDecl& array = program.array(key.array);
    int level = static_cast<int>(key.prefix.size());
    std::size_t rank = static_cast<std::size_t>(array.rank());

    // Union the member footprints exactly where the symbolic bases agree
    // (same fixed-iterator coefficients), conservatively (whole extent)
    // where they do not.
    Box box;
    box.widths.assign(rank, 1);
    i64 reads = 0;
    i64 writes = 0;
    std::vector<DimInterval> merged;
    std::vector<std::map<std::string, i64>> signatures;
    std::vector<bool> incompatible(rank, false);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const AccessSite* site = members[m];
      auto intervals = footprint_intervals(array, *site->access, site->path, key.prefix.size());
      if (m == 0) {
        merged = intervals;
        signatures.resize(rank);
        for (std::size_t d = 0; d < rank; ++d) {
          signatures[d] =
              fixed_signature(*site->access, site->path, key.prefix.size(), static_cast<int>(d));
        }
      } else {
        for (std::size_t d = 0; d < rank; ++d) {
          auto sig =
              fixed_signature(*site->access, site->path, key.prefix.size(), static_cast<int>(d));
          if (sig != signatures[d]) {
            incompatible[d] = true;
          } else {
            merged[d].lo = std::min(merged[d].lo, intervals[d].lo);
            merged[d].hi = std::max(merged[d].hi, intervals[d].hi);
          }
        }
      }
      if (site->is_read()) {
        reads += site->dynamic_accesses();
      } else {
        writes += site->dynamic_accesses();
      }
    }
    for (std::size_t d = 0; d < rank; ++d) {
      i64 width = incompatible[d] ? array.dims[d] : merged[d].width();
      box.widths[d] = std::min(width, array.dims[d]);
    }

    CopyCandidate cc;
    cc.id = static_cast<int>(out.candidates_.size());
    cc.array = key.array;
    cc.nest = key.nest;
    cc.level = level;
    cc.elems = box.elems();
    cc.elem_bytes = array.elem_bytes;
    cc.bytes = box.elems() * array.elem_bytes;
    cc.prefix.assign(key.prefix.begin(), key.prefix.end());
    cc.transfers = 1;
    for (const ir::LoopNode* loop : key.prefix) cc.transfers *= loop->trip();
    cc.elems_per_transfer = merged_delta(box, members, level);
    cc.reads_served = reads;
    cc.writes_served = writes;
    for (const AccessSite* site : members) cc.site_ids.push_back(site->id);

    // Write-allocate-without-fetch: the fill can be skipped when every read
    // is locally produced first — a member write with the identical
    // subscript vector appears earlier in statement order.
    if (writes > 0) {
      bool all_reads_covered = true;
      for (const AccessSite* read_site : members) {
        if (!read_site->is_read()) continue;
        bool covered = false;
        for (const AccessSite* write_site : members) {
          if (!write_site->is_write()) continue;
          if (write_site->id < read_site->id &&
              write_site->access->index == read_site->access->index) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          all_reads_covered = false;
          break;
        }
      }
      cc.fill_free = all_reads_covered;
    }

    out.candidates_.push_back(std::move(cc));
  }

  // Stable, meaningful ordering: per array, per nest, outer to inner.
  std::sort(out.candidates_.begin(), out.candidates_.end(),
            [](const CopyCandidate& a, const CopyCandidate& b) {
              return std::tie(a.array, a.nest, a.level) < std::tie(b.array, b.nest, b.level);
            });
  for (std::size_t i = 0; i < out.candidates_.size(); ++i) {
    out.candidates_[i].id = static_cast<int>(i);
  }
  return out;
}

std::vector<int> ReuseAnalysis::candidates_for(const std::string& array) const {
  std::vector<int> ids;
  for (const CopyCandidate& cc : candidates_) {
    if (cc.array == array) ids.push_back(cc.id);
  }
  return ids;
}

}  // namespace mhla::analysis
