#pragma once

#include <string>
#include <vector>

#include "analysis/footprint.h"
#include "analysis/sites.h"

namespace mhla::analysis {

/// A copy candidate (CC): a rectangular sub-block of an array that the loop
/// nest reuses and that could be copied to a lower (closer, smaller, cheaper)
/// memory layer.
///
/// A CC lives at a *level* of a loop nest: the `level` outermost loops are
/// fixed, the inner loops vary.  The copy is (re)filled by one block transfer
/// per combined iteration of the fixed loops and serves every access of its
/// member sites.
struct CopyCandidate {
  int id = 0;
  std::string array;
  int nest = 0;           ///< top-level node index the CC lives in
  int level = 0;          ///< number of fixed outer loops (0 = once per nest)
  i64 elems = 0;          ///< box size, elements
  i64 bytes = 0;          ///< box size, bytes
  i64 transfers = 0;      ///< number of block-transfer issues over the program
  i64 elems_per_transfer = 0;  ///< elements moved per issue (delta transfers)
  i64 reads_served = 0;   ///< dynamic processor reads hitting the copy
  i64 writes_served = 0;  ///< dynamic processor writes hitting the copy
  i64 elem_bytes = 4;     ///< element size of the underlying array
  std::vector<int> site_ids;   ///< member access sites
  ir::LoopPath prefix;    ///< the fixed loops, outermost first (size == level)

  /// Bytes moved per block transfer.
  i64 bytes_per_transfer() const { return elems_per_transfer * elem_bytes; }

  /// Accesses served per element transferred; > 1 means the copy pays off.
  double reuse_factor() const {
    i64 moved = transfers * elems_per_transfer;
    if (moved <= 0) return 0.0;
    return static_cast<double>(reads_served + writes_served) / static_cast<double>(moved);
  }

  /// True if any member site writes through this copy (requires write-back).
  bool has_writes() const { return writes_served > 0; }

  /// True when the copy never needs to be *filled* from its parent store:
  /// every read it serves is preceded (in statement order) by a member
  /// write with the identical subscript, so the buffer is fully produced
  /// locally before being consumed (write-allocate without fetch).  Dirty
  /// data still flushes back.
  bool fill_free = false;

  /// The loop whose iterations refresh this copy (innermost fixed loop),
  /// or nullptr for level 0.
  const ir::LoopNode* carrying_loop() const { return level > 0 ? prefix.back() : nullptr; }
};

/// All copy candidates of a program, grouped per array.
///
/// Candidates of the same (array, nest) with increasing level form a *reuse
/// chain*: the level-k box contains the level-(k+1) box.  MHLA step 1 selects
/// a subset of each chain and assigns each selected CC to a layer.
class ReuseAnalysis {
 public:
  /// Generate copy candidates for every (array, nest, level) partition of
  /// the program's access sites.  Sites are merged into one candidate when
  /// they refer to the same array in the same nest under the same `level`
  /// outer loops (union bounding box).
  static ReuseAnalysis run(const ir::Program& program, const std::vector<AccessSite>& sites);

  const std::vector<CopyCandidate>& candidates() const { return candidates_; }

  /// Ids of candidates for one array, ordered by (nest, level).
  std::vector<int> candidates_for(const std::string& array) const;

  const CopyCandidate& candidate(int id) const { return candidates_.at(static_cast<std::size_t>(id)); }

 private:
  std::vector<CopyCandidate> candidates_;
};

}  // namespace mhla::analysis
