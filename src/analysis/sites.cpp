#include "analysis/sites.h"

namespace mhla::analysis {

std::vector<AccessSite> collect_sites(const ir::Program& program) {
  std::vector<AccessSite> sites;
  ir::walk_statements(program, [&](int nest, const ir::LoopPath& path, const ir::StmtNode& stmt) {
    for (const ir::ArrayAccess& access : stmt.accesses()) {
      AccessSite site;
      site.id = static_cast<int>(sites.size());
      site.nest = nest;
      site.path = path;
      site.stmt = &stmt;
      site.access = &access;
      site.array = program.find_array(access.array);
      sites.push_back(std::move(site));
    }
  });
  return sites;
}

}  // namespace mhla::analysis
