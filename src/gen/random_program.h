#pragma once

// Seeded random program generator.  Grown out of the fuzz-test support
// header so the property tests, the benches, and the exploration corpus
// driver all draw from one generator: a seed names the same program
// everywhere.  Programs are valid by construction — array extents are
// computed from the maximum subscript values the generated loops can
// produce.

#include <cstdint>

#include "ir/program.h"

namespace mhla::gen {

struct RandomProgramConfig {
  int max_nests = 3;
  int max_depth = 3;
  int max_arrays = 4;
  int max_stmts_per_nest = 2;
  int max_accesses_per_stmt = 3;
};

/// Deterministic random program for a seed.  All subscripts are affine in
/// enclosing iterators with small coefficients; extents are sized to the
/// exact maximum so every access is in bounds.
ir::Program random_program(std::uint32_t seed, const RandomProgramConfig& config = {});

}  // namespace mhla::gen
