#include "gen/random_program.h"

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "ir/builder.h"

namespace mhla::gen {

ir::Program random_program(std::uint32_t seed, const RandomProgramConfig& config) {
  std::mt19937 rng(seed);
  // Plain-modulo bounded draws: std::uniform_int_distribution's mapping is
  // implementation-defined, and a seed must name the same program on every
  // standard library (cache keys and corpus reports depend on it).
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint32_t>(hi - lo + 1));
  };

  // --- Stage 1: plan the structure (loops, statements, accesses).
  struct PlannedAccess {
    int array = 0;
    bool is_write = false;
    // one term list per dimension: (iterator index within nest path, coef) + offset
    std::vector<std::vector<std::pair<int, ir::i64>>> terms;
    std::vector<ir::i64> offsets;
  };
  struct PlannedStmt {
    ir::i64 op_cycles = 1;
    std::vector<PlannedAccess> accesses;
  };
  struct PlannedNest {
    std::vector<ir::i64> trips;  // loop trip counts, outermost first
    std::vector<PlannedStmt> stmts;
  };

  const ir::i64 trip_choices[] = {2, 3, 4, 8, 16};
  int num_arrays = pick(2, config.max_arrays);
  std::vector<int> array_rank(static_cast<std::size_t>(num_arrays));
  for (int& r : array_rank) r = pick(1, 2);

  std::vector<PlannedNest> nests(static_cast<std::size_t>(pick(1, config.max_nests)));
  for (PlannedNest& nest : nests) {
    nest.trips.resize(static_cast<std::size_t>(pick(1, config.max_depth)));
    for (ir::i64& t : nest.trips) t = trip_choices[pick(0, 4)];
    nest.stmts.resize(static_cast<std::size_t>(pick(1, config.max_stmts_per_nest)));
    for (PlannedStmt& stmt : nest.stmts) {
      stmt.op_cycles = pick(1, 8);
      stmt.accesses.resize(static_cast<std::size_t>(pick(1, config.max_accesses_per_stmt)));
      for (PlannedAccess& access : stmt.accesses) {
        access.array = pick(0, num_arrays - 1);
        access.is_write = pick(0, 3) == 0;  // 25% writes
        int rank = array_rank[static_cast<std::size_t>(access.array)];
        access.terms.resize(static_cast<std::size_t>(rank));
        access.offsets.resize(static_cast<std::size_t>(rank));
        for (int d = 0; d < rank; ++d) {
          int num_terms = pick(0, std::min<int>(2, static_cast<int>(nest.trips.size())));
          for (int t = 0; t < num_terms; ++t) {
            int iter = pick(0, static_cast<int>(nest.trips.size()) - 1);
            access.terms[static_cast<std::size_t>(d)].push_back({iter, pick(1, 3)});
          }
          access.offsets[static_cast<std::size_t>(d)] = pick(0, 4);
        }
      }
    }
  }

  // --- Stage 2: compute required extents per array dimension.
  std::vector<std::vector<ir::i64>> extents(static_cast<std::size_t>(num_arrays));
  for (int a = 0; a < num_arrays; ++a) {
    extents[static_cast<std::size_t>(a)].assign(
        static_cast<std::size_t>(array_rank[static_cast<std::size_t>(a)]), 1);
  }
  for (const PlannedNest& nest : nests) {
    for (const PlannedStmt& stmt : nest.stmts) {
      for (const PlannedAccess& access : stmt.accesses) {
        for (std::size_t d = 0; d < access.terms.size(); ++d) {
          ir::i64 max_value = access.offsets[d];
          for (const auto& [iter, coef] : access.terms[d]) {
            max_value += coef * (nest.trips[static_cast<std::size_t>(iter)] - 1);
          }
          ir::i64& extent = extents[static_cast<std::size_t>(access.array)][d];
          extent = std::max(extent, max_value + 1);
        }
      }
    }
  }

  // --- Stage 3: emit through the builder.
  ir::ProgramBuilder pb("fuzz_" + std::to_string(seed));
  const ir::i64 elem_choices[] = {1, 2, 4};
  for (int a = 0; a < num_arrays; ++a) {
    auto ref = pb.array("arr" + std::to_string(a), extents[static_cast<std::size_t>(a)],
                        elem_choices[pick(0, 2)]);
    if (pick(0, 1)) ref.input();
    if (pick(0, 2) == 0) ref.output();
  }
  for (std::size_t n = 0; n < nests.size(); ++n) {
    const PlannedNest& nest = nests[n];
    std::vector<std::string> iters;
    for (std::size_t l = 0; l < nest.trips.size(); ++l) {
      iters.push_back("n" + std::to_string(n) + "_i" + std::to_string(l));
      pb.begin_loop(iters.back(), 0, nest.trips[l]);
    }
    for (std::size_t s = 0; s < nest.stmts.size(); ++s) {
      const PlannedStmt& planned = nest.stmts[s];
      auto stmt = pb.stmt("s" + std::to_string(n) + "_" + std::to_string(s), planned.op_cycles);
      for (const PlannedAccess& access : planned.accesses) {
        std::vector<ir::AffineExpr> index;
        for (std::size_t d = 0; d < access.terms.size(); ++d) {
          ir::AffineExpr expr(access.offsets[d]);
          for (const auto& [iter, coef] : access.terms[d]) {
            expr += ir::av(iters[static_cast<std::size_t>(iter)], coef);
          }
          index.push_back(std::move(expr));
        }
        if (access.is_write) {
          stmt.write("arr" + std::to_string(access.array), std::move(index));
        } else {
          stmt.read("arr" + std::to_string(access.array), std::move(index));
        }
      }
    }
    for (std::size_t l = 0; l < nest.trips.size(); ++l) pb.end_loop();
  }
  return pb.finish();
}

}  // namespace mhla::gen
