#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <locale>
#include <sstream>

namespace mhla::obs {

namespace {

std::ostringstream plain_stream() {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  return out;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond fraction, as Chrome's "ts"/"dur" expect.
std::string micros(std::uint64_t ns) {
  std::ostringstream out = plain_stream();
  out << ns / 1000 << "." << static_cast<char>('0' + (ns % 1000) / 100)
      << static_cast<char>('0' + (ns % 100) / 10) << static_cast<char>('0' + ns % 10);
  return out.str();
}

}  // namespace

Tracer::Tracer() : epoch_(Clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_).count());
}

Tracer::Ring& Tracer::local_ring() {
  thread_local std::shared_ptr<Ring> ring;
  if (!ring) {
    ring = std::make_shared<Ring>();
    ring->capacity = ring_capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(rings_mu_);
    ring->tid = static_cast<int>(rings_.size());
    rings_.push_back(ring);
  }
  return *ring;
}

void Tracer::push(Ring& ring, TraceEvent event) {
  std::lock_guard<std::mutex> lock(ring.mu);
  event.tid = ring.tid;
  if (ring.events.size() >= ring.capacity) {
    ring.events.pop_front();  // drop oldest: keep the most recent window
    ++ring.dropped;
  }
  ring.events.push_back(std::move(event));
}

void Tracer::record_complete(std::string name, const char* cat, std::uint64_t start_ns,
                             std::uint64_t end_ns, std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = cat;
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.args_json = std::move(args_json);
  push(local_ring(), std::move(event));
}

void Tracer::instant(std::string name, const char* cat, std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = cat;
  event.phase = 'i';
  event.ts_ns = now_ns();
  event.args_json = std::move(args_json);
  push(local_ring(), std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->events.clear();
    ring->dropped = 0;
  }
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  ring_capacity_.store(capacity ? capacity : 1, std::memory_order_relaxed);
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> all = events();
  std::ostringstream out = plain_stream();
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& event = all[i];
    out << (i ? "," : "") << "\n    {\"name\": \"" << escape(event.name) << "\", \"cat\": \""
        << escape(event.cat) << "\", \"ph\": \"" << event.phase << "\", \"ts\": "
        << micros(event.ts_ns);
    if (event.phase == 'X') out << ", \"dur\": " << micros(event.dur_ns);
    if (event.phase == 'i') out << ", \"s\": \"t\"";
    out << ", \"pid\": 1, \"tid\": " << event.tid;
    if (!event.args_json.empty()) out << ", \"args\": " << event.args_json;
    out << "}";
  }
  out << (all.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

Span::Span(std::string name, const char* cat)
    : name_(std::move(name)), cat_(cat), start_ns_(Tracer::instance().now_ns()) {}

double Span::seconds() const {
  std::uint64_t end = finished_ ? end_ns_ : Tracer::instance().now_ns();
  return static_cast<double>(end - start_ns_) * 1e-9;
}

double Span::finish() {
  if (!finished_) {
    finished_ = true;
    end_ns_ = Tracer::instance().now_ns();
    Tracer::instance().record_complete(std::move(name_), cat_, start_ns_, end_ns_,
                                       std::move(args_));
  }
  return static_cast<double>(end_ns_ - start_ns_) * 1e-9;
}

}  // namespace mhla::obs
