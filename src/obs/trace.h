#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// Compile-time gate over the span tracer.  Building with
/// -DMHLA_OBS_ENABLED=0 turns every record path into dead code (spans still
/// measure time — the pipeline's stage timings come from them — but nothing
/// is ever buffered).  Counters and gauges are not gated: a relaxed add is
/// cheaper than the branch that would guard it.
#ifndef MHLA_OBS_ENABLED
#define MHLA_OBS_ENABLED 1
#endif

namespace mhla::obs {

/// One buffered trace event, in the vocabulary of the Chrome trace-event
/// format: a complete span ('X') or an instant ('i').  Timestamps are
/// nanoseconds on the process-wide monotonic clock, offset from the
/// tracer's epoch (first use), so exported traces start near t=0.
struct TraceEvent {
  std::string name;
  const char* cat = "mhla";
  char phase = 'X';
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  int tid = 0;
  std::string args_json;  ///< preformatted JSON object ("{...}") or empty
};

/// Process-wide span tracer.  Disabled (the default) it is one relaxed
/// atomic load per record attempt; enabled, each event goes into the
/// calling thread's bounded ring buffer (per-ring mutex — recording is
/// coarse-grained, so a lock per span is noise next to the work the span
/// measures, and it keeps export/record interleavings TSan-clean).  Rings
/// drop their *oldest* event on overflow: a long run keeps the most recent
/// window, which is the one you want in a post-mortem.  Rings are owned by
/// shared_ptr and survive thread exit, so export after a pool has joined
/// still sees every worker's events.  Thread ids are small integers handed
/// out at first record per thread.
class Tracer {
 public:
  static constexpr bool kCompiledIn = MHLA_OBS_ENABLED != 0;
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  using Clock = std::chrono::steady_clock;

  static Tracer& instance();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return kCompiledIn && enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch.  Always available (spans use it
  /// for their elapsed time even when tracing is off).
  std::uint64_t now_ns() const;

  /// Buffer a complete span.  No-op when disabled.
  void record_complete(std::string name, const char* cat, std::uint64_t start_ns,
                       std::uint64_t end_ns, std::string args_json = {});

  /// Buffer an instant event at now.  No-op when disabled.
  void instant(std::string name, const char* cat, std::string args_json = {});

  /// Every buffered event across all rings, sorted by timestamp.
  std::vector<TraceEvent> events() const;

  /// Events dropped to ring overflow, across all rings.
  std::uint64_t dropped() const;

  /// Drop every buffered event (rings stay registered).
  void clear();

  /// Capacity of rings created after this call (existing rings keep theirs).
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const { return ring_capacity_.load(std::memory_order_relaxed); }

  /// The full buffer as a Chrome trace-event JSON document ("traceEvents"
  /// array of "X"/"i" phases, microsecond timestamps) — load it in Perfetto
  /// or chrome://tracing.  Parses with core/json.
  std::string chrome_trace_json() const;

 private:
  struct Ring {
    std::mutex mu;
    std::deque<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::size_t capacity = kDefaultRingCapacity;
    int tid = 0;
  };

  Tracer();
  Ring& local_ring();
  void push(Ring& ring, TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
  Clock::time_point epoch_;
  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII span on the process tracer.  Construction stamps the start on the
/// monotonic clock unconditionally — `seconds()` works with tracing off, so
/// callers that need wall-clock (the pipeline's StageTiming rows) read it
/// from the span instead of timing separately.  `finish()` stops the clock,
/// buffers the event if the tracer is enabled, and returns the elapsed
/// seconds; the destructor finishes implicitly.
class Span {
 public:
  explicit Span(std::string name, const char* cat = "mhla");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Elapsed seconds so far (or the final elapsed time once finished).
  double seconds() const;

  /// Attach a preformatted JSON object as the span's args.
  void set_args(std::string args_json) { args_ = std::move(args_json); }

  double finish();

 private:
  std::string name_;
  const char* cat_;
  std::string args_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t end_ns_ = 0;
  bool finished_ = false;
};

}  // namespace mhla::obs
