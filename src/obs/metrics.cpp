#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <locale>
#include <sstream>

namespace mhla::obs {

namespace {

/// Classic-locale stream, mirroring core/json_report's c_stream(): metric
/// dumps must be machine-parseable regardless of the process locale.
std::ostringstream plain_stream() {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  return out;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

/// Shard slot of the calling thread: a small id handed out once per thread,
/// folded onto the shard array.  Distinct ids, not a hash of thread::id, so
/// a pool of N <= kShards workers never collides.
std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % Histogram::kShards;
}

}  // namespace

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramSnapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;  // inclusive upper bound of bucket i
    }
  }
  return ~std::uint64_t{0};
}

void Histogram::record(std::uint64_t value) {
  Shard& shard = shards_[thread_slot()];
  shard.buckets[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::uint64_t Registry::add_source(Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = next_source_++;
  sources_.emplace(id, std::move(source));
  return id;
}

void Registry::remove_source(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(id);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::vector<Source> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) out.counters.emplace_back(name, counter->value());
    for (const auto& [name, gauge] : gauges_) out.gauges.emplace_back(name, gauge->value());
    for (const auto& [name, histogram] : histograms_) {
      out.histograms.emplace_back(name, histogram->snapshot());
    }
    for (const auto& [id, source] : sources_) sources.push_back(source);
  }
  // Sources run outside the registry lock: they read component-owned
  // counters and may themselves take component locks (cache shard mutexes).
  for (const Source& source : sources) source(out);
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out = plain_stream();
  for (const auto& [name, value] : snapshot.counters) out << name << " " << value << "\n";
  for (const auto& [name, value] : snapshot.gauges) out << name << " " << value << "\n";
  for (const auto& [name, h] : snapshot.histograms) {
    out << name << " count=" << h.count << " mean=" << h.mean()
        << " p50<=" << h.quantile_bound(0.5) << " p99<=" << h.quantile_bound(0.99) << "\n";
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot, int indent) {
  std::ostringstream out = plain_stream();
  std::string p0 = pad(indent);
  std::string p1 = pad(indent + 1);
  std::string p2 = pad(indent + 2);
  out << p0 << "{\n";
  out << p1 << "\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i ? "," : "") << "\n"
        << p2 << "\"" << escape(snapshot.counters[i].first) << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "" : "\n" + p1) << "},\n";
  out << p1 << "\"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i ? "," : "") << "\n"
        << p2 << "\"" << escape(snapshot.gauges[i].first) << "\": " << snapshot.gauges[i].second;
  }
  out << (snapshot.gauges.empty() ? "" : "\n" + p1) << "},\n";
  out << p1 << "\"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i].second;
    out << (i ? "," : "") << "\n"
        << p2 << "\"" << escape(snapshot.histograms[i].first) << "\": {\"count\": " << h.count
        << ", \"sum\": " << h.sum << ", \"p50\": " << h.quantile_bound(0.5)
        << ", \"p99\": " << h.quantile_bound(0.99) << "}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n" + p1) << "}\n";
  out << p0 << "}";
  return out.str();
}

}  // namespace mhla::obs
