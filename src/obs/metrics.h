#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mhla::obs {

/// Monotonic event count.  `add` is a single relaxed fetch-add — safe from
/// any thread, never a synchronization point, and cheap enough that a
/// per-run flush (accumulate locally, add once at the end) keeps hot loops
/// untouched entirely.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, open connections, frontier size).
/// Signed so a transient add/sub imbalance under concurrency reads as a
/// negative blip instead of wrapping to 2^64.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d = 1) { value_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Mergeable point-in-time view of a Histogram.  Bucket `i` counts the
/// values whose bit width is `i`: bucket 0 holds exactly the zeros, bucket
/// i >= 1 holds [2^(i-1), 2^i).  Power-of-two buckets make the merge a
/// bucket-wise sum — associative and lossless (no re-binning ever).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;  ///< bit widths 0..64

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void merge(const HistogramSnapshot& other);

  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 on an
  /// empty histogram.  Exact to within the power-of-two bucket resolution.
  std::uint64_t quantile_bound(double q) const;

  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

/// Thread-sharded histogram over power-of-two buckets.  `record` touches
/// only the calling thread's shard (relaxed atomics, no locks), so threads
/// never contend; `snapshot` merges the shards losslessly.  A snapshot taken
/// while writers are still running is a consistent-enough view (each bucket
/// read is atomic); tests quiesce writers first for exact counts.
class Histogram {
 public:
  void record(std::uint64_t value);
  HistogramSnapshot snapshot() const;
  void reset();

  static constexpr std::size_t kShards = 16;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Shard, kShards> shards_;
};

/// Everything the registry knows at one instant, sorted by name within each
/// kind.  Sources (below) contribute rows the same way the registry's own
/// instruments do, so one snapshot is the single source of truth across
/// owned and external counters.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Human-readable dump (one `name value` line per row, histograms with
/// count/mean/p50/p99 bounds).
std::string to_text(const MetricsSnapshot& snapshot);

/// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
/// Embeddable in any result document (core::to_json forwards here so report
/// assemblers stay obs-agnostic); parses with core/json.
std::string to_json(const MetricsSnapshot& snapshot, int indent = 0);

/// Process-wide metrics registry.  Instruments are created on first use and
/// never destroyed (stable references: cache the result of `counter()` at a
/// call site and `add` forever).  Components that keep their own counters as
/// the source of truth — the concurrent cache's per-shard counters, the job
/// queue's depth — register a *source*: a callback that appends rows to
/// every snapshot, so `snapshot()` reports owned and external instruments
/// through one door without double counting.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  using Source = std::function<void(MetricsSnapshot&)>;
  std::uint64_t add_source(Source source);
  void remove_source(std::uint64_t id);

  MetricsSnapshot snapshot() const;

  /// Zero every owned instrument (sources are untouched).  Test isolation
  /// only — production code never resets.
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::uint64_t, Source> sources_;
  std::uint64_t next_source_ = 1;
};

}  // namespace mhla::obs
