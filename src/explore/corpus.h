#pragma once

#include <string>
#include <vector>

#include "explore/explorer.h"

namespace mhla::xplore {

/// A batch exploration over a program corpus: the registry applications
/// (all nine by default) plus, optionally, seeded `gen::random_program`
/// instances — the same generator the fuzz tests and benches use, so a
/// seed names the same workload everywhere.
struct CorpusConfig {
  ExplorerConfig explorer;

  /// Registry app names; empty = every registered application.
  std::vector<std::string> apps;

  /// Extra generated programs, seeds `random_seed .. random_seed + n - 1`.
  int random_programs = 0;
  std::uint32_t random_seed = 1;
};

/// Exploration outcome of one corpus member.
struct CorpusEntry {
  std::string program;  ///< app name or "fuzz_<seed>"
  ExploreResult result;
};

/// Combined corpus report: per-program results plus the aggregate counters
/// (total pipeline evaluations and cache hits across the corpus).
struct CorpusResult {
  std::vector<CorpusEntry> entries;
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;
};

/// Explore every corpus member with one Explorer configuration.  Programs
/// run sequentially (each exploration parallelizes internally), sharing the
/// persistent result cache when `explorer.cache_path` is set, so repeated
/// corpus runs skip every previously evaluated cell.
CorpusResult explore_corpus(const CorpusConfig& config);

/// Same, against a caller-owned store (no file I/O; `explorer.cache_path`
/// is ignored).  This is the distributed form: N workers or N servers each
/// drive a corpus against their own ConcurrentResultCache and converge by
/// merging shards (`merge_from`, `mhla_tool --cache-merge`).
CorpusResult explore_corpus(const CorpusConfig& config, ResultStore& cache);

/// Combined frontier report, one object per program.
std::string to_json(const CorpusResult& result, int indent = 0);

}  // namespace mhla::xplore
