#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "explore/cache.h"
#include "obs/metrics.h"

namespace mhla::xplore {

/// Capacity policy of a ConcurrentResultCache.
///
/// `max_entries` bounds the resident entry count; the bound is enforced per
/// shard (each shard holds at most ceil(max/shards) entries), so the global
/// count can transiently overshoot by at most one entry per shard while the
/// key distribution is skewed — never unboundedly.  `evict_floor` is the
/// hard lower guarantee: eviction never shrinks the cache below this many
/// entries, so a reader that observed a warm cache cannot find it drained
/// mid-lookup by a concurrent eviction storm.  A floor above the cap raises
/// the effective cap to the floor.
struct CacheBounds {
  std::size_t max_entries = 0;  ///< 0 = unbounded (no eviction)
  std::size_t evict_floor = 0;  ///< eviction never drops the count below this

  friend bool operator==(const CacheBounds&, const CacheBounds&) = default;
};

/// Counters of a ConcurrentResultCache, for the server's `cache_stats`
/// protocol verb and the bench harness.  Monotonic except `entries`.
struct CacheStats {
  std::size_t entries = 0;
  std::size_t shards = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< accepted inserts (including overwrites)
  std::uint64_t rejected = 0;    ///< inserts refused by the status guard
  std::uint64_t evictions = 0;
  std::uint64_t saves = 0;       ///< completed persistence passes
};

/// The process-wide result cache of `mhla_serve`: the sharded, lock-striped
/// concurrent form of `ResultCache`.
///
///  * **Sharding.**  Keys are spread over a power-of-two number of shards
///    (mixed first — cache keys are already FNV hashes, but the mix keeps
///    adversarial key sets from serializing on one stripe).  Each shard is
///    an unordered map plus an LRU list behind its own mutex, so concurrent
///    lookups and inserts on different shards never contend.
///  * **Bounds + LRU eviction.**  See CacheBounds.  Recency is tracked per
///    shard; an insert that pushes its shard over the per-shard cap evicts
///    from that shard's cold tail.  Every eviction claims its decrement of
///    the global size with a compare-exchange that refuses to cross
///    `evict_floor`, so the floor holds under any interleaving.
///  * **Status guard.**  Same contract as every cache layer: only
///    `Optimal`/`Feasible` entries are accepted (`cacheable_status`).
///  * **Persistence.**  `save`/`save_if_dirty` snapshot the shards into a
///    plain ResultCache and reuse its crash-safe temp+fsync+rename saver
///    (with its FaultInjector IoWrite sites), so a crash mid-persist leaves
///    the previous document intact and a damaged document salvage-loads.
///    `save_if_dirty` is what a periodic persister calls: it skips the I/O
///    entirely when nothing changed since the last completed save.
///  * **Convergence.**  `merge_from` adopts another cache's entries, so N
///    workers or N servers each persisting shards converge on one cache
///    (same last-write-wins contract as ResultCache::merge_from).
class ConcurrentResultCache : public ResultStore {
 public:
  /// `shard_count` is rounded up to a power of two; 0 picks the default
  /// (16).  Throws std::invalid_argument on a zero-entry cap below the
  /// floor only in the sense documented in CacheBounds (the floor wins).
  explicit ConcurrentResultCache(CacheBounds bounds = {}, std::size_t shard_count = 0);

  ConcurrentResultCache(const ConcurrentResultCache&) = delete;
  ConcurrentResultCache& operator=(const ConcurrentResultCache&) = delete;

  /// ResultStore interface.  `lookup` copies the entry out under the shard
  /// lock and bumps its recency; `insert` applies the status guard, then
  /// stores (last write wins) and evicts the shard's LRU tail past the cap.
  bool lookup(std::uint64_t key, CacheEntry& out) override;
  bool insert(std::uint64_t key, CacheEntry entry) override;

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  CacheStats stats() const;
  const CacheBounds& bounds() const { return bounds_; }

  /// Expose this cache's counters through a metrics registry as
  /// `<prefix>.hits`, `.misses`, `.insertions`, `.rejected`, `.evictions`,
  /// `.saves` (counters) and `.entries` (gauge).  The rows are read from
  /// the same lock-free cells `stats()` sums, so a registry snapshot and a
  /// `cache_stats` reply can never drift apart.  Returns the source id;
  /// the caller must `remove_source` it before this cache is destroyed.
  std::uint64_t register_metrics(obs::Registry& registry, std::string prefix) const;

  /// Adopt every cacheable entry of `other` (other wins on collisions;
  /// bounds/eviction apply as for plain inserts).
  void merge_from(const ResultCache& other);
  void merge_from(const ConcurrentResultCache& other);

  /// Consistent point-in-time copy (per shard; shards are copied one at a
  /// time, so entries racing in on other shards may or may not appear).
  ResultCache snapshot() const;

  /// Merge the persistent document at `path` into this cache, with the
  /// salvage semantics of ResultCache::load.  Returns the load report.
  ResultCache::LoadReport load_file(const std::string& path);

  /// Persist a snapshot to `path` via the crash-safe saver.  Throws
  /// std::runtime_error on failure (the previous document survives).
  void save(const std::string& path) const;

  /// Persist only if something changed since the last completed save to
  /// any path; returns whether a save ran.  Serialized internally, so a
  /// periodic persister and a shutdown save cannot interleave.
  bool save_if_dirty(const std::string& path) const;

 private:
  struct Node {
    CacheEntry entry;
    std::list<std::uint64_t>::iterator lru_it;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Node> map;
    std::list<std::uint64_t> lru;  ///< front = most recently used
    // Lock-free obs counters, not lock-guarded integers: `stats()` and a
    // registered metrics source read them without taking the shard lock,
    // so the `cache_stats` verb and the `metrics` verb report the same
    // numbers from the same cells — one source of truth.
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter evictions;
  };

  Shard& shard_of(std::uint64_t key) const;

  /// Claim one eviction against the global size without ever crossing the
  /// floor; false when the floor (or an empty cache) forbids it.
  bool claim_eviction();

  CacheBounds bounds_;
  std::size_t per_shard_cap_ = 0;  ///< 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  obs::Counter insertions_;
  obs::Counter rejected_;
  std::atomic<std::uint64_t> version_{0};  ///< bumped on every accepted mutation

  mutable std::mutex save_mu_;
  mutable std::uint64_t saved_version_ = 0;  ///< guarded by save_mu_
  mutable obs::Counter saves_;               ///< readable lock-free
};

}  // namespace mhla::xplore
