#pragma once

#include <vector>

#include "ir/affine.h"

namespace mhla::xplore {

using ir::i64;

/// One point of a trade-off exploration: an on-chip configuration with its
/// measured cost pair.
struct TradeoffPoint {
  i64 l1_bytes = 0;
  i64 l2_bytes = 0;
  double cycles = 0.0;
  double energy_nj = 0.0;

  /// Dominance for minimization on (cycles, energy).
  bool dominates(const TradeoffPoint& other) const {
    bool no_worse = cycles <= other.cycles && energy_nj <= other.energy_nj;
    bool better = cycles < other.cycles || energy_nj < other.energy_nj;
    return no_worse && better;
  }
};

/// Filter to the Pareto frontier (minimizing cycles and energy), sorted by
/// ascending cycles.  Duplicate-cost points keep the smallest configuration.
std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points);

/// True iff every point of `reference` is dominated-or-equaled by some point
/// of `candidate` — the "found everything the other exploration found" check
/// the explorer's acceptance tests and benches share.
bool frontier_covers(const std::vector<TradeoffPoint>& candidate,
                     const std::vector<TradeoffPoint>& reference);

}  // namespace mhla::xplore
