#include "explore/cache.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/json.h"
#include "core/json_report.h"

namespace mhla::xplore {

namespace {

std::string hex_key(std::uint64_t key) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::hex << std::setw(16) << std::setfill('0') << key;
  return out.str();
}

std::uint64_t parse_hex_key(const std::string& text) {
  if (text.size() != 16 || text.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::invalid_argument("cache key '" + text + "' is not 16 lowercase hex digits");
  }
  return std::stoull(text, nullptr, 16);
}

}  // namespace

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

ResultCache ResultCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    // Only a file that does not exist means a cold cache.  An existing but
    // unreadable one must not: proceeding cold and saving later would
    // truncate away every previously accumulated entry.
    if (!std::filesystem::exists(path)) return ResultCache{};
    throw std::runtime_error("result cache '" + path + "' exists but cannot be read");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("result cache '" + path + "': " + e.what());
  }
}

void ResultCache::save(const std::string& path) const {
  // Write-to-temp + rename: an interrupted or failed write must not
  // truncate away the previously accumulated entries (the same hazard
  // load() refuses to run into on an unreadable file).  The temp name mixes
  // a random draw with the thread id and the clock — std::random_device
  // alone may be deterministic on some platforms — so concurrent shard
  // saves to one path cannot interleave inside a single temp file; last
  // rename wins atomically.
  std::uint64_t nonce = std::random_device{}();
  nonce = nonce * 0x9e3779b97f4a7c15ULL ^
          static_cast<std::uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  nonce ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const std::string tmp = path + ".tmp." + std::to_string(nonce);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write result cache '" + tmp + "'");
    out << to_json() << "\n";
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw std::runtime_error("failed writing result cache '" + tmp + "'");
    }
  }
  std::error_code rename_error;
  std::filesystem::rename(tmp, path, rename_error);
  if (rename_error) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("cannot move result cache into place at '" + path +
                             "': " + rename_error.message());
  }
}

ResultCache ResultCache::from_json(const std::string& text) {
  core::Json document = core::Json::parse(text);
  std::int64_t version = document.at("version").integer();
  if (version != 1) {
    throw std::invalid_argument("unsupported cache version " + std::to_string(version));
  }
  ResultCache cache;
  for (const core::Json& item : document.at("entries").array()) {
    Entry entry;
    entry.l1_bytes = item.at("l1_bytes").integer();
    entry.l2_bytes = item.at("l2_bytes").integer();
    entry.strategy = item.at("strategy").string();
    entry.with_te = item.at("with_te").boolean();
    entry.cycles = item.at("cycles").number();
    entry.energy_nj = item.at("energy_nj").number();
    cache.entries_[parse_hex_key(item.at("key").string())] = std::move(entry);
  }
  return cache;
}

std::string ResultCache::to_json(int indent) const {
  std::string p0(static_cast<std::size_t>(indent) * 2, ' ');
  std::string p1 = p0 + "  ";
  std::string p2 = p1 + "  ";
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << p0 << "{\n" << p1 << "\"version\": 1,\n" << p1 << "\"entries\": [";
  bool first = true;
  for (const auto& [key, entry] : entries_) {  // std::map: sorted, byte-stable
    out << (first ? "\n" : ",\n");
    first = false;
    out << p2 << "{\"key\": \"" << hex_key(key) << "\", \"l1_bytes\": " << entry.l1_bytes
        << ", \"l2_bytes\": " << entry.l2_bytes << ", \"strategy\": \""
        << core::json_escape(entry.strategy) << "\", \"with_te\": "
        << (entry.with_te ? "true" : "false")
        << ", \"cycles\": " << core::json_number_exact(entry.cycles)
        << ", \"energy_nj\": " << core::json_number_exact(entry.energy_nj) << "}";
  }
  out << (first ? "" : "\n" + p1) << "]\n" << p0 << "}";
  return out.str();
}

const ResultCache::Entry* ResultCache::find(std::uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void ResultCache::insert(std::uint64_t key, Entry entry) {
  entries_[key] = std::move(entry);
}

void ResultCache::merge_from(const ResultCache& other) {
  for (const auto& [key, entry] : other.entries_) entries_[key] = entry;
}

}  // namespace mhla::xplore
