#include "explore/cache.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/fault_injector.h"
#include "core/json.h"
#include "core/json_report.h"

namespace mhla::xplore {

namespace {

std::string hex_key(std::uint64_t key) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::hex << std::setw(16) << std::setfill('0') << key;
  return out.str();
}

std::uint64_t parse_hex_key(const std::string& text) {
  if (text.size() != 16 || text.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::invalid_argument("cache key '" + text + "' is not 16 lowercase hex digits");
  }
  return std::stoull(text, nullptr, 16);
}

/// One cache entry from its JSON object — shared by the well-formed document
/// path (from_json) and the line-by-line salvage scanner, so both accept
/// exactly the same entries.  Throws on any missing/mistyped field.  The
/// "status" field is optional for backward compatibility: documents written
/// before it existed only ever contained completed results, so they load as
/// Feasible.
std::pair<std::uint64_t, ResultCache::Entry> entry_from_json(const core::Json& item) {
  ResultCache::Entry entry;
  entry.l1_bytes = item.at("l1_bytes").integer();
  entry.l2_bytes = item.at("l2_bytes").integer();
  entry.strategy = item.at("strategy").string();
  entry.with_te = item.at("with_te").boolean();
  entry.cycles = item.at("cycles").number();
  entry.energy_nj = item.at("energy_nj").number();
  if (const core::Json* status = item.find("status")) {
    entry.status = assign::parse_search_status(status->string());
  }
  return {parse_hex_key(item.at("key").string()), std::move(entry)};
}

/// Flush a just-written file to stable storage.  Without this, the atomic
/// rename below can land before the data blocks do, and a crash between the
/// two leaves a complete-looking name pointing at garbage.  Returns false
/// when the platform reports the flush failed (no-op success on Windows).
bool sync_file(const std::string& path) {
#ifndef _WIN32
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

/// Persist the directory entry a rename just created.  Best effort: some
/// filesystems reject fsync on directories, and the file data itself is
/// already durable at this point.
void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  int fd = ::open(parent.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

ResultCache ResultCache::load(const std::string& path) {
  LoadReport report;
  ResultCache cache = load(path, report);
  if (!report.clean) std::cerr << "warning: " << report.message << "\n";
  return cache;
}

ResultCache ResultCache::load(const std::string& path, LoadReport& report) {
  report = LoadReport{};
  std::ifstream in(path);
  if (!in) {
    // Only a file that does not exist means a cold cache.  An existing but
    // unreadable one must not: proceeding cold and saving later would
    // truncate away every previously accumulated entry.
    if (!std::filesystem::exists(path)) return ResultCache{};
    throw std::runtime_error("result cache '" + path + "' exists but cannot be read");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  try {
    ResultCache cache = from_json(text);
    report.entries = cache.size();
    return cache;
  } catch (const std::exception&) {
    // Fall through to the salvage path: a crash mid-write elsewhere (or a
    // stray editor) must not cost the warm entries that are still intact.
  }

  // Salvage pass.  save() emits one entry object per line, so every line
  // that parses as a complete {"key": ...} object is a trustworthy entry
  // regardless of what happened to the document around it (truncation,
  // interleaved writes, a mangled header).  Anything else is skipped.
  ResultCache cache;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::size_t open = line.find('{');
    std::size_t close = line.rfind('}');
    if (open == std::string::npos || close == std::string::npos || close <= open) continue;
    if (line.find("\"key\"") == std::string::npos) continue;
    try {
      core::Json item = core::Json::parse(line.substr(open, close - open + 1));
      auto [key, entry] = entry_from_json(item);
      cache.insert(key, std::move(entry));
    } catch (const std::exception&) {
      continue;  // damaged entry — skip it, keep scanning
    }
  }

  // Preserve the damaged original next to the cache before the next save()
  // overwrites it; the salvage may be incomplete and the wreckage is the
  // only evidence of what was lost.
  std::string quarantine = path + ".quarantine";
  {
    std::ofstream out(quarantine, std::ios::trunc);
    if (out) out << text;
    if (!out) quarantine.clear();
  }

  report.clean = false;
  report.entries = report.salvaged = cache.size();
  report.quarantine_path = quarantine;
  std::ostringstream message;
  message << "result cache '" << path << "' is malformed; salvaged " << report.salvaged
          << " entr" << (report.salvaged == 1 ? "y" : "ies");
  if (!quarantine.empty()) {
    message << "; damaged original preserved at '" << quarantine << "'";
  } else {
    message << "; could not preserve the damaged original";
  }
  report.message = message.str();
  return cache;
}

void ResultCache::save(const std::string& path) const {
  // Write-to-temp + rename: an interrupted or failed write must not
  // truncate away the previously accumulated entries (the same hazard
  // load() refuses to run into on an unreadable file).  The temp name mixes
  // a random draw with the thread id and the clock — std::random_device
  // alone may be deterministic on some platforms — so concurrent shard
  // saves to one path cannot interleave inside a single temp file; last
  // rename wins atomically.
  std::uint64_t nonce = std::random_device{}();
  nonce = nonce * 0x9e3779b97f4a7c15ULL ^
          static_cast<std::uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  nonce ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const std::string tmp = path + ".tmp." + std::to_string(nonce);
  auto fail = [&](const std::string& what) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error(what);
  };

  // Fault-injection sites (core::FaultInjector::Site::IoWrite) bracket the
  // three steps that can die for real — open, write+flush, rename — so the
  // crash-consistency tests can kill the save at each one and assert the
  // previously persisted document survived untouched.
  using core::FaultInjector;
  if (FaultInjector::fire(FaultInjector::Site::IoWrite)) {
    throw std::runtime_error("injected I/O fault opening result cache temp '" + tmp + "'");
  }
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write result cache '" + tmp + "'");
    out << to_json() << "\n";
    out.flush();
    if (FaultInjector::fire(FaultInjector::Site::IoWrite)) {
      fail("injected I/O fault writing result cache temp '" + tmp + "'");
    }
    if (!out) fail("failed writing result cache '" + tmp + "'");
  }
  if (!sync_file(tmp)) fail("cannot flush result cache temp '" + tmp + "' to disk");

  if (FaultInjector::fire(FaultInjector::Site::IoWrite)) {
    fail("injected I/O fault renaming result cache temp '" + tmp + "' into place");
  }
  std::error_code rename_error;
  std::filesystem::rename(tmp, path, rename_error);
  if (rename_error) {
    fail("cannot move result cache into place at '" + path + "': " + rename_error.message());
  }
  sync_parent_dir(path);
}

ResultCache ResultCache::from_json(const std::string& text) {
  core::Json document = core::Json::parse(text);
  std::int64_t version = document.at("version").integer();
  if (version != 1) {
    throw std::invalid_argument("unsupported cache version " + std::to_string(version));
  }
  ResultCache cache;
  for (const core::Json& item : document.at("entries").array()) {
    auto [key, entry] = entry_from_json(item);
    cache.insert(key, std::move(entry));
  }
  return cache;
}

std::string ResultCache::to_json(int indent) const {
  std::string p0(static_cast<std::size_t>(indent) * 2, ' ');
  std::string p1 = p0 + "  ";
  std::string p2 = p1 + "  ";
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << p0 << "{\n" << p1 << "\"version\": 1,\n" << p1 << "\"entries\": [";
  bool first = true;
  for (const auto& [key, entry] : entries_) {  // std::map: sorted, byte-stable
    out << (first ? "\n" : ",\n");
    first = false;
    out << p2 << "{\"key\": \"" << hex_key(key) << "\", \"l1_bytes\": " << entry.l1_bytes
        << ", \"l2_bytes\": " << entry.l2_bytes << ", \"strategy\": \""
        << core::json_escape(entry.strategy) << "\", \"with_te\": "
        << (entry.with_te ? "true" : "false")
        << ", \"status\": \"" << assign::to_string(entry.status)
        << "\", \"cycles\": " << core::json_number_exact(entry.cycles)
        << ", \"energy_nj\": " << core::json_number_exact(entry.energy_nj) << "}";
  }
  out << (first ? "" : "\n" + p1) << "]\n" << p0 << "}";
  return out.str();
}

const ResultCache::Entry* ResultCache::find(std::uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ResultCache::lookup(std::uint64_t key, CacheEntry& out) {
  const Entry* entry = find(key);
  if (!entry) return false;
  out = *entry;
  return true;
}

bool ResultCache::insert(std::uint64_t key, CacheEntry entry) {
  // The cacheability guard lives here, in the cache layer itself: a
  // truncated (BudgetExhausted) or infeasible result must never be stored,
  // no matter which caller produced it — its value depends on knobs the
  // cache key normalizes away.
  if (!cacheable_status(entry.status)) return false;
  entries_[key] = std::move(entry);
  return true;
}

void ResultCache::merge_from(const ResultCache& other) {
  for (const auto& [key, entry] : other.entries_) insert(key, entry);
}

}  // namespace mhla::xplore
