#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "explore/cache.h"
#include "explore/pareto.h"

namespace mhla::xplore {

struct ExploreResult;

/// One cell of the joint design space the explorer searches: an (L1, L2)
/// layer-size pair on a named search strategy, with time extensions on or
/// off.  `l1_bytes`/`l2_bytes` are drawn from the configured axes; 0
/// disables the layer.
struct DesignCell {
  i64 l1_bytes = 0;
  i64 l2_bytes = 0;
  std::string strategy;
  bool with_te = true;

  friend bool operator==(const DesignCell&, const DesignCell&) = default;
};

/// Configuration of an adaptive exploration.
///
/// The cells live on an explicit fine lattice (`l1_axis` x `l2_axis` x
/// `strategies` x TE variants).  The explorer seeds a coarse sub-grid
/// (every `seed_stride`-th axis point, endpoints always included) and then
/// refines adaptively: each round bisects the axis gaps between frontier
/// members and their nearest explored neighbors, so evaluations concentrate
/// where the energy/performance trade-off actually bends, until the lattice
/// is exhausted, a round brings no frontier improvement, or the evaluation
/// budget runs out (the search is *anytime*: the frontier of whatever was
/// evaluated is always valid).
struct ExplorerConfig {
  /// Base pipeline: platform models, DMA, strategy options, target, TE
  /// options, thread count.  Per cell only the layer sizes, the strategy
  /// name and the transfer mode are overridden.
  core::PipelineConfig pipeline;

  /// Wave observer: called after every completed wave with the running
  /// result (samples so far, counters, current frontier and its cells) —
  /// the streaming hook `mhla_serve` uses to push incremental frontier
  /// events as they land.  Invoked on the calling thread between waves,
  /// never concurrently; the referenced result is only valid during the
  /// call.  Null = no reporting.
  std::function<void(const ExploreResult&)> on_wave;

  /// Layer-size axes (bytes; 0 = layer absent).  Sorted and de-duplicated
  /// by the constructor.
  std::vector<i64> l1_axis;
  std::vector<i64> l2_axis;

  /// Strategy axis; empty means {pipeline.strategy}.
  std::vector<std::string> strategies;

  /// Also evaluate every cell with time extensions off (adds a TE axis of
  /// size two instead of the single `pipeline.dma.present` variant).
  bool explore_te = false;

  /// Coarse-seed stride over each axis (>= 1; 1 seeds the full lattice).
  std::size_t seed_stride = 2;

  /// Evaluation budget: hard cap on cells sampled this run; 0 = unlimited.
  /// On a cold cache this equals the number of pipeline runs.  Cache hits
  /// cost nothing but still count toward the budget, deliberately: a
  /// budget names one deterministic sample set regardless of cache
  /// warmth, so a warm re-run replays the identical exploration with zero
  /// pipeline evaluations instead of wandering past the point where the
  /// cold run stopped.
  std::size_t budget = 0;

  /// A refinement round "improves" only if some new sample escapes
  /// epsilon-dominance by the previous samples (0 = exact dominance).
  double convergence_epsilon = 0.0;

  /// Persistent result cache path; empty = in-memory only.
  std::string cache_path;
};

/// One evaluated (or cache-served) cell.
struct ExploreSample {
  DesignCell cell;
  TradeoffPoint point;
  bool from_cache = false;
};

/// Outcome of one exploration.  `samples` is in evaluation order — waves in
/// canonical cell order — and is bit-identical for every thread count and
/// for every cache warmth (only `evaluations`/`cache_hits`/`from_cache`
/// reflect how much actually ran).
struct ExploreResult {
  std::vector<ExploreSample> samples;
  std::vector<TradeoffPoint> frontier;

  /// Full coordinates of each frontier point (aligned with `frontier`):
  /// a TradeoffPoint names only the layer sizes, but in a joint-space run
  /// the strategy / TE setting that achieved the point matters too.
  std::vector<DesignCell> frontier_cells;
  std::size_t lattice_cells = 0;    ///< full fine-lattice cell count
  std::size_t evaluations = 0;      ///< pipeline runs actually performed
  std::size_t cache_hits = 0;
  std::size_t rounds = 0;           ///< seed wave + refinement waves
  bool budget_exhausted = false;
  bool converged = false;           ///< a refinement round brought no improvement
};

/// The adaptive design-space exploration engine.
///
/// `run` shares the program-level analyses across every cell, evaluates
/// each wave on a `core::parallel_for` pool (`config.pipeline.num_threads`)
/// and consults/extends the persistent result cache around every wave, so
/// repeated or sharded explorations of the same (program, config) skip all
/// previously evaluated cells.
class Explorer {
 public:
  /// Canonicalizes the axes and validates every strategy name against the
  /// registry (throws std::out_of_range on a miss, std::invalid_argument on
  /// an empty axis or a zero stride).
  explicit Explorer(ExplorerConfig config);

  const ExplorerConfig& config() const { return config_; }

  /// Explore with the persistent cache at `config().cache_path`: loaded
  /// before the run, written back after it when anything was evaluated.
  ExploreResult run(const ir::Program& program) const;

  /// Explore against a caller-owned store (no file I/O).  Batch drivers
  /// load a ResultCache once, thread it through many runs, and save once;
  /// the server threads its process-wide ConcurrentResultCache through
  /// every job the same way.
  ExploreResult run(const ir::Program& program, ResultStore& cache) const;

 private:
  ExplorerConfig config_;
};

/// Canonical cache key of one evaluated design cell: FNV-1a over the
/// serialized program, the *normalized* effective PipelineConfig, and the
/// transfer mode.  `effective` must already carry the cell's layer sizes
/// and strategy; this normalizes away everything that cannot change a
/// completed result — thread counts, the bnb-par pruning knobs, and the
/// run budget (budget-truncated results are never cached, see
/// `cacheable_status`) — so parallelism and deadlines never change a key.
/// Shared by the Explorer and by `mhla_serve`'s single-run submit path, so
/// an explore-warmed cache answers matching submits and vice versa.
std::uint64_t design_cache_key(const std::string& program_text,
                               core::PipelineConfig effective, bool with_te);

/// Explorer counterpart of `default_sweep()`: the same L1/L2 lattice
/// (L1 256 B..64 KiB powers of two, L2 {0, 64 KiB, 256 KiB}) with coarse
/// stride 2, unlimited budget, exact convergence.
ExplorerConfig default_explorer();

/// Machine-readable exploration report: counters, every sample, and the
/// frontier.
std::string to_json(const ExploreResult& result, int indent = 0);

}  // namespace mhla::xplore
