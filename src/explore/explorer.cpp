#include "explore/explorer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <cstdio>

#include "core/json_report.h"
#include "core/parallel_for.h"
#include "core/run_budget.h"
#include "ir/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mhla::xplore {

namespace {

/// Lattice coordinates of one cell, in the canonical evaluation order
/// (strategy, TE variant, L2, L1) — the order every wave is emitted in, so
/// results are identical for any thread count.
struct CellIdx {
  std::size_t strat = 0;
  std::size_t te = 0;
  std::size_t l2 = 0;
  std::size_t l1 = 0;

  friend auto operator<=>(const CellIdx&, const CellIdx&) = default;
};

/// Seed indices of one axis: every `stride`-th point plus the last.
std::vector<std::size_t> seed_indices(std::size_t n, std::size_t stride) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < n; i += stride) indices.push_back(i);
  if (indices.back() != n - 1) indices.push_back(n - 1);
  return indices;
}

}  // namespace

Explorer::Explorer(ExplorerConfig config) : config_(std::move(config)) {
  if (config_.strategies.empty()) config_.strategies = {config_.pipeline.strategy};
  // First-occurrence dedup (the order is the axis order, so no sort).
  std::vector<std::string> strategies;
  for (const std::string& name : config_.strategies) {
    assign::searcher(name);  // fail fast, listing the registry
    if (std::find(strategies.begin(), strategies.end(), name) == strategies.end()) {
      strategies.push_back(name);
    }
  }
  config_.strategies = std::move(strategies);
  auto canonicalize = [](std::vector<i64>& axis, const char* which) {
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
    if (axis.empty()) {
      throw std::invalid_argument(std::string("explorer: empty ") + which + " axis");
    }
    if (axis.front() < 0) {
      throw std::invalid_argument(std::string("explorer: negative ") + which + " size");
    }
  };
  canonicalize(config_.l1_axis, "l1");
  canonicalize(config_.l2_axis, "l2");
  if (config_.seed_stride == 0) {
    throw std::invalid_argument("explorer: seed_stride must be >= 1");
  }
}

std::uint64_t design_cache_key(const std::string& program_text, core::PipelineConfig effective,
                               bool with_te) {
  // The key covers everything that determines the cell's cost pair: the
  // program text and the *effective* pipeline document of the cell.  The
  // thread counts are zeroed and the bnb-par pruning knobs reset —
  // parallelism must never change a key, and those knobs only steer
  // pruning (the bnb-par optimum is bit-identical for any setting).
  // That guarantee assumes the state budget does not bind; budget-bound
  // search results are therefore never cached (the cache layer's status
  // guard enforces it), so every cached entry really is knob-independent.
  effective.num_threads = 0;
  effective.search.bnb_threads = 0;
  effective.search.bnb_tasks_per_thread = assign::SearchOptions{}.bnb_tasks_per_thread;
  effective.search.bnb_seed_incumbent = assign::SearchOptions{}.bnb_seed_incumbent;
  // The run budget is normalized away for the same reason: it cannot
  // change a completed result, and budget-truncated results are never
  // cached, so cached entries are shareable across deadline settings.
  effective.search.budget = core::BudgetSpec{};
  effective.search.shared_budget = nullptr;
  return fnv1a64(program_text + '\x1f' + core::to_json(effective) + '\x1f' +
                 (with_te ? "te" : "blocking"));
}

ExploreResult Explorer::run(const ir::Program& program) const {
  ResultCache cache =
      config_.cache_path.empty() ? ResultCache{} : ResultCache::load(config_.cache_path);
  ExploreResult result = run(program, cache);
  // Only evaluations add entries; a fully-warm replay leaves the file alone.
  if (!config_.cache_path.empty() && result.evaluations > 0) cache.save(config_.cache_path);
  return result;
}

ExploreResult Explorer::run(const ir::Program& program, ResultStore& cache) const {
  const std::vector<i64>& l1_axis = config_.l1_axis;
  const std::vector<i64>& l2_axis = config_.l2_axis;
  // Without a transfer engine the TE axis cannot change any result (the
  // simulation mode is `with_te && dma.present`), so it collapses.
  const std::vector<bool> te_variants =
      config_.explore_te && config_.pipeline.dma.present ? std::vector<bool>{false, true}
                                                         : std::vector<bool>{true};

  assign::SearchOptions search = config_.pipeline.search;
  search.set_target(config_.pipeline.target);

  // One budget token for the whole exploration: every cell search draws on
  // it, and the wave loop stops scheduling new waves once it has expired.
  // Expiry inside a wave degrades that wave's cells individually (their
  // searches return BudgetExhausted, which also makes them uncacheable), so
  // the deadline only changes *how much* is explored — a completed wave's
  // samples are the same as without a budget.
  std::optional<core::RunBudget> local_budget;
  if (!search.shared_budget && search.budget.bounded()) {
    local_budget.emplace(search.budget);
    search.shared_budget = &*local_budget;
  }
  core::RunBudget* run_budget = search.shared_budget;

  // Program-level analyses are hierarchy independent; run them once and
  // share them read-only across the worker pool (same as the fixed sweep).
  std::vector<analysis::AccessSite> sites = analysis::collect_sites(program);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
  std::map<std::string, analysis::LiveRange> live = analysis::array_live_ranges(program, sites);
  analysis::DependenceInfo deps = analysis::DependenceInfo::run(program, sites);

  const std::string program_text = ir::serialize(program);

  auto cell_of = [&](const CellIdx& idx) {
    DesignCell cell;
    cell.l1_bytes = l1_axis[idx.l1];
    cell.l2_bytes = l2_axis[idx.l2];
    cell.strategy = config_.strategies[idx.strat];
    cell.with_te = te_variants[idx.te];
    return cell;
  };
  auto key_of = [&](const DesignCell& cell) {
    // design_cache_key normalizes away everything that cannot change a
    // completed result (threads, pruning knobs, the run budget); only the
    // cell coordinates vary here.
    core::PipelineConfig effective = config_.pipeline;
    effective.platform.l1_bytes = cell.l1_bytes;
    effective.platform.l2_bytes = cell.l2_bytes;
    effective.strategy = cell.strategy;
    return design_cache_key(program_text, std::move(effective), cell.with_te);
  };
  auto evaluate = [&](const DesignCell& cell, assign::SearchStatus& status) {
    mem::PlatformConfig platform = config_.pipeline.platform;
    platform.l1_bytes = cell.l1_bytes;
    platform.l2_bytes = cell.l2_bytes;
    mem::Hierarchy hierarchy = mem::make_hierarchy(platform);
    assign::AssignContext ctx{program, sites, reuse,
                              live,    deps,  hierarchy,
                              config_.pipeline.dma};
    const assign::Searcher& strategy = assign::searcher(cell.strategy);
    assign::SearchResult found = strategy.search(ctx, search);
    // The cell's outcome rides into the cache entry; the cache layer's
    // status guard refuses budget-truncated or infeasible results, so a
    // degraded wave degrades only this run, never the persistent cache.
    status = found.status;

    sim::SimOptions sim_options;
    sim_options.mode = cell.with_te && config_.pipeline.dma.present
                           ? te::TransferMode::TimeExtended
                           : te::TransferMode::Blocking;
    sim_options.te = config_.pipeline.te;
    sim::SimResult sim = sim::simulate(ctx, found.assignment, sim_options);

    TradeoffPoint point;
    point.l1_bytes = cell.l1_bytes;
    point.l2_bytes = cell.l2_bytes;
    point.cycles = sim.total_cycles();
    point.energy_nj = sim.energy_nj;
    return point;
  };

  ExploreResult result;
  result.lattice_cells =
      l1_axis.size() * l2_axis.size() * config_.strategies.size() * te_variants.size();

  std::set<CellIdx> scheduled;  ///< seeded or queued for refinement
  std::set<CellIdx> sampled;    ///< has a sample (evaluated or cache-served)
  std::vector<CellIdx> sample_idx;  ///< aligned with result.samples

  // Seed wave: the coarse sub-grid, in canonical order.
  std::vector<CellIdx> wave;
  for (std::size_t s = 0; s < config_.strategies.size(); ++s) {
    for (std::size_t t = 0; t < te_variants.size(); ++t) {
      for (std::size_t j : seed_indices(l2_axis.size(), config_.seed_stride)) {
        for (std::size_t i : seed_indices(l1_axis.size(), config_.seed_stride)) {
          CellIdx idx{s, t, j, i};
          if (scheduled.insert(idx).second) wave.push_back(idx);
        }
      }
    }
  }
  std::sort(wave.begin(), wave.end());

  while (!wave.empty()) {
    // A run budget (deadline/probes/cancel) is checked at wave boundaries
    // only: an expired budget stops the exploration with everything
    // sampled so far instead of starting another wave.
    if (run_budget && run_budget->expired()) {
      result.budget_exhausted = true;
      break;
    }
    // The budget truncates the wave itself (canonical order), cache hits
    // included, so the sample sequence is a pure function of the config —
    // a warm cache replays it with fewer (or zero) pipeline runs.
    if (config_.budget != 0) {
      std::size_t remaining = config_.budget - result.samples.size();
      if (wave.size() > remaining) {
        wave.resize(remaining);
        result.budget_exhausted = true;
        if (wave.empty()) break;  // budget landed exactly on a wave boundary
      }
    }
    ++result.rounds;
    const std::size_t prev_count = result.samples.size();
    obs::Span wave_span("wave", "explore");

    // Serve what the cache already knows; collect the rest for evaluation.
    std::vector<ExploreSample> wave_samples(wave.size());
    std::vector<std::uint64_t> keys(wave.size());
    std::vector<std::size_t> pending;
    for (std::size_t w = 0; w < wave.size(); ++w) {
      DesignCell cell = cell_of(wave[w]);
      keys[w] = key_of(cell);
      CacheEntry cached;
      if (cache.lookup(keys[w], cached)) {
        ExploreSample& sample = wave_samples[w];
        sample.cell = std::move(cell);
        sample.point.l1_bytes = sample.cell.l1_bytes;
        sample.point.l2_bytes = sample.cell.l2_bytes;
        sample.point.cycles = cached.cycles;
        sample.point.energy_nj = cached.energy_nj;
        sample.from_cache = true;
        ++result.cache_hits;
      } else {
        wave_samples[w].cell = std::move(cell);
        pending.push_back(w);
      }
    }

    std::vector<assign::SearchStatus> statuses(wave.size(), assign::SearchStatus::Feasible);
    core::parallel_for(pending.size(), config_.pipeline.num_threads, [&](std::size_t p) {
      std::size_t w = pending[p];
      wave_samples[w].point = evaluate(wave_samples[w].cell, statuses[w]);
    });
    result.evaluations += pending.size();

    for (std::size_t p = 0; p < pending.size(); ++p) {
      std::size_t w = pending[p];
      const ExploreSample& sample = wave_samples[w];
      CacheEntry entry;
      entry.l1_bytes = sample.cell.l1_bytes;
      entry.l2_bytes = sample.cell.l2_bytes;
      entry.strategy = sample.cell.strategy;
      entry.with_te = sample.cell.with_te;
      entry.cycles = sample.point.cycles;
      entry.energy_nj = sample.point.energy_nj;
      entry.status = statuses[w];
      // The cache layer's status guard drops budget-truncated / infeasible
      // results; no pre-filtering here, the contract lives in one place.
      cache.insert(keys[w], std::move(entry));
    }

    for (std::size_t w = 0; w < wave.size(); ++w) {
      sampled.insert(wave[w]);
      sample_idx.push_back(wave[w]);
      result.samples.push_back(std::move(wave_samples[w]));
    }

    // A round improves when some new sample escapes (epsilon-)dominance by
    // everything known before the round.
    const double eps = config_.convergence_epsilon;
    bool improved = false;
    for (std::size_t n = prev_count; n < result.samples.size() && !improved; ++n) {
      const TradeoffPoint& s = result.samples[n].point;
      bool covered = false;
      for (std::size_t o = 0; o < prev_count && !covered; ++o) {
        const TradeoffPoint& old = result.samples[o].point;
        covered = old.cycles <= s.cycles * (1.0 + eps) &&
                  old.energy_nj <= s.energy_nj * (1.0 + eps);
      }
      improved = !covered;
    }

    std::vector<TradeoffPoint> points;
    points.reserve(result.samples.size());
    for (const ExploreSample& sample : result.samples) points.push_back(sample.point);
    result.frontier = pareto_front(std::move(points));

    // Re-attach the full cell coordinates (first sample matching each kept
    // point — frontier points are sample points, so a match always exists).
    result.frontier_cells.clear();
    for (const TradeoffPoint& f : result.frontier) {
      for (const ExploreSample& sample : result.samples) {
        if (sample.point.l1_bytes == f.l1_bytes && sample.point.l2_bytes == f.l2_bytes &&
            sample.point.cycles == f.cycles && sample.point.energy_nj == f.energy_nj) {
          result.frontier_cells.push_back(sample.cell);
          break;
        }
      }
    }

    if (obs::Tracer::instance().enabled()) {
      char args[160];
      std::snprintf(args, sizeof args,
                    "{\"cells\": %zu, \"cache_served\": %zu, \"evaluated\": %zu, "
                    "\"frontier\": %zu}",
                    wave.size(), wave.size() - pending.size(), pending.size(),
                    result.frontier.size());
      wave_span.set_args(args);
    }

    // Stream the wave's running result (incremental frontier) before the
    // termination checks, so an observer sees the final wave too.
    if (config_.on_wave) config_.on_wave(result);

    if (result.budget_exhausted) break;
    if (!improved) {
      result.converged = true;
      break;
    }

    // Refinement wave: bisect the axis gaps between every frontier member
    // and its nearest sampled neighbor, both directions, both size axes.
    auto on_frontier = [&](const TradeoffPoint& p) {
      return std::any_of(result.frontier.begin(), result.frontier.end(),
                         [&](const TradeoffPoint& f) {
                           return f.cycles == p.cycles && f.energy_nj == p.energy_nj;
                         });
    };
    std::set<CellIdx> next;
    auto bisect_axis = [&](const CellIdx& idx, bool along_l1) {
      std::size_t at = along_l1 ? idx.l1 : idx.l2;
      std::size_t size = along_l1 ? l1_axis.size() : l2_axis.size();
      auto with = [&](std::size_t v) {
        CellIdx c = idx;
        (along_l1 ? c.l1 : c.l2) = v;
        return c;
      };
      auto propose = [&](std::size_t mid) {
        CellIdx c = with(mid);
        if (mid != at && !scheduled.contains(c)) {
          scheduled.insert(c);
          next.insert(c);
        }
      };
      // Bisect toward the nearest sampled neighbor in each direction; a
      // direction with no sample yet (a freshly bisected row of the other
      // axis) probes half-way toward the axis boundary instead, so new rows
      // fill in around their frontier member instead of stalling.
      bool found_lo = false;
      for (std::size_t lo = at; lo-- > 0;) {
        if (sampled.contains(with(lo))) {
          if (at - lo >= 2) propose((at + lo) / 2);
          found_lo = true;
          break;
        }
      }
      if (!found_lo && at > 0) propose(at / 2);
      bool found_hi = false;
      for (std::size_t hi = at + 1; hi < size; ++hi) {
        if (sampled.contains(with(hi))) {
          if (hi - at >= 2) propose((at + hi) / 2);
          found_hi = true;
          break;
        }
      }
      if (!found_hi && at + 1 < size) propose((at + size - 1) / 2);
    };
    for (std::size_t n = 0; n < result.samples.size(); ++n) {
      if (!on_frontier(result.samples[n].point)) continue;
      bisect_axis(sample_idx[n], true);
      bisect_axis(sample_idx[n], false);
    }
    wave.assign(next.begin(), next.end());
  }

  // One registry flush per exploration (the wave loop only touched local
  // counters, mirroring the searchers' accumulate-then-flush pattern).
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("explore.runs").add();
  registry.counter("explore.waves").add(result.rounds);
  registry.counter("explore.cells_evaluated").add(result.evaluations);
  registry.counter("explore.cells_cache_served").add(result.cache_hits);
  registry.gauge("explore.frontier_size").set(static_cast<std::int64_t>(result.frontier.size()));
  return result;
}

ExplorerConfig default_explorer() {
  ExplorerConfig config;
  for (i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_axis.push_back(size);
  config.l2_axis = {0, 64 * 1024, 256 * 1024};
  return config;
}

std::string to_json(const ExploreResult& result, int indent) {
  std::string p0(static_cast<std::size_t>(indent) * 2, ' ');
  std::string p1 = p0 + "  ";
  std::string p2 = p1 + "  ";
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << p0 << "{\n";
  out << p1 << "\"lattice_cells\": " << result.lattice_cells << ",\n";
  out << p1 << "\"evaluations\": " << result.evaluations << ",\n";
  out << p1 << "\"cache_hits\": " << result.cache_hits << ",\n";
  out << p1 << "\"rounds\": " << result.rounds << ",\n";
  out << p1 << "\"budget_exhausted\": " << (result.budget_exhausted ? "true" : "false") << ",\n";
  out << p1 << "\"converged\": " << (result.converged ? "true" : "false") << ",\n";
  out << p1 << "\"samples\": [";
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    const ExploreSample& sample = result.samples[i];
    out << (i == 0 ? "\n" : ",\n");
    out << p2 << "{\"l1_bytes\": " << sample.cell.l1_bytes
        << ", \"l2_bytes\": " << sample.cell.l2_bytes << ", \"strategy\": \""
        << core::json_escape(sample.cell.strategy) << "\", \"with_te\": "
        << (sample.cell.with_te ? "true" : "false") << ", \"from_cache\": "
        << (sample.from_cache ? "true" : "false")
        << ", \"cycles\": " << core::json_number(sample.point.cycles)
        << ", \"energy_nj\": " << core::json_number(sample.point.energy_nj) << "}";
  }
  out << (result.samples.empty() ? "" : "\n" + p1) << "],\n";
  out << p1 << "\"frontier\": [";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const TradeoffPoint& point = result.frontier[i];
    out << (i == 0 ? "\n" : ",\n");
    out << p2 << "{\"l1_bytes\": " << point.l1_bytes << ", \"l2_bytes\": " << point.l2_bytes;
    if (i < result.frontier_cells.size()) {
      const DesignCell& cell = result.frontier_cells[i];
      out << ", \"strategy\": \"" << core::json_escape(cell.strategy)
          << "\", \"with_te\": " << (cell.with_te ? "true" : "false");
    }
    out << ", \"cycles\": " << core::json_number(point.cycles)
        << ", \"energy_nj\": " << core::json_number(point.energy_nj) << "}";
  }
  out << (result.frontier.empty() ? "" : "\n" + p1) << "]\n";
  out << p0 << "}";
  return out.str();
}

}  // namespace mhla::xplore
