#include "explore/pareto.h"

#include <algorithm>

namespace mhla::xplore {

std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> front;
  for (const TradeoffPoint& candidate : points) {
    bool dominated = std::any_of(points.begin(), points.end(), [&](const TradeoffPoint& other) {
      return other.dominates(candidate);
    });
    if (dominated) continue;
    // Equal-cost duplicates: keep the smallest on-chip configuration.
    auto equal = std::find_if(front.begin(), front.end(), [&](const TradeoffPoint& kept) {
      return kept.cycles == candidate.cycles && kept.energy_nj == candidate.energy_nj;
    });
    if (equal != front.end()) {
      if (candidate.l1_bytes + candidate.l2_bytes < equal->l1_bytes + equal->l2_bytes) {
        *equal = candidate;
      }
      continue;
    }
    front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(), [](const TradeoffPoint& a, const TradeoffPoint& b) {
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
    return a.energy_nj < b.energy_nj;
  });
  return front;
}

bool frontier_covers(const std::vector<TradeoffPoint>& candidate,
                     const std::vector<TradeoffPoint>& reference) {
  return std::all_of(reference.begin(), reference.end(), [&](const TradeoffPoint& r) {
    return std::any_of(candidate.begin(), candidate.end(), [&](const TradeoffPoint& c) {
      return c.cycles <= r.cycles && c.energy_nj <= r.energy_nj;
    });
  });
}

}  // namespace mhla::xplore
