#include "explore/corpus.h"

#include <sstream>
#include <utility>

#include "apps/registry.h"
#include "core/json_report.h"
#include "gen/random_program.h"

namespace mhla::xplore {

CorpusResult explore_corpus(const CorpusConfig& config) {
  // One cache for the whole corpus: load once, thread it through every
  // run, write back once (and only if anything was evaluated).
  const std::string& cache_path = config.explorer.cache_path;
  ResultCache cache = cache_path.empty() ? ResultCache{} : ResultCache::load(cache_path);
  CorpusResult result = explore_corpus(config, cache);
  if (!cache_path.empty() && result.evaluations > 0) cache.save(cache_path);
  return result;
}

CorpusResult explore_corpus(const CorpusConfig& config, ResultStore& cache) {
  Explorer explorer(config.explorer);  // validates once for the whole corpus

  std::vector<std::pair<std::string, ir::Program>> programs;
  if (config.apps.empty()) {
    for (const apps::AppInfo& info : apps::all_apps()) {
      programs.emplace_back(info.name, info.build());
    }
  } else {
    for (const std::string& name : config.apps) {
      programs.emplace_back(name, apps::build_app(name));
    }
  }
  for (int i = 0; i < config.random_programs; ++i) {
    ir::Program program = gen::random_program(config.random_seed + static_cast<std::uint32_t>(i));
    std::string name = program.name();
    programs.emplace_back(std::move(name), std::move(program));
  }

  CorpusResult result;
  for (auto& [name, program] : programs) {
    CorpusEntry entry;
    entry.program = name;
    entry.result = explorer.run(program, cache);
    result.evaluations += entry.result.evaluations;
    result.cache_hits += entry.result.cache_hits;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

std::string to_json(const CorpusResult& result, int indent) {
  std::string p0(static_cast<std::size_t>(indent) * 2, ' ');
  std::string p1 = p0 + "  ";
  std::string p2 = p1 + "  ";
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << p0 << "{\n";
  out << p1 << "\"evaluations\": " << result.evaluations << ",\n";
  out << p1 << "\"cache_hits\": " << result.cache_hits << ",\n";
  out << p1 << "\"programs\": [";
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const CorpusEntry& entry = result.entries[i];
    out << (i == 0 ? "\n" : ",\n");
    out << p2 << "{\"program\": \"" << core::json_escape(entry.program) << "\",\n";
    out << p2 << " \"result\":\n" << to_json(entry.result, indent + 2) << "}";
  }
  out << (result.entries.empty() ? "" : "\n" + p1) << "]\n";
  out << p0 << "}";
  return out.str();
}

}  // namespace mhla::xplore
