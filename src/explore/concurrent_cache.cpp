#include "explore/concurrent_cache.h"

#include <utility>

namespace mhla::xplore {

namespace {

/// Round up to a power of two (so shard selection is a mask, not a modulo).
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Finalizer mix (splitmix64 tail): cache keys are already FNV hashes, but
/// the mix keeps any externally supplied key set from piling onto one shard.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

constexpr std::size_t kDefaultShards = 16;

}  // namespace

ConcurrentResultCache::ConcurrentResultCache(CacheBounds bounds, std::size_t shard_count)
    : bounds_(bounds) {
  std::size_t shards = round_up_pow2(shard_count == 0 ? kDefaultShards : shard_count);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
  if (bounds_.max_entries > 0) {
    // The floor wins over a smaller cap (a cache that must keep N entries
    // cannot be bounded below N), and every shard gets at least one slot.
    std::size_t cap = std::max(bounds_.max_entries, bounds_.evict_floor);
    per_shard_cap_ = std::max<std::size_t>(1, (cap + shards - 1) / shards);
  }
}

ConcurrentResultCache::Shard& ConcurrentResultCache::shard_of(std::uint64_t key) const {
  return *shards_[mix(key) & (shards_.size() - 1)];
}

bool ConcurrentResultCache::claim_eviction() {
  std::size_t current = size_.load(std::memory_order_relaxed);
  while (current > bounds_.evict_floor) {
    if (size_.compare_exchange_weak(current, current - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool ConcurrentResultCache::lookup(std::uint64_t key, CacheEntry& out) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses.add();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  out = it->second.entry;
  shard.hits.add();
  return true;
}

bool ConcurrentResultCache::insert(std::uint64_t key, CacheEntry entry) {
  if (!cacheable_status(entry.status)) {
    rejected_.add();
    return false;
  }
  Shard& shard = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.entry = std::move(entry);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      shard.lru.push_front(key);
      shard.map.emplace(key, Node{std::move(entry), shard.lru.begin()});
      size_.fetch_add(1, std::memory_order_relaxed);
      // Evict this shard's cold tail past the per-shard cap.  Each removal
      // first claims its decrement against the global floor, so concurrent
      // evictions on other shards can never team up to breach it.  The
      // just-inserted entry sits at the LRU front and the cap is >= 1, so
      // it is never its own victim.
      while (per_shard_cap_ != 0 && shard.map.size() > per_shard_cap_) {
        if (!claim_eviction()) break;
        std::uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        shard.map.erase(victim);
        shard.evictions.add();
      }
    }
  }
  insertions_.add();
  version_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CacheStats ConcurrentResultCache::stats() const {
  // Every row is a lock-free read of the same cells a registered metrics
  // source reads: the `cache_stats` verb and a registry snapshot cannot
  // disagree about this cache.
  CacheStats stats;
  stats.shards = shards_.size();
  stats.entries = size();
  stats.insertions = insertions_.value();
  stats.rejected = rejected_.value();
  for (const auto& shard : shards_) {
    stats.hits += shard->hits.value();
    stats.misses += shard->misses.value();
    stats.evictions += shard->evictions.value();
  }
  stats.saves = saves_.value();
  return stats;
}

std::uint64_t ConcurrentResultCache::register_metrics(obs::Registry& registry,
                                                      std::string prefix) const {
  return registry.add_source([this, prefix = std::move(prefix)](obs::MetricsSnapshot& out) {
    CacheStats s = stats();
    out.counters.emplace_back(prefix + ".hits", s.hits);
    out.counters.emplace_back(prefix + ".misses", s.misses);
    out.counters.emplace_back(prefix + ".insertions", s.insertions);
    out.counters.emplace_back(prefix + ".rejected", s.rejected);
    out.counters.emplace_back(prefix + ".evictions", s.evictions);
    out.counters.emplace_back(prefix + ".saves", s.saves);
    out.gauges.emplace_back(prefix + ".entries", static_cast<std::int64_t>(s.entries));
  });
}

void ConcurrentResultCache::merge_from(const ResultCache& other) {
  for (const auto& [key, entry] : other.entries()) insert(key, entry);
}

void ConcurrentResultCache::merge_from(const ConcurrentResultCache& other) {
  if (&other == this) return;
  merge_from(other.snapshot());
}

ResultCache ConcurrentResultCache::snapshot() const {
  ResultCache copy;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, node] : shard->map) copy.insert(key, node.entry);
  }
  return copy;
}

ResultCache::LoadReport ConcurrentResultCache::load_file(const std::string& path) {
  ResultCache::LoadReport report;
  ResultCache loaded = ResultCache::load(path, report);
  merge_from(loaded);
  return report;
}

void ConcurrentResultCache::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(save_mu_);
  // Read the version before snapshotting: entries that land between the
  // read and the snapshot are persisted now but re-persisted by the next
  // dirty save — duplicated work at worst, never lost work.
  std::uint64_t version = version_.load(std::memory_order_acquire);
  snapshot().save(path);
  saved_version_ = version;
  saves_.add();
}

bool ConcurrentResultCache::save_if_dirty(const std::string& path) const {
  std::lock_guard<std::mutex> lock(save_mu_);
  std::uint64_t version = version_.load(std::memory_order_acquire);
  if (version == saved_version_) return false;
  snapshot().save(path);
  saved_version_ = version;
  saves_.add();
  return true;
}

}  // namespace mhla::xplore
