#pragma once

#include "assign/mhla_step1.h"
#include "explore/pareto.h"
#include "sim/simulator.h"

namespace mhla::xplore {

/// One evaluated configuration of a sweep.
struct SweepSample {
  TradeoffPoint point;
  assign::Assignment assignment;
  bool te_applied = false;
};

/// Parameters of a layer-size sweep: the candidate L1 and L2 capacities
/// (bytes; 0 disables a layer for that sample) and the optimization target.
struct SweepConfig {
  std::vector<i64> l1_sizes;
  std::vector<i64> l2_sizes;
  assign::Target target = assign::Target::Balanced;
  bool with_te = true;
  mem::SramModelParams sram;
  mem::SdramModelParams sdram;
  mem::DmaEngine dma;

  /// Worker threads for the grid evaluation: 0 picks the hardware
  /// concurrency, 1 forces the serial path.  Every thread count produces
  /// the identical sample vector (each grid cell is independent and writes
  /// only its own slot).
  unsigned num_threads = 0;
};

/// Default sweep grid used by the trade-off benchmark:
/// L1 in {256 B .. 64 KiB} (powers of two), L2 in {0, 64 KiB, 256 KiB}.
SweepConfig default_sweep();

/// Run MHLA (and optionally TE) for every (L1, L2) combination of the grid
/// and return every sample.  Program-level analyses run once and are shared
/// read-only; each grid cell builds its own hierarchy/context and is
/// evaluated on a worker pool (`config.num_threads`), in a deterministic
/// order independent of the thread count.
std::vector<SweepSample> sweep_layer_sizes(const ir::Program& program, const SweepConfig& config);

/// Pareto frontier of a sample set.
std::vector<TradeoffPoint> frontier(const std::vector<SweepSample>& samples);

}  // namespace mhla::xplore
