#pragma once

#include "core/pipeline.h"
#include "explore/pareto.h"
#include "sim/simulator.h"

namespace mhla::xplore {

/// One evaluated configuration of a sweep.
struct SweepSample {
  TradeoffPoint point;
  assign::Assignment assignment;
  bool te_applied = false;
};

/// Parameters of a layer-size sweep: the candidate L1 and L2 capacities
/// (bytes; 0 disables a layer for that sample) over one shared pipeline
/// configuration.  The pipeline carries everything a single run carries —
/// platform models, DMA engine, strategy, target, TE options, thread count
/// — so a sweep and a single run can never silently diverge; only
/// `pipeline.platform.l1_bytes/l2_bytes` are overridden per grid cell.
struct SweepConfig {
  std::vector<i64> l1_sizes;
  std::vector<i64> l2_sizes;
  core::PipelineConfig pipeline;

  /// Apply time extensions to each sample (requires `pipeline.dma.present`).
  bool with_te = true;

  /// Don't pay a search for provably infeasible cells: when every on-chip
  /// layer of a cell is smaller than the cheapest placeable object (the
  /// smallest array and the smallest copy-candidate box), no strategy can
  /// ever leave the out-of-box assignment, so the cell is sampled by one
  /// direct out-of-box simulation instead of a full pipeline run.  The
  /// samples are bit-identical either way (regression-tested); the toggle
  /// exists for that test.
  bool skip_infeasible = true;
};

/// Default sweep grid used by the trade-off benchmark:
/// L1 in {256 B .. 64 KiB} (powers of two), L2 in {0, 64 KiB, 256 KiB}.
SweepConfig default_sweep();

/// Run the configured strategy (and optionally TE) for every (L1, L2)
/// combination of the grid and return every sample.  Repeated sizes are
/// de-duplicated (first occurrence kept), so the grid holds each cell once.
/// Program-level analyses run once and are shared read-only; each grid cell
/// builds its own hierarchy/context and is evaluated on a worker pool
/// (`config.pipeline.num_threads`), in a deterministic order independent of
/// the thread count.
std::vector<SweepSample> sweep_layer_sizes(const ir::Program& program, const SweepConfig& config);

/// Pareto frontier of a sample set.
std::vector<TradeoffPoint> frontier(const std::vector<SweepSample>& samples);

}  // namespace mhla::xplore
