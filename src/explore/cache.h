#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "explore/pareto.h"

namespace mhla::xplore {

/// FNV-1a 64-bit hash of `text` — the canonical cache key primitive.  The
/// explorer hashes the serialized program plus the cell's effective
/// PipelineConfig JSON (thread count zeroed: parallelism must never change
/// a key), so any change to the program, the platform models, the strategy
/// or its options yields a fresh key and a stale cache can never serve it.
std::uint64_t fnv1a64(const std::string& text);

/// Persistent store of evaluated design-space cells (see explore/explorer.h),
/// JSON on disk.  One entry per canonical key carries the cell coordinates
/// (for human inspection and report tooling) and the measured cost pair,
/// emitted with max_digits10 so a reloaded entry reproduces the evaluated
/// doubles bit for bit — a warm re-exploration returns the identical
/// frontier with zero pipeline runs.
///
/// Single-writer by design: `load` + `save` rewrite the whole document.
/// Concurrent explorations over one file should shard to distinct paths and
/// merge afterwards (`merge_from`).
class ResultCache {
 public:
  struct Entry {
    i64 l1_bytes = 0;
    i64 l2_bytes = 0;
    std::string strategy;
    bool with_te = false;
    double cycles = 0.0;
    double energy_nj = 0.0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Load from `path`; a missing file is an empty cache, a malformed one
  /// throws std::invalid_argument naming the path.
  static ResultCache load(const std::string& path);

  /// Rewrite `path` with every entry (sorted by key — byte-stable output).
  /// Throws std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;

  /// JSON round-trip used by load/save; exposed for tests and tooling.
  static ResultCache from_json(const std::string& text);
  std::string to_json(int indent = 0) const;

  const Entry* find(std::uint64_t key) const;
  void insert(std::uint64_t key, Entry entry);

  /// Adopt every entry of `other` (other wins on key collisions).
  void merge_from(const ResultCache& other);

  std::size_t size() const { return entries_.size(); }
  const std::map<std::uint64_t, Entry>& entries() const { return entries_; }

 private:
  std::map<std::uint64_t, Entry> entries_;
};

}  // namespace mhla::xplore
