#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "assign/search_status.h"
#include "explore/pareto.h"

namespace mhla::xplore {

/// FNV-1a 64-bit hash of `text` — the canonical cache key primitive.  The
/// explorer hashes the serialized program plus the cell's effective
/// PipelineConfig JSON (thread count zeroed: parallelism must never change
/// a key), so any change to the program, the platform models, the strategy
/// or its options yields a fresh key and a stale cache can never serve it.
std::uint64_t fnv1a64(const std::string& text);

/// One evaluated design-space cell: the cell coordinates (for human
/// inspection and report tooling), the measured cost pair, and the outcome
/// contract of the search that produced it.
struct CacheEntry {
  i64 l1_bytes = 0;
  i64 l2_bytes = 0;
  std::string strategy;
  bool with_te = false;
  double cycles = 0.0;
  double energy_nj = 0.0;

  /// Outcome of the search that produced the pair (see
  /// assign/search_status.h).  Only completed results are cacheable: a
  /// budget-truncated result depends on knobs the cache key deliberately
  /// normalizes away, and an infeasible one must never be served at all.
  /// Every insert path enforces this (see `cacheable_status`).
  assign::SearchStatus status = assign::SearchStatus::Feasible;

  friend bool operator==(const CacheEntry&, const CacheEntry&) = default;
};

/// The one cacheability rule, enforced inside the cache layer itself (not
/// just by well-behaved callers): only `Optimal` and `Feasible` results may
/// be stored.  `BudgetExhausted` results depend on the pruning/deadline
/// knobs the cache key normalizes away, and `Infeasible` assignments must
/// never be consumed — caching either would let a stale or truncated run
/// poison every later exploration that hits the key.
inline bool cacheable_status(assign::SearchStatus status) {
  return status == assign::SearchStatus::Optimal || status == assign::SearchStatus::Feasible;
}

/// Minimal store interface the explorer runs against: copy-out lookup and
/// guarded insert.  Implemented by the single-threaded `ResultCache` (batch
/// drivers, file round-trip) and the sharded `ConcurrentResultCache`
/// (explore/concurrent_cache.h, the server's process-wide cache).  Lookup
/// copies the entry out instead of returning a pointer on purpose: a
/// concurrent implementation may evict or move the node the moment its
/// shard lock drops.
class ResultStore {
 public:
  virtual ~ResultStore() = default;

  /// Copy the entry at `key` into `out`; false on a miss.  Non-const:
  /// concurrent implementations bump recency state on a hit.
  virtual bool lookup(std::uint64_t key, CacheEntry& out) = 0;

  /// Store `entry` at `key` (last write wins).  Returns false — and stores
  /// nothing — when `entry.status` is not cacheable (see
  /// `cacheable_status`).
  virtual bool insert(std::uint64_t key, CacheEntry entry) = 0;
};

/// Persistent store of evaluated design-space cells (see explore/explorer.h),
/// JSON on disk.  One entry per canonical key carries the cell coordinates
/// (for human inspection and report tooling) and the measured cost pair,
/// emitted with max_digits10 so a reloaded entry reproduces the evaluated
/// doubles bit for bit — a warm re-exploration returns the identical
/// frontier with zero pipeline runs.
///
/// Single-writer by design: `load` + `save` rewrite the whole document.
/// Concurrent explorations over one file should shard to distinct paths and
/// merge afterwards (`merge_from`, or `mhla_tool --cache-merge`); a single
/// process that wants concurrent readers/writers over one in-memory cache
/// uses `ConcurrentResultCache` instead.
///
/// Crash safety: `save` stages the document in a temp file, flushes it to
/// stable storage (fsync) and atomically renames it over the target, so a
/// crash at any point leaves either the complete old document or the
/// complete new one — never a truncated mix.  `load` in turn never throws
/// the warm results away on a malformed document: it salvages every
/// well-formed entry line, quarantines the damaged original next to the
/// cache (".quarantine") and reports what happened (see LoadReport).
class ResultCache : public ResultStore {
 public:
  using Entry = CacheEntry;

  /// What load() found on disk.  `clean` is true for a missing file or a
  /// well-formed document; on a malformed document it is false, `salvaged`
  /// counts the entries recovered from the wreckage, `quarantine_path`
  /// names where the damaged original was preserved, and `message` is the
  /// human-readable warning (also printed to stderr by the one-argument
  /// overload).
  struct LoadReport {
    bool clean = true;
    std::size_t entries = 0;
    std::size_t salvaged = 0;
    std::string quarantine_path;
    std::string message;
  };

  /// Load from `path`.  A missing file is an empty cache; an existing but
  /// unreadable file throws std::runtime_error (proceeding cold would
  /// truncate the warm entries on the next save); a malformed document is
  /// salvaged entry by entry instead of throwing — the damaged original is
  /// quarantined and a warning goes to stderr (one-argument overload) or
  /// into `report`.
  static ResultCache load(const std::string& path);
  static ResultCache load(const std::string& path, LoadReport& report);

  /// Rewrite `path` with every entry (sorted by key — byte-stable output)
  /// via temp file + fsync + atomic rename: a previously persisted document
  /// survives any mid-save crash or failure intact.  Throws
  /// std::runtime_error when the file cannot be written (the temp file is
  /// cleaned up and the target left untouched).
  void save(const std::string& path) const;

  /// JSON round-trip used by load/save; exposed for tests and tooling.
  /// Documents written before the entry status existed load with status
  /// "feasible" (the contract every pre-status entry was written under).
  static ResultCache from_json(const std::string& text);
  std::string to_json(int indent = 0) const;

  const Entry* find(std::uint64_t key) const;

  /// ResultStore interface (copy-out lookup; status-guarded insert).
  bool lookup(std::uint64_t key, CacheEntry& out) override;
  bool insert(std::uint64_t key, CacheEntry entry) override;

  /// Adopt every cacheable entry of `other` (other wins on key collisions).
  void merge_from(const ResultCache& other);

  std::size_t size() const { return entries_.size(); }
  const std::map<std::uint64_t, Entry>& entries() const { return entries_; }

 private:
  std::map<std::uint64_t, Entry> entries_;
};

}  // namespace mhla::xplore
