#include "explore/sweep.h"

#include <utility>

#include "core/parallel_for.h"

namespace mhla::xplore {

SweepConfig default_sweep() {
  SweepConfig config;
  for (i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 64 * 1024, 256 * 1024};
  return config;
}

std::vector<SweepSample> sweep_layer_sizes(const ir::Program& program, const SweepConfig& config) {
  // Resolve the strategy once (also validates the name before any work).
  const assign::Searcher& strategy = assign::searcher(config.pipeline.strategy);
  assign::SearchOptions search = config.pipeline.search;
  search.set_target(config.pipeline.target);

  // Program-level analyses are hierarchy independent; run them once and
  // share them read-only across the worker pool.
  std::vector<analysis::AccessSite> sites = analysis::collect_sites(program);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
  std::map<std::string, analysis::LiveRange> live = analysis::array_live_ranges(program, sites);
  analysis::DependenceInfo deps = analysis::DependenceInfo::run(program, sites);

  // Flatten the grid in the canonical (L2 outer, L1 inner) order; each cell
  // writes only its own slot, so the result is identical for any thread
  // count.
  std::vector<std::pair<i64, i64>> grid;  // (l2, l1)
  grid.reserve(config.l2_sizes.size() * config.l1_sizes.size());
  for (i64 l2 : config.l2_sizes) {
    for (i64 l1 : config.l1_sizes) grid.emplace_back(l2, l1);
  }

  std::vector<SweepSample> samples(grid.size());
  core::parallel_for(grid.size(), config.pipeline.num_threads, [&](std::size_t i) {
    auto [l2, l1] = grid[i];
    mem::PlatformConfig platform = config.pipeline.platform;
    platform.l1_bytes = l1;
    platform.l2_bytes = l2;
    mem::Hierarchy hierarchy = mem::make_hierarchy(platform);

    assign::AssignContext ctx{program, sites, reuse, live, deps, hierarchy,
                              config.pipeline.dma};
    assign::SearchResult found = strategy.search(ctx, search);

    sim::SimOptions sim_options;
    sim_options.mode = config.with_te && config.pipeline.dma.present
                           ? te::TransferMode::TimeExtended
                           : te::TransferMode::Blocking;
    sim_options.te = config.pipeline.te;
    sim::SimResult result = sim::simulate(ctx, found.assignment, sim_options);

    SweepSample& sample = samples[i];
    sample.point.l1_bytes = l1;
    sample.point.l2_bytes = l2;
    sample.point.cycles = result.total_cycles();
    sample.point.energy_nj = result.energy_nj;
    sample.assignment = std::move(found.assignment);
    sample.te_applied = sim_options.mode == te::TransferMode::TimeExtended;
  });
  return samples;
}

std::vector<TradeoffPoint> frontier(const std::vector<SweepSample>& samples) {
  std::vector<TradeoffPoint> points;
  points.reserve(samples.size());
  for (const SweepSample& sample : samples) points.push_back(sample.point);
  return pareto_front(std::move(points));
}

}  // namespace mhla::xplore
