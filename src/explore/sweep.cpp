#include "explore/sweep.h"

namespace mhla::xplore {

SweepConfig default_sweep() {
  SweepConfig config;
  for (i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 64 * 1024, 256 * 1024};
  return config;
}

std::vector<SweepSample> sweep_layer_sizes(const ir::Program& program, const SweepConfig& config) {
  std::vector<SweepSample> samples;

  // Program-level analyses are hierarchy independent; run them once.
  std::vector<analysis::AccessSite> sites = analysis::collect_sites(program);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
  std::map<std::string, analysis::LiveRange> live = analysis::array_live_ranges(program, sites);
  analysis::DependenceInfo deps = analysis::DependenceInfo::run(program, sites);

  for (i64 l2 : config.l2_sizes) {
    for (i64 l1 : config.l1_sizes) {
      mem::PlatformConfig platform;
      platform.l1_bytes = l1;
      platform.l2_bytes = l2;
      platform.sram = config.sram;
      platform.sdram = config.sdram;
      mem::Hierarchy hierarchy = mem::make_hierarchy(platform);

      assign::AssignContext ctx{program, sites, reuse, live, deps, hierarchy, config.dma};
      assign::Step1Options step1;
      step1.target = config.target;
      assign::GreedyResult greedy = assign::mhla_step1(ctx, step1);

      sim::SimOptions sim_options;
      sim_options.mode = config.with_te && config.dma.present
                             ? te::TransferMode::TimeExtended
                             : te::TransferMode::Blocking;
      sim::SimResult result = sim::simulate(ctx, greedy.assignment, sim_options);

      SweepSample sample;
      sample.point.l1_bytes = l1;
      sample.point.l2_bytes = l2;
      sample.point.cycles = result.total_cycles();
      sample.point.energy_nj = result.energy_nj;
      sample.assignment = std::move(greedy.assignment);
      sample.te_applied = sim_options.mode == te::TransferMode::TimeExtended;
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

std::vector<TradeoffPoint> frontier(const std::vector<SweepSample>& samples) {
  std::vector<TradeoffPoint> points;
  points.reserve(samples.size());
  for (const SweepSample& sample : samples) points.push_back(sample.point);
  return pareto_front(std::move(points));
}

}  // namespace mhla::xplore
