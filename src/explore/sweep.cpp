#include "explore/sweep.h"

#include <algorithm>
#include <utility>

#include "assign/footprint_tracker.h"
#include "core/parallel_for.h"

namespace mhla::xplore {

SweepConfig default_sweep() {
  SweepConfig config;
  for (i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 64 * 1024, 256 * 1024};
  return config;
}

namespace {

/// First-occurrence de-duplication (the grid order is caller-visible, so a
/// sort would reorder samples).
std::vector<i64> unique_sizes(const std::vector<i64>& sizes) {
  std::vector<i64> unique;
  for (i64 size : sizes) {
    if (std::find(unique.begin(), unique.end(), size) == unique.end()) unique.push_back(size);
  }
  return unique;
}

}  // namespace

std::vector<SweepSample> sweep_layer_sizes(const ir::Program& program, const SweepConfig& config) {
  // Resolve the strategy once (also validates the name before any work).
  const assign::Searcher& strategy = assign::searcher(config.pipeline.strategy);
  assign::SearchOptions search = config.pipeline.search;
  search.set_target(config.pipeline.target);

  // Program-level analyses are hierarchy independent; run them once and
  // share them read-only across the worker pool.
  std::vector<analysis::AccessSite> sites = analysis::collect_sites(program);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
  std::map<std::string, analysis::LiveRange> live = analysis::array_live_ranges(program, sites);
  analysis::DependenceInfo deps = analysis::DependenceInfo::run(program, sites);

  // Hierarchy-independent half of the tracker's out-of-box probe, hoisted
  // out of the per-cell loop.
  const i64 min_placeable = assign::FootprintTracker::min_placeable_bytes(program, reuse);

  // Flatten the grid in the canonical (L2 outer, L1 inner) order; each cell
  // writes only its own slot, so the result is identical for any thread
  // count.
  std::vector<i64> l1_sizes = unique_sizes(config.l1_sizes);
  std::vector<i64> l2_sizes = unique_sizes(config.l2_sizes);
  std::vector<std::pair<i64, i64>> grid;  // (l2, l1)
  grid.reserve(l2_sizes.size() * l1_sizes.size());
  for (i64 l2 : l2_sizes) {
    for (i64 l1 : l1_sizes) grid.emplace_back(l2, l1);
  }

  std::vector<SweepSample> samples(grid.size());
  core::parallel_for(grid.size(), config.pipeline.num_threads, [&](std::size_t i) {
    auto [l2, l1] = grid[i];
    mem::PlatformConfig platform = config.pipeline.platform;
    platform.l1_bytes = l1;
    platform.l2_bytes = l2;
    mem::Hierarchy hierarchy = mem::make_hierarchy(platform);

    assign::AssignContext ctx{program, sites, reuse, live, deps, hierarchy,
                              config.pipeline.dma};

    // A cell whose every on-chip layer is below the cheapest placeable
    // object can never leave the out-of-box assignment: no copy and no
    // migration fits, so every strategy returns out-of-box.  The tracker's
    // out-of-box probe decides this per hierarchy; skip the search and
    // sample the out-of-box simulation directly.
    bool provably_out_of_box =
        config.skip_infeasible &&
        assign::FootprintTracker::provably_out_of_box(hierarchy, min_placeable);

    assign::Assignment assignment = provably_out_of_box
                                        ? assign::out_of_box(ctx)
                                        : strategy.search(ctx, search).assignment;

    sim::SimOptions sim_options;
    sim_options.mode = config.with_te && config.pipeline.dma.present
                           ? te::TransferMode::TimeExtended
                           : te::TransferMode::Blocking;
    sim_options.te = config.pipeline.te;
    sim::SimResult result = sim::simulate(ctx, assignment, sim_options);

    SweepSample& sample = samples[i];
    sample.point.l1_bytes = l1;
    sample.point.l2_bytes = l2;
    sample.point.cycles = result.total_cycles();
    sample.point.energy_nj = result.energy_nj;
    sample.assignment = std::move(assignment);
    sample.te_applied = sim_options.mode == te::TransferMode::TimeExtended;
  });
  return samples;
}

std::vector<TradeoffPoint> frontier(const std::vector<SweepSample>& samples) {
  std::vector<TradeoffPoint> points;
  points.reserve(samples.size());
  for (const SweepSample& sample : samples) points.push_back(sample.point);
  return pareto_front(std::move(points));
}

}  // namespace mhla::xplore
