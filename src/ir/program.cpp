#include "ir/program.h"

#include <stdexcept>

namespace mhla::ir {

const ArrayDecl& Program::add_array(ArrayDecl decl) {
  if (decl.name.empty()) {
    throw std::invalid_argument("Program::add_array: empty array name");
  }
  if (array_index_.count(decl.name)) {
    throw std::invalid_argument("Program::add_array: duplicate array '" + decl.name + "'");
  }
  if (decl.dims.empty() || decl.elem_bytes <= 0) {
    throw std::invalid_argument("Program::add_array: degenerate shape for '" + decl.name + "'");
  }
  for (i64 d : decl.dims) {
    if (d <= 0) {
      throw std::invalid_argument("Program::add_array: non-positive extent in '" + decl.name + "'");
    }
  }
  array_index_[decl.name] = arrays_.size();
  arrays_.push_back(std::move(decl));
  return arrays_.back();
}

const ArrayDecl* Program::find_array(const std::string& name) const {
  auto it = array_index_.find(name);
  return it == array_index_.end() ? nullptr : &arrays_[it->second];
}

const ArrayDecl& Program::array(const std::string& name) const {
  const ArrayDecl* found = find_array(name);
  if (!found) throw std::out_of_range("Program::array: unknown array '" + name + "'");
  return *found;
}

i64 Program::total_array_bytes() const {
  i64 total = 0;
  for (const ArrayDecl& a : arrays_) total += a.bytes();
  return total;
}

}  // namespace mhla::ir
