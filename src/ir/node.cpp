#include "ir/node.h"

#include <stdexcept>

namespace mhla::ir {

const LoopNode& Node::as_loop() const {
  if (!is_loop()) throw std::logic_error("Node::as_loop called on a statement");
  return static_cast<const LoopNode&>(*this);
}

const StmtNode& Node::as_stmt() const {
  if (!is_stmt()) throw std::logic_error("Node::as_stmt called on a loop");
  return static_cast<const StmtNode&>(*this);
}

}  // namespace mhla::ir
