#include "ir/array.h"

// ArrayDecl is a plain aggregate; this translation unit exists so the module
// has a stable object for the archive even if the header becomes header-only.
namespace mhla::ir {}
