#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/affine.h"

namespace mhla::ir {

/// Read or write access.
enum class AccessKind { Read, Write };

/// One array reference inside a statement: which array, read or write,
/// one affine subscript expression per array dimension, and how many times
/// the reference executes per statement instance (`count`, usually 1).
struct ArrayAccess {
  std::string array;
  AccessKind kind = AccessKind::Read;
  std::vector<AffineExpr> index;
  i64 count = 1;
};

class LoopNode;
class StmtNode;

/// Base of the loop-nest tree.  Nodes are owned by their parent (or by the
/// Program for top-level nodes) through unique_ptr; the tree is immutable
/// after construction by the builder.
class Node {
 public:
  enum class Kind { Loop, Stmt };

  explicit Node(Kind kind) : kind_(kind) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Kind kind() const { return kind_; }
  bool is_loop() const { return kind_ == Kind::Loop; }
  bool is_stmt() const { return kind_ == Kind::Stmt; }

  const LoopNode& as_loop() const;
  const StmtNode& as_stmt() const;

 private:
  Kind kind_;
};

using NodePtr = std::unique_ptr<Node>;

/// A counted `for` loop: iterator runs lower, lower+step, ... < upper.
class LoopNode final : public Node {
 public:
  LoopNode(std::string iter, i64 lower, i64 upper, i64 step = 1)
      : Node(Kind::Loop), iter_(std::move(iter)), lower_(lower), upper_(upper), step_(step) {}

  const std::string& iter() const { return iter_; }
  i64 lower() const { return lower_; }
  i64 upper() const { return upper_; }  ///< exclusive
  i64 step() const { return step_; }

  /// Number of iterations (0 if the range is empty).
  i64 trip() const {
    if (upper_ <= lower_ || step_ <= 0) return 0;
    return (upper_ - lower_ + step_ - 1) / step_;
  }

  const std::vector<NodePtr>& body() const { return body_; }
  void append(NodePtr child) { body_.push_back(std::move(child)); }

 private:
  std::string iter_;
  i64 lower_;
  i64 upper_;
  i64 step_;
  std::vector<NodePtr> body_;
};

/// A straight-line statement: a bundle of array accesses plus the number of
/// processor cycles one instance spends on computation (excluding memory).
class StmtNode final : public Node {
 public:
  StmtNode(std::string name, i64 op_cycles)
      : Node(Kind::Stmt), name_(std::move(name)), op_cycles_(op_cycles) {}

  const std::string& name() const { return name_; }
  i64 op_cycles() const { return op_cycles_; }

  const std::vector<ArrayAccess>& accesses() const { return accesses_; }
  void add_access(ArrayAccess access) { accesses_.push_back(std::move(access)); }

 private:
  std::string name_;
  i64 op_cycles_;
  std::vector<ArrayAccess> accesses_;
};

}  // namespace mhla::ir
