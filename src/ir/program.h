#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/array.h"
#include "ir/node.h"

namespace mhla::ir {

/// A whole application: array declarations plus an ordered sequence of
/// top-level loop nests ("phases").  The top-level order is the program's
/// coarse execution order, which drives lifetime and dependence analysis.
class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }

  /// Declare an array; returns a stable reference.
  /// Throws std::invalid_argument on duplicate names or degenerate shapes.
  const ArrayDecl& add_array(ArrayDecl decl);

  const std::vector<ArrayDecl>& arrays() const { return arrays_; }

  /// Lookup by name; nullptr if absent.
  const ArrayDecl* find_array(const std::string& name) const;

  /// Lookup by name; throws std::out_of_range if absent.
  const ArrayDecl& array(const std::string& name) const;

  const std::vector<NodePtr>& top() const { return top_; }
  void append_top(NodePtr node) { top_.push_back(std::move(node)); }

  /// Total bytes of all declared arrays.
  i64 total_array_bytes() const;

 private:
  std::string name_;
  std::vector<ArrayDecl> arrays_;
  std::map<std::string, std::size_t> array_index_;
  std::vector<NodePtr> top_;
};

}  // namespace mhla::ir
