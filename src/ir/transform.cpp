#include "ir/transform.h"

#include <stdexcept>

#include "ir/walk.h"

namespace mhla::ir {

namespace {

/// Clone a statement, applying every pending iterator substitution to its
/// access subscripts.
NodePtr clone_stmt(const StmtNode& stmt, const std::map<std::string, AffineExpr>& subst) {
  auto copy = std::make_unique<StmtNode>(stmt.name(), stmt.op_cycles());
  for (const ArrayAccess& access : stmt.accesses()) {
    ArrayAccess rewritten = access;
    for (AffineExpr& index : rewritten.index) {
      for (const auto& [var, repl] : subst) index = substitute(index, var, repl);
    }
    copy->add_access(std::move(rewritten));
  }
  return copy;
}

/// Recursive clone for the tiling transformation.
NodePtr tile_rec(const Node& node, const std::string& iter, i64 tile,
                 std::map<std::string, AffineExpr>& subst, bool& found) {
  if (node.is_stmt()) return clone_stmt(node.as_stmt(), subst);

  const LoopNode& loop = node.as_loop();
  if (loop.iter() == iter) {
    if (found) {
      throw std::invalid_argument("tile_loop: iterator '" + iter +
                                  "' occurs in more than one loop");
    }
    if (tile <= 0 || loop.trip() % tile != 0) {
      throw std::invalid_argument("tile_loop: trip count " + std::to_string(loop.trip()) +
                                  " of '" + iter + "' is not divisible by tile " +
                                  std::to_string(tile));
    }
    found = true;
    std::string outer_name = iter + "_o";
    std::string inner_name = iter + "_i";
    auto outer = std::make_unique<LoopNode>(outer_name, 0, loop.trip() / tile);
    auto inner = std::make_unique<LoopNode>(inner_name, 0, tile);
    // iter == step * (tile*iter_o + iter_i) + lower
    subst[iter] = av(outer_name, loop.step() * tile) + av(inner_name, loop.step()) +
                  ac(loop.lower());
    for (const NodePtr& child : loop.body()) {
      inner->append(tile_rec(*child, iter, tile, subst, found));
    }
    subst.erase(iter);
    outer->append(std::move(inner));
    return outer;
  }

  auto copy = std::make_unique<LoopNode>(loop.iter(), loop.lower(), loop.upper(), loop.step());
  for (const NodePtr& child : loop.body()) {
    copy->append(tile_rec(*child, iter, tile, subst, found));
  }
  return copy;
}

/// Plain deep clone (no rewriting).
NodePtr clone_plain(const Node& node) {
  std::map<std::string, AffineExpr> empty;
  if (node.is_stmt()) return clone_stmt(node.as_stmt(), empty);
  const LoopNode& loop = node.as_loop();
  auto copy = std::make_unique<LoopNode>(loop.iter(), loop.lower(), loop.upper(), loop.step());
  for (const NodePtr& child : loop.body()) copy->append(clone_plain(*child));
  return copy;
}

/// Recursive clone for interchange: swaps the target loop with its single
/// perfectly nested child.
NodePtr interchange_rec(const Node& node, const std::string& iter, bool& found) {
  if (node.is_stmt()) return clone_plain(node);

  const LoopNode& loop = node.as_loop();
  if (loop.iter() == iter) {
    if (found) {
      throw std::invalid_argument("interchange: iterator '" + iter +
                                  "' occurs in more than one loop");
    }
    if (loop.body().size() != 1 || !loop.body()[0]->is_loop()) {
      throw std::invalid_argument("interchange: loop '" + iter +
                                  "' is not perfectly nested over a single child loop");
    }
    found = true;
    const LoopNode& child = loop.body()[0]->as_loop();
    auto new_outer =
        std::make_unique<LoopNode>(child.iter(), child.lower(), child.upper(), child.step());
    auto new_inner =
        std::make_unique<LoopNode>(loop.iter(), loop.lower(), loop.upper(), loop.step());
    for (const NodePtr& grandchild : child.body()) {
      new_inner->append(clone_plain(*grandchild));
    }
    new_outer->append(std::move(new_inner));
    return new_outer;
  }

  auto copy = std::make_unique<LoopNode>(loop.iter(), loop.lower(), loop.upper(), loop.step());
  for (const NodePtr& child : loop.body()) copy->append(interchange_rec(*child, iter, found));
  return copy;
}

Program clone_arrays(const Program& program) {
  Program out(program.name());
  for (const ArrayDecl& array : program.arrays()) out.add_array(array);
  return out;
}

void ensure_fresh_iterator(const Program& program, const std::string& name) {
  bool clash = false;
  walk_statements(program, [&](int, const LoopPath& path, const StmtNode&) {
    for (const LoopNode* loop : path) {
      if (loop->iter() == name) clash = true;
    }
  });
  if (clash) {
    throw std::invalid_argument("tile_loop: generated iterator '" + name +
                                "' clashes with an existing loop");
  }
}

}  // namespace

Program tile_loop(const Program& program, const std::string& iter, i64 tile) {
  ensure_fresh_iterator(program, iter + "_o");
  ensure_fresh_iterator(program, iter + "_i");

  Program out = clone_arrays(program);
  bool found = false;
  std::map<std::string, AffineExpr> subst;
  for (const NodePtr& top : program.top()) {
    out.append_top(tile_rec(*top, iter, tile, subst, found));
  }
  if (!found) {
    throw std::invalid_argument("tile_loop: no loop with iterator '" + iter + "'");
  }
  return out;
}

Program interchange(const Program& program, const std::string& iter) {
  Program out = clone_arrays(program);
  bool found = false;
  for (const NodePtr& top : program.top()) {
    out.append_top(interchange_rec(*top, iter, found));
  }
  if (!found) {
    throw std::invalid_argument("interchange: no loop with iterator '" + iter + "'");
  }
  return out;
}

namespace {

/// Interval of `expr` relative to the fused iterator `iter` treated as 0,
/// over the full ranges of all other iterators in `path`.
struct RelInterval {
  i64 lo = 0;
  i64 hi = 0;
  i64 iter_coef = 0;
};

RelInterval relative_interval(const AffineExpr& expr, const LoopPath& path,
                              const std::string& iter) {
  RelInterval out;
  out.lo = expr.constant();
  out.hi = expr.constant();
  out.iter_coef = expr.coef(iter);
  for (const LoopNode* loop : path) {
    if (loop->iter() == iter) continue;
    i64 coef = expr.coef(loop->iter());
    if (coef == 0 || loop->trip() <= 0) continue;
    i64 first = loop->lower();
    i64 last = loop->lower() + (loop->trip() - 1) * loop->step();
    out.lo += std::min(coef * first, coef * last);
    out.hi += std::max(coef * first, coef * last);
  }
  return out;
}

/// Conservative dependence safety check for fusing loop `a` before loop `b`.
///
/// Flow (a writes, b reads): after fusion, iteration i of b must only read
/// elements some iteration <= i of a already wrote.  With equal non-negative
/// fused-iterator coefficients and per-iteration offset intervals, that is:
/// the read front must not pass the write front (r.hi <= w.hi); for
/// iterator-independent boxes the intervals must be disjoint.
///
/// Anti/output (b writes, a reads or writes): b's writes move *earlier*
/// relative to a's later iterations, so a's offsets must stay at or above
/// b's write front (a.lo >= wb.hi); disjoint for iterator-independent boxes.
void check_fusion_safety(const Program& program, const LoopNode& a, const LoopNode& b) {
  using AccessList = std::vector<std::pair<LoopPath, const ArrayAccess*>>;
  auto collect = [](const LoopNode& loop, AccessKind kind, bool both) {
    std::map<std::string, AccessList> out;
    walk_statements(loop, [&](const LoopPath& path, const StmtNode& stmt) {
      for (const ArrayAccess& access : stmt.accesses()) {
        if (both || access.kind == kind) out[access.array].push_back({path, &access});
      }
    });
    return out;
  };
  std::map<std::string, AccessList> writes_a = collect(a, AccessKind::Write, false);
  std::map<std::string, AccessList> reads_b = collect(b, AccessKind::Read, false);
  std::map<std::string, AccessList> writes_b = collect(b, AccessKind::Write, false);
  std::map<std::string, AccessList> accesses_a = collect(a, AccessKind::Read, true);

  auto check_pair = [&](const std::string& array, const LoopPath& early_path,
                        const ArrayAccess& early, const std::string& early_iter,
                        const LoopPath& late_path, const ArrayAccess& late,
                        const std::string& late_iter, bool flow) {
    const ArrayDecl& decl = program.array(array);
    for (int dim = 0; dim < decl.rank(); ++dim) {
      RelInterval e = relative_interval(early.index[static_cast<std::size_t>(dim)], early_path,
                                        early_iter);
      RelInterval l = relative_interval(late.index[static_cast<std::size_t>(dim)], late_path,
                                        late_iter);
      if (e.iter_coef < 0 || l.iter_coef < 0) {
        throw std::invalid_argument("fuse_nests: negative fused-iterator coefficient on '" +
                                    array + "' cannot be proven safe");
      }
      if (e.iter_coef != l.iter_coef) {
        throw std::invalid_argument("fuse_nests: mismatched fused-iterator coefficients on '" +
                                    array + "'");
      }
      if (e.iter_coef == 0) {
        bool disjoint = l.hi < e.lo || l.lo > e.hi;
        if (!disjoint) {
          throw std::invalid_argument("fuse_nests: iteration-independent accesses to '" + array +
                                      "' overlap");
        }
        continue;
      }
      if (flow) {
        // early = producer in a, late = consumer in b: read front <= write front.
        if (l.hi > e.hi) {
          throw std::invalid_argument("fuse_nests: read of '" + array +
                                      "' may run ahead of its producer");
        }
      } else {
        // early = access in a, late = writer in b moving earlier.
        if (e.lo < l.hi) {
          throw std::invalid_argument("fuse_nests: write of '" + array +
                                      "' in the second nest may overtake the first nest");
        }
      }
    }
  };

  for (const auto& [array, writers] : writes_a) {
    auto it = reads_b.find(array);
    if (it == reads_b.end()) continue;
    for (const auto& [wpath, waccess] : writers) {
      for (const auto& [rpath, raccess] : it->second) {
        check_pair(array, wpath, *waccess, a.iter(), rpath, *raccess, b.iter(), /*flow=*/true);
      }
    }
  }
  for (const auto& [array, writers] : writes_b) {
    auto it = accesses_a.find(array);
    if (it == accesses_a.end()) continue;
    for (const auto& [apath, aaccess] : it->second) {
      for (const auto& [wpath, waccess] : writers) {
        check_pair(array, apath, *aaccess, a.iter(), wpath, *waccess, b.iter(), /*flow=*/false);
      }
    }
  }
}

/// Clone `node` with every subscript use of iterator `from` rewritten to
/// `to`.
NodePtr clone_renamed(const Node& node, const std::string& from, const std::string& to) {
  std::map<std::string, AffineExpr> subst;
  subst[from] = av(to);
  if (node.is_stmt()) return clone_stmt(node.as_stmt(), subst);
  const LoopNode& loop = node.as_loop();
  auto copy = std::make_unique<LoopNode>(loop.iter(), loop.lower(), loop.upper(), loop.step());
  for (const NodePtr& child : loop.body()) copy->append(clone_renamed(*child, from, to));
  return copy;
}

}  // namespace

Program fuse_nests(const Program& program, std::size_t first) {
  if (first + 1 >= program.top().size()) {
    throw std::invalid_argument("fuse_nests: no nest after index " + std::to_string(first));
  }
  const Node& node_a = *program.top()[first];
  const Node& node_b = *program.top()[first + 1];
  if (!node_a.is_loop() || !node_b.is_loop()) {
    throw std::invalid_argument("fuse_nests: both fused nests must be loops");
  }
  const LoopNode& a = node_a.as_loop();
  const LoopNode& b = node_b.as_loop();
  if (a.lower() != b.lower() || a.upper() != b.upper() || a.step() != b.step()) {
    throw std::invalid_argument("fuse_nests: loop headers differ ('" + a.iter() + "' vs '" +
                                b.iter() + "')");
  }
  check_fusion_safety(program, a, b);

  Program out = clone_arrays(program);
  for (std::size_t n = 0; n < program.top().size(); ++n) {
    if (n == first) {
      auto fused = std::make_unique<LoopNode>(a.iter(), a.lower(), a.upper(), a.step());
      for (const NodePtr& child : a.body()) fused->append(clone_plain(*child));
      for (const NodePtr& child : b.body()) {
        fused->append(clone_renamed(*child, b.iter(), a.iter()));
      }
      out.append_top(std::move(fused));
    } else if (n == first + 1) {
      continue;
    } else {
      out.append_top(clone_plain(*program.top()[n]));
    }
  }
  return out;
}

i64 dynamic_statement_instances(const Program& program) {
  i64 total = 0;
  walk_statements(program, [&](int, const LoopPath& path, const StmtNode&) {
    total += iterations_of(path);
  });
  return total;
}

}  // namespace mhla::ir
