#include "ir/walk.h"

namespace mhla::ir {

namespace {

void walk_impl(const Node& node, LoopPath& path,
               const std::function<void(const LoopPath&, const StmtNode&)>& fn) {
  if (node.is_stmt()) {
    fn(path, node.as_stmt());
    return;
  }
  const LoopNode& loop = node.as_loop();
  path.push_back(&loop);
  for (const NodePtr& child : loop.body()) walk_impl(*child, path, fn);
  path.pop_back();
}

}  // namespace

void walk_statements(const Node& node,
                     const std::function<void(const LoopPath&, const StmtNode&)>& fn) {
  LoopPath path;
  walk_impl(node, path, fn);
}

void walk_statements(const Program& program,
                     const std::function<void(int, const LoopPath&, const StmtNode&)>& fn) {
  for (std::size_t nest = 0; nest < program.top().size(); ++nest) {
    walk_statements(*program.top()[nest],
                    [&](const LoopPath& path, const StmtNode& stmt) {
                      fn(static_cast<int>(nest), path, stmt);
                    });
  }
}

i64 iterations_of(const LoopPath& path, std::size_t count) {
  i64 iters = 1;
  for (std::size_t i = 0; i < count && i < path.size(); ++i) iters *= path[i]->trip();
  return iters;
}

i64 iterations_of(const LoopPath& path) { return iterations_of(path, path.size()); }

}  // namespace mhla::ir
