#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mhla::ir {

using i64 = std::int64_t;

/// A linear (affine) integer expression over named loop iterators:
///
///   constant + sum_k coef_k * var_k
///
/// This is the only index-expression form the MHLA analyses need: array
/// subscripts in the supported application domain (multimedia loop nests)
/// are affine in the enclosing loop iterators.  Value type, cheap to copy.
class AffineExpr {
 public:
  /// The zero expression.
  AffineExpr() = default;

  /// A constant expression.
  explicit AffineExpr(i64 constant) : constant_(constant) {}

  /// The expression `coef * var`.
  static AffineExpr variable(const std::string& var, i64 coef = 1);

  /// Constant term.
  i64 constant() const { return constant_; }

  /// Coefficient of `var` (0 if absent).
  i64 coef(const std::string& var) const;

  /// All (variable, coefficient) terms with non-zero coefficient,
  /// ordered by variable name.
  const std::map<std::string, i64>& terms() const { return terms_; }

  /// True iff the expression has no variable terms.
  bool is_constant() const { return terms_.empty(); }

  /// Evaluate under a binding of every referenced variable.
  /// Throws std::out_of_range if a referenced variable is unbound.
  i64 evaluate(const std::map<std::string, i64>& binding) const;

  AffineExpr& operator+=(const AffineExpr& rhs);
  AffineExpr& operator-=(const AffineExpr& rhs);
  AffineExpr& operator*=(i64 scale);

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

  /// Human-readable form, e.g. "16*by + dy + 3".
  std::string to_string() const;

 private:
  std::map<std::string, i64> terms_;
  i64 constant_ = 0;
};

AffineExpr operator+(AffineExpr lhs, const AffineExpr& rhs);
AffineExpr operator-(AffineExpr lhs, const AffineExpr& rhs);
AffineExpr operator*(i64 scale, AffineExpr expr);

/// Shorthand builders used pervasively by the application models:
///   av("i")        -> i
///   av("i", 16)    -> 16*i
///   ac(3)          -> 3
AffineExpr av(const std::string& var, i64 coef = 1);
AffineExpr ac(i64 constant);

/// Replace every occurrence of `var` in `expr` with `replacement`
/// (affine-in-affine substitution stays affine).  Returns `expr` unchanged
/// if `var` does not occur.
AffineExpr substitute(const AffineExpr& expr, const std::string& var,
                      const AffineExpr& replacement);

}  // namespace mhla::ir
