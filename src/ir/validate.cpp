#include "ir/validate.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "ir/walk.h"

namespace mhla::ir {

namespace {

/// Minimum and maximum of an affine expression over the box spanned by the
/// enclosing loops (each iterator ranges over its loop's values).
struct Range {
  i64 lo = 0;
  i64 hi = 0;
};

Range subscript_range(const AffineExpr& expr, const LoopPath& path) {
  Range r{expr.constant(), expr.constant()};
  for (const auto& [var, coef] : expr.terms()) {
    const LoopNode* loop = nullptr;
    for (const LoopNode* candidate : path) {
      if (candidate->iter() == var) {
        loop = candidate;
        break;
      }
    }
    if (!loop || loop->trip() == 0) continue;  // unbound vars reported separately
    i64 first = loop->lower();
    i64 last = loop->lower() + (loop->trip() - 1) * loop->step();
    i64 a = coef * first;
    i64 b = coef * last;
    r.lo += std::min(a, b);
    r.hi += std::max(a, b);
  }
  return r;
}

}  // namespace

std::vector<ValidationIssue> validate(const Program& program) {
  std::vector<ValidationIssue> issues;
  auto report = [&](const std::string& message) { issues.push_back({message}); };

  walk_statements(program, [&](int nest, const LoopPath& path, const StmtNode& stmt) {
    for (const LoopNode* loop : path) {
      if (loop->trip() <= 0) {
        report("nest " + std::to_string(nest) + ": loop '" + loop->iter() +
               "' has non-positive trip count");
      }
    }
    for (const ArrayAccess& access : stmt.accesses()) {
      const ArrayDecl* array = program.find_array(access.array);
      if (!array) {
        report("statement '" + stmt.name() + "' accesses undeclared array '" + access.array + "'");
        continue;
      }
      if (static_cast<int>(access.index.size()) != array->rank()) {
        report("statement '" + stmt.name() + "': access to '" + access.array + "' has " +
               std::to_string(access.index.size()) + " subscripts, array rank is " +
               std::to_string(array->rank()));
        continue;
      }
      if (access.count <= 0) {
        report("statement '" + stmt.name() + "': access to '" + access.array +
               "' has non-positive count");
      }
      for (int dim = 0; dim < array->rank(); ++dim) {
        const AffineExpr& expr = access.index[static_cast<std::size_t>(dim)];
        for (const auto& [var, coef] : expr.terms()) {
          (void)coef;
          bool bound = std::any_of(path.begin(), path.end(), [&](const LoopNode* loop) {
            return loop->iter() == var;
          });
          if (!bound) {
            report("statement '" + stmt.name() + "': subscript variable '" + var +
                   "' is not bound by an enclosing loop");
          }
        }
        Range r = subscript_range(expr, path);
        if (r.lo < 0 || r.hi >= array->dims[static_cast<std::size_t>(dim)]) {
          std::ostringstream msg;
          msg << "statement '" << stmt.name() << "': subscript " << expr.to_string() << " of '"
              << access.array << "' dim " << dim << " spans [" << r.lo << ", " << r.hi
              << "] outside [0, " << array->dims[static_cast<std::size_t>(dim)] - 1 << "]";
          report(msg.str());
        }
      }
    }
  });
  return issues;
}

void validate_or_throw(const Program& program) {
  std::vector<ValidationIssue> issues = validate(program);
  if (issues.empty()) return;
  std::ostringstream msg;
  msg << "program '" << program.name() << "' failed validation:";
  for (const ValidationIssue& issue : issues) msg << "\n  - " << issue.message;
  throw std::invalid_argument(msg.str());
}

}  // namespace mhla::ir
