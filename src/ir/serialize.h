#pragma once

#include <string>

#include "ir/program.h"

namespace mhla::ir {

/// Plain-text program format, round-trippable through parse_program():
///
///   program motion_estimation
///   array cur 144 176 : elem 1 input
///   array mv 9 11 : elem 2 output
///   loop by 0 9 1 {
///     loop y 0 16 1 {
///       stmt sad ops 2 {
///         read cur [16*by+y] [x]
///         write mv [by] [bx] x3
///       }
///     }
///   }
///
/// One declaration per line; loops close with a bare '}'.  Affine
/// subscripts are written without spaces: `16*by+y-3`.  The optional
/// trailing `xN` on an access is the per-instance access count.
///
/// The ATOMIUM front end the paper used consumed (pruned) C source; this
/// format is our substitution for an external application-description
/// boundary (see DESIGN.md).
std::string serialize(const Program& program);

/// Parse the format back; throws std::invalid_argument with a line number
/// on malformed input.  `serialize(parse_program(serialize(p)))` is the
/// identity for every valid program.
Program parse_program(const std::string& text);

/// Parse one affine expression, e.g. "16*by+y-3".  Exposed for tests.
AffineExpr parse_affine(const std::string& text);

/// Serialize one affine expression in the compact format.
std::string format_affine(const AffineExpr& expr);

}  // namespace mhla::ir
