#include "ir/printer.h"

#include <sstream>

namespace mhla::ir {

namespace {

void print_node(std::ostringstream& out, const Node& node, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (node.is_loop()) {
    const LoopNode& loop = node.as_loop();
    out << pad << "for (" << loop.iter() << " = " << loop.lower() << "; " << loop.iter() << " < "
        << loop.upper() << "; " << loop.iter() << " += " << loop.step() << ") {\n";
    for (const NodePtr& child : loop.body()) print_node(out, *child, indent + 1);
    out << pad << "}\n";
    return;
  }
  const StmtNode& stmt = node.as_stmt();
  out << pad << stmt.name() << ":  // " << stmt.op_cycles() << " op cycles\n";
  for (const ArrayAccess& access : stmt.accesses()) {
    out << pad << "  " << (access.kind == AccessKind::Read ? "read " : "write ") << access.array;
    for (const AffineExpr& idx : access.index) out << "[" << idx.to_string() << "]";
    if (access.count != 1) out << " x" << access.count;
    out << "\n";
  }
}

}  // namespace

std::string to_string(const Node& node, int indent) {
  std::ostringstream out;
  print_node(out, node, indent);
  return out.str();
}

std::string to_string(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name() << "\n";
  for (const ArrayDecl& array : program.arrays()) {
    out << "  array " << array.name;
    for (i64 d : array.dims) out << "[" << d << "]";
    out << " (" << array.elem_bytes << "B elems, " << array.bytes() << "B total";
    if (array.is_input) out << ", input";
    if (array.is_output) out << ", output";
    out << ")\n";
  }
  for (std::size_t nest = 0; nest < program.top().size(); ++nest) {
    out << "  nest " << nest << ":\n";
    out << to_string(*program.top()[nest], 2);
  }
  return out.str();
}

}  // namespace mhla::ir
