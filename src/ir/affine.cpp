#include "ir/affine.h"

#include <sstream>
#include <stdexcept>

namespace mhla::ir {

AffineExpr AffineExpr::variable(const std::string& var, i64 coef) {
  AffineExpr e;
  if (coef != 0) e.terms_[var] = coef;
  return e;
}

i64 AffineExpr::coef(const std::string& var) const {
  auto it = terms_.find(var);
  return it == terms_.end() ? 0 : it->second;
}

i64 AffineExpr::evaluate(const std::map<std::string, i64>& binding) const {
  i64 value = constant_;
  for (const auto& [var, coef] : terms_) {
    auto it = binding.find(var);
    if (it == binding.end()) {
      throw std::out_of_range("AffineExpr::evaluate: unbound variable '" + var + "'");
    }
    value += coef * it->second;
  }
  return value;
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& rhs) {
  constant_ += rhs.constant_;
  for (const auto& [var, coef] : rhs.terms_) {
    i64 merged = coef + this->coef(var);
    if (merged == 0) {
      terms_.erase(var);
    } else {
      terms_[var] = merged;
    }
  }
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& rhs) {
  AffineExpr negated = rhs;
  negated *= -1;
  return *this += negated;
}

AffineExpr& AffineExpr::operator*=(i64 scale) {
  if (scale == 0) {
    terms_.clear();
    constant_ = 0;
    return *this;
  }
  constant_ *= scale;
  for (auto& [var, coef] : terms_) coef *= scale;
  return *this;
}

AffineExpr operator+(AffineExpr lhs, const AffineExpr& rhs) { return lhs += rhs; }
AffineExpr operator-(AffineExpr lhs, const AffineExpr& rhs) { return lhs -= rhs; }
AffineExpr operator*(i64 scale, AffineExpr expr) { return expr *= scale; }

std::string AffineExpr::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [var, coef] : terms_) {
    if (!first) out << (coef < 0 ? " - " : " + ");
    if (first && coef < 0) out << "-";
    i64 mag = coef < 0 ? -coef : coef;
    if (mag != 1) out << mag << "*";
    out << var;
    first = false;
  }
  if (constant_ != 0 || first) {
    if (!first) out << (constant_ < 0 ? " - " : " + ");
    if (first && constant_ < 0) out << "-";
    out << (constant_ < 0 ? -constant_ : constant_);
  }
  return out.str();
}

AffineExpr av(const std::string& var, i64 coef) { return AffineExpr::variable(var, coef); }
AffineExpr ac(i64 constant) { return AffineExpr(constant); }

AffineExpr substitute(const AffineExpr& expr, const std::string& var,
                      const AffineExpr& replacement) {
  i64 coef = expr.coef(var);
  if (coef == 0) return expr;
  AffineExpr out = expr;
  out -= AffineExpr::variable(var, coef);
  AffineExpr scaled = replacement;
  scaled *= coef;
  out += scaled;
  return out;
}

}  // namespace mhla::ir
