#pragma once

#include <functional>
#include <vector>

#include "ir/program.h"

namespace mhla::ir {

/// Path of enclosing loops from outermost to innermost.
using LoopPath = std::vector<const LoopNode*>;

/// Visit every statement of `node`'s subtree in program order; `path`
/// collects the enclosing loops inside that subtree.
void walk_statements(const Node& node,
                     const std::function<void(const LoopPath&, const StmtNode&)>& fn);

/// Visit every statement of the whole program in program order.
/// The callback additionally receives the index of the top-level node
/// ("nest index"), which is the coarse time axis used by the analyses.
void walk_statements(const Program& program,
                     const std::function<void(int nest, const LoopPath&, const StmtNode&)>& fn);

/// Product of trip counts of `path[0..count)`.
i64 iterations_of(const LoopPath& path, std::size_t count);

/// Product of all trip counts of `path`.
i64 iterations_of(const LoopPath& path);

}  // namespace mhla::ir
