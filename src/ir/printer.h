#pragma once

#include <string>

#include "ir/program.h"

namespace mhla::ir {

/// Pretty-print a whole program as pseudo-C (arrays, loops, statements with
/// their accesses).  Intended for debugging and documentation output.
std::string to_string(const Program& program);

/// Pretty-print one node subtree at the given indent level.
std::string to_string(const Node& node, int indent = 0);

}  // namespace mhla::ir
