#include "ir/builder.h"

#include <stdexcept>

namespace mhla::ir {

ProgramBuilder::ProgramBuilder(std::string name) : program_(std::move(name)) {}

ProgramBuilder::ArrayRef& ProgramBuilder::ArrayRef::input() {
  const_cast<ArrayDecl&>(pb_.program_.arrays()[idx_]).is_input = true;
  return *this;
}

ProgramBuilder::ArrayRef& ProgramBuilder::ArrayRef::output() {
  const_cast<ArrayDecl&>(pb_.program_.arrays()[idx_]).is_output = true;
  return *this;
}

ProgramBuilder::StmtRef& ProgramBuilder::StmtRef::read(const std::string& array,
                                                       std::vector<AffineExpr> index,
                                                       i64 count) {
  stmt_.add_access({array, AccessKind::Read, std::move(index), count});
  return *this;
}

ProgramBuilder::StmtRef& ProgramBuilder::StmtRef::write(const std::string& array,
                                                        std::vector<AffineExpr> index,
                                                        i64 count) {
  stmt_.add_access({array, AccessKind::Write, std::move(index), count});
  return *this;
}

ProgramBuilder::ArrayRef ProgramBuilder::array(const std::string& name, std::vector<i64> dims,
                                               i64 elem_bytes) {
  ArrayDecl decl;
  decl.name = name;
  decl.dims = std::move(dims);
  decl.elem_bytes = elem_bytes;
  program_.add_array(std::move(decl));
  return ArrayRef(*this, program_.arrays().size() - 1);
}

ProgramBuilder& ProgramBuilder::begin_loop(const std::string& iter, i64 lower, i64 upper,
                                           i64 step) {
  for (const LoopNode* open : open_loops_) {
    if (open->iter() == iter) {
      throw std::logic_error("ProgramBuilder: iterator '" + iter + "' shadows an open loop");
    }
  }
  auto loop = std::make_unique<LoopNode>(iter, lower, upper, step);
  LoopNode* raw = loop.get();
  place(std::move(loop));
  open_loops_.push_back(raw);
  return *this;
}

ProgramBuilder& ProgramBuilder::end_loop() {
  if (open_loops_.empty()) {
    throw std::logic_error("ProgramBuilder::end_loop: no open loop");
  }
  open_loops_.pop_back();
  return *this;
}

ProgramBuilder::StmtRef ProgramBuilder::stmt(const std::string& name, i64 op_cycles) {
  auto node = std::make_unique<StmtNode>(name, op_cycles);
  StmtNode* raw = node.get();
  place(std::move(node));
  return StmtRef(*raw);
}

void ProgramBuilder::place(NodePtr node) {
  if (finished_) throw std::logic_error("ProgramBuilder: reuse after finish()");
  if (open_loops_.empty()) {
    program_.append_top(std::move(node));
  } else {
    open_loops_.back()->append(std::move(node));
  }
}

Program ProgramBuilder::finish() {
  if (!open_loops_.empty()) {
    throw std::logic_error("ProgramBuilder::finish: unclosed loop '" +
                           open_loops_.back()->iter() + "'");
  }
  finished_ = true;
  return std::move(program_);
}

}  // namespace mhla::ir
