#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace mhla::ir {

/// Stack-based fluent builder for Programs.
///
///   ProgramBuilder pb("me");
///   pb.array("frame", {H, W}, 1).input();
///   pb.begin_loop("by", 0, H / 16);
///     pb.begin_loop("bx", 0, W / 16);
///       pb.stmt("sad", 2)
///           .read("frame", {av("by", 16), av("bx", 16)})
///           .write("mv", {av("by"), av("bx")});
///     pb.end_loop();
///   pb.end_loop();
///   Program p = pb.finish();
class ProgramBuilder {
 public:
  /// Fluent handle for tweaking the most recently declared array.
  class ArrayRef {
   public:
    ArrayRef(ProgramBuilder& pb, std::size_t idx) : pb_(pb), idx_(idx) {}
    ArrayRef& input();   ///< mark live before program start
    ArrayRef& output();  ///< mark live after program end

   private:
    ProgramBuilder& pb_;
    std::size_t idx_;
  };

  /// Fluent handle for adding accesses to the most recent statement.
  class StmtRef {
   public:
    explicit StmtRef(StmtNode& stmt) : stmt_(stmt) {}
    StmtRef& read(const std::string& array, std::vector<AffineExpr> index, i64 count = 1);
    StmtRef& write(const std::string& array, std::vector<AffineExpr> index, i64 count = 1);

   private:
    StmtNode& stmt_;
  };

  explicit ProgramBuilder(std::string name);

  /// Declare an array with the given extents and element size.
  ArrayRef array(const std::string& name, std::vector<i64> dims, i64 elem_bytes = 4);

  /// Open a loop; subsequent nodes go into its body until end_loop().
  ProgramBuilder& begin_loop(const std::string& iter, i64 lower, i64 upper, i64 step = 1);

  /// Close the innermost open loop.  Throws std::logic_error if none is open.
  ProgramBuilder& end_loop();

  /// Add a statement at the current nesting point.
  StmtRef stmt(const std::string& name, i64 op_cycles = 1);

  /// Finalize; throws std::logic_error if loops remain open.
  /// The builder is left empty and must not be reused.
  Program finish();

 private:
  void place(NodePtr node);

  Program program_;
  std::vector<LoopNode*> open_loops_;
  bool finished_ = false;
};

}  // namespace mhla::ir
