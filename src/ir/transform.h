#pragma once

#include <string>

#include "ir/program.h"

namespace mhla::ir {

/// Loop transformations on the IR.
///
/// MHLA (and the paper's DTSE methodology it belongs to) assumes the
/// access-locality loop transformations have been applied *before* layer
/// assignment; the paper lists their interaction as future work.  These
/// utilities implement the two transformations that matter most for copy
/// candidates — strip-mining/tiling (creates new loop levels and therefore
/// new, smaller copy candidates) and loop interchange (moves reuse
/// carried by an outer loop inward) — so that their effect on MHLA can be
/// studied (see bench/tiling_ablation).
///
/// All transformations are *pure*: they rebuild a new Program and leave the
/// input untouched.  They throw std::invalid_argument when the request
/// does not apply (unknown loop, non-divisible tile, non-perfect nesting
/// for interchange).

/// Strip-mine the loop named `iter` (searched anywhere in the program) into
/// an outer loop `iter` with step `tile` ... actually into
///   for (iter_t = lo; iter_t < hi; iter_t += tile)
///     for (iter   = iter_t; iter < iter_t + tile; ++iter)  [conceptually]
/// which in this constant-bounds IR is expressed as
///   for (iter_o = 0; iter_o < trip/tile; ++iter_o)
///     for (iter_i = 0; iter_i < tile; ++iter_i)
/// with every use of `iter` in subscripts rewritten to
///   step*(tile*iter_o + iter_i) + lo.
/// Requires trip % tile == 0.  New iterators are named `iter + "_o"` /
/// `iter + "_i"`.
Program tile_loop(const Program& program, const std::string& iter, i64 tile);

/// Interchange the loop named `iter` with its single, perfectly nested
/// child loop (the child must be the loop's only body node).
Program interchange(const Program& program, const std::string& iter);

/// Fuse the top-level loop nests at positions `first` and `first + 1` into
/// one loop.  Both must be loops with identical (lower, upper, step); the
/// second nest's iterator is renamed to the first's and its body appended.
///
/// Legality is checked conservatively per producer/consumer array (written
/// in the first nest, read in the second): along every array dimension the
/// read may not run ahead of the cumulative writes — the fused-iterator
/// coefficients must match with the read interval contained in the write
/// interval, and negative coefficients are rejected outright.  Throws
/// std::invalid_argument when fusion cannot be proven safe.
///
/// Fusion is the classic enabler for cross-nest reuse: after fusing a
/// producer nest with its consumer, a single on-chip copy can serve the
/// write and the read, eliminating the round trip through the array's home
/// layer.
Program fuse_nests(const Program& program, std::size_t first);

/// Count dynamic statement instances — transformations must preserve this
/// (used by the tests as the semantic invariant).
i64 dynamic_statement_instances(const Program& program);

}  // namespace mhla::ir
