#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace mhla::ir {

/// One validation problem, with a human-readable description.
struct ValidationIssue {
  std::string message;
};

/// Structural validation of a program:
///  * every access names a declared array,
///  * subscript rank matches array rank,
///  * every subscript variable is bound by an enclosing loop,
///  * loop trip counts are positive,
///  * extreme subscript values stay inside the array extents
///    (bounding-box check over the enclosing loop ranges).
std::vector<ValidationIssue> validate(const Program& program);

/// Throws std::invalid_argument listing all issues if validation fails.
void validate_or_throw(const Program& program);

}  // namespace mhla::ir
