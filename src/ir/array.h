#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "ir/affine.h"

namespace mhla::ir {

/// Declaration of a (possibly multi-dimensional) array in the application.
///
/// MHLA reasons about arrays as rectangular element grids; `dims` holds the
/// extent of each dimension in elements, outermost dimension first.
struct ArrayDecl {
  std::string name;
  std::vector<i64> dims;   ///< extent per dimension, in elements
  i64 elem_bytes = 4;      ///< size of one element in bytes

  /// True for arrays that hold live data before the program starts
  /// (e.g. an input frame).  Affects lifetime analysis.
  bool is_input = false;

  /// True for arrays whose content must survive the program
  /// (e.g. the output bitstream).  Affects lifetime analysis.
  bool is_output = false;

  /// Total number of elements.
  i64 elems() const {
    i64 n = 1;
    for (i64 d : dims) n *= d;
    return n;
  }

  /// Total size in bytes.
  i64 bytes() const { return elems() * elem_bytes; }

  /// Number of dimensions.
  int rank() const { return static_cast<int>(dims.size()); }
};

}  // namespace mhla::ir
