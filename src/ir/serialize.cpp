#include "ir/serialize.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mhla::ir {

std::string format_affine(const AffineExpr& expr) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [var, coef] : expr.terms()) {
    if (coef < 0) {
      out << "-";
    } else if (!first) {
      out << "+";
    }
    i64 mag = coef < 0 ? -coef : coef;
    if (mag != 1) out << mag << "*";
    out << var;
    first = false;
  }
  if (expr.constant() != 0 || first) {
    if (expr.constant() < 0) {
      out << "-" << -expr.constant();
    } else {
      if (!first) out << "+";
      out << expr.constant();
    }
  }
  return out.str();
}

AffineExpr parse_affine(const std::string& text) {
  AffineExpr result;
  std::size_t pos = 0;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("parse_affine: " + why + " in '" + text + "' at offset " +
                                std::to_string(pos));
  };

  bool expect_term = true;
  i64 sign = 1;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '+' || c == '-') {
      if (expect_term && c == '-') {
        sign = -sign;  // leading / repeated unary minus
        ++pos;
        continue;
      }
      if (expect_term) fail("unexpected '+'");
      sign = (c == '-') ? -1 : 1;
      expect_term = true;
      ++pos;
      continue;
    }
    if (!expect_term) fail("missing operator");

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      i64 value = std::stoll(text.substr(start, pos - start));
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        std::size_t vstart = pos;
        while (pos < text.size() && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                                     text[pos] == '_')) {
          ++pos;
        }
        if (vstart == pos) fail("expected variable after '*'");
        result += AffineExpr::variable(text.substr(vstart, pos - vstart), sign * value);
      } else {
        result += AffineExpr(sign * value);
      }
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
        ++pos;
      }
      result += AffineExpr::variable(text.substr(start, pos - start), sign);
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    sign = 1;
    expect_term = false;
  }
  if (expect_term) fail("dangling operator");
  return result;
}

namespace {

void serialize_node(std::ostringstream& out, const Node& node, int depth) {
  std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (node.is_loop()) {
    const LoopNode& loop = node.as_loop();
    out << pad << "loop " << loop.iter() << " " << loop.lower() << " " << loop.upper() << " "
        << loop.step() << " {\n";
    for (const NodePtr& child : loop.body()) serialize_node(out, *child, depth + 1);
    out << pad << "}\n";
    return;
  }
  const StmtNode& stmt = node.as_stmt();
  out << pad << "stmt " << stmt.name() << " ops " << stmt.op_cycles() << " {\n";
  for (const ArrayAccess& access : stmt.accesses()) {
    out << pad << "  " << (access.kind == AccessKind::Read ? "read " : "write ") << access.array;
    for (const AffineExpr& index : access.index) out << " [" << format_affine(index) << "]";
    if (access.count != 1) out << " x" << access.count;
    out << "\n";
  }
  out << pad << "}\n";
}

/// Line-based parser state.
struct Parser {
  std::vector<std::string> lines;
  std::size_t next = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("parse_program: line " + std::to_string(next) + ": " + why);
  }

  bool done() const { return next >= lines.size(); }

  /// Next non-empty, non-comment line, trimmed; empty string at EOF.
  std::string take() {
    while (next < lines.size()) {
      std::string line = lines[next++];
      std::size_t begin = line.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      std::size_t end = line.find_last_not_of(" \t\r");
      line = line.substr(begin, end - begin + 1);
      if (line.empty() || line[0] == '#') continue;
      return line;
    }
    return "";
  }

  void put_back() { --next; }
};

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

ArrayAccess parse_access(Parser& parser, const std::vector<std::string>& tokens) {
  ArrayAccess access;
  access.kind = tokens[0] == "read" ? AccessKind::Read : AccessKind::Write;
  if (tokens.size() < 2) parser.fail("access needs an array name");
  access.array = tokens[1];
  for (std::size_t t = 2; t < tokens.size(); ++t) {
    const std::string& token = tokens[t];
    if (token.size() >= 2 && token.front() == '[' && token.back() == ']') {
      access.index.push_back(parse_affine(token.substr(1, token.size() - 2)));
    } else if (token.size() >= 2 && token[0] == 'x' &&
               std::isdigit(static_cast<unsigned char>(token[1]))) {
      access.count = std::stoll(token.substr(1));
    } else {
      parser.fail("unexpected access token '" + token + "'");
    }
  }
  return access;
}

NodePtr parse_stmt(Parser& parser, const std::vector<std::string>& header) {
  // stmt <name> ops <cycles> {
  if (header.size() != 5 || header[2] != "ops" || header[4] != "{") {
    parser.fail("malformed stmt header");
  }
  auto stmt = std::make_unique<StmtNode>(header[1], std::stoll(header[3]));
  for (;;) {
    std::string line = parser.take();
    if (line.empty()) parser.fail("unterminated stmt");
    if (line == "}") break;
    std::vector<std::string> tokens = split_ws(line);
    if (tokens[0] != "read" && tokens[0] != "write") {
      parser.fail("expected read/write inside stmt, got '" + tokens[0] + "'");
    }
    stmt->add_access(parse_access(parser, tokens));
  }
  return stmt;
}

NodePtr parse_node(Parser& parser, const std::string& line);

NodePtr parse_loop(Parser& parser, const std::vector<std::string>& header) {
  // loop <iter> <lower> <upper> <step> {
  if (header.size() != 6 || header[5] != "{") parser.fail("malformed loop header");
  auto loop = std::make_unique<LoopNode>(header[1], std::stoll(header[2]), std::stoll(header[3]),
                                         std::stoll(header[4]));
  for (;;) {
    std::string line = parser.take();
    if (line.empty()) parser.fail("unterminated loop");
    if (line == "}") break;
    loop->append(parse_node(parser, line));
  }
  return loop;
}

NodePtr parse_node(Parser& parser, const std::string& line) {
  std::vector<std::string> tokens = split_ws(line);
  if (tokens[0] == "loop") return parse_loop(parser, tokens);
  if (tokens[0] == "stmt") return parse_stmt(parser, tokens);
  parser.fail("expected loop/stmt, got '" + tokens[0] + "'");
}

}  // namespace

std::string serialize(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name() << "\n";
  for (const ArrayDecl& array : program.arrays()) {
    out << "array " << array.name;
    for (i64 d : array.dims) out << " " << d;
    out << " : elem " << array.elem_bytes;
    if (array.is_input) out << " input";
    if (array.is_output) out << " output";
    out << "\n";
  }
  for (const NodePtr& top : program.top()) serialize_node(out, *top, 0);
  return out.str();
}

Program parse_program(const std::string& text) {
  Parser parser;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) parser.lines.push_back(raw);

  std::string first = parser.take();
  std::vector<std::string> header = split_ws(first);
  if (header.size() != 2 || header[0] != "program") {
    parser.fail("expected 'program <name>' header");
  }
  Program program(header[1]);

  for (;;) {
    std::string line = parser.take();
    if (line.empty()) break;
    std::vector<std::string> tokens = split_ws(line);
    if (tokens[0] == "array") {
      // array <name> <dim>... : elem <bytes> [input] [output]
      ArrayDecl decl;
      if (tokens.size() < 5) parser.fail("malformed array declaration");
      decl.name = tokens[1];
      std::size_t t = 2;
      while (t < tokens.size() && tokens[t] != ":") {
        decl.dims.push_back(std::stoll(tokens[t]));
        ++t;
      }
      if (t + 2 >= tokens.size() || tokens[t] != ":" || tokens[t + 1] != "elem") {
        parser.fail("array declaration missing ': elem <bytes>'");
      }
      decl.elem_bytes = std::stoll(tokens[t + 2]);
      for (std::size_t f = t + 3; f < tokens.size(); ++f) {
        if (tokens[f] == "input") {
          decl.is_input = true;
        } else if (tokens[f] == "output") {
          decl.is_output = true;
        } else {
          parser.fail("unknown array flag '" + tokens[f] + "'");
        }
      }
      program.add_array(std::move(decl));
    } else {
      program.append_top(parse_node(parser, line));
    }
  }
  return program;
}

}  // namespace mhla::ir
