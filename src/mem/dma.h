#pragma once

#include "mem/layer.h"

namespace mhla::mem {

/// Model of the memory transfer engine (DMA / data mover) the paper's time
/// extensions rely on: the engine moves blocks between layers while the CPU
/// keeps computing.  Without such an engine, every block transfer blocks the
/// processor and TE is not applicable (paper, section 1).
struct DmaEngine {
  bool present = true;
  int setup_cycles = 30;        ///< per block-transfer programming overhead
  double bytes_per_cycle = 2.0; ///< engine-side sustained bandwidth
  int channels = 1;             ///< concurrent outstanding transfers

  /// Cycles one block transfer of `bytes` occupies the engine, given the
  /// source and destination layer bandwidths (min of the three).
  double transfer_cycles(i64 bytes, const MemLayer& src, const MemLayer& dst) const;

  friend bool operator==(const DmaEngine&, const DmaEngine&) = default;
};

/// Cycles a *blocking* (CPU-driven, no DMA overlap) transfer of `bytes`
/// costs the processor.  Used when no engine is present and for MHLA step 1
/// before time extensions are applied.
double blocking_transfer_cycles(i64 bytes, const MemLayer& src, const MemLayer& dst,
                                const DmaEngine& dma);

}  // namespace mhla::mem
