#include "mem/energy_model.h"

#include <algorithm>
#include <cmath>

namespace mhla::mem {

SramModelParams sram_params_for(TechNode node) {
  SramModelParams params;  // defaults are the 130 nm calibration
  switch (node) {
    case TechNode::Nm180:
      params.base_energy_nj = 0.035;
      params.slope_energy_nj = 0.0042;
      params.bytes_per_cycle = 4.0;
      break;
    case TechNode::Nm130:
      break;
    case TechNode::Nm90:
      params.base_energy_nj = 0.011;
      params.slope_energy_nj = 0.0014;
      params.bytes_per_cycle = 16.0;
      break;
  }
  return params;
}

SdramModelParams sdram_params_for(TechNode node) {
  SdramModelParams params;  // defaults are the 130 nm calibration
  switch (node) {
    case TechNode::Nm180:
      params.read_energy_nj = 5.2;
      params.write_energy_nj = 5.7;
      params.read_latency = 24;
      params.write_latency = 24;
      break;
    case TechNode::Nm130:
      break;
    case TechNode::Nm90:
      // Off-chip I/O barely improves: the on-chip/off-chip gap widens.
      params.read_energy_nj = 3.4;
      params.write_energy_nj = 3.7;
      params.read_latency = 18;
      params.write_latency = 18;
      break;
  }
  return params;
}

double sram_read_energy_nj(i64 capacity_bytes, const SramModelParams& params) {
  double cap = static_cast<double>(std::max<i64>(capacity_bytes, 1));
  return params.base_energy_nj + params.slope_energy_nj * std::sqrt(cap);
}

int sram_read_latency(i64 capacity_bytes, const SramModelParams& params) {
  i64 extra = capacity_bytes / std::max<i64>(params.latency_step_bytes, 1);
  return params.base_latency + static_cast<int>(extra);
}

MemLayer make_sram_layer(const std::string& name, i64 capacity_bytes,
                         const SramModelParams& params) {
  MemLayer layer;
  layer.name = name;
  layer.tech = MemTech::Sram;
  layer.capacity_bytes = capacity_bytes;
  layer.read_energy_nj = sram_read_energy_nj(capacity_bytes, params);
  layer.write_energy_nj = layer.read_energy_nj * params.write_factor;
  layer.read_latency = sram_read_latency(capacity_bytes, params);
  layer.write_latency = layer.read_latency;
  layer.bytes_per_cycle = params.bytes_per_cycle;
  layer.on_chip = true;
  return layer;
}

MemLayer make_sdram_layer(const std::string& name, const SdramModelParams& params) {
  MemLayer layer;
  layer.name = name;
  layer.tech = MemTech::Sdram;
  layer.capacity_bytes = 0;  // unbounded
  layer.read_energy_nj = params.read_energy_nj;
  layer.write_energy_nj = params.write_energy_nj;
  layer.read_latency = params.read_latency;
  layer.write_latency = params.write_latency;
  layer.bytes_per_cycle = params.bytes_per_cycle;
  layer.on_chip = false;
  return layer;
}

}  // namespace mhla::mem
