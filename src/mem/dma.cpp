#include "mem/dma.h"

#include <algorithm>

namespace mhla::mem {

double DmaEngine::transfer_cycles(i64 bytes, const MemLayer& src, const MemLayer& dst) const {
  double bw = std::min({bytes_per_cycle, src.bytes_per_cycle, dst.bytes_per_cycle});
  bw = std::max(bw, 1e-9);
  return static_cast<double>(setup_cycles) + static_cast<double>(bytes) / bw;
}

double blocking_transfer_cycles(i64 bytes, const MemLayer& src, const MemLayer& dst,
                                const DmaEngine& dma) {
  // The CPU issues the transfer and waits for completion; same occupancy
  // formula, the difference is who waits.
  return dma.transfer_cycles(bytes, src, dst);
}

}  // namespace mhla::mem
