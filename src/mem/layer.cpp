#include "mem/layer.h"

// MemLayer is a plain aggregate; kept as a .cpp for archive stability.
namespace mhla::mem {}
