#pragma once

#include <cstdint>
#include <string>

namespace mhla::mem {

using i64 = std::int64_t;

/// What kind of memory a layer is built from; drives the energy model and
/// whether a DMA engine can target it.
enum class MemTech { Sram, Sdram };

/// One layer of the memory hierarchy.
///
/// Layers are ordered by distance from the processor: index 0 is the
/// closest (smallest, cheapest per access), the last layer is off-chip
/// background memory (unbounded for assignment purposes).
struct MemLayer {
  std::string name;
  MemTech tech = MemTech::Sram;
  i64 capacity_bytes = 0;   ///< 0 means unbounded (off-chip background memory)
  double read_energy_nj = 0.0;
  double write_energy_nj = 0.0;
  int read_latency = 1;     ///< processor stall cycles per read
  int write_latency = 1;    ///< processor stall cycles per write
  double bytes_per_cycle = 4.0;  ///< sustained port bandwidth (block transfers)
  bool on_chip = true;

  bool unbounded() const { return capacity_bytes <= 0; }

  double access_energy_nj(bool is_write) const {
    return is_write ? write_energy_nj : read_energy_nj;
  }

  int access_latency(bool is_write) const { return is_write ? write_latency : read_latency; }
};

}  // namespace mhla::mem
