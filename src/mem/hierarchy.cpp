#include "mem/hierarchy.h"

#include <stdexcept>

namespace mhla::mem {

Hierarchy::Hierarchy(std::vector<MemLayer> layers) : layers_(std::move(layers)) {
  if (layers_.empty()) {
    throw std::invalid_argument("Hierarchy: needs at least one layer");
  }
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    if (layers_[i].unbounded()) {
      throw std::invalid_argument("Hierarchy: only the background layer may be unbounded");
    }
  }
  if (!layers_.back().unbounded()) {
    throw std::invalid_argument("Hierarchy: background (last) layer must be unbounded");
  }
  if (layers_.back().on_chip) {
    throw std::invalid_argument("Hierarchy: background layer must be off-chip");
  }
}

i64 Hierarchy::on_chip_capacity() const {
  i64 total = 0;
  for (const MemLayer& layer : layers_) {
    if (layer.on_chip) total += layer.capacity_bytes;
  }
  return total;
}

Hierarchy make_hierarchy(const PlatformConfig& config) {
  std::vector<MemLayer> layers;
  if (config.l1_bytes > 0) {
    layers.push_back(make_sram_layer("L1", config.l1_bytes, config.sram));
  }
  if (config.l2_bytes > 0) {
    layers.push_back(make_sram_layer("L2", config.l2_bytes, config.sram));
  }
  layers.push_back(make_sdram_layer("SDRAM", config.sdram));
  return Hierarchy(std::move(layers));
}

}  // namespace mhla::mem
