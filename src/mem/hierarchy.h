#pragma once

#include <vector>

#include "mem/energy_model.h"
#include "mem/layer.h"

namespace mhla::mem {

/// An ordered memory hierarchy: layer 0 is the closest to the processor,
/// the last layer is the off-chip background memory.  Invariant: exactly
/// the last layer is unbounded and off-chip.
class Hierarchy {
 public:
  /// Build from explicit layers; validates the invariant and throws
  /// std::invalid_argument on violation.
  explicit Hierarchy(std::vector<MemLayer> layers);

  const std::vector<MemLayer>& layers() const { return layers_; }
  const MemLayer& layer(int index) const { return layers_.at(static_cast<std::size_t>(index)); }
  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// Index of the off-chip background layer (always the last).
  int background() const { return num_layers() - 1; }

  /// Sum of on-chip capacities (the "on-chip size constraint" of the paper).
  i64 on_chip_capacity() const;

  bool is_on_chip(int index) const { return layer(index).on_chip; }

 private:
  std::vector<MemLayer> layers_;
};

/// Platform description used across the experiments: a two-level on-chip
/// scratchpad hierarchy (L1, L2) over off-chip SDRAM — the typical setup of
/// the paper's ATOMIUM targets.  Either on-chip layer may be omitted by
/// passing capacity 0.
struct PlatformConfig {
  i64 l1_bytes = 4 * 1024;
  i64 l2_bytes = 128 * 1024;
  SramModelParams sram;
  SdramModelParams sdram;

  friend bool operator==(const PlatformConfig&, const PlatformConfig&) = default;
};

/// Build a hierarchy from the platform description.
Hierarchy make_hierarchy(const PlatformConfig& config);

}  // namespace mhla::mem
