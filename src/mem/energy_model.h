#pragma once

#include "mem/layer.h"

namespace mhla::mem {

/// Analytic energy/latency model for on-chip SRAM scratchpads, in the spirit
/// of CACTI-class models: per-access energy and latency grow with capacity
/// (bitline/wordline lengths scale with the square root of the bit count).
///
/// Substitution note (see DESIGN.md): the paper used proprietary vendor
/// models.  MHLA only needs monotone energy/latency vs. size plus a large
/// on-chip/off-chip gap; the constants below are representative of a
/// 0.13 um embedded process and preserve the trade-off shapes.
struct SramModelParams {
  double base_energy_nj = 0.02;    ///< decoder/sense fixed cost
  double slope_energy_nj = 0.0025; ///< per sqrt(byte) cost
  double write_factor = 1.15;      ///< writes slightly costlier than reads
  int base_latency = 1;
  i64 latency_step_bytes = 32 * 1024;  ///< +1 cycle per 32 KiB of capacity
  double bytes_per_cycle = 8.0;

  friend bool operator==(const SramModelParams&, const SramModelParams&) = default;
};

/// Off-chip SDRAM: flat, high per-access cost dominated by I/O.
struct SdramModelParams {
  double read_energy_nj = 4.0;
  double write_energy_nj = 4.4;
  int read_latency = 20;
  int write_latency = 20;
  double bytes_per_cycle = 2.0;

  friend bool operator==(const SdramModelParams&, const SdramModelParams&) = default;
};

/// Process nodes with calibrated model presets.  The paper's era was
/// 180/130 nm; 90 nm is included to study how the trade-offs move as
/// on-chip access energy shrinks relative to off-chip I/O (which scales
/// much more slowly).
enum class TechNode { Nm180, Nm130, Nm90 };

/// SRAM model constants for a process node.
SramModelParams sram_params_for(TechNode node);

/// SDRAM (off-chip) model constants for a process node.  I/O energy and
/// latency improve far less than logic across nodes.
SdramModelParams sdram_params_for(TechNode node);

/// Per-access read energy of an on-chip SRAM of `capacity_bytes`.
double sram_read_energy_nj(i64 capacity_bytes, const SramModelParams& params = {});

/// Per-access read latency (cycles) of an on-chip SRAM of `capacity_bytes`.
int sram_read_latency(i64 capacity_bytes, const SramModelParams& params = {});

/// Build a fully-populated on-chip SRAM layer of the given capacity.
MemLayer make_sram_layer(const std::string& name, i64 capacity_bytes,
                         const SramModelParams& params = {});

/// Build the off-chip SDRAM background layer (unbounded capacity).
MemLayer make_sdram_layer(const std::string& name, const SdramModelParams& params = {});

}  // namespace mhla::mem
