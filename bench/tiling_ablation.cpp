// The paper's future-work direction: interaction of MHLA with the DTSE
// loop transformations that run before it.  This bench quantifies one such
// interaction: strip-mining (tiling) a sweep loop creates intermediate copy
// candidates that fit small L1 scratchpads, turning an unexploitable reuse
// pattern into an exploitable one.
//
// Workload: a repeated whole-table sweep (table too large for L1); tiling
// the sweep loop introduces tile-sized candidates.

#include "bench_common.h"

#include "ir/builder.h"
#include "ir/transform.h"

namespace {

using namespace mhla;
using ir::av;

/// rep x sweep over a table that exceeds L1: without tiling, the only copy
/// candidates are the whole table (too big) or single elements (useless).
ir::Program sweep_program(ir::i64 table_elems) {
  ir::ProgramBuilder pb("sweep");
  pb.array("table", {table_elems}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("rep", 0, 64);
  pb.begin_loop("i", 0, table_elems);
  pb.stmt("use", 2).read("table", {av("i")});
  pb.end_loop();
  pb.stmt("emit", 1).write("out", {av("rep")});
  pb.end_loop();
  return pb.finish();
}

void print_tiling_study() {
  bench::print_header("Tiling x MHLA interaction (paper future work)",
                      "loop transformations create the copy candidates MHLA exploits");

  constexpr ir::i64 kTable = 8192;  // 32 KiB of 4-byte elements
  mem::PlatformConfig platform;
  platform.l1_bytes = 2 * 1024;  // far smaller than the table
  platform.l2_bytes = 0;

  core::Table table({"variant", "time %", "energy %", "copies", "L1 peak B"});
  auto evaluate = [&](const std::string& label, ir::Program program) {
    auto ws = core::make_workspace(std::move(program), platform, {});
    auto ctx = ws->context();
    sim::SimResult oob = sim::simulate(ctx, assign::out_of_box(ctx));
    assign::GreedyResult greedy = assign::mhla_step1(ctx);
    sim::SimResult opt = sim::simulate(ctx, greedy.assignment,
                                       {te::TransferMode::TimeExtended, {}});
    table.add_row({label,
                   core::Table::num(sim::percent_of(opt.total_cycles(), oob.total_cycles())),
                   core::Table::num(sim::percent_of(opt.energy_nj, oob.energy_nj)),
                   std::to_string(greedy.assignment.copies.size()),
                   std::to_string(opt.footprints.peak_bytes[0])});
  };

  evaluate("untiled", sweep_program(kTable));
  for (ir::i64 tile : {64, 128, 256, 512}) {
    ir::Program tiled = ir::tile_loop(sweep_program(kTable), "i", tile);
    evaluate("tile " + std::to_string(tile), std::move(tiled));
  }
  std::cout << table.str()
            << "(untiled: the table exceeds L1 and candidates are all-or-element;\n"
               " tiling introduces tile-sized candidates that fit, and MHLA+TE\n"
               " double-buffers them — compute hides the block transfers)\n\n";
}

void BM_TileTransform(benchmark::State& state) {
  ir::Program program = sweep_program(8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::tile_loop(program, "i", state.range(0)));
  }
}
BENCHMARK(BM_TileTransform)->Arg(64)->Arg(256);

void BM_TiledPipeline(benchmark::State& state) {
  ir::Program tiled = ir::tile_loop(sweep_program(8192), "i", 256);
  mem::PlatformConfig platform;
  platform.l1_bytes = 2 * 1024;
  platform.l2_bytes = 0;
  auto ws = core::make_workspace(std::move(tiled), platform, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_mhla(*ws));
  }
}
BENCHMARK(BM_TiledPipeline);

}  // namespace

int main(int argc, char** argv) {
  print_tiling_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
