// The paper's tooling claim: the prototype "has allowed us to do fast,
// accurate and automatic exploration of nine real-life applications".
//
// This bench measures the tool itself: per-app analysis and search times,
// greedy search effort (cost-model evaluations), and greedy-vs-exhaustive
// quality on a small instance where the oracle is tractable.

#include "bench_common.h"

#include "assign/exhaustive.h"
#include "ir/builder.h"

namespace {

using namespace mhla;
using ir::av;

void print_tool_stats() {
  bench::print_header("Tool runtime and search effort",
                      "fast, accurate and automatic exploration of nine applications");
  core::Table table({"application", "sites", "copy cands", "greedy moves", "cost evals"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
    auto ctx = ws->context();
    assign::GreedyResult greedy = assign::mhla_step1(ctx);
    table.add_row({info.name, std::to_string(ws->sites().size()),
                   std::to_string(ws->reuse().candidates().size()),
                   std::to_string(greedy.moves.size()), std::to_string(greedy.evaluations)});
  }
  std::cout << table.str() << "\n";

  // Greedy vs exhaustive oracle on a small instance.
  ir::ProgramBuilder pb("oracle");
  pb.array("a", {16}, 4).input();
  pb.begin_loop("r", 0, 8);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  pb.end_loop();
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = core::make_workspace(pb.finish(), platform, {});
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  assign::ExhaustiveResult oracle = assign::exhaustive_assign(ctx);
  std::cout << "oracle check (small instance): greedy scalar = "
            << core::Table::num(greedy.final_scalar, 4)
            << ", exhaustive scalar = " << core::Table::num(oracle.scalar, 4) << " over "
            << oracle.states_explored << " states — gap = "
            << core::Table::num(100.0 * (greedy.final_scalar - oracle.scalar) /
                                    (oracle.scalar > 0 ? oracle.scalar : 1.0),
                                2)
            << " %\n\n";
}

void BM_ProgramAnalysis(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  ir::Program program = info.build();
  for (auto _ : state) {
    auto sites = analysis::collect_sites(program);
    benchmark::DoNotOptimize(analysis::ReuseAnalysis::run(program, sites));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_ProgramAnalysis)->DenseRange(0, 8);

void BM_WorkspaceConstruction(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::make_workspace(info.build(), bench::default_platform(), mem::DmaEngine{}));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_WorkspaceConstruction)->DenseRange(0, 8);

void BM_ExhaustiveOracle(benchmark::State& state) {
  ir::ProgramBuilder pb("oracle");
  pb.array("a", {16}, 4).input();
  pb.begin_loop("r", 0, 8);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  pb.end_loop();
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = core::make_workspace(pb.finish(), platform, {});
  auto ctx = ws->context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::exhaustive_assign(ctx));
  }
}
BENCHMARK(BM_ExhaustiveOracle);

}  // namespace

int main(int argc, char** argv) {
  print_tool_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
