// Adaptive exploration vs the fixed grid: the paper's trade-off exploration
// "is able to find all the optimal trade-off points" — this bench shows the
// adaptive xplore::Explorer recovering the fixed default_sweep() frontier
// with a fraction of its pipeline evaluations, and times both drivers.

#include "bench_common.h"

#include "explore/explorer.h"

namespace {

using namespace mhla;

/// Apps featured by the comparison and the timers (indexable for
/// BENCHMARK Arg; names, not registry positions, select the workload).
constexpr const char* kBenchApps[] = {"cavity_detection", "jpeg_compress", "fft_filter"};

void print_comparison(const std::string& name) {
  ir::Program program = apps::build_app(name);

  xplore::SweepConfig grid = xplore::default_sweep();
  std::vector<xplore::SweepSample> samples = xplore::sweep_layer_sizes(program, grid);
  std::vector<xplore::TradeoffPoint> grid_front = xplore::frontier(samples);

  xplore::ExplorerConfig config = xplore::default_explorer();
  config.budget = samples.size() / 2;  // half the full grid
  xplore::Explorer explorer(config);
  xplore::ExploreResult adaptive = explorer.run(program);

  std::cout << "--- " << name << " ---\n"
            << "fixed grid:  " << samples.size() << " evaluations, frontier "
            << grid_front.size() << " points\n"
            << "explorer:    " << adaptive.evaluations << " evaluations ("
            << adaptive.rounds << " rounds), frontier " << adaptive.frontier.size()
            << " points, covers grid frontier: "
            << (xplore::frontier_covers(adaptive.frontier, grid_front) ? "yes" : "NO") << "\n\n";
}

void print_explore_budget() {
  bench::print_header("Adaptive exploration under budget",
                      "finds the optimal trade-off points at a fraction of the grid cost");
  for (const char* name : kBenchApps) print_comparison(name);
}

void BM_FixedGrid(benchmark::State& state) {
  ir::Program program = apps::build_app(kBenchApps[state.range(0)]);
  xplore::SweepConfig config = xplore::default_sweep();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xplore::sweep_layer_sizes(program, config));
  }
  state.SetLabel(kBenchApps[state.range(0)]);
}
BENCHMARK(BM_FixedGrid)->Arg(0)->Arg(2);

void BM_AdaptiveExplorer(benchmark::State& state) {
  ir::Program program = apps::build_app(kBenchApps[state.range(0)]);
  xplore::ExplorerConfig config = xplore::default_explorer();
  xplore::Explorer explorer(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.run(program));
  }
  state.SetLabel(kBenchApps[state.range(0)]);
}
BENCHMARK(BM_AdaptiveExplorer)->Arg(0)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_explore_budget();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
