// Ablation of the TE step's design choices (paper Figure 1): the greedy
// order is BT_time/size descending.  This bench compares that order against
// FIFO, by-size and reverse orders, and sweeps the iteration-lookahead cap,
// reporting total hidden cycles and residual stall per configuration.

#include "bench_common.h"

#include "ir/builder.h"

namespace {

using namespace mhla;

const char* order_name(te::ExtensionOrder order) {
  switch (order) {
    case te::ExtensionOrder::TimePerByte: return "time/size (paper)";
    case te::ExtensionOrder::Fifo: return "fifo";
    case te::ExtensionOrder::BySizeDescending: return "by-size";
    case te::ExtensionOrder::Reverse: return "reverse";
  }
  return "?";
}

void print_ablation() {
  bench::print_header("TE ablation (Figure 1 greedy order + lookahead depth)",
                      "BTs are prefetched in time/size order under the size constraint");

  // Order only matters when the BTs compete for scarce on-chip buffer
  // space, so the ablation runs on a deliberately tight platform: the
  // paper's "user-defined on-chip memory constraint" binds here.
  mem::PlatformConfig tight;
  tight.l1_bytes = 2 * 1024;
  tight.l2_bytes = 0;

  core::Table table({"application", "order", "stall cycles", "hidden %", "vs paper order"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), tight, {});
    auto ctx = ws->context();
    assign::Assignment a = assign::mhla_step1(ctx).assignment;
    auto bts = te::collect_block_transfers(ctx, a);
    double blocking = te::total_stall_cycles(bts, te::TransferMode::Blocking, nullptr);
    if (blocking <= 0.0) continue;

    double paper_stall = 0.0;
    for (te::ExtensionOrder order :
         {te::ExtensionOrder::TimePerByte, te::ExtensionOrder::Fifo,
          te::ExtensionOrder::BySizeDescending, te::ExtensionOrder::Reverse}) {
      te::TeOptions options;
      options.order = order;
      te::TeResult result = te::time_extend(ctx, a, bts, options);
      double stall = te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &result);
      if (order == te::ExtensionOrder::TimePerByte) paper_stall = stall;
      table.add_row({info.name, order_name(order), core::Table::num(stall, 0),
                     core::Table::num(100.0 * (blocking - stall) / blocking),
                     core::Table::num(stall - paper_stall, 0)});
    }
  }
  std::cout << table.str()
            << "('vs paper order': extra residual stall cycles relative to the\n"
               " paper's time/size greedy order; >= 0 means the paper order wins or ties)\n\n";

  // Lookahead-depth sweep on the streaming coder (the prototypical target).
  core::Table depth_table({"max lookahead", "hidden cycles", "stall cycles"});
  auto ws = core::make_workspace(apps::build_adpcm_coder(), tight, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::mhla_step1(ctx).assignment;
  auto bts = te::collect_block_transfers(ctx, a);
  for (int depth : {0, 1, 2, 3, 4, 8}) {
    te::TeOptions options;
    options.max_lookahead = depth;
    te::TeResult result = te::time_extend(ctx, a, bts, options);
    double stall = te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &result);
    depth_table.add_row({std::to_string(depth), core::Table::num(result.total_hidden_cycles, 0),
                         core::Table::num(stall, 0)});
  }
  std::cout << "lookahead-depth sweep (adpcm_coder):\n" << depth_table.str() << "\n";
}

/// The greedy order only matters under *contention*: two prefetchable BTs
/// whose double buffers cannot both fit.  This scenario pins it down:
/// two 1 KiB frame streams, one sourced from on-chip L2 (cheap to stall on)
/// and one from off-chip SDRAM (expensive to stall on), with L1 slack for
/// exactly one extra buffer.  The paper's time/size order doubles the SDRAM
/// stream; FIFO wastes the slack on the cheap L2 stream.
void print_contention_scenario() {
  using ir::av;
  ir::ProgramBuilder pb("contention");
  pb.array("a_src", {64 * 256}, 4).input();  // 64 KiB -> homed in L2
  pb.array("b_src", {64 * 256}, 4).input();  // stays in SDRAM
  pb.array("sink", {64}, 4).output();
  pb.begin_loop("fr", 0, 64);
  pb.begin_loop("i", 0, 256);
  pb.stmt("work_a", 4).read("a_src", {av("fr", 256) + av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 256);
  pb.stmt("work_b", 4).read("b_src", {av("fr", 256) + av("j")});
  pb.end_loop();
  pb.stmt("emit", 1).write("sink", {av("fr")});
  pb.end_loop();

  mem::PlatformConfig platform;
  platform.l1_bytes = 3 * 1024;  // two 1 KiB buffers + slack for ONE double
  platform.l2_bytes = 128 * 1024;
  mem::DmaEngine dma;
  dma.bytes_per_cycle = 8.0;  // engine faster than SDRAM: source bw decides

  auto ws = core::make_workspace(pb.finish(), platform, dma);
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  a.array_layer["a_src"] = 1;  // L2-resident stream
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.level == 1 && (cc.array == "a_src" || cc.array == "b_src")) {
      a.copies.push_back({cc.id, 0});
    }
  }
  auto bts = te::collect_block_transfers(ctx, a);
  double blocking = te::total_stall_cycles(bts, te::TransferMode::Blocking, nullptr);

  std::cout << "contention scenario (one slot, two candidates):\n";
  core::Table table({"order", "stall cycles", "hidden %"});
  for (te::ExtensionOrder order :
       {te::ExtensionOrder::TimePerByte, te::ExtensionOrder::Fifo,
        te::ExtensionOrder::BySizeDescending, te::ExtensionOrder::Reverse}) {
    te::TeOptions options;
    options.order = order;
    te::TeResult result = te::time_extend(ctx, a, bts, options);
    double stall = te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &result);
    table.add_row({order_name(order), core::Table::num(stall, 0),
                   core::Table::num(100.0 * (blocking - stall) / blocking)});
  }
  std::cout << table.str()
            << "(the paper's time/size order spends the single free buffer on the\n"
               " off-chip stream, which stalls ~3.4x longer per byte than the L2 one)\n\n";
}

void BM_TimeExtension(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  assign::Assignment a = assign::mhla_step1(ctx).assignment;
  auto bts = te::collect_block_transfers(ctx, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::time_extend(ctx, a, bts));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_TimeExtension)->DenseRange(0, 8);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  print_contention_scenario();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
