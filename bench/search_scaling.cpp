// Search-engine scaling: how fast the MHLA step-1 searches run with the
// incremental CostEngine (apply/undo delta evaluation + branch-and-bound)
// versus the from-scratch estimate_cost path, and how the layer-size sweep
// scales across worker threads.
//
// The reproduction block prints per-app wall-clock and evaluation-rate
// comparisons plus a machine-readable JSON object; the google-benchmark
// timers below repeat the measurements under its statistics (use
// --benchmark_out=<file> --benchmark_out_format=json for the standard
// BENCH JSON — stdout also carries the report block).

#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>

#include "assign/cost_engine.h"
#include "assign/footprint_tracker.h"
#include "assign/search.h"
#include "core/json_report.h"
#include "core/parallel_for.h"
#include "ir/builder.h"

// ---- binary-wide allocation counter for the data-layout block -------------
// Replacing the global operator new/delete with counting forms lets the
// steady-state measurement report exact heap allocations per engine move
// (the data_layout JSON block CI asserts to be zero).  malloc plus a relaxed
// atomic tick keeps the overhead far below timer noise.

// noinline keeps GCC from pairing an inlined malloc-backed new with an
// inlined free-backed delete at call sites (-Wmismatched-new-delete).
#if defined(__GNUC__)
#define MHLA_BENCH_NOINLINE __attribute__((noinline))
#else
#define MHLA_BENCH_NOINLINE
#endif

namespace {
std::atomic<long> g_heap_allocs{0};

MHLA_BENCH_NOINLINE void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p) g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

MHLA_BENCH_NOINLINE void counted_free(void* p) { std::free(p); }
}  // namespace

MHLA_BENCH_NOINLINE void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}
MHLA_BENCH_NOINLINE void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}
MHLA_BENCH_NOINLINE void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
MHLA_BENCH_NOINLINE void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
MHLA_BENCH_NOINLINE void operator delete(void* p) noexcept { counted_free(p); }
MHLA_BENCH_NOINLINE void operator delete[](void* p) noexcept { counted_free(p); }
MHLA_BENCH_NOINLINE void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
MHLA_BENCH_NOINLINE void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
MHLA_BENCH_NOINLINE void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
MHLA_BENCH_NOINLINE void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace {

using namespace mhla;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Medium instance both exhaustive paths accept (20 placements, well under
/// the reference guard) whose search space exceeds the rate-measurement
/// budget, so throughput is compared over an identical state count.
ir::Program rate_program() {
  ir::ProgramBuilder pb("rate");
  pb.array("a", {32, 16}, 4).input();
  pb.array("b", {16}, 4).input();
  pb.array("o", {32}, 4).output();
  pb.begin_loop("i", 0, 32);
  pb.begin_loop("r", 0, 4);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 2).read("a", {ir::av("i"), ir::av("j")}).read("b", {ir::av("j")});
  pb.end_loop();
  pb.end_loop();
  pb.stmt("e", 1).write("o", {ir::av("i")});
  pb.end_loop();
  return pb.finish();
}

mem::PlatformConfig rate_platform() {
  mem::PlatformConfig platform;
  platform.l1_bytes = 512;
  platform.l2_bytes = 4096;
  return platform;
}

/// The guard-64 rate instance for the parallel branch-and-bound curve:
/// three blocked 2D streams with per-block reuse plus three reused tables —
/// 26 candidates x 2 on-chip layers = 52 placements, close to the engine
/// guard, with a ~10M-state exact search space.
ir::Program guard64_program() {
  ir::ProgramBuilder pb("guard64");
  pb.array("a", {32, 16}, 4).input();
  pb.array("b", {16}, 4).input();
  pb.array("c", {32, 16}, 4).input();
  pb.array("d", {24}, 4).input();
  pb.array("e", {32, 16}, 4).input();
  pb.array("f", {48}, 4).input();
  pb.array("o", {32}, 4).output();
  pb.begin_loop("i", 0, 32);
  pb.begin_loop("r", 0, 4);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 2).read("a", {ir::av("i"), ir::av("j")}).read("b", {ir::av("j")});
  pb.stmt("t", 2).read("c", {ir::av("i"), ir::av("j")}).read("d", {ir::av("j")});
  pb.stmt("u", 2).read("e", {ir::av("i"), ir::av("j")}).read("f", {ir::av("j", 3)});
  pb.end_loop();
  pb.end_loop();
  pb.stmt("g", 1).write("o", {ir::av("i")});
  pb.end_loop();
  return pb.finish();
}

mem::PlatformConfig guard64_platform() {
  mem::PlatformConfig platform;
  platform.l1_bytes = 640;
  platform.l2_bytes = 4096;
  return platform;
}

constexpr long kRateBudget = 50000;

struct GreedyRow {
  std::string app;
  double reference_s = 0.0;
  double engine_s = 0.0;
  int evaluations = 0;
};

struct FeasibilityRow {
  std::string app;
  long probes = 0;          ///< fits() calls per timed pass
  double scratch_s = 0.0;   ///< from-scratch compute_footprints per probe
  double tracker_s = 0.0;   ///< FootprintTracker place/feasible/undo per probe
  double greedy_scratch_s = 0.0;  ///< greedy end-to-end, scratch fits()
  double greedy_tracker_s = 0.0;  ///< greedy end-to-end, tracker fits()
};

/// The greedy hot loop distilled: probe "would this copy placement still
/// fit?" for every (unselected candidate, on-chip layer) pair on top of the
/// app's final greedy assignment.  The scratch pass clones the assignment
/// and rebuilds the whole usage matrix per probe — exactly what
/// `fits(ctx, next)` paid before this PR; the tracker pass answers the same
/// probes with place/feasible/undo deltas.
FeasibilityRow measure_feasibility(const apps::AppInfo& info) {
  FeasibilityRow row;
  row.app = info.name;
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  const assign::Assignment& base = greedy.assignment;
  const int background = ctx.hierarchy.background();

  std::vector<std::pair<int, int>> probes;  // (cc_id, layer)
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.elems <= 0 || base.has_copy(cc.id)) continue;
    for (int layer = 0; layer < background; ++layer) probes.emplace_back(cc.id, layer);
  }

  constexpr int kRepeats = 20;
  long verdicts_scratch = 0;
  auto t0 = Clock::now();
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (auto [cc_id, layer] : probes) {
      assign::Assignment next = base;
      next.copies.push_back({cc_id, layer});
      verdicts_scratch += assign::fits(ctx, next) ? 1 : 0;
    }
  }
  row.scratch_s = seconds_since(t0);

  assign::FootprintTracker tracker(ctx, base);
  long verdicts_tracker = 0;
  t0 = Clock::now();
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (auto [cc_id, layer] : probes) {
      assign::FootprintTracker::Checkpoint cp = tracker.checkpoint();
      tracker.place_copy(cc_id, layer);
      verdicts_tracker += tracker.feasible() ? 1 : 0;
      tracker.undo_to(cp);
    }
  }
  row.tracker_s = seconds_since(t0);
  row.probes = static_cast<long>(probes.size()) * kRepeats;
  if (verdicts_scratch != verdicts_tracker) {
    std::cout << "WARNING: feasibility verdict mismatch on " << info.name << "\n";
  }

  assign::SearchOptions scratch_options;
  scratch_options.use_footprint_tracker = false;
  t0 = Clock::now();
  assign::SearchResult slow = assign::searcher("greedy").search(ctx, scratch_options);
  row.greedy_scratch_s = seconds_since(t0);
  t0 = Clock::now();
  assign::SearchResult fast = assign::searcher("greedy").search(ctx, {});
  row.greedy_tracker_s = seconds_since(t0);
  if (fast.scalar != slow.scalar || !(fast.assignment == slow.assignment)) {
    std::cout << "WARNING: tracker/scratch greedy mismatch on " << info.name << "\n";
  }
  return row;
}

struct DataLayoutRow {
  std::string app;
  long moves = 0;              ///< accepted greedy moves (identical both paths)
  double batched_s = 0.0;      ///< greedy end-to-end, batched round scoring
  double per_candidate_s = 0.0;  ///< greedy end-to-end, apply/undo per candidate
  long steady_allocs = 0;      ///< heap allocations across one full move replay
  long allocs_per_move = 0;    ///< steady_allocs / moves (CI asserts 0)
};

/// The data-layout measurements: greedy end-to-end under batched round
/// scoring versus the per-candidate checkpoint/apply/undo cycle (identical
/// walks, so the wall-clock ratio is pure scoring cost), and the
/// steady-state heap-allocation count of replaying the accepted move trail
/// on a warmed-up engine (the SoA tables, scorer scratch, and arena journals
/// make it zero by construction).
DataLayoutRow measure_data_layout(const apps::AppInfo& info) {
  DataLayoutRow row;
  row.app = info.name;
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();

  constexpr int kRepeats = 10;
  assign::SearchOptions batched_options;  // batched scoring is the default
  assign::SearchOptions per_candidate_options;
  per_candidate_options.greedy_batched_scoring = false;

  assign::SearchResult batched;
  auto t0 = Clock::now();
  for (int rep = 0; rep < kRepeats; ++rep) {
    batched = assign::searcher("greedy").search(ctx, batched_options);
  }
  row.batched_s = seconds_since(t0) / kRepeats;
  assign::SearchResult per_candidate;
  t0 = Clock::now();
  for (int rep = 0; rep < kRepeats; ++rep) {
    per_candidate = assign::searcher("greedy").search(ctx, per_candidate_options);
  }
  row.per_candidate_s = seconds_since(t0) / kRepeats;
  if (batched.scalar != per_candidate.scalar || batched.moves.size() != per_candidate.moves.size()) {
    std::cout << "WARNING: batched/per-candidate greedy mismatch on " << info.name << "\n";
  }
  row.moves = static_cast<long>(batched.moves.size());

  // Steady-state allocations: replay the accepted trail on a prebuilt
  // engine.  The first replay fills every lazy high-water mark; the counted
  // replay must then stay entirely inside the setup-time reservations.
  assign::CostEngine engine(ctx);
  auto replay = [&]() {
    for (const assign::GreedyMove& move : batched.moves) {
      switch (move.kind) {
        case assign::GreedyMove::Kind::SelectCopy:
          engine.select_copy(move.cc_id, move.layer);
          break;
        case assign::GreedyMove::Kind::MigrateArray:
          engine.migrate_array(engine.array_id(move.array), move.layer);
          break;
        case assign::GreedyMove::Kind::RemoveCopy:
          engine.remove_copy(move.cc_id);
          break;
      }
    }
    engine.undo_to(0);
  };
  replay();  // warm-up
  long before = g_heap_allocs.load(std::memory_order_relaxed);
  replay();
  row.steady_allocs = g_heap_allocs.load(std::memory_order_relaxed) - before;
  row.allocs_per_move = row.moves > 0 ? row.steady_allocs / row.moves : row.steady_allocs;
  return row;
}

void print_scaling_report() {
  bench::print_header("Search scaling: incremental cost engine + parallel sweep",
                      "fast, accurate and automatic exploration (tool-speed claim)");

  // --- Greedy: engine vs from-scratch, every app of the registry.
  std::vector<GreedyRow> rows;
  core::Table table({"application", "cost evals", "scratch ms", "engine ms", "speedup",
                     "engine evals/s"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
    auto ctx = ws->context();
    assign::SearchOptions options;

    auto t0 = Clock::now();
    assign::SearchResult slow = assign::searcher("greedy-ref").search(ctx, options);
    double reference_s = seconds_since(t0);
    t0 = Clock::now();
    assign::SearchResult fast = assign::searcher("greedy").search(ctx, options);
    double engine_s = seconds_since(t0);

    if (fast.scalar != slow.scalar) {
      std::cout << "WARNING: engine/reference scalar mismatch on " << info.name << "\n";
    }
    rows.push_back({info.name, reference_s, engine_s, fast.evaluations});
    table.add_row({info.name, std::to_string(fast.evaluations),
                   core::Table::num(reference_s * 1e3, 2), core::Table::num(engine_s * 1e3, 2),
                   core::Table::num(reference_s / (engine_s > 0 ? engine_s : 1e-9), 1) + "x",
                   core::Table::num(fast.evaluations / (engine_s > 0 ? engine_s : 1e-9), 0)});
  }
  std::cout << table.str() << "\n";

  // --- Feasibility: tracker-backed fits() vs the from-scratch rebuild, on
  // the two largest apps (where fits() dominated greedy's per-candidate
  // cost), plus greedy end-to-end with each feasibility path.
  std::vector<FeasibilityRow> feasibility;
  core::Table feas_table({"application", "probes", "scratch ms", "tracker ms", "fits speedup",
                          "greedy scratch ms", "greedy tracker ms", "greedy speedup"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    if (info.name != "motion_estimation" && info.name != "mpeg2_encoder") continue;
    FeasibilityRow row = measure_feasibility(info);
    feas_table.add_row(
        {row.app, std::to_string(row.probes), core::Table::num(row.scratch_s * 1e3, 2),
         core::Table::num(row.tracker_s * 1e3, 2),
         core::Table::num(row.scratch_s / (row.tracker_s > 0 ? row.tracker_s : 1e-9), 1) + "x",
         core::Table::num(row.greedy_scratch_s * 1e3, 2),
         core::Table::num(row.greedy_tracker_s * 1e3, 2),
         core::Table::num(
             row.greedy_scratch_s / (row.greedy_tracker_s > 0 ? row.greedy_tracker_s : 1e-9), 2) +
             "x"});
    feasibility.push_back(std::move(row));
  }
  std::cout << "feasibility (fits() probes on the final greedy assignment):\n"
            << feas_table.str() << "\n";

  // --- Data layout: batched round scoring vs per-candidate apply/undo, and
  // the steady-state allocation count of the engine move loop (zero once the
  // setup-time reservations hold; the CI bench smoke asserts it).
  std::vector<DataLayoutRow> data_layout;
  core::Table dl_table({"application", "moves", "per-cand ms", "batched ms", "speedup",
                        "batched moves/s", "allocs/move"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    if (info.name != "motion_estimation" && info.name != "mpeg2_encoder") continue;
    DataLayoutRow row = measure_data_layout(info);
    dl_table.add_row(
        {row.app, std::to_string(row.moves), core::Table::num(row.per_candidate_s * 1e3, 3),
         core::Table::num(row.batched_s * 1e3, 3),
         core::Table::num(row.per_candidate_s / (row.batched_s > 0 ? row.batched_s : 1e-9), 2) +
             "x",
         core::Table::num(row.moves / (row.batched_s > 0 ? row.batched_s : 1e-9), 0),
         std::to_string(row.allocs_per_move)});
    data_layout.push_back(std::move(row));
  }
  std::cout << "data layout (batched round scoring + arena journals):\n"
            << dl_table.str() << "\n";

  // --- Exhaustive throughput: the mirror mode replays the reference DFS
  // state for state (identical states_explored under the same budget), so
  // states/sec isolates the per-state evaluation cost.  Branch-and-bound is
  // then measured on top of the engine, and on a medium instance only the
  // raised guard admits.
  auto ws = core::make_workspace(rate_program(), rate_platform(), {});
  auto ctx = ws->context();
  assign::SearchOptions budget_options;
  budget_options.max_states = kRateBudget;
  assign::SearchOptions mirror_options = budget_options;
  mirror_options.use_branch_and_bound = false;

  auto t0 = Clock::now();
  assign::SearchResult reference = assign::searcher("exhaustive-ref").search(ctx, budget_options);
  double reference_s = seconds_since(t0);
  t0 = Clock::now();
  assign::SearchResult mirror = assign::searcher("exhaustive").search(ctx, mirror_options);
  double mirror_s = seconds_since(t0);
  t0 = Clock::now();
  assign::SearchResult pruned = assign::searcher("bnb").search(ctx, budget_options);
  double engine_s = seconds_since(t0);

  double ref_rate = reference.states_explored / (reference_s > 0 ? reference_s : 1e-9);
  double mirror_rate = mirror.states_explored / (mirror_s > 0 ? mirror_s : 1e-9);
  std::cout << "exhaustive (rate instance, budget " << kRateBudget << "): scratch "
            << reference.states_explored << " states, "
            << core::Table::num(reference_s * 1e3, 2) << " ms ("
            << core::Table::num(ref_rate, 0) << " states/s); engine mirror "
            << mirror.states_explored << " states, " << core::Table::num(mirror_s * 1e3, 2)
            << " ms (" << core::Table::num(mirror_rate, 0) << " states/s) — states/s speedup "
            << core::Table::num(mirror_rate / ref_rate, 1) << "x\n";
  std::cout << "branch-and-bound on top: " << pruned.states_explored << " states ("
            << pruned.bound_prunes << " bound prunes, " << pruned.capacity_prunes
            << " capacity prunes), " << core::Table::num(engine_s * 1e3, 2) << " ms, "
            << (pruned.exhausted_budget ? "budget hit" : "search complete") << ", wall speedup vs scratch "
            << core::Table::num(reference_s / (engine_s > 0 ? engine_s : 1e-9), 1) << "x\n";

  auto medium_ws = core::make_workspace(apps::build_motion_estimation(),
                                        bench::default_platform(), {});
  auto medium_ctx = medium_ws->context();
  assign::SearchOptions medium_options;
  medium_options.max_states = 200000;
  t0 = Clock::now();
  assign::SearchResult medium = assign::searcher("bnb").search(medium_ctx, medium_options);
  double medium_s = seconds_since(t0);
  std::cout << "branch-and-bound (motion_estimation, 46 placements, budget 200k): "
            << medium.states_explored << " states, " << medium.bound_prunes
            << " bound prunes, " << medium.capacity_prunes << " capacity prunes, "
            << (medium.exhausted_budget ? "budget hit" : "complete") << ", "
            << core::Table::num(medium_s * 1e3, 2) << " ms\n";

  // --- Parallel branch-and-bound: thread-count scaling on the guard-64
  // rate instance, work-stealing deques against the static root-frontier
  // split recorded in the same run (same machine, same incumbent seeds).
  // The optimum must be bit-identical at every thread count under both
  // schedulers; wall-clock gains need real cores (the CI container has one).
  auto g64_ws = core::make_workspace(guard64_program(), guard64_platform(), {});
  auto g64_ctx = g64_ws->context();
  assign::SearchOptions g64_options;
  g64_options.max_states = 500'000'000;
  t0 = Clock::now();
  assign::SearchResult g64_serial = assign::searcher("bnb").search(g64_ctx, g64_options);
  double g64_serial_s = seconds_since(t0);
  std::cout << "guard-64 rate instance (52 placements): serial bnb "
            << g64_serial.states_explored << " states, "
            << core::Table::num(g64_serial_s * 1e3, 1) << " ms\n";
  struct ParRow {
    unsigned threads;
    double seconds;
    long states;
  };
  std::vector<ParRow> steal_rows;
  std::vector<ParRow> static_rows;
  for (bool stealing : {true, false}) {
    std::vector<ParRow>& curve = stealing ? steal_rows : static_rows;
    const char* label = stealing ? "work-steal" : "static    ";
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      assign::SearchOptions par_options = g64_options;
      par_options.bnb_threads = threads;
      par_options.bnb_work_stealing = stealing;
      t0 = Clock::now();
      assign::SearchResult par = assign::searcher("bnb-par").search(g64_ctx, par_options);
      double par_s = seconds_since(t0);
      if (par.assignment != g64_serial.assignment || par.scalar != g64_serial.scalar) {
        std::cout << "WARNING: bnb-par optimum mismatch at " << threads << " threads ("
                  << (stealing ? "work-stealing" : "static split") << ")\n";
      }
      curve.push_back({threads, par_s, par.states_explored});
      std::cout << "  bnb-par " << label << " " << threads << " threads: "
                << par.states_explored << " states, " << core::Table::num(par_s * 1e3, 1)
                << " ms, speedup vs serial "
                << core::Table::num(g64_serial_s / (par_s > 0 ? par_s : 1e-9), 2) << "x\n";
    }
  }
  std::cout << "\n";

  // --- Sweep: serial vs parallel wall-clock across the app registry.
  unsigned hw = core::default_parallelism();
  double serial_total = 0.0;
  double parallel_total = 0.0;
  for (const apps::AppInfo& info : apps::all_apps()) {
    ir::Program program = info.build();
    xplore::SweepConfig config = xplore::default_sweep();
    config.pipeline.num_threads = 1;
    t0 = Clock::now();
    auto serial = xplore::sweep_layer_sizes(program, config);
    serial_total += seconds_since(t0);
    config.pipeline.num_threads = 0;  // hardware concurrency
    t0 = Clock::now();
    auto parallel = xplore::sweep_layer_sizes(program, config);
    parallel_total += seconds_since(t0);
    if (serial.size() != parallel.size()) {
      std::cout << "WARNING: sweep sample-count mismatch on " << info.name << "\n";
    }
  }
  std::cout << "default_sweep over 9 apps: serial " << core::Table::num(serial_total * 1e3, 1)
            << " ms, parallel (" << hw << " threads) "
            << core::Table::num(parallel_total * 1e3, 1) << " ms, speedup "
            << core::Table::num(serial_total / (parallel_total > 0 ? parallel_total : 1e-9), 2)
            << "x\n\n";

  // --- Machine-readable summary.
  std::ostringstream json;
  json << "{\n  \"bench\": \"search_scaling\",\n  \"meta\": " << bench::run_metadata_json()
       << ",\n  \"greedy\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GreedyRow& row = rows[i];
    json << "    {\"app\": \"" << core::json_escape(row.app) << "\", \"evaluations\": "
         << row.evaluations << ", \"scratch_s\": " << row.reference_s
         << ", \"engine_s\": " << row.engine_s << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"feasibility\": [\n";
  for (std::size_t i = 0; i < feasibility.size(); ++i) {
    const FeasibilityRow& row = feasibility[i];
    json << "    {\"app\": \"" << core::json_escape(row.app) << "\", \"probes\": " << row.probes
         << ", \"scratch_s\": " << row.scratch_s << ", \"tracker_s\": " << row.tracker_s
         << ", \"greedy_scratch_s\": " << row.greedy_scratch_s
         << ", \"greedy_tracker_s\": " << row.greedy_tracker_s << "}"
         << (i + 1 < feasibility.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"exhaustive\": {\"scratch_states\": " << reference.states_explored
       << ", \"scratch_s\": " << reference_s << ", \"mirror_states\": "
       << mirror.states_explored << ", \"mirror_s\": " << mirror_s
       << ", \"bnb_states\": " << pruned.states_explored << ", \"bnb_s\": " << engine_s
       << ", \"bnb_bound_prunes\": " << pruned.bound_prunes
       << ", \"medium_states\": " << medium.states_explored
       << ", \"medium_bound_prunes\": " << medium.bound_prunes
       << ", \"medium_capacity_prunes\": " << medium.capacity_prunes << "},\n"
       << "  \"bnb_par\": {\"placements\": 52, \"serial_s\": " << g64_serial_s
       << ", \"serial_states\": " << g64_serial.states_explored << ", \"curve\": [\n";
  auto emit_curve = [&json](const std::vector<ParRow>& curve) {
    for (std::size_t i = 0; i < curve.size(); ++i) {
      json << "    {\"threads\": " << curve[i].threads << ", \"s\": " << curve[i].seconds
           << ", \"states\": " << curve[i].states << "}" << (i + 1 < curve.size() ? "," : "")
           << "\n";
    }
  };
  emit_curve(steal_rows);  // "curve" stays the headline (work-stealing) run
  json << "  ], \"static_curve\": [\n";
  emit_curve(static_rows);
  json << "  ]},\n"
       << "  \"data_layout\": [\n";
  for (std::size_t i = 0; i < data_layout.size(); ++i) {
    const DataLayoutRow& row = data_layout[i];
    json << "    {\"app\": \"" << core::json_escape(row.app) << "\", \"moves\": " << row.moves
         << ", \"batched_s\": " << row.batched_s
         << ", \"per_candidate_s\": " << row.per_candidate_s
         << ", \"steady_allocs\": " << row.steady_allocs
         << ", \"allocs_per_move\": " << row.allocs_per_move << "}"
         << (i + 1 < data_layout.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sweep\": {\"threads\": " << hw << ", \"serial_s\": " << serial_total
       << ", \"parallel_s\": " << parallel_total << "}\n}\n";
  std::cout << json.str() << "\n";
}

void BM_GreedyReference(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  int evaluations = 0;
  for (auto _ : state) {
    assign::SearchResult result = assign::searcher("greedy-ref").search(ctx, {});
    evaluations = result.evaluations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["evals/s"] =
      benchmark::Counter(static_cast<double>(evaluations), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(info.name);
}
const int kLastAppIndex = static_cast<int>(apps::all_apps().size()) - 1;
BENCHMARK(BM_GreedyReference)->DenseRange(0, kLastAppIndex);

void BM_GreedyEngine(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  int evaluations = 0;
  for (auto _ : state) {
    assign::SearchResult result = assign::searcher("greedy").search(ctx, {});
    evaluations = result.evaluations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["evals/s"] =
      benchmark::Counter(static_cast<double>(evaluations), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(info.name);
}
BENCHMARK(BM_GreedyEngine)->DenseRange(0, kLastAppIndex);

void run_exhaustive_bench(benchmark::State& state, const std::string& strategy,
                          const assign::SearchOptions& options) {
  auto ws = core::make_workspace(rate_program(), rate_platform(), {});
  auto ctx = ws->context();
  long states = 0;
  for (auto _ : state) {
    assign::SearchResult result = assign::searcher(strategy).search(ctx, options);
    states = result.states_explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states/s"] =
      benchmark::Counter(static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ExhaustiveReference(benchmark::State& state) {
  assign::SearchOptions options;
  options.max_states = kRateBudget;
  run_exhaustive_bench(state, "exhaustive-ref", options);
}
BENCHMARK(BM_ExhaustiveReference);

void BM_ExhaustiveEngineMirror(benchmark::State& state) {
  assign::SearchOptions options;
  options.use_branch_and_bound = false;
  options.max_states = kRateBudget;
  run_exhaustive_bench(state, "exhaustive", options);
}
BENCHMARK(BM_ExhaustiveEngineMirror);

void BM_ExhaustiveBranchAndBound(benchmark::State& state) {
  assign::SearchOptions options;
  options.max_states = kRateBudget;
  run_exhaustive_bench(state, "bnb", options);
}
BENCHMARK(BM_ExhaustiveBranchAndBound);

void BM_BnbParallel(benchmark::State& state) {
  assign::SearchOptions options;
  options.max_states = kRateBudget;
  options.bnb_threads = static_cast<unsigned>(state.range(0));
  run_exhaustive_bench(state, "bnb-par", options);
}
BENCHMARK(BM_BnbParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BnbParallelStaticSplit(benchmark::State& state) {
  assign::SearchOptions options;
  options.max_states = kRateBudget;
  options.bnb_threads = static_cast<unsigned>(state.range(0));
  options.bnb_work_stealing = false;
  run_exhaustive_bench(state, "bnb-par", options);
}
BENCHMARK(BM_BnbParallelStaticSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void run_fits_bench(benchmark::State& state, bool use_tracker) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  assign::Assignment base = assign::greedy_assign(ctx).assignment;
  std::vector<std::pair<int, int>> probes;
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.elems <= 0 || base.has_copy(cc.id)) continue;
    for (int layer = 0; layer < ctx.hierarchy.background(); ++layer) {
      probes.emplace_back(cc.id, layer);
    }
  }
  assign::FootprintTracker tracker(ctx, base);
  for (auto _ : state) {
    long feasible = 0;
    for (auto [cc_id, layer] : probes) {
      if (use_tracker) {
        assign::FootprintTracker::Checkpoint cp = tracker.checkpoint();
        tracker.place_copy(cc_id, layer);
        feasible += tracker.feasible() ? 1 : 0;
        tracker.undo_to(cp);
      } else {
        assign::Assignment next = base;
        next.copies.push_back({cc_id, layer});
        feasible += assign::fits(ctx, next) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(feasible);
  }
  state.counters["fits/s"] = benchmark::Counter(static_cast<double>(probes.size()),
                                                benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(info.name);
}

void BM_FitsScratch(benchmark::State& state) { run_fits_bench(state, false); }
BENCHMARK(BM_FitsScratch)->DenseRange(0, kLastAppIndex);

void BM_FitsTracker(benchmark::State& state) { run_fits_bench(state, true); }
BENCHMARK(BM_FitsTracker)->DenseRange(0, kLastAppIndex);

void BM_SweepSerial(benchmark::State& state) {
  ir::Program program = apps::build_motion_estimation();
  xplore::SweepConfig config = xplore::default_sweep();
  config.pipeline.num_threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xplore::sweep_layer_sizes(program, config));
  }
}
BENCHMARK(BM_SweepSerial);

void BM_SweepParallel(benchmark::State& state) {
  ir::Program program = apps::build_motion_estimation();
  xplore::SweepConfig config = xplore::default_sweep();
  config.pipeline.num_threads = 0;  // hardware concurrency
  for (auto _ : state) {
    benchmark::DoNotOptimize(xplore::sweep_layer_sizes(program, config));
  }
}
BENCHMARK(BM_SweepParallel);

}  // namespace

int main(int argc, char** argv) {
  print_scaling_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
