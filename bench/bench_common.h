#pragma once

// Shared plumbing for the reproduction benchmarks: every bench binary first
// prints the reproduced figure/table rows (the paper normalizes against the
// out-of-the-box configuration = 100 %), then runs google-benchmark timers
// over the underlying tool steps.

#include <benchmark/benchmark.h>

#include <iostream>

#include "apps/registry.h"
#include "core/driver.h"
#include "core/report_table.h"
#include "explore/sweep.h"

namespace mhla::bench {

/// The experiments' default platform: 4 KiB L1 + 128 KiB L2 over SDRAM,
/// DMA engine present (TE requires one).
inline mem::PlatformConfig default_platform() { return mem::PlatformConfig{}; }

/// Run the full two-step flow for one app on the default platform.
inline core::RunResult run_app(const apps::AppInfo& info) {
  auto ws = core::make_workspace(info.build(), default_platform(), mem::DmaEngine{});
  return core::run_mhla(*ws);
}

/// Print the given reproduction block with a standard header.
inline void print_header(const std::string& experiment, const std::string& claim) {
  std::cout << "==============================================================\n"
            << "Reproduction: " << experiment << "\n"
            << "Paper claim:  " << claim << "\n"
            << "==============================================================\n";
}

}  // namespace mhla::bench
