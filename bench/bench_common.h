#pragma once

// Shared plumbing for the reproduction benchmarks: every bench binary first
// prints the reproduced figure/table rows (the paper normalizes against the
// out-of-the-box configuration = 100 %), then runs google-benchmark timers
// over the underlying tool steps.

#include <benchmark/benchmark.h>

#include <ctime>
#include <iostream>
#include <sstream>
#include <thread>

#include "apps/registry.h"
#include "core/driver.h"
#include "core/report_table.h"
#include "explore/sweep.h"

// Measurement provenance, baked in by CMake at configure time (so archived
// summaries say which commit and build type produced the numbers).  The
// fallbacks keep ad-hoc builds compiling.
#ifndef MHLA_GIT_SHA
#define MHLA_GIT_SHA "unknown"
#endif
#ifndef MHLA_BUILD_TYPE
#define MHLA_BUILD_TYPE "unknown"
#endif

namespace mhla::bench {

/// The experiments' default platform: 4 KiB L1 + 128 KiB L2 over SDRAM,
/// DMA engine present (TE requires one).
inline mem::PlatformConfig default_platform() { return mem::PlatformConfig{}; }

/// Run the full two-step flow for one app on the default platform.
inline core::RunResult run_app(const apps::AppInfo& info) {
  auto ws = core::make_workspace(info.build(), default_platform(), mem::DmaEngine{});
  return core::run_mhla(*ws);
}

/// The run-metadata object every bench embeds in its JSON summary as
/// "meta", and print_header echoes as a greppable one-liner: timestamp,
/// machine width, build type and source revision travel with the numbers.
inline std::string run_metadata_json() {
  char stamp[32] = "unknown";
  std::time_t now = std::time(nullptr);
  if (const std::tm* utc = std::gmtime(&now)) {
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", utc);
  }
  std::ostringstream out;
  out << "{\"utc\": \"" << stamp
      << "\", \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"build_type\": \"" << MHLA_BUILD_TYPE << "\", \"git_sha\": \"" << MHLA_GIT_SHA
      << "\"}";
  return out.str();
}

/// Print the given reproduction block with a standard header.  The
/// "bench-meta:" line deliberately does not start with '{' — scripts that
/// extract the trailing JSON summary (awk '/^\{/,0') never pick it up.
inline void print_header(const std::string& experiment, const std::string& claim) {
  std::cout << "==============================================================\n"
            << "Reproduction: " << experiment << "\n"
            << "Paper claim:  " << claim << "\n"
            << "bench-meta: " << run_metadata_json() << "\n"
            << "==============================================================\n";
}

}  // namespace mhla::bench
