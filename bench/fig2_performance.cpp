// Figure 2 of the paper: normalized execution time of the nine applications
// under (a) out-of-the-box code, (b) MHLA step 1, (c) MHLA + time
// extensions, (d) the ideal zero-wait-state bound.
//
// Paper claim: step 1 boosts performance 40-60 % vs out-of-the-box for
// specific memory sizes; TE adds up to 33 % more when processing loops can
// hide the block transfers, pushing towards the ideal case.

#include "bench_common.h"

namespace {

using namespace mhla;

void print_figure2() {
  bench::print_header("Figure 2 (performance, out-of-box = 100 %)",
                      "MHLA improves performance up to 60 %; TE boosts further toward ideal");
  core::Table table({"application", "out-of-box", "MHLA", "MHLA+TE", "ideal", "TE gain"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    core::RunResult run = bench::run_app(info);
    const sim::FourPoint& fp = run.points;
    double base = fp.out_of_box.total_cycles();
    double mhla = sim::percent_of(fp.mhla.total_cycles(), base);
    double te = sim::percent_of(fp.mhla_te.total_cycles(), base);
    double ideal = sim::percent_of(fp.ideal.total_cycles(), base);
    table.add_row({info.name, "100.0", core::Table::num(mhla), core::Table::num(te),
                   core::Table::num(ideal), core::Table::num(mhla - te)});
  }
  std::cout << table.str()
            << "(columns are % of out-of-box execution time; 'TE gain' is the\n"
               " additional percentage-point improvement of step 2 over step 1)\n\n";
}

void BM_Step1Assignment(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  for (auto _ : state) {
    auto ctx = ws->context();
    benchmark::DoNotOptimize(assign::mhla_step1(ctx));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_Step1Assignment)->DenseRange(0, 8);

void BM_FullTwoStepFlow(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_mhla(*ws));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_FullTwoStepFlow)->DenseRange(0, 8);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
