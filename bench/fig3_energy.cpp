// Figure 3 of the paper: normalized memory-hierarchy energy of the nine
// applications, out-of-the-box vs MHLA.
//
// Paper claims: optimum allocation and assignment reduces energy up to 70 %;
// the TE step leaves energy unchanged because the model only counts
// accesses to the memory hierarchy.

#include "bench_common.h"

namespace {

using namespace mhla;

void print_figure3() {
  bench::print_header("Figure 3 (energy, out-of-box = 100 %)",
                      "MHLA reduces energy up to 70 %; TE leaves energy unchanged");
  core::Table table(
      {"application", "out-of-box", "MHLA", "MHLA+TE", "reduction", "TE delta"});
  double best = 0.0;
  for (const apps::AppInfo& info : apps::all_apps()) {
    core::RunResult run = bench::run_app(info);
    const sim::FourPoint& fp = run.points;
    double base = fp.out_of_box.energy_nj;
    double mhla = sim::percent_of(fp.mhla.energy_nj, base);
    double te = sim::percent_of(fp.mhla_te.energy_nj, base);
    best = std::max(best, 100.0 - mhla);
    table.add_row({info.name, "100.0", core::Table::num(mhla), core::Table::num(te),
                   core::Table::num(100.0 - mhla), core::Table::num(te - mhla)});
  }
  std::cout << table.str() << "best energy reduction: " << core::Table::num(best)
            << " % (paper: up to 70 %)\n"
            << "('TE delta' must be 0.0 everywhere: step 2 never changes energy)\n\n";
}

void BM_EnergyEvaluation(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  assign::Assignment a = assign::mhla_step1(ctx).assignment;
  for (auto _ : state) {
    sim::AccessTally tally = sim::tally_accesses(ctx, a);
    benchmark::DoNotOptimize(sim::tally_energy_nj(ctx.hierarchy, tally));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_EnergyEvaluation)->DenseRange(0, 8);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
