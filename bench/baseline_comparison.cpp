// The paper's motivation (§abstract): "Many researchers have presented
// multi-layered memory hierarchies ... However, most of the previous work
// do not explore trade-offs systematically."
//
// This bench implements that prior art — classic whole-array static
// scratchpad allocation (rank by accesses/byte, first-fit, sum-of-sizes) —
// and compares it against MHLA's copy-based, lifetime-aware, trade-off-
// exploring assignment on all nine applications.

#include "bench_common.h"

#include "assign/static_baseline.h"

namespace {

using namespace mhla;

void print_comparison() {
  bench::print_header("Prior-art comparison (static allocation vs MHLA)",
                      "previous work does not explore trade-offs systematically");
  core::Table table({"application", "static time %", "MHLA time %", "static energy %",
                     "MHLA energy %"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
    auto ctx = ws->context();

    sim::SimResult oob = sim::simulate(ctx, assign::out_of_box(ctx));
    sim::SimResult fixed =
        sim::simulate(ctx, assign::static_baseline_assign(ctx).assignment);
    sim::SimResult mhla =
        sim::simulate(ctx, assign::mhla_step1(ctx).assignment);

    table.add_row({info.name,
                   core::Table::num(sim::percent_of(fixed.total_cycles(), oob.total_cycles())),
                   core::Table::num(sim::percent_of(mhla.total_cycles(), oob.total_cycles())),
                   core::Table::num(sim::percent_of(fixed.energy_nj, oob.energy_nj)),
                   core::Table::num(sim::percent_of(mhla.energy_nj, oob.energy_nj))});
  }
  std::cout << table.str()
            << "(both normalized to out-of-box = 100; static allocation pins whole\n"
               " arrays only — it cannot exploit block-level reuse when arrays exceed\n"
               " on-chip capacity, which is exactly where MHLA's copies win)\n\n";
}

void BM_StaticBaseline(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  auto ws = core::make_workspace(info.build(), bench::default_platform(), {});
  auto ctx = ws->context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::static_baseline_assign(ctx));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_StaticBaseline)->DenseRange(0, 8);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
