// The paper's trade-off exploration (sections 1-2): MHLA "performs a
// thorough trade-off exploration for different memory layer sizes" and
// "is able to find all the optimal trade-off points".
//
// This bench sweeps the L1 scratchpad size over 256 B .. 64 KiB (with and
// without an L2) on a representative subset of the applications, prints the
// resulting (size, time, energy) samples and the Pareto frontier.

#include "bench_common.h"

namespace {

using namespace mhla;

void print_sweep_for(const apps::AppInfo& info) {
  xplore::SweepConfig config;
  for (ir::i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 128 * 1024};

  std::vector<xplore::SweepSample> samples =
      xplore::sweep_layer_sizes(info.build(), config);
  std::vector<xplore::TradeoffPoint> front = xplore::frontier(samples);

  std::cout << "--- " << info.name << " ---\n";
  core::Table table({"L1 bytes", "L2 bytes", "cycles", "energy nJ", "pareto"});
  for (const xplore::SweepSample& sample : samples) {
    bool on_front = false;
    for (const xplore::TradeoffPoint& p : front) {
      if (p.l1_bytes == sample.point.l1_bytes && p.l2_bytes == sample.point.l2_bytes &&
          p.cycles == sample.point.cycles && p.energy_nj == sample.point.energy_nj) {
        on_front = true;
      }
    }
    table.add_row({std::to_string(sample.point.l1_bytes), std::to_string(sample.point.l2_bytes),
                   core::Table::num(sample.point.cycles, 0),
                   core::Table::num(sample.point.energy_nj, 0), on_front ? "*" : ""});
  }
  std::cout << table.str() << "Pareto-optimal points: " << front.size() << " of "
            << samples.size() << "\n\n";
}

void print_tradeoff() {
  bench::print_header("Trade-off exploration (layer-size sweep)",
                      "thorough trade-off exploration for different memory layer sizes");
  print_sweep_for(apps::all_apps()[0]);  // motion_estimation
  print_sweep_for(apps::all_apps()[3]);  // cavity_detection
  print_sweep_for(apps::all_apps()[7]);  // adpcm_coder
}

void BM_LayerSizeSweep(benchmark::State& state) {
  const apps::AppInfo& info = apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  xplore::SweepConfig config;
  for (ir::i64 size = 256; size <= 64 * 1024; size *= 2) config.l1_sizes.push_back(size);
  config.l2_sizes = {0, 128 * 1024};
  ir::Program program = info.build();
  for (auto _ : state) {
    // Rebuild per iteration: the sweep consumes the program by reference
    // but the analyses inside depend only on it, so reuse is safe.
    benchmark::DoNotOptimize(xplore::sweep_layer_sizes(program, config));
  }
  state.SetLabel(info.name);
}
BENCHMARK(BM_LayerSizeSweep)->Arg(0)->Arg(3)->Arg(7);

void BM_ParetoFilter(benchmark::State& state) {
  // Pareto filtering over a synthetic dense sample cloud.
  std::vector<xplore::TradeoffPoint> points;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    xplore::TradeoffPoint p;
    p.cycles = static_cast<double>((i * 7919) % 1000);
    p.energy_nj = static_cast<double>((i * 104729) % 1000);
    p.l1_bytes = 256 << (i % 8);
    points.push_back(p);
  }
  for (auto _ : state) {
    auto copy = points;
    benchmark::DoNotOptimize(xplore::pareto_front(std::move(copy)));
  }
}
BENCHMARK(BM_ParetoFilter)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_tradeoff();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
