// Concurrent result-cache throughput: how the sharded, lock-striped
// ConcurrentResultCache behind mhla_serve scales with reader/writer threads,
// against the single-mutex alternative it replaces (one ResultCache behind
// one lock), and what bounded LRU eviction costs on the insert path.
//
// The interesting comparisons:
//   * Lookup/Insert at ->Threads(1..8): per-op time should stay roughly flat
//     as threads grow (shards contend only on key collisions), where the
//     GlobalLock variants serialize and degrade.
//   * BoundedInsert vs Insert: the eviction bookkeeping (LRU splice + floor
//     CAS) on every insert past the cap.
//   * Snapshot: the periodic persister's pause — what save_if_dirty pays
//     before any I/O happens.

#include "bench_common.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "explore/concurrent_cache.h"

namespace {

using namespace mhla;
using xplore::CacheEntry;

CacheEntry entry_for(std::uint64_t key) {
  CacheEntry entry;
  entry.l1_bytes = static_cast<xplore::i64>(128 + key % 4096);
  entry.l2_bytes = static_cast<xplore::i64>(key % 3 ? 8192 : 0);
  entry.strategy = "greedy";
  entry.with_te = true;
  entry.cycles = static_cast<double>(key) * 1.5;
  entry.energy_nj = static_cast<double>(key) * 2.5;
  entry.status = assign::SearchStatus::Feasible;
  return entry;
}

constexpr std::uint64_t kWorkingSet = 4096;

/// Per-thread key stream: fixed-stride walks with different offsets, so
/// threads touch the same working set but rarely the same key at once.
std::uint64_t nth_key(int thread, std::uint64_t i) {
  return (i * 2654435761u + static_cast<std::uint64_t>(thread) * 7919u) % kWorkingSet;
}

void ConcurrentCacheLookup(benchmark::State& state) {
  static xplore::ConcurrentResultCache cache;
  if (state.thread_index() == 0) {
    for (std::uint64_t key = 0; key < kWorkingSet; ++key) cache.insert(key, entry_for(key));
  }
  std::uint64_t i = 0;
  CacheEntry out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(nth_key(state.thread_index(), i++), out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(ConcurrentCacheLookup)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

void ConcurrentCacheInsert(benchmark::State& state) {
  static xplore::ConcurrentResultCache cache;
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint64_t key = nth_key(state.thread_index(), i++);
    benchmark::DoNotOptimize(cache.insert(key, entry_for(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(ConcurrentCacheInsert)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// Bounded cache under eviction pressure: cap at half the working set, so
/// roughly every other insert pays the LRU eviction + floor CAS.
void ConcurrentCacheBoundedInsert(benchmark::State& state) {
  static xplore::ConcurrentResultCache cache(
      {/*max_entries=*/kWorkingSet / 2, /*evict_floor=*/kWorkingSet / 4});
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint64_t key = nth_key(state.thread_index(), i++);
    benchmark::DoNotOptimize(cache.insert(key, entry_for(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(ConcurrentCacheBoundedInsert)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// The baseline the striping replaces: the single-threaded ResultCache
/// behind one global mutex.
struct GlobalLockCache {
  std::mutex mu;
  xplore::ResultCache cache;
};

void GlobalLockLookup(benchmark::State& state) {
  static GlobalLockCache locked;
  if (state.thread_index() == 0) {
    std::lock_guard<std::mutex> lock(locked.mu);
    for (std::uint64_t key = 0; key < kWorkingSet; ++key) {
      locked.cache.insert(key, entry_for(key));
    }
  }
  std::uint64_t i = 0;
  CacheEntry out;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(locked.mu);
    benchmark::DoNotOptimize(locked.cache.lookup(nth_key(state.thread_index(), i++), out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(GlobalLockLookup)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

void GlobalLockInsert(benchmark::State& state) {
  static GlobalLockCache locked;
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint64_t key = nth_key(state.thread_index(), i++);
    std::lock_guard<std::mutex> lock(locked.mu);
    benchmark::DoNotOptimize(locked.cache.insert(key, entry_for(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(GlobalLockInsert)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// The persister's synchronous cost: snapshotting every shard into the
/// plain ResultCache that the crash-safe saver serializes.
void ConcurrentCacheSnapshot(benchmark::State& state) {
  xplore::ConcurrentResultCache cache;
  for (std::uint64_t key = 0; key < kWorkingSet; ++key) cache.insert(key, entry_for(key));
  for (auto _ : state) {
    xplore::ResultCache snapshot = cache.snapshot();
    benchmark::DoNotOptimize(snapshot.size());
  }
  state.SetItemsProcessed(state.iterations() * kWorkingSet);
}
BENCHMARK(ConcurrentCacheSnapshot);

/// One-shot scaling table: mixed lookup/insert operations per second over
/// thread counts, sharded vs global-lock — the headline number that
/// justifies the striping in mhla_serve's hot path.
template <typename Op>
double ops_per_second(int threads, Op op) {
  constexpr std::uint64_t kOpsPerThread = 200'000;
  std::vector<std::thread> pool;
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([t, &op] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) op(t, i);
    });
  }
  for (std::thread& thread : pool) thread.join();
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(kOpsPerThread) * threads / seconds;
}

void print_scaling_report() {
  bench::print_header(
      "Concurrent result-cache scaling (mhla_serve hot path)",
      "lock-striped shards keep cache throughput flat as server workers grow");

  xplore::ConcurrentResultCache sharded;
  GlobalLockCache global;
  for (std::uint64_t key = 0; key < kWorkingSet; ++key) {
    sharded.insert(key, entry_for(key));
    global.cache.insert(key, entry_for(key));
  }

  std::printf("%8s  %18s  %18s  %8s\n", "threads", "sharded ops/s", "global-lock ops/s",
              "speedup");
  for (int threads : {1, 2, 4, 8}) {
    double shard_rate = ops_per_second(threads, [&](int t, std::uint64_t i) {
      CacheEntry out;
      std::uint64_t key = nth_key(t, i);
      if (i % 8 == 0) {
        sharded.insert(key, entry_for(key));
      } else {
        benchmark::DoNotOptimize(sharded.lookup(key, out));
      }
    });
    double global_rate = ops_per_second(threads, [&](int t, std::uint64_t i) {
      CacheEntry out;
      std::uint64_t key = nth_key(t, i);
      std::lock_guard<std::mutex> lock(global.mu);
      if (i % 8 == 0) {
        global.cache.insert(key, entry_for(key));
      } else {
        benchmark::DoNotOptimize(global.cache.lookup(key, out));
      }
    });
    std::printf("%8d  %18.0f  %18.0f  %7.2fx\n", threads, shard_rate, global_rate,
                shard_rate / global_rate);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_scaling_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
