#include "assign/greedy.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla::assign {
namespace {

using testing::make_ws;

TEST(Greedy, ImprovesOverBaseline) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  Objective obj = make_objective(ctx, 1.0, 1.0);
  double baseline = obj.scalar(estimate_cost(ctx, out_of_box(ctx)));
  EXPECT_LT(result.final_scalar, baseline);
  EXPECT_FALSE(result.moves.empty());
}

TEST(Greedy, ResultIsFeasibleAndLayeringValid) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  EXPECT_TRUE(fits(ctx, result.assignment));
  EXPECT_TRUE(layering_valid(ctx, result.assignment));
}

TEST(Greedy, MovesHavePositiveGainsInChosenOrder) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  for (const GreedyMove& move : result.moves) {
    EXPECT_GT(move.gain, 0.0);
    EXPECT_GT(move.gain_per_byte, 0.0);
  }
}

TEST(Greedy, FinalScalarMatchesReevaluation) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  Objective obj = make_objective(ctx, 1.0, 1.0);
  EXPECT_NEAR(result.final_scalar, obj.scalar(estimate_cost(ctx, result.assignment)), 1e-9);
}

TEST(Greedy, NoOnChipLayersMeansNoMoves) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 0;
  platform.l2_bytes = 0;
  auto ws = make_ws(testing::blocked_reuse_program(), platform);
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  EXPECT_TRUE(result.moves.empty());
  EXPECT_TRUE(result.assignment.copies.empty());
}

TEST(Greedy, RespectsTinyCapacity) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 64;
  platform.l2_bytes = 0;
  auto ws = make_ws(testing::blocked_reuse_program(), platform);
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  EXPECT_TRUE(fits(ctx, result.assignment));
  for (const PlacedCopy& pc : result.assignment.copies) {
    EXPECT_LE(ctx.reuse.candidate(pc.cc_id).bytes, 64);
  }
}

TEST(Greedy, MaxMovesBoundsAcceptedMoves) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyOptions options;
  options.max_moves = 1;
  GreedyResult result = greedy_assign(ctx, options);
  EXPECT_LE(result.moves.size(), 1u);
}

TEST(Greedy, ArrayMigrationCanBeDisabled) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyOptions options;
  options.allow_array_migration = false;
  GreedyResult result = greedy_assign(ctx, options);
  int background = ctx.hierarchy.background();
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    EXPECT_EQ(result.assignment.layer_of(array.name, background), background);
  }
}

TEST(Greedy, EnergyTargetNeverWorsensEnergy) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyOptions options;
  options.energy_weight = 1.0;
  options.time_weight = 0.0;
  GreedyResult result = greedy_assign(ctx, options);
  CostEstimate baseline = estimate_cost(ctx, out_of_box(ctx));
  CostEstimate optimized = estimate_cost(ctx, result.assignment);
  EXPECT_LE(optimized.energy_nj, baseline.energy_nj);
}

TEST(Greedy, TimeTargetNeverWorsensTime) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyOptions options;
  options.energy_weight = 0.0;
  options.time_weight = 1.0;
  GreedyResult result = greedy_assign(ctx, options);
  CostEstimate baseline = estimate_cost(ctx, out_of_box(ctx));
  CostEstimate optimized = estimate_cost(ctx, result.assignment);
  EXPECT_LE(optimized.total_cycles(), baseline.total_cycles());
}

TEST(Greedy, EvaluationCountIsReported) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  GreedyResult result = greedy_assign(ctx);
  EXPECT_GT(result.evaluations, 0);
}

TEST(Step1, TargetMapping) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  // Each target must produce a feasible assignment; energy-only and
  // time-only runs may differ from balanced.
  for (Target target : {Target::Energy, Target::Time, Target::Balanced}) {
    Step1Options options;
    options.target = target;
    GreedyResult result = mhla_step1(ctx, options);
    EXPECT_TRUE(fits(ctx, result.assignment));
  }
}

}  // namespace
}  // namespace mhla::assign
