// Zero-steady-state-allocation regression for the search hot path.
//
// The data-layout pass pays all allocation at setup: term tables, CSR
// topology, scorer scratch, and the arena-backed undo journals are sized in
// the CostEngine/FootprintTracker constructors, so every subsequent move —
// select, remove, migrate, home change, extension, undo, scalar read,
// feasibility probe, batched round scoring — is loads and stores into
// existing blocks.  These tests pin that property with the binary-wide
// counting allocator from tests/helpers_alloc.cpp: warm each move kind once
// (the lazy high-water marks fill on the first cycle), then assert that
// hundreds of further cycles perform literally zero heap allocations.
//
// What must NOT appear inside a sampled region: engine.assignment() (the
// lazy name-keyed sync inserts into a std::map by design — it is a
// setup/reporting API, not a move).

#include <gtest/gtest.h>

#include <vector>

#include "assign/cost.h"
#include "assign/cost_engine.h"
#include "assign/footprint_tracker.h"
#include "helpers.h"

namespace mhla {
namespace {

/// First (cc, layer) placement the engine accepts as feasible and
/// layering-valid from the out-of-box state, or {-1, -1}.
std::pair<int, int> find_placement(assign::CostEngine& engine, const assign::AssignContext& ctx) {
  const int background = ctx.hierarchy.background();
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.elems <= 0) continue;
    for (int layer = 0; layer < background; ++layer) {
      assign::CostEngine::Checkpoint mark = engine.checkpoint();
      engine.select_copy(cc.id, layer);
      bool good = engine.layering_valid() && engine.fits();
      engine.undo_to(mark);
      if (good) return {cc.id, layer};
    }
  }
  return {-1, -1};
}

TEST(AllocRegression, CostEngineSteadyStateMovesAreAllocationFree) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::CostEngine engine(ctx);
  assign::Objective objective = assign::make_objective(ctx, 1.0, 1.0);

  auto [cc_id, cc_layer] = find_placement(engine, ctx);
  ASSERT_GE(cc_id, 0) << "fixture program must admit at least one placement";
  ASSERT_GT(engine.num_arrays(), 0u);
  const std::size_t array = 0;
  const int home_layer = 0;  // on-chip; capacity is irrelevant, every move is undone

  // One cycle of every steady-state move kind plus the reads between them.
  auto cycle = [&]() {
    assign::CostEngine::Checkpoint mark = engine.checkpoint();
    engine.select_copy(cc_id, cc_layer);
    (void)engine.scalar(objective);
    (void)engine.fits();
    (void)engine.layering_valid();
    engine.remove_copy(cc_id);
    engine.select_copy(cc_id, cc_layer);
    engine.set_home(array, home_layer);
    (void)engine.scalar(objective);
    engine.undo_to(mark);
    mark = engine.checkpoint();
    (void)engine.migrate_array(array, home_layer);
    (void)engine.scalar(objective);
    engine.undo_to(mark);
  };

  cycle();  // warm-up: fills every lazy high-water mark once
  long before = testing::heap_allocations();
  for (int i = 0; i < 200; ++i) cycle();
  EXPECT_EQ(testing::heap_allocations() - before, 0)
      << "engine moves must stay allocation-free after the first cycle";
}

TEST(AllocRegression, BatchedScoringIsAllocationFree) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::CostEngine engine(ctx);
  assign::Objective objective = assign::make_objective(ctx, 1.0, 1.0);

  // Slot buffers sized outside the sampled region, exactly like the greedy
  // round loop reserves its slot vectors up front.
  const int background = ctx.hierarchy.background();
  std::vector<int> cc_ids;
  std::vector<int> layers;
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.elems <= 0) continue;
    for (int layer = 0; layer < background; ++layer) {
      cc_ids.push_back(cc.id);
      layers.push_back(layer);
    }
  }
  ASSERT_FALSE(cc_ids.empty());
  std::vector<double> scalars(cc_ids.size(), 0.0);
  std::vector<unsigned char> ok(cc_ids.size(), 0);

  engine.score_select_candidates(objective, cc_ids.data(), layers.data(), cc_ids.size(),
                                 scalars.data(), ok.data());  // warm-up
  long before = testing::heap_allocations();
  for (int i = 0; i < 200; ++i) {
    engine.score_select_candidates(objective, cc_ids.data(), layers.data(), cc_ids.size(),
                                   scalars.data(), ok.data());
  }
  EXPECT_EQ(testing::heap_allocations() - before, 0)
      << "batched round scoring must reuse the engine's scratch arrays";
}

TEST(AllocRegression, FootprintTrackerSteadyStateMovesAreAllocationFree) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::FootprintTracker tracker(ctx);

  int cc_id = -1;
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.elems > 0) {
      cc_id = cc.id;
      break;
    }
  }
  ASSERT_GE(cc_id, 0);

  auto cycle = [&]() {
    assign::FootprintTracker::Checkpoint mark = tracker.checkpoint();
    tracker.place_copy(cc_id, 0);
    (void)tracker.feasible();
    tracker.extend_copy(cc_id, -1, 1);
    (void)tracker.feasible();
    tracker.remove_copy(cc_id);
    tracker.set_home(0, 0);
    (void)tracker.feasible();
    (void)tracker.feasible_with_copy(cc_id, 0);
    tracker.undo_to(mark);
  };

  cycle();  // warm-up
  long before = testing::heap_allocations();
  for (int i = 0; i < 200; ++i) cycle();
  EXPECT_EQ(testing::heap_allocations() - before, 0)
      << "tracker moves must stay allocation-free after the first cycle";
}

}  // namespace
}  // namespace mhla
