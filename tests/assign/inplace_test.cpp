#include "assign/inplace.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla::assign {
namespace {

using testing::make_ws;

/// Three-phase pipeline with two disjoint-lifetime intermediates of 512 B
/// each: with in-place sharing they fit a 768 B layer; summed naively they
/// would not.
ir::Program pipeline_program() {
  ir::ProgramBuilder pb("pipe");
  pb.array("in", {128}, 4).input();     // 512 B
  pb.array("t0", {128}, 4);             // 512 B, live nests 0..1
  pb.array("t1", {128}, 4);             // 512 B, live nests 1..2
  pb.array("out", {128}, 4).output();   // 512 B
  using ir::av;
  pb.begin_loop("a", 0, 128);
  pb.stmt("s0", 1).read("in", {av("a")}).write("t0", {av("a")});
  pb.end_loop();
  pb.begin_loop("b", 0, 128);
  pb.stmt("s1", 1).read("t0", {av("b")}).write("t1", {av("b")});
  pb.end_loop();
  pb.begin_loop("c", 0, 128);
  pb.stmt("s2", 1).read("t1", {av("c")}).write("out", {av("c")});
  pb.end_loop();
  return pb.finish();
}

TEST(Inplace, EmptyAssignmentUsesOnlyBackground) {
  auto ws = make_ws(pipeline_program());
  auto ctx = ws->context();
  FootprintReport report = compute_footprints(ctx, out_of_box(ctx));
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.peak_bytes[0], 0);
  EXPECT_EQ(report.peak_bytes[1], 0);
  EXPECT_GT(report.peak_bytes[static_cast<std::size_t>(ctx.hierarchy.background())], 0);
}

TEST(Inplace, ArrayUsageFollowsLiveRange) {
  auto ws = make_ws(pipeline_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["t0"] = 1;  // L2
  FootprintReport report = compute_footprints(ctx, a);
  // t0 live in nests 0 and 1, not 2.
  EXPECT_EQ(report.usage[1][0], 512);
  EXPECT_EQ(report.usage[1][1], 512);
  EXPECT_EQ(report.usage[1][2], 0);
}

TEST(Inplace, DisjointLifetimesShareSpace) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 0;
  platform.l2_bytes = 768;  // < 512 + 512, but >= max concurrent (512... t0+t1 at nest1)
  auto ws = make_ws(pipeline_program(), platform);
  auto ctx = ws->context();

  // t0 and t1 overlap only at nest 1 (1024 B there) -> 768 B layer fails.
  Assignment both = out_of_box(ctx);
  both.array_layer["t0"] = 0;
  both.array_layer["t1"] = 0;
  EXPECT_FALSE(fits(ctx, both));

  // Individually each fits: peak 512.
  Assignment one = out_of_box(ctx);
  one.array_layer["t0"] = 0;
  EXPECT_TRUE(fits(ctx, one));
}

TEST(Inplace, SequentialArraysWithGapShare) {
  // in (nest 0 only, not marked input here would be 0..0)... use t-arrays:
  // t0 lives 0..1, out lives 2..2 -> never concurrent: both fit 512 B.
  mem::PlatformConfig platform;
  platform.l1_bytes = 0;
  platform.l2_bytes = 1024;
  auto ws = make_ws(pipeline_program(), platform);
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["t0"] = 0;
  a.array_layer["t1"] = 0;
  // peak = nest1: t0 + t1 = 1024 -> exactly fits.
  FootprintReport report = compute_footprints(ctx, a);
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.peak_bytes[0], 1024);
}

TEST(Inplace, CopyOccupiesOnlyItsNest) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.copies.push_back({cc_id, 0});
  FootprintReport report = compute_footprints(ctx, a);
  EXPECT_EQ(report.peak_bytes[0], ctx.reuse.candidate(cc_id).bytes);
}

TEST(Inplace, ExtensionAddsBuffers) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;
  }
  a.copies.push_back({cc_id, 0});
  i64 base = compute_footprints(ctx, a).peak_bytes[0];

  CopyExtension ext;
  ext.cc_id = cc_id;
  ext.extra_buffers = 1;  // double buffering
  i64 doubled = compute_footprints(ctx, a, {ext}).peak_bytes[0];
  EXPECT_EQ(doubled, 2 * base);
}

TEST(Inplace, ExtensionStretchesLiveRangeBackwards) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "mid" && cc.nest == 1 && cc.level == 0) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.copies.push_back({cc_id, 0});

  FootprintReport before = compute_footprints(ctx, a);
  EXPECT_EQ(before.usage[0][0], 0);  // copy lives only in nest 1

  CopyExtension ext;
  ext.cc_id = cc_id;
  ext.start_nest = 0;  // prefetch during nest 0
  FootprintReport after = compute_footprints(ctx, a, {ext});
  EXPECT_GT(after.usage[0][0], 0);
}

TEST(Inplace, InfeasibleWhenCopyExceedsCapacity) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 64;  // tiny
  platform.l2_bytes = 0;
  auto ws = make_ws(testing::blocked_reuse_program(), platform);
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;  // 256 B
  }
  a.copies.push_back({cc_id, 0});
  EXPECT_FALSE(fits(ctx, a));
}

TEST(Inplace, DeadArrayContributesNothing) {
  ir::ProgramBuilder pb("p");
  pb.array("ghost", {1024}, 4);
  pb.array("a", {8}, 4);
  using ir::av;
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  auto ws = make_ws(pb.finish());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["ghost"] = 0;  // placed but never accessed
  FootprintReport report = compute_footprints(ctx, a);
  EXPECT_EQ(report.peak_bytes[0], 0);
}

}  // namespace
}  // namespace mhla::assign
