// Tests for the one-time fill/flush charges on pinned on-chip arrays —
// the model refinement that prevents "free" migration of inputs on-chip.

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla::assign {
namespace {

using ir::av;
using testing::make_ws;

/// One input, one output, one scratch array, all small enough for L1.
ir::Program three_kinds_program() {
  ir::ProgramBuilder pb("kinds");
  pb.array("in", {32}, 4).input();
  pb.array("scratch", {32}, 4);
  pb.array("out", {32}, 4).output();
  pb.begin_loop("i", 0, 32);
  pb.stmt("s0", 1).read("in", {av("i")}).write("scratch", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 32);
  pb.stmt("s1", 1).read("scratch", {av("j")}).write("out", {av("j")});
  pb.end_loop();
  return pb.finish();
}

TEST(PinnedTraffic, EnumeratesInputsAndOutputsOnly) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["in"] = 0;
  a.array_layer["scratch"] = 0;
  a.array_layer["out"] = 0;
  std::vector<PinnedTraffic> traffic = pinned_array_traffic(ctx, a);
  ASSERT_EQ(traffic.size(), 2u);
  bool saw_fill = false;
  bool saw_flush = false;
  for (const PinnedTraffic& t : traffic) {
    if (t.fill) {
      EXPECT_EQ(t.array->name, "in");
      saw_fill = true;
    } else {
      EXPECT_EQ(t.array->name, "out");
      saw_flush = true;
    }
  }
  EXPECT_TRUE(saw_fill);
  EXPECT_TRUE(saw_flush);
}

TEST(PinnedTraffic, BackgroundHomesAreFree) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  EXPECT_TRUE(pinned_array_traffic(ctx, out_of_box(ctx)).empty());
}

TEST(PinnedTraffic, ScratchArraysAreFree) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["scratch"] = 0;
  EXPECT_TRUE(pinned_array_traffic(ctx, a).empty());
}

TEST(PinnedTraffic, CostChargesExactlyOneFill) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  Assignment base = out_of_box(ctx);
  Assignment pinned = base;
  pinned.array_layer["in"] = 0;

  CostEstimate before = estimate_cost(ctx, base);
  CostEstimate after = estimate_cost(ctx, pinned);

  const mem::MemLayer& l1 = ctx.hierarchy.layer(0);
  const mem::MemLayer& sdram = ctx.hierarchy.layer(ctx.hierarchy.background());
  // Energy delta = processor reads move to L1, plus the one-time fill.
  double access_delta = 32.0 * (l1.read_energy_nj - sdram.read_energy_nj);
  double fill = 32.0 * (sdram.read_energy_nj + l1.write_energy_nj);
  EXPECT_NEAR(after.energy_nj - before.energy_nj, access_delta + fill, 1e-9);

  double fill_cycles = mem::blocking_transfer_cycles(128, sdram, l1, ctx.dma);
  EXPECT_NEAR(after.transfer_cycles - before.transfer_cycles, fill_cycles, 1e-9);
}

TEST(PinnedTraffic, SimulatorChargesTheSame) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["in"] = 0;
  a.array_layer["out"] = 1;
  CostEstimate cost = estimate_cost(ctx, a);
  sim::SimResult result = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}});
  EXPECT_NEAR(result.total_cycles(), cost.total_cycles(), 1e-9);
  EXPECT_NEAR(result.energy_nj, cost.energy_nj, 1e-9);
}

TEST(PinnedTraffic, IdealModeHidesTheFillTime) {
  auto ws = make_ws(three_kinds_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.array_layer["in"] = 0;
  sim::SimResult blocking = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}});
  sim::SimResult ideal = sim::simulate(ctx, a, {te::TransferMode::Ideal, {}});
  EXPECT_GT(blocking.stall_cycles, 0.0);
  EXPECT_DOUBLE_EQ(ideal.stall_cycles, 0.0);
  EXPECT_DOUBLE_EQ(blocking.energy_nj, ideal.energy_nj);  // energy not hidden
}

TEST(PinnedTraffic, GreedyStillMigratesWhenWorthIt) {
  // A heavily re-read input: the fill is paid once, the access savings
  // recur — migration should still happen.
  ir::ProgramBuilder pb("p");
  pb.array("hot", {64}, 4).input();
  pb.begin_loop("r", 0, 1000);
  pb.begin_loop("i", 0, 64);
  pb.stmt("s", 1).read("hot", {av("i")});
  pb.end_loop();
  pb.end_loop();
  auto ws = make_ws(pb.finish());
  auto ctx = ws->context();
  GreedyResult greedy = greedy_assign(ctx);
  // Whether via migration or a whole-array copy (equivalent here: one fill,
  // recurring savings), the reads must end up served on-chip.
  Resolution res = resolve(ctx, greedy.assignment);
  for (const analysis::AccessSite& site : ctx.sites) {
    if (site.access->array == "hot") {
      EXPECT_LT(res.site_layer[static_cast<std::size_t>(site.id)], ctx.hierarchy.background());
    }
  }
}

TEST(PinnedTraffic, GreedyAvoidsMigratingColdInputs) {
  // An input read exactly once: homing it on-chip pays a fill for nothing;
  // greedy must leave it off-chip.
  ir::ProgramBuilder pb("p");
  pb.array("cold", {64}, 4).input();
  pb.array("sink", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.stmt("s", 1).read("cold", {av("i")}).write("sink", {av("i")});
  pb.end_loop();
  auto ws = make_ws(pb.finish());
  auto ctx = ws->context();
  GreedyResult greedy = greedy_assign(ctx);
  EXPECT_EQ(greedy.assignment.layer_of("cold", -1), ctx.hierarchy.background());
}

}  // namespace
}  // namespace mhla::assign
