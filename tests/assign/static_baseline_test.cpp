#include "assign/static_baseline.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::assign {
namespace {

using ir::av;
using testing::make_ws;

TEST(StaticBaseline, PlacesDensestArraysFirst) {
  // hot (high accesses/byte) must be placed before cold.
  ir::ProgramBuilder pb("p");
  pb.array("hot", {64}, 4).input();    // 256 B
  pb.array("cold", {64}, 4).input();   // 256 B
  pb.begin_loop("r", 0, 100);
  pb.begin_loop("i", 0, 64);
  pb.stmt("s", 1).read("hot", {av("i")});
  pb.end_loop();
  pb.end_loop();
  pb.begin_loop("j", 0, 64);
  pb.stmt("t", 1).read("cold", {av("j")});
  pb.end_loop();

  mem::PlatformConfig platform;
  platform.l1_bytes = 256;  // room for exactly one of them
  platform.l2_bytes = 0;
  auto ws = make_ws(pb.finish(), platform);
  auto ctx = ws->context();
  StaticBaselineResult result = static_baseline_assign(ctx);
  EXPECT_EQ(result.assignment.layer_of("hot", -1), 0);
  EXPECT_EQ(result.assignment.layer_of("cold", -1), ctx.hierarchy.background());
  EXPECT_EQ(result.arrays_placed, 1);
}

TEST(StaticBaseline, NeverSelectsCopies) {
  auto ws = make_ws(testing::blocked_reuse_program());
  StaticBaselineResult result = static_baseline_assign(ws->context());
  EXPECT_TRUE(result.assignment.copies.empty());
}

TEST(StaticBaseline, RespectsSumOfSizes) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  StaticBaselineResult result = static_baseline_assign(ctx);
  std::vector<ir::i64> used(static_cast<std::size_t>(ctx.hierarchy.num_layers()), 0);
  for (const ir::ArrayDecl& array : ctx.program.arrays()) {
    int layer = result.assignment.layer_of(array.name, ctx.hierarchy.background());
    used[static_cast<std::size_t>(layer)] += array.bytes();
  }
  for (int l = 0; l < ctx.hierarchy.background(); ++l) {
    EXPECT_LE(used[static_cast<std::size_t>(l)], ctx.hierarchy.layer(l).capacity_bytes);
  }
}

TEST(StaticBaseline, UnaccessedArraysStayOffChip) {
  ir::ProgramBuilder pb("p");
  pb.array("ghost", {8}, 4);
  pb.array("live", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("live", {av("i")});
  pb.end_loop();
  auto ws = make_ws(pb.finish());
  auto ctx = ws->context();
  StaticBaselineResult result = static_baseline_assign(ctx);
  EXPECT_EQ(result.assignment.layer_of("ghost", -1), ctx.hierarchy.background());
  EXPECT_EQ(result.assignment.layer_of("live", -1), 0);
}

TEST(StaticBaseline, BaselineIsFeasible) {
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), {}, {});
    auto ctx = ws->context();
    StaticBaselineResult result = static_baseline_assign(ctx);
    // Sum-of-sizes is stricter than peak-footprint, so the result must
    // also pass the in-place feasibility check.
    EXPECT_TRUE(fits(ctx, result.assignment)) << info.name;
  }
}

TEST(StaticBaseline, MhlaBeatsOrMatchesItEverywhere) {
  // The paper's core argument: copy-based assignment with trade-off
  // exploration beats whole-array static allocation.
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = core::make_workspace(info.build(), {}, {});
    auto ctx = ws->context();
    Objective obj = make_objective(ctx, 1.0, 1.0);
    double baseline_scalar =
        obj.scalar(estimate_cost(ctx, static_baseline_assign(ctx).assignment));
    double mhla_scalar = greedy_assign(ctx).final_scalar;
    EXPECT_LE(mhla_scalar, baseline_scalar + 1e-9) << info.name;
  }
}

TEST(StaticBaseline, MhlaStrictlyWinsWhenArraysDontFit) {
  // Frames are far larger than on-chip memory: static allocation can place
  // nothing useful, MHLA's copies still capture the reuse.
  auto ws = core::make_workspace(apps::build_motion_estimation(), {}, {});
  auto ctx = ws->context();
  Objective obj = make_objective(ctx, 1.0, 1.0);
  double baseline_scalar =
      obj.scalar(estimate_cost(ctx, static_baseline_assign(ctx).assignment));
  double mhla_scalar = assign::greedy_assign(ctx).final_scalar;
  EXPECT_LT(mhla_scalar, baseline_scalar * 0.8);
}

}  // namespace
}  // namespace mhla::assign
