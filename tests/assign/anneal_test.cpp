#include "assign/anneal.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "assign/cost.h"
#include "assign/search.h"
#include "core/pipeline.h"
#include "explore/sweep.h"
#include "helpers.h"

namespace mhla::assign {
namespace {

TEST(Anneal, BitIdenticalForAFixedSeed) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  AnnealOptions options;
  options.seed = 42;
  AnnealResult first = anneal_assign(ctx, options);
  AnnealResult second = anneal_assign(ctx, options);
  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_EQ(first.scalar, second.scalar);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.accepted, second.accepted);
}

TEST(Anneal, FeasibleAndNeverWorseThanOutOfBox) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  Objective objective = make_objective(ctx, 1.0, 1.0);
  double baseline = objective.scalar(estimate_cost(ctx, out_of_box(ctx)));
  for (std::uint32_t seed : {1u, 7u, 1234u}) {
    AnnealOptions options;
    options.seed = seed;
    AnnealResult result = anneal_assign(ctx, options);
    EXPECT_TRUE(fits(ctx, result.assignment)) << "seed " << seed;
    EXPECT_TRUE(layering_valid(ctx, result.assignment)) << "seed " << seed;
    EXPECT_LE(result.scalar, baseline) << "seed " << seed;
    EXPECT_EQ(objective.scalar(estimate_cost(ctx, result.assignment)), result.scalar)
        << "seed " << seed;
  }
}

TEST(Anneal, FindsImprovementsOnAReuseWorkload) {
  // The blocked program has an obvious winning copy; a 2000-iteration walk
  // that never finds *any* improvement would be broken.
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  Objective objective = make_objective(ctx, 1.0, 1.0);
  double baseline = objective.scalar(estimate_cost(ctx, out_of_box(ctx)));
  AnnealResult result = anneal_assign(ctx, {});
  EXPECT_LT(result.scalar, baseline);
  EXPECT_GT(result.accepted, 0);
}

TEST(Anneal, HandlesAProgramWithNoArrays) {
  // A compute-only program is valid; the migrate branch must not draw from
  // an empty array list (regression: modulo-by-zero).
  ir::ProgramBuilder pb("no_arrays");
  pb.begin_loop("i", 0, 8);
  pb.stmt("spin", 3);
  pb.end_loop();
  auto ws = testing::make_ws(pb.finish());
  auto ctx = ws->context();
  AnnealOptions options;
  options.iterations = 200;
  AnnealResult result = anneal_assign(ctx, options);
  EXPECT_TRUE(result.assignment.copies.empty());
  EXPECT_GT(result.scalar, 0.0);
}

TEST(Anneal, RegisteredAndInvocableByName) {
  std::vector<std::string> names = searcher_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "anneal"), names.end());

  const Searcher& strategy = make_searcher("anneal");
  EXPECT_EQ(strategy.name(), "anneal");

  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  SearchOptions options;
  options.anneal_iterations = 500;
  options.anneal_seed = 9;
  SearchResult via_registry = strategy.search(ctx, options);

  AnnealOptions direct;
  direct.iterations = 500;
  direct.seed = 9;
  AnnealResult reference = anneal_assign(ctx, direct);
  EXPECT_EQ(via_registry.assignment, reference.assignment);
  EXPECT_EQ(via_registry.scalar, reference.scalar);
  EXPECT_EQ(via_registry.evaluations, reference.evaluations);
}

TEST(Anneal, RunsThroughThePipelineByStrategyName) {
  core::PipelineConfig config;
  config.strategy = "anneal";
  config.platform = testing::small_platform();
  config.search.anneal_iterations = 300;
  core::Pipeline pipeline(config);
  core::PipelineResult run = pipeline.run(testing::blocked_reuse_program());
  EXPECT_EQ(run.strategy, "anneal");
  EXPECT_GT(run.search.evaluations, 0);
  EXPECT_TRUE(run.points.mhla.feasible);
}

TEST(Anneal, SweepIsBitIdenticalAcrossThreadCounts) {
  xplore::SweepConfig config;
  config.l1_sizes = {256, 1024, 4096};
  config.l2_sizes = {0, 8192};
  config.pipeline.strategy = "anneal";
  config.pipeline.search.anneal_iterations = 400;

  config.pipeline.num_threads = 1;
  auto serial = xplore::sweep_layer_sizes(testing::blocked_reuse_program(), config);
  ASSERT_EQ(serial.size(), 6u);

  config.pipeline.num_threads = 4;
  auto parallel = xplore::sweep_layer_sizes(testing::blocked_reuse_program(), config);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].point.cycles, serial[i].point.cycles);
    EXPECT_EQ(parallel[i].point.energy_nj, serial[i].point.energy_nj);
    EXPECT_EQ(parallel[i].assignment, serial[i].assignment);
  }
}

}  // namespace
}  // namespace mhla::assign
