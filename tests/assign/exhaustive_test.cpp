#include "assign/exhaustive.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::assign {
namespace {

using ir::av;
using testing::make_ws;

/// Minimal program: one array, one loop, few candidates — exhaustively
/// searchable.
ir::Program micro_program() {
  ir::ProgramBuilder pb("micro");
  pb.array("a", {16}, 4).input();
  pb.begin_loop("r", 0, 8);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  pb.end_loop();
  return pb.finish();
}

TEST(Exhaustive, FindsAtLeastAsGoodAsGreedy) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = make_ws(micro_program(), platform);
  auto ctx = ws->context();

  ExhaustiveResult oracle = exhaustive_assign(ctx);
  GreedyResult greedy = greedy_assign(ctx);
  EXPECT_LE(oracle.scalar, greedy.final_scalar + 1e-9);
  EXPECT_GT(oracle.states_explored, 0);
  EXPECT_FALSE(oracle.exhausted_budget);
}

TEST(Exhaustive, BestIsFeasibleAndValid) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = make_ws(micro_program(), platform);
  auto ctx = ws->context();
  ExhaustiveResult oracle = exhaustive_assign(ctx);
  EXPECT_TRUE(fits(ctx, oracle.assignment));
  EXPECT_TRUE(layering_valid(ctx, oracle.assignment));
}

TEST(Exhaustive, BeatsBaselineOnReuseProgram) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = make_ws(micro_program(), platform);
  auto ctx = ws->context();
  ExhaustiveResult oracle = exhaustive_assign(ctx);
  Objective obj = make_objective(ctx, 1.0, 1.0);
  EXPECT_LT(oracle.scalar, obj.scalar(estimate_cost(ctx, out_of_box(ctx))));
}

TEST(Exhaustive, ThrowsOnLargeInstance) {
  // wavelet: 54 candidates x 2 on-chip layers = 108 placements, over the
  // engine guard (64) and far over the reference guard (24).
  auto ws = make_ws(mhla::apps::build_wavelet());
  auto ctx = ws->context();
  EXPECT_THROW(exhaustive_assign(ctx), std::invalid_argument);
  ExhaustiveOptions reference;
  reference.use_cost_engine = false;
  EXPECT_THROW(exhaustive_assign(ctx, reference), std::invalid_argument);
}

TEST(Exhaustive, ReferenceGuardStillRejectsMediumInstance) {
  // motion_estimation (46 placements) is too big for the un-pruned
  // reference enumeration but within the branch-and-bound guard.
  auto ws = make_ws(mhla::apps::build_motion_estimation());
  auto ctx = ws->context();
  ExhaustiveOptions reference;
  reference.use_cost_engine = false;
  EXPECT_THROW(exhaustive_assign(ctx, reference), std::invalid_argument);
}

TEST(Exhaustive, BranchAndBoundAcceptsMediumInstance) {
  // The raised guard admits motion_estimation; a small state budget keeps
  // the test fast while proving the search runs and returns a valid result.
  auto ws = make_ws(mhla::apps::build_motion_estimation());
  auto ctx = ws->context();
  ExhaustiveOptions options;
  options.max_states = 20000;
  ExhaustiveResult result = exhaustive_assign(ctx, options);
  EXPECT_GT(result.states_explored, 0);
  EXPECT_TRUE(fits(ctx, result.assignment));
  EXPECT_TRUE(layering_valid(ctx, result.assignment));
  GreedyResult greedy = greedy_assign(ctx);
  if (!result.exhausted_budget) {
    EXPECT_LE(result.scalar, greedy.final_scalar + 1e-9);
  }
}

TEST(Exhaustive, EngineMatchesReferenceEnumeration) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = make_ws(micro_program(), platform);
  auto ctx = ws->context();
  ExhaustiveOptions engine_options;
  ExhaustiveOptions reference_options;
  reference_options.use_cost_engine = false;
  ExhaustiveResult pruned = exhaustive_assign(ctx, engine_options);
  ExhaustiveResult reference = exhaustive_assign(ctx, reference_options);
  EXPECT_EQ(pruned.assignment, reference.assignment);
  EXPECT_EQ(pruned.scalar, reference.scalar);  // bit-identical
  EXPECT_LE(pruned.states_explored, reference.states_explored);

  // Without branch-and-bound the engine mirrors the reference DFS exactly,
  // state for state.
  ExhaustiveOptions mirror_options;
  mirror_options.use_branch_and_bound = false;
  ExhaustiveResult mirror = exhaustive_assign(ctx, mirror_options);
  EXPECT_EQ(mirror.assignment, reference.assignment);
  EXPECT_EQ(mirror.scalar, reference.scalar);
  EXPECT_EQ(mirror.states_explored, reference.states_explored);
}

TEST(Exhaustive, StateBudgetIsHonored) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  auto ws = make_ws(micro_program(), platform);
  auto ctx = ws->context();
  ExhaustiveOptions options;
  options.max_states = 2;
  // With the greedy incumbent seed the whole search can legitimately finish
  // inside two states; unseeded it cannot, which is what this test needs.
  options.seed_incumbent = false;
  ExhaustiveResult result = exhaustive_assign(ctx, options);
  EXPECT_TRUE(result.exhausted_budget);
  EXPECT_LE(result.states_explored, 3);
}

}  // namespace
}  // namespace mhla::assign
