#include "assign/footprint_tracker.h"

#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "assign/cost_engine.h"
#include "assign/greedy.h"
#include "gen/random_program.h"
#include "helpers.h"
#include "te/block_transfer.h"
#include "te/extension.h"

namespace mhla::assign {
namespace {

using testing::make_ws;

/// Mirror state the property test maintains alongside the tracker: the
/// tracker must stay bit-identical to `compute_footprints` of this state.
struct Mirror {
  Assignment assignment;
  std::vector<CopyExtension> extensions;
};

void expect_tracker_matches_scratch(const AssignContext& ctx, const FootprintTracker& tracker,
                                    const Mirror& mirror) {
  FootprintReport scratch = compute_footprints(ctx, mirror.assignment, mirror.extensions);
  FootprintReport incremental = tracker.report();
  EXPECT_EQ(incremental.usage, scratch.usage);
  EXPECT_EQ(incremental.peak_bytes, scratch.peak_bytes);
  EXPECT_EQ(incremental.feasible, scratch.feasible);
  EXPECT_EQ(tracker.feasible(), fits(ctx, mirror.assignment, mirror.extensions));
  for (int l = 0; l < ctx.hierarchy.num_layers(); ++l) {
    EXPECT_EQ(tracker.peak(l), scratch.peak_bytes[static_cast<std::size_t>(l)]) << "layer " << l;
  }
}

TEST(FootprintTracker, MatchesScratchOnFixtures) {
  for (auto builder : {testing::tiny_stream_program, testing::producer_consumer_program,
                       testing::blocked_reuse_program}) {
    auto ws = make_ws(builder());
    auto ctx = ws->context();
    FootprintTracker tracker(ctx);
    Mirror mirror{out_of_box(ctx), {}};
    expect_tracker_matches_scratch(ctx, tracker, mirror);

    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      tracker.place_copy(cc.id, 0);
      mirror.assignment.copies.push_back({cc.id, 0});
      expect_tracker_matches_scratch(ctx, tracker, mirror);
    }
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      tracker.remove_copy(cc.id);
      std::erase_if(mirror.assignment.copies,
                    [&](const PlacedCopy& pc) { return pc.cc_id == cc.id; });
      expect_tracker_matches_scratch(ctx, tracker, mirror);
    }
  }
}

TEST(FootprintTracker, ExtensionDeltasMatchScratch) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  ASSERT_FALSE(ctx.reuse.candidates().empty());
  const analysis::CopyCandidate& cc = ctx.reuse.candidates().front();

  FootprintTracker tracker(ctx);
  Mirror mirror{out_of_box(ctx), {}};
  tracker.place_copy(cc.id, 0);
  mirror.assignment.copies.push_back({cc.id, 0});

  // Grow buffers, then pull the start earlier, then shrink back — each step
  // replaces the copy's extension entry outright.
  for (auto [start, buffers] : {std::pair{-1, 2}, std::pair{0, 2}, std::pair{-1, 0}}) {
    tracker.extend_copy(cc.id, start, buffers);
    std::erase_if(mirror.extensions,
                  [&](const CopyExtension& e) { return e.cc_id == cc.id; });
    mirror.extensions.push_back({cc.id, start, buffers});
    expect_tracker_matches_scratch(ctx, tracker, mirror);
  }

  // Removing the copy drops its extension footprint with it.
  tracker.remove_copy(cc.id);
  mirror.assignment.copies.clear();
  mirror.extensions.clear();
  expect_tracker_matches_scratch(ctx, tracker, mirror);
}

/// Property test: over random programs, a random place/remove/migrate/
/// extend/undo sequence keeps the tracker bit-identical to a from-scratch
/// compute_footprints of the mirrored state at every step.
TEST(FootprintTracker, PropertyRandomMoveUndoSequences) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    ir::Program program = gen::random_program(seed);
    mem::PlatformConfig platform = testing::small_platform();
    if (seed % 3 == 0) platform.l2_bytes = 0;  // single on-chip layer
    if (seed % 4 == 0) platform.l1_bytes = 128;  // tight: overflow paths matter
    auto ws = make_ws(std::move(program), platform);
    auto ctx = ws->context();
    FootprintTracker tracker(ctx);
    Mirror mirror{out_of_box(ctx), {}};
    expect_tracker_matches_scratch(ctx, tracker, mirror);

    std::mt19937 rng(seed * 1303);
    auto pick = [&](int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); };
    int num_layers = ctx.hierarchy.num_layers();
    const auto& candidates = ctx.reuse.candidates();
    const auto& arrays = ctx.program.arrays();

    std::vector<std::pair<FootprintTracker::Checkpoint, Mirror>> marks;

    for (int step = 0; step < 80; ++step) {
      int action = pick(0, 5);
      if (action == 0 && !candidates.empty()) {
        int cc = pick(0, static_cast<int>(candidates.size()) - 1);
        if (tracker.copy_layer(cc) < 0) {
          int layer = pick(0, num_layers - 1);
          tracker.place_copy(cc, layer);
          mirror.assignment.copies.push_back({cc, layer});
        }
      } else if (action == 1 && !mirror.assignment.copies.empty()) {
        int cc = mirror.assignment.copies[static_cast<std::size_t>(pick(
                                              0,
                                              static_cast<int>(mirror.assignment.copies.size()) -
                                                  1))]
                     .cc_id;
        tracker.remove_copy(cc);
        std::erase_if(mirror.assignment.copies,
                      [&](const PlacedCopy& pc) { return pc.cc_id == cc; });
        std::erase_if(mirror.extensions, [&](const CopyExtension& e) { return e.cc_id == cc; });
      } else if (action == 2 && !arrays.empty()) {
        const auto& array =
            arrays[static_cast<std::size_t>(pick(0, static_cast<int>(arrays.size()) - 1))];
        int layer = pick(0, num_layers - 1);
        tracker.set_home(array.name, layer);
        mirror.assignment.array_layer[array.name] = layer;
      } else if (action == 3 && !mirror.assignment.copies.empty()) {
        const PlacedCopy& pc = mirror.assignment.copies[static_cast<std::size_t>(
            pick(0, static_cast<int>(mirror.assignment.copies.size()) - 1))];
        int nest = ctx.reuse.candidate(pc.cc_id).nest;
        int start = pick(-1, nest);  // -1 = own nest only
        int buffers = pick(0, 3);
        tracker.extend_copy(pc.cc_id, start, buffers);
        std::erase_if(mirror.extensions,
                      [&](const CopyExtension& e) { return e.cc_id == pc.cc_id; });
        mirror.extensions.push_back({pc.cc_id, start, buffers});
      } else if (action == 4) {
        marks.emplace_back(tracker.checkpoint(), mirror);
      } else if (action == 5 && !marks.empty()) {
        auto [mark, snapshot] = marks.back();
        marks.pop_back();
        tracker.undo_to(mark);
        mirror = std::move(snapshot);
      }
      expect_tracker_matches_scratch(ctx, tracker, mirror);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
  }
}

/// The engine keeps its composed tracker in lockstep with every move and
/// undo: `engine.fits()` must equal a from-scratch `fits()` of the live
/// assignment at every step of a random engine move sequence.
TEST(FootprintTracker, EngineCompositionStaysInLockstep) {
  bool saw_infeasible = false;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    mem::PlatformConfig platform = testing::small_platform();
    if (seed % 2 == 0) platform.l1_bytes = 256;  // tight enough to go infeasible
    auto ws = make_ws(gen::random_program(seed), platform);
    auto ctx = ws->context();
    CostEngine engine(ctx);

    std::mt19937 rng(seed * 31);
    auto pick = [&](int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); };
    int num_layers = ctx.hierarchy.num_layers();
    const auto& candidates = ctx.reuse.candidates();
    const auto& arrays = ctx.program.arrays();
    std::vector<CostEngine::Checkpoint> marks;

    for (int step = 0; step < 60; ++step) {
      int action = pick(0, 4);
      if (action == 0 && !candidates.empty()) {
        int cc = pick(0, static_cast<int>(candidates.size()) - 1);
        if (!engine.has_copy(cc)) engine.select_copy(cc, pick(0, num_layers - 1));
      } else if (action == 1 && !engine.assignment().copies.empty()) {
        const auto& copies = engine.assignment().copies;
        engine.remove_copy(
            copies[static_cast<std::size_t>(pick(0, static_cast<int>(copies.size()) - 1))].cc_id);
      } else if (action == 2 && !arrays.empty()) {
        const auto& array =
            arrays[static_cast<std::size_t>(pick(0, static_cast<int>(arrays.size()) - 1))];
        engine.migrate_array(array.name, pick(0, num_layers - 1));
      } else if (action == 3) {
        marks.push_back(engine.checkpoint());
      } else if (action == 4 && !marks.empty()) {
        engine.undo_to(marks.back());
        marks.pop_back();
      }
      bool scratch = fits(ctx, engine.assignment());
      EXPECT_EQ(engine.fits(), scratch) << "seed " << seed << " step " << step;
      saw_infeasible = saw_infeasible || !scratch;
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
  }
  // The tight-platform seeds must actually exercise the infeasible side
  // somewhere, or the equivalence check has gone vacuous.
  EXPECT_TRUE(saw_infeasible);
}

/// Tracker-backed TE must reproduce the reference (clone + from-scratch
/// fits) path bit for bit: same per-BT decisions, same extension vector.
TEST(FootprintTracker, TimeExtendEquivalenceOnRandomPrograms) {
  int extended = 0;
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    mem::PlatformConfig platform = testing::small_platform();
    auto ws = make_ws(gen::random_program(seed), platform);
    auto ctx = ws->context();
    ASSERT_TRUE(ctx.dma.present);

    // TE extends the copies of a realistic assignment: take greedy's.
    GreedyResult greedy = greedy_assign(ctx);
    std::vector<te::BlockTransfer> bts = te::collect_block_transfers(ctx, greedy.assignment);

    te::TeOptions with_tracker;
    te::TeOptions reference;
    reference.use_footprint_tracker = false;
    te::TeResult fast = te::time_extend(ctx, greedy.assignment, bts, with_tracker);
    te::TeResult slow = te::time_extend(ctx, greedy.assignment, bts, reference);

    ASSERT_EQ(fast.extensions.size(), slow.extensions.size()) << "seed " << seed;
    for (std::size_t i = 0; i < fast.extensions.size(); ++i) {
      EXPECT_EQ(fast.extensions[i].extra_buffers, slow.extensions[i].extra_buffers);
      EXPECT_EQ(fast.extensions[i].start_nest, slow.extensions[i].start_nest);
      EXPECT_EQ(fast.extensions[i].hidden_cycles, slow.extensions[i].hidden_cycles);
      EXPECT_EQ(fast.extensions[i].fully_hidden, slow.extensions[i].fully_hidden);
      EXPECT_EQ(fast.extensions[i].dma_priority, slow.extensions[i].dma_priority);
    }
    EXPECT_EQ(fast.total_hidden_cycles, slow.total_hidden_cycles) << "seed " << seed;
    ASSERT_EQ(fast.footprint_extensions.size(), slow.footprint_extensions.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < fast.footprint_extensions.size(); ++i) {
      EXPECT_EQ(fast.footprint_extensions[i].cc_id, slow.footprint_extensions[i].cc_id);
      EXPECT_EQ(fast.footprint_extensions[i].start_nest, slow.footprint_extensions[i].start_nest);
      EXPECT_EQ(fast.footprint_extensions[i].extra_buffers,
                slow.footprint_extensions[i].extra_buffers);
    }
    extended += static_cast<int>(fast.footprint_extensions.size());
  }
  EXPECT_GT(extended, 0) << "no random instance produced an extension; corpus gone vacuous";
}

/// The sweep's infeasible-cell skip leans on this probe: it must fire
/// exactly when no on-chip layer can hold the cheapest placeable object.
TEST(FootprintTracker, OutOfBoxProbe) {
  auto full_ws = make_ws(testing::blocked_reuse_program());
  i64 min_placeable = FootprintTracker(full_ws->context()).min_placeable_bytes();
  ASSERT_GT(min_placeable, 0);

  mem::PlatformConfig tiny;
  tiny.l1_bytes = min_placeable - 1;
  tiny.l2_bytes = 0;
  auto tiny_ws = make_ws(testing::blocked_reuse_program(), tiny);
  EXPECT_TRUE(FootprintTracker(tiny_ws->context()).provably_out_of_box());

  mem::PlatformConfig fits_one;
  fits_one.l1_bytes = min_placeable;
  fits_one.l2_bytes = 0;
  auto fits_ws = make_ws(testing::blocked_reuse_program(), fits_one);
  EXPECT_FALSE(FootprintTracker(fits_ws->context()).provably_out_of_box());
}

}  // namespace
}  // namespace mhla::assign
