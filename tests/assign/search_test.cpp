#include "assign/search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "helpers.h"

namespace mhla::assign {
namespace {

using ir::av;
using testing::make_ws;

/// Small single-array program every registered strategy (including the
/// reference enumeration with its 24-placement guard) accepts.
ir::Program micro_program() {
  ir::ProgramBuilder pb("micro");
  pb.array("a", {16}, 4).input();
  pb.begin_loop("r", 0, 8);
  pb.begin_loop("i", 0, 16);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  pb.end_loop();
  return pb.finish();
}

mem::PlatformConfig micro_platform() {
  mem::PlatformConfig platform;
  platform.l1_bytes = 256;
  platform.l2_bytes = 0;
  return platform;
}

TEST(Search, TargetWeightsMappingIsCanonical) {
  EXPECT_EQ(target_weights(Target::Energy), std::make_pair(1.0, 0.0));
  EXPECT_EQ(target_weights(Target::Time), std::make_pair(0.0, 1.0));
  EXPECT_EQ(target_weights(Target::Balanced), std::make_pair(1.0, 1.0));

  SearchOptions options;
  options.set_target(Target::Energy);
  EXPECT_EQ(options.energy_weight, 1.0);
  EXPECT_EQ(options.time_weight, 0.0);
}

TEST(Search, TargetNamesRoundTrip) {
  for (Target t : {Target::Energy, Target::Time, Target::Balanced}) {
    EXPECT_EQ(parse_target(to_string(t)), t);
  }
  EXPECT_THROW(parse_target("speed"), std::invalid_argument);
}

TEST(Search, MhlaStep1MatchesRegistryGreedyWithTargetWeights) {
  // The old shim and the new API must share the one Target -> weights
  // mapping: identical moves, evaluations, and result bits.
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  for (Target target : {Target::Energy, Target::Time, Target::Balanced}) {
    Step1Options step1;
    step1.target = target;
    GreedyResult old_api = mhla_step1(ctx, step1);

    SearchOptions options;
    options.set_target(target);
    SearchResult new_api = searcher("greedy").search(ctx, options);

    EXPECT_EQ(new_api.assignment, old_api.assignment);
    EXPECT_EQ(new_api.scalar, old_api.final_scalar);
    EXPECT_EQ(new_api.evaluations, old_api.evaluations);
    EXPECT_EQ(new_api.moves.size(), old_api.moves.size());
  }
}

TEST(Search, AllRegisteredStrategiesRunOnAMicroInstance) {
  auto ws = make_ws(micro_program(), micro_platform());
  auto ctx = ws->context();
  std::vector<std::string> names = searcher_names();
  ASSERT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    const Searcher& strategy = searcher(name);
    EXPECT_EQ(strategy.name(), name);
    EXPECT_FALSE(strategy.description().empty());
    SearchResult result = strategy.search(ctx, {});
    EXPECT_TRUE(fits(ctx, result.assignment)) << name;
    EXPECT_TRUE(layering_valid(ctx, result.assignment)) << name;
    EXPECT_GT(result.scalar, 0.0) << name;
  }
}

TEST(Search, ExhaustiveVariantsAgreeOnTheOptimum) {
  auto ws = make_ws(micro_program(), micro_platform());
  auto ctx = ws->context();
  SearchResult reference = searcher("exhaustive-ref").search(ctx, {});
  SearchResult bnb = searcher("bnb").search(ctx, {});
  SearchResult bnb_par = searcher("bnb-par").search(ctx, {});
  EXPECT_EQ(bnb.scalar, reference.scalar);
  EXPECT_EQ(bnb.assignment, reference.assignment);
  EXPECT_EQ(bnb_par.scalar, bnb.scalar);
  EXPECT_EQ(bnb_par.assignment, bnb.assignment);
  EXPECT_GT(reference.states_explored, 0);
  // The bound must have cut states, never added them.
  EXPECT_LE(bnb.states_explored, reference.states_explored);
}

TEST(Search, GreedyRefForcesTheReferencePath) {
  // Whatever the toggle says, "greedy-ref" runs from scratch and must match
  // the engine-backed "greedy" bit for bit (the engine contract).
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  SearchOptions engine_on;  // defaults: use_cost_engine = true
  SearchResult ref = searcher("greedy-ref").search(ctx, engine_on);
  SearchResult fast = searcher("greedy").search(ctx, engine_on);
  EXPECT_EQ(ref.assignment, fast.assignment);
  EXPECT_EQ(ref.scalar, fast.scalar);
  EXPECT_EQ(ref.evaluations, fast.evaluations);
}

TEST(Search, UnknownNameThrowsListingTheRegistry) {
  // "bnb-par" must be a registered built-in, and the error menu must name
  // every registered strategy, it included.
  std::vector<std::string> names = searcher_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "bnb-par"), names.end());
  try {
    searcher("tabu");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("tabu"), std::string::npos);
    for (const std::string& name : names) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(Search, CustomStrategyCanBeRegistered) {
  class Fixed final : public Searcher {
   public:
    std::string name() const override { return "test-fixed"; }
    std::string description() const override { return "out-of-box, for the registry test"; }
    SearchResult search(const AssignContext& ctx, const SearchOptions& options) const override {
      SearchResult result;
      result.assignment = out_of_box(ctx);
      Objective objective =
          make_objective(ctx, options.energy_weight, options.time_weight);
      result.scalar = objective.scalar(estimate_cost(ctx, result.assignment));
      result.evaluations = 1;
      return result;
    }
  };
  register_searcher(std::make_unique<Fixed>());
  auto ws = make_ws(micro_program(), micro_platform());
  auto ctx = ws->context();
  SearchResult result = searcher("test-fixed").search(ctx, {});
  EXPECT_TRUE(result.assignment.copies.empty());
  EXPECT_GT(result.scalar, 0.0);
  std::vector<std::string> names = searcher_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-fixed"), names.end());
}

}  // namespace
}  // namespace mhla::assign
