#include "assign/cost_engine.h"

#include <gtest/gtest.h>

#include <random>

#include "assign/exhaustive.h"
#include "assign/greedy.h"
#include "helpers.h"
#include "gen/random_program.h"

namespace mhla::assign {
namespace {

using testing::make_ws;

/// Exact (bitwise) agreement between the engine's evaluation of its live
/// assignment and a from-scratch estimate_cost of the same assignment.
void expect_engine_matches_scratch(const AssignContext& ctx, const CostEngine& engine) {
  CostEstimate scratch = estimate_cost(ctx, engine.assignment());
  CostEstimate incremental = engine.cost();
  EXPECT_EQ(incremental.energy_nj, scratch.energy_nj);
  EXPECT_EQ(incremental.compute_cycles, scratch.compute_cycles);
  EXPECT_EQ(incremental.access_cycles, scratch.access_cycles);
  EXPECT_EQ(incremental.transfer_cycles, scratch.transfer_cycles);
  EXPECT_EQ(incremental.layer_reads, scratch.layer_reads);
  EXPECT_EQ(incremental.layer_writes, scratch.layer_writes);

  Objective objective = make_objective(ctx, 1.0, 1.0);
  EXPECT_EQ(engine.scalar(objective), objective.scalar(scratch));

  // The maintained resolution must equal a fresh resolve.
  Resolution res = resolve(ctx, engine.assignment());
  for (std::size_t s = 0; s < ctx.sites.size(); ++s) {
    EXPECT_EQ(engine.serving_layer(s), res.site_layer[s]) << "site " << s;
  }
  EXPECT_EQ(engine.layering_valid(), layering_valid(ctx, engine.assignment()));
}

TEST(CostEngine, MatchesScratchOnFixtures) {
  for (auto builder : {testing::tiny_stream_program, testing::producer_consumer_program,
                       testing::blocked_reuse_program}) {
    auto ws = make_ws(builder());
    auto ctx = ws->context();
    CostEngine engine(ctx);
    expect_engine_matches_scratch(ctx, engine);

    // Select every candidate on L1 one by one, checking after each delta.
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      engine.select_copy(cc.id, 0);
      expect_engine_matches_scratch(ctx, engine);
    }
    for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
      engine.remove_copy(cc.id);
      expect_engine_matches_scratch(ctx, engine);
    }
  }
}

TEST(CostEngine, MigrateMatchesDropInvalidCopies) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  CostEngine engine(ctx);
  // Select a copy of "data" on L2 (layer 1), then migrate "data" onto L2:
  // the copy becomes layering-invalid and must be dropped, exactly like the
  // from-scratch compound move.
  int cc_id = -1;
  for (const analysis::CopyCandidate& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 0) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  engine.select_copy(cc_id, 1);

  Assignment expected = engine.assignment();
  expected.array_layer["data"] = 1;
  drop_invalid_copies(ctx, expected);

  int dropped = engine.migrate_array("data", 1);
  EXPECT_GE(dropped, 1);
  EXPECT_EQ(engine.assignment(), expected);
  expect_engine_matches_scratch(ctx, engine);
}

/// Property test: over random programs, a random apply/undo sequence keeps
/// the engine bit-identical to the from-scratch evaluation at every step.
TEST(CostEngine, PropertyRandomApplyUndoSequences) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    ir::Program program = gen::random_program(seed);
    mem::PlatformConfig platform = testing::small_platform();
    if (seed % 3 == 0) platform.l2_bytes = 0;  // single on-chip layer
    auto ws = make_ws(std::move(program), platform);
    auto ctx = ws->context();
    CostEngine engine(ctx);
    expect_engine_matches_scratch(ctx, engine);

    std::mt19937 rng(seed * 977);
    auto pick = [&](int lo, int hi) {
      return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    int num_layers = ctx.hierarchy.num_layers();
    const auto& candidates = ctx.reuse.candidates();
    const auto& arrays = ctx.program.arrays();

    // Checkpoint/snapshot pairs for undo verification.
    std::vector<std::pair<CostEngine::Checkpoint, Assignment>> marks;

    for (int step = 0; step < 60; ++step) {
      int action = pick(0, 4);
      if (action == 0 && !candidates.empty()) {
        int cc = pick(0, static_cast<int>(candidates.size()) - 1);
        if (!engine.has_copy(cc)) {
          engine.select_copy(cc, pick(0, num_layers - 1));
        }
      } else if (action == 1 && !engine.assignment().copies.empty()) {
        const auto& copies = engine.assignment().copies;
        engine.remove_copy(copies[static_cast<std::size_t>(
                                      pick(0, static_cast<int>(copies.size()) - 1))]
                               .cc_id);
      } else if (action == 2 && !arrays.empty()) {
        const auto& array = arrays[static_cast<std::size_t>(
            pick(0, static_cast<int>(arrays.size()) - 1))];
        engine.migrate_array(array.name, pick(0, num_layers - 1));
      } else if (action == 3) {
        marks.emplace_back(engine.checkpoint(), engine.assignment());
      } else if (action == 4 && !marks.empty()) {
        auto [mark, snapshot] = marks.back();
        marks.pop_back();
        engine.undo_to(mark);
        EXPECT_EQ(engine.assignment(), snapshot) << "seed " << seed << " step " << step;
      }
      expect_engine_matches_scratch(ctx, engine);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
  }
}

/// Greedy with the engine must make the exact decisions of the reference
/// from-scratch greedy: same moves, same evaluations, same result bits.
TEST(CostEngine, GreedyEquivalenceOnRandomPrograms) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    auto ws = make_ws(gen::random_program(seed));
    auto ctx = ws->context();
    GreedyOptions with_engine;
    GreedyOptions reference;
    reference.use_cost_engine = false;
    GreedyResult fast = greedy_assign(ctx, with_engine);
    GreedyResult slow = greedy_assign(ctx, reference);
    EXPECT_EQ(fast.assignment, slow.assignment) << "seed " << seed;
    EXPECT_EQ(fast.final_scalar, slow.final_scalar) << "seed " << seed;
    EXPECT_EQ(fast.evaluations, slow.evaluations) << "seed " << seed;
    ASSERT_EQ(fast.moves.size(), slow.moves.size()) << "seed " << seed;
    for (std::size_t i = 0; i < fast.moves.size(); ++i) {
      EXPECT_EQ(static_cast<int>(fast.moves[i].kind), static_cast<int>(slow.moves[i].kind));
      EXPECT_EQ(fast.moves[i].cc_id, slow.moves[i].cc_id);
      EXPECT_EQ(fast.moves[i].array, slow.moves[i].array);
      EXPECT_EQ(fast.moves[i].layer, slow.moves[i].layer);
      EXPECT_EQ(fast.moves[i].gain, slow.moves[i].gain);
    }
  }
}

/// Branch-and-bound must return the same optimum as the un-pruned reference
/// enumeration whenever the instance is small enough for both.
TEST(CostEngine, ExhaustiveEquivalenceOnRandomPrograms) {
  int checked = 0;
  for (std::uint32_t seed = 1; seed <= 20 && checked < 5; ++seed) {
    gen::RandomProgramConfig config;
    config.max_nests = 2;
    config.max_depth = 2;
    config.max_arrays = 2;
    auto ws = make_ws(gen::random_program(seed, config));
    auto ctx = ws->context();
    std::size_t placements = ctx.reuse.candidates().size() *
                             static_cast<std::size_t>(ctx.hierarchy.background());
    if (placements > kReferencePlacementGuard) continue;
    ExhaustiveOptions engine_options;
    ExhaustiveOptions reference_options;
    reference_options.use_cost_engine = false;
    ExhaustiveOptions mirror_options;
    mirror_options.use_branch_and_bound = false;
    ExhaustiveResult pruned = exhaustive_assign(ctx, engine_options);
    ExhaustiveResult reference = exhaustive_assign(ctx, reference_options);
    if (pruned.exhausted_budget || reference.exhausted_budget) continue;
    EXPECT_EQ(pruned.assignment, reference.assignment) << "seed " << seed;
    EXPECT_EQ(pruned.scalar, reference.scalar) << "seed " << seed;
    EXPECT_LE(pruned.states_explored, reference.states_explored) << "seed " << seed;
    ExhaustiveResult mirror = exhaustive_assign(ctx, mirror_options);
    EXPECT_EQ(mirror.assignment, reference.assignment) << "seed " << seed;
    EXPECT_EQ(mirror.scalar, reference.scalar) << "seed " << seed;
    EXPECT_EQ(mirror.states_explored, reference.states_explored) << "seed " << seed;
    ++checked;
  }
  EXPECT_GT(checked, 0) << "no random instance was small enough to cross-check";
}

}  // namespace
}  // namespace mhla::assign
