#include "assign/cost.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla::assign {
namespace {

using ir::av;
using testing::make_ws;

/// Ten reads of a small array plus op cycles: every term checkable by hand.
ir::Program ten_read_program() {
  ir::ProgramBuilder pb("ten");
  pb.array("big", {10}, 4).input();
  pb.begin_loop("i", 0, 10);
  pb.stmt("s", 2).read("big", {av("i")});
  pb.end_loop();
  return pb.finish();
}

TEST(Cost, OutOfBoxBaselineByHand) {
  auto ws = make_ws(ten_read_program());
  auto ctx = ws->context();
  CostEstimate cost = estimate_cost(ctx, out_of_box(ctx));
  const mem::MemLayer& sdram = ctx.hierarchy.layer(ctx.hierarchy.background());

  EXPECT_DOUBLE_EQ(cost.compute_cycles, 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(cost.access_cycles, 10.0 * sdram.read_latency);
  EXPECT_DOUBLE_EQ(cost.transfer_cycles, 0.0);
  EXPECT_DOUBLE_EQ(cost.energy_nj, 10.0 * sdram.read_energy_nj);
  EXPECT_EQ(cost.layer_reads[static_cast<std::size_t>(ctx.hierarchy.background())], 10);
}

TEST(Cost, CopySplitsTrafficAcrossLayers) {
  auto ws = make_ws(ten_read_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "big" && cc.level == 0) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.copies.push_back({cc_id, 0});
  CostEstimate cost = estimate_cost(ctx, a);

  const mem::MemLayer& l1 = ctx.hierarchy.layer(0);
  const mem::MemLayer& sdram = ctx.hierarchy.layer(ctx.hierarchy.background());

  // Processor: 10 reads from L1.  Copy: 10 reads SDRAM + 10 writes L1.
  double expected_energy = 10.0 * l1.read_energy_nj +
                           10.0 * (sdram.read_energy_nj + l1.write_energy_nj);
  EXPECT_DOUBLE_EQ(cost.energy_nj, expected_energy);
  EXPECT_DOUBLE_EQ(cost.access_cycles, 10.0 * l1.read_latency);

  double expected_transfer =
      mem::blocking_transfer_cycles(40, sdram, l1, ctx.dma);
  EXPECT_DOUBLE_EQ(cost.transfer_cycles, expected_transfer);
}

TEST(Cost, WriteOnlyCopySkipsFillButFlushes) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();

  // Copy of "mid" in its producing nest (write-only: fill-free, flush only)
  // vs in its consuming nest (read-only: fill only, no flush).  Both move
  // the same bytes once, so their transfer cost must be identical — the
  // write-allocate-without-fetch refinement at work.
  int cc_dirty = -1;
  int cc_clean = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array != "mid" || cc.level != 0) continue;
    if (cc.nest == 0) cc_dirty = cc.id;
    if (cc.nest == 1) cc_clean = cc.id;
  }
  ASSERT_GE(cc_dirty, 0);
  ASSERT_GE(cc_clean, 0);
  EXPECT_TRUE(ctx.reuse.candidate(cc_dirty).fill_free);
  EXPECT_FALSE(ctx.reuse.candidate(cc_clean).fill_free);

  Assignment dirty = out_of_box(ctx);
  dirty.copies.push_back({cc_dirty, 0});
  Assignment clean = out_of_box(ctx);
  clean.copies.push_back({cc_clean, 0});

  CostEstimate dirty_cost = estimate_cost(ctx, dirty);
  CostEstimate clean_cost = estimate_cost(ctx, clean);
  EXPECT_DOUBLE_EQ(dirty_cost.transfer_cycles, clean_cost.transfer_cycles);
}

TEST(Cost, ObjectiveNormalizesAgainstBaseline) {
  auto ws = make_ws(ten_read_program());
  auto ctx = ws->context();
  Objective obj = make_objective(ctx, 1.0, 1.0);
  CostEstimate baseline = estimate_cost(ctx, out_of_box(ctx));
  EXPECT_DOUBLE_EQ(obj.scalar(baseline), 2.0);  // 1.0 energy + 1.0 time
}

TEST(Cost, ObjectiveWeightsSelectDimension) {
  auto ws = make_ws(ten_read_program());
  auto ctx = ws->context();
  CostEstimate baseline = estimate_cost(ctx, out_of_box(ctx));
  EXPECT_DOUBLE_EQ(make_objective(ctx, 1.0, 0.0).scalar(baseline), 1.0);
  EXPECT_DOUBLE_EQ(make_objective(ctx, 0.0, 1.0).scalar(baseline), 1.0);
  EXPECT_DOUBLE_EQ(make_objective(ctx, 2.0, 0.0).scalar(baseline), 2.0);
}

TEST(Cost, NestCpuCyclesSplitsByNest) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  std::vector<double> cycles = nest_cpu_cycles(ctx, out_of_box(ctx));
  ASSERT_EQ(cycles.size(), 2u);
  const mem::MemLayer& sdram = ctx.hierarchy.layer(ctx.hierarchy.background());
  // Each nest: 128 * (1 op + 2 accesses * latency).
  double expected = 128.0 * (1.0 + 2.0 * sdram.read_latency);
  EXPECT_DOUBLE_EQ(cycles[0], expected);
  EXPECT_DOUBLE_EQ(cycles[1], expected);
}

TEST(Cost, NestCpuCyclesExcludeTransferStalls) {
  auto ws = make_ws(ten_read_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "big" && cc.level == 0) a.copies.push_back({cc.id, 0});
  }
  std::vector<double> cycles = nest_cpu_cycles(ctx, a);
  // 10 ops * 2 + 10 L1 accesses * 1 = 30; no transfer term.
  EXPECT_DOUBLE_EQ(cycles[0], 30.0);
}

TEST(Cost, LoopIterationCycles) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  Assignment oob = out_of_box(ctx);

  const ir::LoopNode& bi = ws->program().top()[0]->as_loop();
  double per_bi = loop_iteration_cpu_cycles(ctx, oob, 0, &bi);
  const mem::MemLayer& sdram = ctx.hierarchy.layer(ctx.hierarchy.background());
  // One bi iteration: 10 reps * 64 reads * (1 op + latency) + save stmt.
  double expected = 10.0 * 64.0 * (1.0 + sdram.read_latency) + (1.0 + sdram.write_latency);
  EXPECT_DOUBLE_EQ(per_bi, expected);

  // Sum over all bi iterations == whole-nest cycles.
  std::vector<double> nests = nest_cpu_cycles(ctx, oob);
  EXPECT_DOUBLE_EQ(32.0 * per_bi, nests[0]);
}

TEST(Cost, LoopIterationCyclesZeroForForeignLoop) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  const ir::LoopNode& first = ws->program().top()[0]->as_loop();
  // Asking about nest 1 with a loop from nest 0: nothing matches.
  EXPECT_DOUBLE_EQ(loop_iteration_cpu_cycles(ctx, out_of_box(ctx), 1, &first), 0.0);
}

}  // namespace
}  // namespace mhla::assign
