#include "assign/assignment.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla::assign {
namespace {

using testing::blocked_reuse_program;
using testing::make_ws;

TEST(Assignment, OutOfBoxPutsEverythingInBackground) {
  auto ws = make_ws(blocked_reuse_program());
  Assignment a = out_of_box(ws->context());
  int background = ws->hierarchy().background();
  for (const ir::ArrayDecl& array : ws->program().arrays()) {
    EXPECT_EQ(a.layer_of(array.name, -1), background);
  }
  EXPECT_TRUE(a.copies.empty());
}

TEST(Assignment, CopyLayerLookup) {
  Assignment a;
  a.copies.push_back({3, 1});
  EXPECT_EQ(a.copy_layer(3), 1);
  EXPECT_EQ(a.copy_layer(7), -1);
  EXPECT_TRUE(a.has_copy(3));
  EXPECT_FALSE(a.has_copy(7));
}

TEST(Assignment, LayerOfFallback) {
  Assignment a;
  a.array_layer["x"] = 0;
  EXPECT_EQ(a.layer_of("x", 9), 0);
  EXPECT_EQ(a.layer_of("y", 9), 9);
}

TEST(Coverage, CcCoversItsMemberSites) {
  auto ws = make_ws(blocked_reuse_program());
  for (const analysis::CopyCandidate& cc : ws->reuse().candidates()) {
    for (int site_id : cc.site_ids) {
      EXPECT_TRUE(cc_covers_site(cc, ws->sites()[static_cast<std::size_t>(site_id)]))
          << "cc " << cc.id << " site " << site_id;
    }
  }
}

TEST(Coverage, CcDoesNotCoverOtherNests) {
  auto ws = make_ws(testing::producer_consumer_program());
  for (const analysis::CopyCandidate& cc : ws->reuse().candidates()) {
    for (const analysis::AccessSite& site : ws->sites()) {
      if (site.nest != cc.nest) {
        EXPECT_FALSE(cc_covers_site(cc, site));
      }
    }
  }
}

TEST(Ancestry, ChainIsOrderedByLevel) {
  auto ws = make_ws(blocked_reuse_program());
  const auto& ccs = ws->reuse().candidates();
  for (const auto& parent : ccs) {
    for (const auto& child : ccs) {
      if (cc_is_ancestor(parent, child)) {
        EXPECT_LT(parent.level, child.level);
        EXPECT_EQ(parent.array, child.array);
        EXPECT_EQ(parent.nest, child.nest);
        EXPECT_FALSE(cc_is_ancestor(child, parent));
      }
    }
  }
}

TEST(Resolve, NoCopiesServesFromHomeLayer) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  Resolution res = resolve(ctx, out_of_box(ctx));
  for (int layer : res.site_layer) EXPECT_EQ(layer, ctx.hierarchy.background());
  EXPECT_TRUE(res.transfers.empty());
}

TEST(Resolve, DeepestSelectedCopyWins) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();

  // Pick the level-0 and level-1 candidates of "data".
  int cc0 = -1;
  int cc1 = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array != "data") continue;
    if (cc.level == 0) cc0 = cc.id;
    if (cc.level == 1) cc1 = cc.id;
  }
  ASSERT_GE(cc0, 0);
  ASSERT_GE(cc1, 0);

  Assignment a = out_of_box(ctx);
  a.copies.push_back({cc0, 1});  // level 0 -> L2
  a.copies.push_back({cc1, 0});  // level 1 -> L1
  Resolution res = resolve(ctx, a);

  // The data read site must be served by the deeper (level-1) copy in L1.
  for (const analysis::AccessSite& site : ctx.sites) {
    if (site.access->array == "data") {
      EXPECT_EQ(res.site_layer[static_cast<std::size_t>(site.id)], 0);
    }
  }

  // Chain: level-1 fills from level-0 (L2), level-0 fills from SDRAM.
  for (const TransferEdge& edge : res.transfers) {
    if (edge.cc_id == cc1) {
      EXPECT_EQ(edge.src_layer, 1);
      EXPECT_EQ(edge.dst_layer, 0);
    }
    if (edge.cc_id == cc0) {
      EXPECT_EQ(edge.src_layer, ctx.hierarchy.background());
      EXPECT_EQ(edge.dst_layer, 1);
    }
  }
}

TEST(Resolve, WriteBackFlagFollowsWrites) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "mid" && cc.level == 0 && cc.nest == 0) {
      a.copies.push_back({cc.id, 0});
      break;
    }
  }
  ASSERT_EQ(a.copies.size(), 1u);
  Resolution res = resolve(ctx, a);
  ASSERT_EQ(res.transfers.size(), 1u);
  EXPECT_TRUE(res.transfers[0].write_back);  // mid is written in nest 0
}

TEST(Resolve, RejectsUnknownCcId) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.copies.push_back({99999, 0});
  EXPECT_THROW(resolve(ctx, a), std::invalid_argument);
}

TEST(Resolve, RejectsUnknownLayer) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.copies.push_back({0, 42});
  EXPECT_THROW(resolve(ctx, a), std::invalid_argument);
}

TEST(LayeringValid, CopyBelowParentIsValid) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.copies.push_back({0, 0});  // any cc into L1, array home is SDRAM
  EXPECT_TRUE(layering_valid(ctx, a));
}

TEST(LayeringValid, CopyAtParentLayerIsInvalid) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  Assignment a = out_of_box(ctx);
  a.copies.push_back({0, ctx.hierarchy.background()});  // copy on SDRAM itself
  EXPECT_FALSE(layering_valid(ctx, a));
}

TEST(LayeringValid, ArrayOnChipWithCopyAboveIsInvalid) {
  auto ws = make_ws(blocked_reuse_program());
  auto ctx = ws->context();
  // Home the array in L1, then try a copy in L2 (farther than home).
  Assignment a = out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.array_layer["data"] = 0;
  a.copies.push_back({cc_id, 1});
  EXPECT_FALSE(layering_valid(ctx, a));
}

}  // namespace
}  // namespace mhla::assign
