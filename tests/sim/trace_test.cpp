// The enumerative oracle itself, plus the properties it certifies about the
// analytic models: exact access counts match the site analysis, and the
// bounding-box footprints are sound (superset of the exact touch set).

#include "sim/trace.h"

#include <gtest/gtest.h>

#include "analysis/footprint.h"
#include "analysis/reuse.h"
#include "helpers.h"

namespace mhla::sim {
namespace {

using ir::ac;
using ir::av;

TEST(Trace, CountsTinyProgramExactly) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8, 8}, 4);
  pb.begin_loop("i", 0, 4);
  pb.begin_loop("j", 0, 4);
  pb.stmt("s", 1).read("a", {av("i"), av("j")}, 2);
  pb.end_loop();
  pb.end_loop();
  ExactCounts counts = enumerate_program(pb.finish());
  EXPECT_EQ(counts.statement_instances, 16);
  EXPECT_EQ(counts.dynamic_accesses, 32);
  EXPECT_EQ(counts.accesses_per_array["a"], 32);
  EXPECT_EQ(counts.distinct_elements["a"], 16);
  EXPECT_TRUE(counts.in_bounds);
  EXPECT_FALSE(counts.truncated);
}

TEST(Trace, DetectsOutOfBounds) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {4}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  ExactCounts counts = enumerate_program(pb.finish());
  EXPECT_FALSE(counts.in_bounds);
}

TEST(Trace, OverlappingWindowsDeduplicate) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {12}, 4);
  pb.begin_loop("i", 0, 10);
  pb.stmt("s", 1).read("a", {av("i")}).read("a", {av("i") + ac(2)});
  pb.end_loop();
  ExactCounts counts = enumerate_program(pb.finish());
  EXPECT_EQ(counts.accesses_per_array["a"], 20);
  EXPECT_EQ(counts.distinct_elements["a"], 12);  // 0..11, overlaps deduped
}

TEST(Trace, TruncationGuard) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {16}, 4);
  pb.begin_loop("i", 0, 1000);
  pb.begin_loop("j", 0, 1000);
  pb.stmt("s", 1).read("a", {ac(0)});
  pb.end_loop();
  pb.end_loop();
  ExactCounts counts = enumerate_program(pb.finish(), 1000);
  EXPECT_TRUE(counts.truncated);
  EXPECT_LE(counts.statement_instances, 1001);
}

TEST(Trace, StridedLoopsEvaluateExactly) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {32}, 4);
  pb.begin_loop("i", 4, 20, 4);  // 4, 8, 12, 16
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  ExactCounts counts = enumerate_program(pb.finish());
  EXPECT_EQ(counts.statement_instances, 4);
  EXPECT_EQ(counts.distinct_elements["a"], 4);
}

// ---- Properties the oracle certifies about the analytic models. ----

/// Small programs with diverse access shapes.
std::vector<ir::Program> property_corpus() {
  std::vector<ir::Program> corpus;
  {
    ir::ProgramBuilder pb("blocked");
    pb.array("d", {16, 32}, 4);
    pb.begin_loop("b", 0, 8);
    pb.begin_loop("r", 0, 3);
    pb.begin_loop("k", 0, 32);
    pb.stmt("s", 1).read("d", {av("b", 2), av("k")});
    pb.end_loop();
    pb.end_loop();
    pb.end_loop();
    corpus.push_back(pb.finish());
  }
  {
    ir::ProgramBuilder pb("window");
    pb.array("w", {40}, 2);
    pb.begin_loop("i", 0, 32);
    pb.begin_loop("k", 0, 5);
    pb.stmt("s", 1).read("w", {av("i") + av("k")});
    pb.end_loop();
    pb.end_loop();
    corpus.push_back(pb.finish());
  }
  {
    ir::ProgramBuilder pb("stencil");
    pb.array("img", {18, 18}, 1);
    pb.array("out", {18, 18}, 1);
    pb.begin_loop("y", 1, 17);
    pb.begin_loop("x", 1, 17);
    auto stmt = pb.stmt("s", 2);
    for (ir::i64 dy = -1; dy <= 1; ++dy) {
      for (ir::i64 dx = -1; dx <= 1; ++dx) {
        stmt.read("img", {av("y") + ac(dy), av("x") + ac(dx)});
      }
    }
    stmt.write("out", {av("y"), av("x")});
    pb.end_loop();
    pb.end_loop();
    corpus.push_back(pb.finish());
  }
  {
    ir::ProgramBuilder pb("strided");
    pb.array("v", {128}, 4);
    pb.begin_loop("i", 0, 16);
    pb.begin_loop("j", 0, 4);
    pb.stmt("s", 1).read("v", {av("i", 8) + av("j", 2)});
    pb.end_loop();
    pb.end_loop();
    corpus.push_back(pb.finish());
  }
  return corpus;
}

TEST(TraceProperty, AnalyticAccessCountsAreExact) {
  for (const ir::Program& program : property_corpus()) {
    ExactCounts exact = enumerate_program(program);
    auto sites = analysis::collect_sites(program);
    std::map<std::string, ir::i64> analytic;
    for (const analysis::AccessSite& site : sites) {
      analytic[site.access->array] += site.dynamic_accesses();
    }
    EXPECT_EQ(analytic, exact.accesses_per_array) << program.name();
  }
}

TEST(TraceProperty, FootprintBoxesAreSound) {
  // For every copy candidate of every corpus program, the analytic box must
  // cover the exact per-instance touch set (maximized over fixed iterators).
  for (const ir::Program& program : property_corpus()) {
    auto sites = analysis::collect_sites(program);
    analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
    for (const analysis::CopyCandidate& cc : reuse.candidates()) {
      // Exact footprint of the union of member sites: sum per-site exact
      // sets is awkward; verify per member site (box covers each member).
      for (int site_id : cc.site_ids) {
        const analysis::AccessSite& site = sites[static_cast<std::size_t>(site_id)];
        ir::i64 exact =
            exact_footprint_elems(program, site, static_cast<std::size_t>(cc.level));
        EXPECT_GE(cc.elems, exact)
            << program.name() << " cc " << cc.id << " array " << cc.array << " level "
            << cc.level << " site " << site_id;
      }
    }
  }
}

TEST(TraceProperty, DenseBoxesAreTight) {
  // For dense (stride-1, single-access) patterns the bounding box is exact,
  // not just sound.
  ir::ProgramBuilder pb("dense");
  pb.array("d", {16, 32}, 4);
  pb.begin_loop("b", 0, 16);
  pb.begin_loop("k", 0, 32);
  pb.stmt("s", 1).read("d", {av("b"), av("k")});
  pb.end_loop();
  pb.end_loop();
  ir::Program program = pb.finish();
  auto sites = analysis::collect_sites(program);
  for (std::size_t fixed = 0; fixed <= 2; ++fixed) {
    analysis::Box box =
        analysis::footprint(*sites[0].array, *sites[0].access, sites[0].path, fixed);
    ir::i64 exact = exact_footprint_elems(program, sites[0], fixed);
    EXPECT_EQ(box.elems(), exact) << "fixed=" << fixed;
  }
}

TEST(TraceProperty, ProgramFootprintMatchesWholeArrayTouch) {
  // Level-0 candidates of single-nest programs must cover exactly what the
  // program touches when the pattern is dense.
  ir::Program program = std::move(property_corpus()[0]);  // "blocked"
  ExactCounts exact = enumerate_program(program);
  auto sites = analysis::collect_sites(program);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program, sites);
  for (const analysis::CopyCandidate& cc : reuse.candidates()) {
    if (cc.level == 0) {
      EXPECT_GE(cc.elems, exact.distinct_elements[cc.array]);
    }
  }
}

}  // namespace
}  // namespace mhla::sim
