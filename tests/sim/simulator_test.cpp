#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::sim {
namespace {

using testing::make_ws;

TEST(Simulator, BaselineHasNoStalls) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  SimResult result = simulate(ctx, assign::out_of_box(ctx));
  EXPECT_DOUBLE_EQ(result.stall_cycles, 0.0);
  EXPECT_EQ(result.num_block_transfers, 0);
  EXPECT_TRUE(result.feasible);
}

TEST(Simulator, AgreesWithStaticCostModelBlocking) {
  // The simulator and assign::estimate_cost are independent
  // implementations; in Blocking mode they must agree exactly.
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);

  for (const assign::Assignment& a : {assign::out_of_box(ctx), greedy.assignment}) {
    assign::CostEstimate cost = assign::estimate_cost(ctx, a);
    SimResult sim_result = simulate(ctx, a, {te::TransferMode::Blocking, {}});
    EXPECT_NEAR(sim_result.total_cycles(), cost.total_cycles(), 1e-6);
    EXPECT_NEAR(sim_result.energy_nj, cost.energy_nj, 1e-6);
    EXPECT_NEAR(sim_result.compute_cycles, cost.compute_cycles, 1e-6);
    EXPECT_NEAR(sim_result.access_cycles, cost.access_cycles, 1e-6);
    EXPECT_NEAR(sim_result.stall_cycles, cost.transfer_cycles, 1e-6);
  }
}

TEST(Simulator, ModeOrdering) {
  // Ideal <= TimeExtended <= Blocking, always.
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);

  SimResult blocking = simulate(ctx, greedy.assignment, {te::TransferMode::Blocking, {}});
  SimResult extended = simulate(ctx, greedy.assignment, {te::TransferMode::TimeExtended, {}});
  SimResult ideal = simulate(ctx, greedy.assignment, {te::TransferMode::Ideal, {}});

  EXPECT_LE(ideal.total_cycles(), extended.total_cycles());
  EXPECT_LE(extended.total_cycles(), blocking.total_cycles());
  EXPECT_DOUBLE_EQ(ideal.stall_cycles, 0.0);
}

TEST(Simulator, EnergyInvariantAcrossModes) {
  // Paper: "energy consumption in both steps remains the same" — the model
  // counts memory accesses only.
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  SimResult blocking = simulate(ctx, greedy.assignment, {te::TransferMode::Blocking, {}});
  SimResult extended = simulate(ctx, greedy.assignment, {te::TransferMode::TimeExtended, {}});
  SimResult ideal = simulate(ctx, greedy.assignment, {te::TransferMode::Ideal, {}});
  EXPECT_DOUBLE_EQ(blocking.energy_nj, extended.energy_nj);
  EXPECT_DOUBLE_EQ(blocking.energy_nj, ideal.energy_nj);
}

TEST(Simulator, NestCyclesSumToComputePlusAccess) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  SimResult result = simulate(ctx, assign::out_of_box(ctx));
  double sum = 0.0;
  for (double c : result.nest_cycles) sum += c;
  EXPECT_NEAR(sum, result.compute_cycles + result.access_cycles, 1e-9);
}

TEST(Simulator, LayerStatsConsistentWithEnergy) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  SimResult result = simulate(ctx, greedy.assignment);
  double layer_sum = 0.0;
  for (const LayerStats& layer : result.layers) layer_sum += layer.energy_nj;
  EXPECT_NEAR(layer_sum, result.energy_nj, 1e-6);
}

TEST(Simulator, FourPointsShape) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  FourPoint fp = simulate_four_points(ctx, greedy.assignment);
  EXPECT_LE(fp.mhla.total_cycles(), fp.out_of_box.total_cycles());
  EXPECT_LE(fp.mhla_te.total_cycles(), fp.mhla.total_cycles());
  EXPECT_LE(fp.ideal.total_cycles(), fp.mhla_te.total_cycles());
  EXPECT_LE(fp.mhla.energy_nj, fp.out_of_box.energy_nj);
  EXPECT_DOUBLE_EQ(fp.mhla.energy_nj, fp.mhla_te.energy_nj);
}

TEST(AccessTally, CountsProcessorAndCopyTraffic) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.copies.push_back({cc_id, 0});
  AccessTally tally = tally_accesses(ctx, a);
  const analysis::CopyCandidate& cc = ctx.reuse.candidate(cc_id);

  // L1: processor reads + copy-fill writes.
  EXPECT_EQ(tally.reads[0], cc.reads_served);
  EXPECT_EQ(tally.writes[0], cc.transfers * cc.elems_per_transfer);
  // SDRAM: copy-fill reads + the program's own writes to "acc".
  EXPECT_EQ(tally.reads[static_cast<std::size_t>(ctx.hierarchy.background())],
            cc.transfers * cc.elems_per_transfer);
}

TEST(AccessTally, GrandTotalConsistency) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  AccessTally tally = tally_accesses(ctx, assign::out_of_box(ctx));
  ir::i64 expected = 0;
  for (const analysis::AccessSite& site : ctx.sites) expected += site.dynamic_accesses();
  EXPECT_EQ(tally.grand_total(), expected);
}

TEST(Simulator, InfeasibleAssignmentIsFlagged) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 16;
  platform.l2_bytes = 0;
  auto ws = make_ws(testing::blocked_reuse_program(), platform);
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;  // 256 B > 16 B
  }
  a.copies.push_back({cc_id, 0});
  SimResult result = simulate(ctx, a);
  EXPECT_FALSE(result.feasible);
}

}  // namespace
}  // namespace mhla::sim
