// Tests for the two optional model refinements: DMA-engine contention in
// the simulator and TE cold-start (pipeline fill) charging.

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/serialize.h"

namespace mhla::sim {
namespace {

using ir::av;

/// Many parallel copy streams inside one nest with little compute: TE's
/// per-stream view can promise more hiding than one DMA channel can
/// physically deliver.
struct ContentionSetup {
  std::unique_ptr<core::Workspace> ws;
  assign::Assignment assignment;
};

ContentionSetup contention_setup(int streams, ir::i64 op_cycles) {
  ir::ProgramBuilder pb("contention");
  for (int s = 0; s < streams; ++s) {
    pb.array("in" + std::to_string(s), {64 * 64}, 4).input();
  }
  pb.array("out", {64}, 4).output();
  pb.begin_loop("fr", 0, 64);
  for (int s = 0; s < streams; ++s) {
    pb.begin_loop("i" + std::to_string(s), 0, 64);
    pb.stmt("work" + std::to_string(s), op_cycles)
        .read("in" + std::to_string(s), {av("fr", 64) + av("i" + std::to_string(s))});
    pb.end_loop();
  }
  pb.stmt("emit", 1).write("out", {av("fr")});
  pb.end_loop();

  mem::PlatformConfig platform;
  platform.l1_bytes = 8 * 1024;  // room for all double buffers, latency 1
  platform.l2_bytes = 0;
  ContentionSetup setup{testing::make_ws(pb.finish(), platform), {}};
  auto ctx = setup.ws->context();
  setup.assignment = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.level == 1 && cc.array.rfind("in", 0) == 0) {
      setup.assignment.copies.push_back({cc.id, 0});
    }
  }
  return setup;
}

TEST(DmaContention, NoEffectWhenComputeDominates) {
  ContentionSetup setup = contention_setup(2, 50);
  auto ctx = setup.ws->context();
  SimOptions with;
  with.mode = te::TransferMode::TimeExtended;
  with.model_dma_contention = true;
  SimOptions without = with;
  without.model_dma_contention = false;
  EXPECT_DOUBLE_EQ(simulate(ctx, setup.assignment, with).total_cycles(),
                   simulate(ctx, setup.assignment, without).total_cycles());
}

TEST(DmaContention, OversubscriptionSurfacesStalls) {
  // Eight streams, almost no compute: the single-channel engine cannot
  // overlap everything the per-stream model promises.
  ContentionSetup setup = contention_setup(8, 1);
  auto ctx = setup.ws->context();
  SimOptions with;
  with.mode = te::TransferMode::TimeExtended;
  with.model_dma_contention = true;
  SimOptions without = with;
  without.model_dma_contention = false;

  SimResult contended = simulate(ctx, setup.assignment, with);
  SimResult idealized = simulate(ctx, setup.assignment, without);
  EXPECT_GT(contended.stall_cycles, idealized.stall_cycles);

  // Still never worse than blocking everything.
  SimResult blocking = simulate(ctx, setup.assignment, {te::TransferMode::Blocking, {}});
  EXPECT_LE(contended.total_cycles(), blocking.total_cycles() + 1e-9);
}

TEST(DmaContention, MoreChannelsRelieveContention) {
  ContentionSetup setup = contention_setup(8, 1);
  // Re-run with a 4-channel engine.
  mem::DmaEngine wide;
  wide.channels = 4;
  auto ws4 = [&] {
    ir::Program copy = ir::parse_program(ir::serialize(setup.ws->program()));
    mem::PlatformConfig platform;
    platform.l1_bytes = 8 * 1024;
    platform.l2_bytes = 0;
    return core::make_workspace(std::move(copy), platform, wide);
  }();
  auto ctx1 = setup.ws->context();
  auto ctx4 = ws4->context();

  assign::Assignment a4 = assign::out_of_box(ctx4);
  for (const auto& cc : ctx4.reuse.candidates()) {
    if (cc.level == 1 && cc.array.rfind("in", 0) == 0) a4.copies.push_back({cc.id, 0});
  }

  SimOptions options;
  options.mode = te::TransferMode::TimeExtended;
  options.model_dma_contention = true;
  double narrow = simulate(ctx1, setup.assignment, options).stall_cycles;
  double wide_stall = simulate(ctx4, a4, options).stall_cycles;
  EXPECT_LE(wide_stall, narrow);
}

TEST(ColdStart, ChargesPipelineFill) {
  ContentionSetup setup = contention_setup(1, 50);
  auto ctx = setup.ws->context();
  auto bts = te::collect_block_transfers(ctx, setup.assignment);
  ASSERT_EQ(bts.size(), 1u);

  te::TeOptions steady;
  te::TeOptions cold = steady;
  cold.charge_cold_start = true;

  te::TeResult steady_result = te::time_extend(ctx, setup.assignment, bts, steady);
  te::TeResult cold_result = te::time_extend(ctx, setup.assignment, bts, cold);

  double steady_stall =
      te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &steady_result);
  double cold_stall = te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &cold_result);
  EXPECT_GT(cold_stall, steady_stall);

  // Cold start charges exactly extra_buffers issues' worth of hidden time.
  const te::BtExtension& ext = cold_result.for_bt(0);
  EXPECT_DOUBLE_EQ(ext.cold_start_stall_cycles,
                   static_cast<double>(ext.extra_buffers) * ext.hidden_cycles);
}

TEST(ColdStart, NeverExceedsBlocking) {
  ContentionSetup setup = contention_setup(4, 2);
  auto ctx = setup.ws->context();
  auto bts = te::collect_block_transfers(ctx, setup.assignment);
  te::TeOptions cold;
  cold.charge_cold_start = true;
  te::TeResult result = te::time_extend(ctx, setup.assignment, bts, cold);
  double te_stall = te::total_stall_cycles(bts, te::TransferMode::TimeExtended, &result);
  double blocking = te::total_stall_cycles(bts, te::TransferMode::Blocking, nullptr);
  EXPECT_LE(te_stall, blocking + 1e-9);
}

TEST(ColdStart, ZeroLookaheadMeansNoCharge) {
  // Cross-nest extensions have no pipeline fill (single prefetch).
  auto ws = testing::make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "mid" && cc.nest == 1 && cc.level == 0) a.copies.push_back({cc.id, 0});
  }
  auto bts = te::collect_block_transfers(ctx, a);
  te::TeOptions cold;
  cold.charge_cold_start = true;
  te::TeResult result = te::time_extend(ctx, a, bts, cold);
  for (const te::BtExtension& ext : result.extensions) {
    if (ext.extra_buffers == 0) {
      EXPECT_DOUBLE_EQ(ext.cold_start_stall_cycles, 0.0);
    }
  }
}

}  // namespace
}  // namespace mhla::sim
