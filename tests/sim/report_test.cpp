#include "sim/report.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::sim {
namespace {

using testing::make_ws;

TEST(Report, PercentOf) {
  EXPECT_DOUBLE_EQ(percent_of(50.0, 200.0), 25.0);
  EXPECT_DOUBLE_EQ(percent_of(200.0, 200.0), 100.0);
  EXPECT_DOUBLE_EQ(percent_of(5.0, 0.0), 100.0);  // degenerate base
}

TEST(Report, FormatResultMentionsLayersAndCycles) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  SimResult result = simulate(ctx, assign::out_of_box(ctx));
  std::string text = format_result(result);
  EXPECT_NE(text.find("cycles:"), std::string::npos);
  EXPECT_NE(text.find("energy:"), std::string::npos);
  EXPECT_NE(text.find("L1"), std::string::npos);
  EXPECT_NE(text.find("SDRAM"), std::string::npos);
  EXPECT_NE(text.find("capacity: ok"), std::string::npos);
}

TEST(Report, FormatFourPointsNormalizesTo100) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  FourPoint fp = simulate_four_points(ctx, greedy.assignment);
  std::string text = format_four_points("demo", fp);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("out-of-box"), std::string::npos);
  EXPECT_NE(text.find("100.0 %"), std::string::npos);
  EXPECT_NE(text.find("MHLA+TE"), std::string::npos);
  EXPECT_NE(text.find("ideal"), std::string::npos);
}

TEST(Report, CapacityViolationIsCalledOut) {
  mem::PlatformConfig platform;
  platform.l1_bytes = 16;
  platform.l2_bytes = 0;
  auto ws = make_ws(testing::blocked_reuse_program(), platform);
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) a.copies.push_back({cc.id, 0});
  }
  std::string text = format_result(simulate(ctx, a));
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace mhla::sim
