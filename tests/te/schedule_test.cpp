#include "te/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mhla::te {
namespace {

BlockTransfer make_bt(double cycles, ir::i64 issues, bool write_back = false) {
  BlockTransfer bt;
  bt.id = 0;
  bt.bytes = 100;
  bt.issues = issues;
  bt.cycles = cycles;
  bt.write_back = write_back;
  return bt;
}

TEST(Schedule, BlockingChargesFullTime) {
  BlockTransfer bt = make_bt(50.0, 4);
  EXPECT_DOUBLE_EQ(bt_stall_cycles(bt, TransferMode::Blocking, nullptr), 200.0);
}

TEST(Schedule, IdealChargesNothing) {
  BlockTransfer bt = make_bt(50.0, 4);
  EXPECT_DOUBLE_EQ(bt_stall_cycles(bt, TransferMode::Ideal, nullptr), 0.0);
}

TEST(Schedule, TimeExtendedChargesResidual) {
  BlockTransfer bt = make_bt(50.0, 4);
  BtExtension ext;
  ext.hidden_cycles = 30.0;
  EXPECT_DOUBLE_EQ(bt_stall_cycles(bt, TransferMode::TimeExtended, &ext), 80.0);
}

TEST(Schedule, FullyHiddenCostsZero) {
  BlockTransfer bt = make_bt(50.0, 4);
  BtExtension ext;
  ext.hidden_cycles = 50.0;
  EXPECT_DOUBLE_EQ(bt_stall_cycles(bt, TransferMode::TimeExtended, &ext), 0.0);
}

TEST(Schedule, OverHiddenNeverGoesNegative) {
  BlockTransfer bt = make_bt(50.0, 4);
  BtExtension ext;
  ext.hidden_cycles = 500.0;
  EXPECT_GE(bt_stall_cycles(bt, TransferMode::TimeExtended, &ext), 0.0);
}

TEST(Schedule, TimeExtendedWithoutExtensionThrows) {
  BlockTransfer bt = make_bt(50.0, 4);
  EXPECT_THROW(bt_stall_cycles(bt, TransferMode::TimeExtended, nullptr), std::invalid_argument);
}

TEST(Schedule, WriteBackAlwaysBlocksExceptIdeal) {
  std::vector<BlockTransfer> bts = {make_bt(50.0, 2, /*write_back=*/true)};
  EXPECT_DOUBLE_EQ(total_stall_cycles(bts, TransferMode::Blocking, nullptr), 200.0);
  EXPECT_DOUBLE_EQ(total_stall_cycles(bts, TransferMode::Ideal, nullptr), 0.0);

  TeResult te;
  te.extensions.resize(1);
  te.extensions[0].bt_id = 0;
  te.extensions[0].hidden_cycles = 50.0;
  // Fill hidden, flush still blocks: 0 + 100.
  EXPECT_DOUBLE_EQ(total_stall_cycles(bts, TransferMode::TimeExtended, &te), 100.0);
}

TEST(Schedule, TotalStallSumsStreams) {
  std::vector<BlockTransfer> bts = {make_bt(10.0, 3), make_bt(20.0, 1)};
  bts[1].id = 1;
  EXPECT_DOUBLE_EQ(total_stall_cycles(bts, TransferMode::Blocking, nullptr), 50.0);
}

TEST(Schedule, TeModeWithoutResultThrows) {
  std::vector<BlockTransfer> bts = {make_bt(10.0, 3)};
  EXPECT_THROW(total_stall_cycles(bts, TransferMode::TimeExtended, nullptr),
               std::invalid_argument);
}

TEST(Schedule, DmaBusyCountsBothDirections) {
  std::vector<BlockTransfer> bts = {make_bt(10.0, 3, /*write_back=*/true), make_bt(5.0, 2)};
  bts[1].id = 1;
  EXPECT_DOUBLE_EQ(total_dma_busy_cycles(bts), 30.0 + 30.0 + 10.0);
}

}  // namespace
}  // namespace mhla::te
