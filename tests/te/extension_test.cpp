#include "te/extension.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::te {
namespace {

using ir::av;
using testing::make_ws;

struct TeSetup {
  std::unique_ptr<core::Workspace> ws;
  assign::Assignment assignment;
  std::vector<BlockTransfer> bts;
};

/// Streaming frames with plenty of compute per frame: lookahead prefetch can
/// fully hide the per-frame block transfer when L1 has room for two buffers.
TeSetup streaming_setup(ir::i64 l1_bytes) {
  ir::ProgramBuilder pb("stream");
  pb.array("in", {64 * 64}, 4).input();  // 64 frames x 64 samples
  pb.array("out", {64}, 4).output();
  pb.begin_loop("fr", 0, 64);
  pb.begin_loop("i", 0, 64);
  pb.stmt("work", 20).read("in", {av("fr", 64) + av("i")});
  pb.end_loop();
  pb.stmt("emit", 1).write("out", {av("fr")});
  pb.end_loop();

  mem::PlatformConfig platform;
  platform.l1_bytes = l1_bytes;
  platform.l2_bytes = 0;
  TeSetup setup{testing::make_ws(pb.finish(), platform), {}, {}};
  auto ctx = setup.ws->context();
  setup.assignment = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "in" && cc.level == 1) {
      setup.assignment.copies.push_back({cc.id, 0});  // 256 B frame copy
    }
  }
  setup.bts = collect_block_transfers(ctx, setup.assignment);
  return setup;
}

TEST(TimeExtend, FullyHidesWithDoubleBufferRoom) {
  TeSetup setup = streaming_setup(1024);  // room for 4 buffers
  auto ctx = setup.ws->context();
  ASSERT_EQ(setup.bts.size(), 1u);
  TeResult result = time_extend(ctx, setup.assignment, setup.bts);
  const BtExtension& ext = result.for_bt(0);
  EXPECT_TRUE(ext.fully_hidden);
  EXPECT_GE(ext.extra_buffers, 1);
  EXPECT_DOUBLE_EQ(ext.hidden_cycles, setup.bts[0].cycles);
  EXPECT_GT(result.total_hidden_cycles, 0.0);
}

TEST(TimeExtend, BlockedWhenNoRoomForSecondBuffer) {
  TeSetup setup = streaming_setup(256);  // exactly one buffer fits
  auto ctx = setup.ws->context();
  TeResult result = time_extend(ctx, setup.assignment, setup.bts);
  const BtExtension& ext = result.for_bt(0);
  EXPECT_EQ(ext.extra_buffers, 0);
  EXPECT_DOUBLE_EQ(ext.hidden_cycles, 0.0);
  EXPECT_FALSE(ext.fully_hidden);
}

TEST(TimeExtend, ExtensionKeepsFootprintFeasible) {
  TeSetup setup = streaming_setup(512);  // two buffers max
  auto ctx = setup.ws->context();
  TeResult result = time_extend(ctx, setup.assignment, setup.bts);
  EXPECT_TRUE(assign::fits(ctx, setup.assignment, result.footprint_extensions));
  EXPECT_LE(result.for_bt(0).extra_buffers, 1);
}

TEST(TimeExtend, LookaheadCapIsRespected) {
  TeSetup setup = streaming_setup(4096);
  auto ctx = setup.ws->context();
  TeOptions options;
  options.max_lookahead = 2;
  TeResult result = time_extend(ctx, setup.assignment, setup.bts, options);
  EXPECT_LE(result.for_bt(0).extra_buffers, 2);
}

TEST(TimeExtend, NoDmaEngineMeansNoExtensions) {
  mem::DmaEngine no_dma;
  no_dma.present = false;
  // Same streaming program, but the platform has no transfer engine.
  auto ws2 = [&] {
    ir::ProgramBuilder pb("stream2");
    pb.array("in", {64 * 64}, 4).input();
    pb.array("out", {64}, 4).output();
    pb.begin_loop("fr", 0, 64);
    pb.begin_loop("i", 0, 64);
    pb.stmt("work", 20).read("in", {av("fr", 64) + av("i")});
    pb.end_loop();
    pb.stmt("emit", 1).write("out", {av("fr")});
    pb.end_loop();
    mem::PlatformConfig platform;
    platform.l1_bytes = 1024;
    platform.l2_bytes = 0;
    return testing::make_ws(pb.finish(), platform, no_dma);
  }();
  auto ctx = ws2->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "in" && cc.level == 1) a.copies.push_back({cc.id, 0});
  }
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, a);
  TeResult result = time_extend(ctx, a, bts);
  for (const BtExtension& ext : result.extensions) {
    EXPECT_DOUBLE_EQ(ext.hidden_cycles, 0.0);
    EXPECT_EQ(ext.extra_buffers, 0);
  }
}

TEST(TimeExtend, CrossNestPrefetchForLevel0Copies) {
  // Consumer nest reads an input; a level-0 copy can prefetch during the
  // unrelated preceding nest.
  ir::ProgramBuilder pb("xnest");
  pb.array("warm", {256}, 4).input();
  pb.array("tab", {64}, 4).input();
  pb.array("out", {256}, 4).output();
  // Nest 0: long-running unrelated work.
  pb.begin_loop("w", 0, 256);
  pb.stmt("warmup", 10).read("warm", {av("w")}).write("out", {av("w")});
  pb.end_loop();
  // Nest 1: consumes tab heavily.
  pb.begin_loop("r", 0, 128);
  pb.begin_loop("i", 0, 64);
  pb.stmt("use", 1).read("tab", {av("i")});
  pb.end_loop();
  pb.end_loop();

  mem::PlatformConfig platform;
  platform.l1_bytes = 512;
  platform.l2_bytes = 0;
  auto ws = testing::make_ws(pb.finish(), platform);
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "tab" && cc.nest == 1 && cc.level == 0) a.copies.push_back({cc.id, 0});
  }
  ASSERT_EQ(a.copies.size(), 1u);
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, a);
  ASSERT_EQ(bts.size(), 1u);
  EXPECT_EQ(bts[0].level, 0);

  TeResult result = time_extend(ctx, a, bts);
  const BtExtension& ext = result.for_bt(0);
  EXPECT_EQ(ext.start_nest, 0);  // prefetch during nest 0
  EXPECT_TRUE(ext.fully_hidden);
}

TEST(TimeExtend, CrossNestRespectsProducerDependence) {
  // The consumed array is *produced* in the immediately preceding nest:
  // no earlier nest is eligible, so no hiding is possible.
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "mid" && cc.nest == 1 && cc.level == 0) a.copies.push_back({cc.id, 0});
  }
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, a);
  ASSERT_EQ(bts.size(), 1u);
  TeResult result = time_extend(ctx, a, bts);
  EXPECT_EQ(result.for_bt(0).start_nest, -1);
  EXPECT_DOUBLE_EQ(result.for_bt(0).hidden_cycles, 0.0);
}

TEST(TimeExtend, DmaPrioritiesAreAPermutation) {
  TeSetup setup = streaming_setup(1024);
  auto ctx = setup.ws->context();
  TeResult result = time_extend(ctx, setup.assignment, setup.bts);
  std::vector<bool> seen(result.extensions.size(), false);
  for (const BtExtension& ext : result.extensions) {
    ASSERT_GE(ext.dma_priority, 0);
    ASSERT_LT(ext.dma_priority, static_cast<int>(result.extensions.size()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(ext.dma_priority)]);
    seen[static_cast<std::size_t>(ext.dma_priority)] = true;
  }
}

class ExtensionOrderSweep : public ::testing::TestWithParam<ExtensionOrder> {};

TEST_P(ExtensionOrderSweep, EveryOrderProducesFeasibleResult) {
  TeSetup setup = streaming_setup(512);
  auto ctx = setup.ws->context();
  TeOptions options;
  options.order = GetParam();
  TeResult result = time_extend(ctx, setup.assignment, setup.bts, options);
  EXPECT_TRUE(assign::fits(ctx, setup.assignment, result.footprint_extensions));
  for (const BtExtension& ext : result.extensions) {
    EXPECT_GE(ext.hidden_cycles, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ExtensionOrderSweep,
                         ::testing::Values(ExtensionOrder::TimePerByte, ExtensionOrder::Fifo,
                                           ExtensionOrder::BySizeDescending,
                                           ExtensionOrder::Reverse));

}  // namespace
}  // namespace mhla::te
