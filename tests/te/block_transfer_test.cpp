#include "te/block_transfer.h"

#include <gtest/gtest.h>

#include "assign/greedy.h"
#include "helpers.h"

namespace mhla::te {
namespace {

using testing::make_ws;

TEST(BlockTransfer, EmptyWithoutCopies) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  EXPECT_TRUE(collect_block_transfers(ctx, assign::out_of_box(ctx)).empty());
}

TEST(BlockTransfer, OnePerSelectedCopy) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  ASSERT_FALSE(greedy.assignment.copies.empty());
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, greedy.assignment);
  EXPECT_EQ(bts.size(), greedy.assignment.copies.size());
}

TEST(BlockTransfer, FieldsMatchCandidate) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  int cc_id = -1;
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "data" && cc.level == 1) cc_id = cc.id;
  }
  ASSERT_GE(cc_id, 0);
  a.copies.push_back({cc_id, 0});
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, a);
  ASSERT_EQ(bts.size(), 1u);
  const BlockTransfer& bt = bts[0];
  const analysis::CopyCandidate& cc = ctx.reuse.candidate(cc_id);
  EXPECT_EQ(bt.cc_id, cc_id);
  EXPECT_EQ(bt.bytes, cc.bytes_per_transfer());
  EXPECT_EQ(bt.issues, cc.transfers);
  EXPECT_EQ(bt.nest, cc.nest);
  EXPECT_EQ(bt.level, cc.level);
  EXPECT_EQ(bt.dst_layer, 0);
  EXPECT_EQ(bt.src_layer, ctx.hierarchy.background());
  EXPECT_FALSE(bt.write_back);
}

TEST(BlockTransfer, CyclesMatchDmaModel) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  for (const BlockTransfer& bt : collect_block_transfers(ctx, greedy.assignment)) {
    double expected = ctx.dma.transfer_cycles(bt.bytes, ctx.hierarchy.layer(bt.src_layer),
                                              ctx.hierarchy.layer(bt.dst_layer));
    EXPECT_DOUBLE_EQ(bt.cycles, expected);
    EXPECT_DOUBLE_EQ(bt.sort_factor, bt.cycles / static_cast<double>(bt.bytes));
    EXPECT_DOUBLE_EQ(bt.total_cycles(), bt.cycles * static_cast<double>(bt.issues));
  }
}

TEST(BlockTransfer, IdsAreDense) {
  auto ws = make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, greedy.assignment);
  for (std::size_t i = 0; i < bts.size(); ++i) {
    EXPECT_EQ(bts[i].id, static_cast<int>(i));
  }
}

TEST(BlockTransfer, WriteBackFlagged) {
  auto ws = make_ws(testing::producer_consumer_program());
  auto ctx = ws->context();
  assign::Assignment a = assign::out_of_box(ctx);
  for (const auto& cc : ctx.reuse.candidates()) {
    if (cc.array == "mid" && cc.nest == 0 && cc.level == 0) a.copies.push_back({cc.id, 0});
  }
  std::vector<BlockTransfer> bts = collect_block_transfers(ctx, a);
  ASSERT_EQ(bts.size(), 1u);
  EXPECT_TRUE(bts[0].write_back);
}

}  // namespace
}  // namespace mhla::te
