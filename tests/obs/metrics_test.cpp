#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/json.h"

namespace mhla::obs {
namespace {

/// Deterministic per-thread value sequence, so the concurrent runs below can
/// be replayed single-threaded into an exact reference model.
std::uint64_t sample(unsigned thread, unsigned i) {
  std::uint64_t x = thread * 2654435761u + i * 40503u;
  x ^= x >> 7;
  return x % 100000;  // spread over ~17 buckets, zeros included
}

TEST(ObsMetrics, CounterUnderContentionMatchesTheArithmetic) {
  constexpr unsigned kThreads = 8;
  constexpr unsigned kAdds = 20000;
  Counter counter;
  Gauge gauge;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (unsigned i = 0; i < kAdds; ++i) {
        counter.add();
        counter.add(2);
        gauge.add(3);
        gauge.sub();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  EXPECT_EQ(counter.value(), std::uint64_t{kThreads} * kAdds * 3);
  EXPECT_EQ(gauge.value(), std::int64_t{kThreads} * kAdds * 2);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsMetrics, HistogramConcurrentRecordsMatchSingleThreadedReference) {
  constexpr unsigned kThreads = 8;
  constexpr unsigned kRecords = 5000;

  // Reference model: plain arrays, same bucket rule (index = bit width).
  HistogramSnapshot expected;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned i = 0; i < kRecords; ++i) {
      std::uint64_t v = sample(t, i);
      ++expected.buckets[static_cast<std::size_t>(std::bit_width(v))];
      ++expected.count;
      expected.sum += v;
    }
  }

  Histogram histogram;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&histogram, t] {
      for (unsigned i = 0; i < kRecords; ++i) histogram.record(sample(t, i));
    });
  }
  for (std::thread& worker : pool) worker.join();

  // Writers quiesced: the sharded merge must be exactly the reference.
  EXPECT_EQ(histogram.snapshot(), expected);

  histogram.reset();
  EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(ObsMetrics, HistogramMergeIsAssociativeAndLossless) {
  Histogram ha, hb, hc;
  for (unsigned i = 0; i < 1000; ++i) {
    ha.record(sample(1, i));
    hb.record(sample(2, i));
    hc.record(sample(3, i));
  }
  HistogramSnapshot a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

  HistogramSnapshot left = a;
  left.merge(b);
  left.merge(c);
  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left.count, a.count + b.count + c.count);
  EXPECT_EQ(left.sum, a.sum + b.sum + c.sum);
}

TEST(ObsMetrics, HistogramQuantileBoundsBracketTheData) {
  Histogram histogram;
  for (std::uint64_t v = 0; v < 1024; ++v) histogram.record(v);
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1024u);
  // Every recorded value is <= 1023; the p99/p100 bucket bound must cover it
  // and the p50 bound must sit near the middle (power-of-two resolution).
  EXPECT_GE(snap.quantile_bound(1.0), 1023u);
  EXPECT_GE(snap.quantile_bound(0.5), 511u);
  EXPECT_LE(snap.quantile_bound(0.5), 1023u);
  EXPECT_EQ(HistogramSnapshot{}.quantile_bound(0.5), 0u);
}

TEST(ObsMetrics, RegistryHandsOutStableCellsAndSortedSnapshots) {
  Registry& registry = Registry::instance();
  registry.reset_all();

  Counter& cell = registry.counter("test.obs.zulu");
  registry.counter("test.obs.alpha").add(7);
  cell.add(5);
  EXPECT_EQ(&cell, &registry.counter("test.obs.zulu"));  // stable reference
  registry.gauge("test.obs.depth").set(-3);
  registry.histogram("test.obs.sizes").record(42);

  MetricsSnapshot snap = registry.snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LE(snap.counters[i - 1].first, snap.counters[i].first);
  }
  auto find_counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(find_counter("test.obs.zulu"), 5u);
  EXPECT_EQ(find_counter("test.obs.alpha"), 7u);

  registry.reset_all();
  MetricsSnapshot cleared = registry.snapshot();
  for (const auto& [name, value] : cleared.counters) {
    // Sources report component-owned cells reset_all does not touch; only
    // the registry-owned rows must be back to zero.
    if (name.rfind("test.obs.", 0) == 0) EXPECT_EQ(value, 0u) << name;
  }
}

TEST(ObsMetrics, RegistrySourcesContributeRowsUntilRemoved) {
  Registry& registry = Registry::instance();
  std::uint64_t id = registry.add_source([](MetricsSnapshot& out) {
    out.counters.emplace_back("test.obs.source_row", 11);
  });
  MetricsSnapshot with = registry.snapshot();
  bool found = false;
  for (const auto& [name, value] : with.counters) {
    found |= name == "test.obs.source_row" && value == 11;
  }
  EXPECT_TRUE(found);

  registry.remove_source(id);
  MetricsSnapshot without = registry.snapshot();
  for (const auto& [name, value] : without.counters) {
    EXPECT_NE(name, "test.obs.source_row");
  }
}

TEST(ObsMetrics, TextAndJsonDumpsAreWellFormed) {
  Registry& registry = Registry::instance();
  registry.reset_all();
  registry.counter("test.obs.dump").add(3);
  registry.gauge("test.obs.level").set(2);
  registry.histogram("test.obs.dist").record(100);

  MetricsSnapshot snap = registry.snapshot();
  std::string text = to_text(snap);
  EXPECT_NE(text.find("test.obs.dump 3"), std::string::npos);
  EXPECT_NE(text.find("test.obs.level 2"), std::string::npos);

  core::Json document = core::Json::parse(to_json(snap));
  EXPECT_EQ(document.at("counters").at("test.obs.dump").integer(), 3);
  EXPECT_EQ(document.at("gauges").at("test.obs.level").integer(), 2);
  EXPECT_EQ(document.at("histograms").at("test.obs.dist").at("count").integer(), 1);
}

}  // namespace
}  // namespace mhla::obs
