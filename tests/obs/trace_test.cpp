#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "core/json.h"
#include "core/pipeline.h"

namespace mhla::obs {
namespace {

/// Every trace test owns the process tracer for its duration: clear first
/// (other suites ran pipelines), disable on the way out so the suites after
/// us see the compiled-in default (off).
struct TracerLease {
  TracerLease() {
    Tracer::instance().clear();
    Tracer::instance().enable(true);
  }
  ~TracerLease() {
    Tracer::instance().enable(false);
    Tracer::instance().clear();
    Tracer::instance().set_ring_capacity(Tracer::kDefaultRingCapacity);
  }
};

TEST(ObsTrace, SpansAndInstantsLandInTimestampOrder) {
  TracerLease lease;
  Tracer& tracer = Tracer::instance();
  {
    Span outer("outer", "test");
    Span inner("inner", "test");
    inner.set_args("{\"k\": 1}");
    tracer.instant("mark", "test");
  }
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  bool saw_args = false, saw_instant = false;
  for (const TraceEvent& event : events) {
    if (event.name == "inner") saw_args = event.args_json == "{\"k\": 1}";
    if (event.name == "mark") saw_instant = event.phase == 'i';
  }
  EXPECT_TRUE(saw_args);
  EXPECT_TRUE(saw_instant);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCountsTheLoss) {
  TracerLease lease;
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(8);
  // This thread's ring may predate the capacity change; record on a fresh
  // thread whose ring is created under the new capacity.
  std::thread([&tracer] {
    for (int i = 0; i < 20; ++i) {
      tracer.record_complete("e" + std::to_string(i), "test", static_cast<std::uint64_t>(i),
                             static_cast<std::uint64_t>(i + 1));
    }
  }).join();
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The survivors are the 8 *newest* events, still in order.
  EXPECT_EQ(events.front().name, "e12");
  EXPECT_EQ(events.back().name, "e19");
}

TEST(ObsTrace, DisabledTracerBuffersNothing) {
  TracerLease lease;
  Tracer& tracer = Tracer::instance();
  tracer.enable(false);
  {
    Span span("ghost", "test");
    tracer.instant("ghost_mark", "test");
    EXPECT_GE(span.seconds(), 0.0);  // timing works regardless
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(ObsTrace, ChromeTraceJsonParsesAndCarriesPipelineSpans) {
  TracerLease lease;

  core::PipelineConfig config;
  core::PipelineResult result = core::Pipeline(config).run(apps::build_app("conv_filter"));
  ASSERT_GT(result.total_seconds, 0.0);

  core::Json document = core::Json::parse(Tracer::instance().chrome_trace_json());
  const auto& events = document.at("traceEvents").array();
  ASSERT_FALSE(events.empty());

  std::vector<std::string> stages;
  bool search_internal = false;
  for (const core::Json& event : events) {
    const std::string& name = event.at("name").string();
    const std::string& phase = event.at("ph").string();
    EXPECT_TRUE(phase == "X" || phase == "i") << phase;
    EXPECT_GE(event.at("ts").number(), 0.0);
    if (phase == "X") EXPECT_GE(event.at("dur").number(), 0.0);
    if (event.at("cat").string() == "pipeline") stages.push_back(name);
    if (event.at("cat").string() == "search") search_internal = true;
  }
  // Every pipeline stage spans the timeline, plus at least one
  // search-internal span (the strategy's walk).
  for (const char* stage : {"analyze", "assign", "time_extend", "simulate"}) {
    EXPECT_NE(std::find(stages.begin(), stages.end(), stage), stages.end()) << stage;
  }
  EXPECT_TRUE(search_internal);
}

TEST(ObsTrace, TracingNeverChangesResults) {
  // The hard gate of the whole subsystem: instrumentation observes, it never
  // steers.  Run the same configs with tracing off and on; every simulated
  // number and the chosen assignment must be bit-identical.
  struct Case {
    const char* app;
    const char* strategy;
  };
  const Case cases[] = {
      {"conv_filter", "greedy"},
      {"adpcm_coder", "bnb"},
      {"wavelet", "anneal"},
  };
  for (const Case& c : cases) {
    core::PipelineConfig config;
    config.strategy = c.strategy;

    Tracer::instance().enable(false);
    core::PipelineResult off = core::Pipeline(config).run(apps::build_app(c.app));

    core::PipelineResult on;
    {
      TracerLease lease;
      on = core::Pipeline(config).run(apps::build_app(c.app));
      EXPECT_FALSE(Tracer::instance().events().empty());
    }

    EXPECT_EQ(on.search.scalar, off.search.scalar) << c.app << "/" << c.strategy;
    EXPECT_TRUE(on.search.assignment == off.search.assignment) << c.app << "/" << c.strategy;
    EXPECT_EQ(on.points.mhla_te.total_cycles(), off.points.mhla_te.total_cycles());
    EXPECT_EQ(on.points.mhla_te.energy_nj, off.points.mhla_te.energy_nj);
    EXPECT_EQ(on.points.mhla.total_cycles(), off.points.mhla.total_cycles());
    EXPECT_EQ(on.search.states_explored, off.search.states_explored);
    EXPECT_EQ(on.search.evaluations, off.search.evaluations);
  }
}

TEST(ObsTrace, ConcurrentRecordingFromManyThreadsIsLosslessUnderCapacity) {
  TracerLease lease;
  Tracer& tracer = Tracer::instance();
  constexpr unsigned kThreads = 8;
  constexpr unsigned kEach = 200;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer] {
      for (unsigned i = 0; i < kEach; ++i) {
        Span span("work", "test");
        (void)span;
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  // Per-thread rings at default capacity: nothing dropped, every span kept,
  // and the export is one consistent sorted stream.
  EXPECT_EQ(tracer.events().size(), std::size_t{kThreads} * kEach);
  core::Json document = core::Json::parse(tracer.chrome_trace_json());
  EXPECT_EQ(document.at("traceEvents").array().size(), std::size_t{kThreads} * kEach);
}

}  // namespace
}  // namespace mhla::obs
