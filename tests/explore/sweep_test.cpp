#include "explore/sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.h"

namespace mhla::xplore {
namespace {

TEST(Sweep, DefaultGridShape) {
  SweepConfig config = default_sweep();
  EXPECT_FALSE(config.l1_sizes.empty());
  EXPECT_EQ(config.l1_sizes.front(), 256);
  EXPECT_EQ(config.l1_sizes.back(), 64 * 1024);
  EXPECT_EQ(config.l2_sizes.size(), 3u);
}

TEST(Sweep, ProducesOneSamplePerGridPoint) {
  SweepConfig config;
  config.l1_sizes = {256, 1024};
  config.l2_sizes = {0, 8192};
  auto samples = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  EXPECT_EQ(samples.size(), 4u);
}

TEST(Sweep, BiggerL1NeverHurtsCycles) {
  // More on-chip memory can only help (or tie) the greedy result on this
  // monotone workload.
  SweepConfig config;
  config.l1_sizes = {128, 512, 2048};
  config.l2_sizes = {0};
  config.with_te = false;
  auto samples = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_GE(samples[0].point.cycles, samples[1].point.cycles);
  EXPECT_GE(samples[1].point.cycles, samples[2].point.cycles);
}

TEST(Sweep, TeFlagControlsMode) {
  SweepConfig config;
  config.l1_sizes = {1024};
  config.l2_sizes = {0};
  config.with_te = false;
  auto without = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  EXPECT_FALSE(without[0].te_applied);
  config.with_te = true;
  auto with = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  EXPECT_TRUE(with[0].te_applied);
  EXPECT_LE(with[0].point.cycles, without[0].point.cycles);
}

TEST(Sweep, NoDmaDisablesTe) {
  SweepConfig config;
  config.l1_sizes = {1024};
  config.l2_sizes = {0};
  config.with_te = true;
  config.pipeline.dma.present = false;
  auto samples = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  EXPECT_FALSE(samples[0].te_applied);
}

TEST(Sweep, ParallelSweepIsDeterministicForAnyThreadCount) {
  SweepConfig config;
  config.l1_sizes = {256, 1024, 4096};
  config.l2_sizes = {0, 8192};

  config.pipeline.num_threads = 1;
  auto serial = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  ASSERT_EQ(serial.size(), 6u);

  for (unsigned threads : {0u, 2u, 3u, 8u}) {
    config.pipeline.num_threads = threads;
    auto parallel = sweep_layer_sizes(testing::blocked_reuse_program(), config);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].point.l1_bytes, serial[i].point.l1_bytes);
      EXPECT_EQ(parallel[i].point.l2_bytes, serial[i].point.l2_bytes);
      EXPECT_EQ(parallel[i].point.cycles, serial[i].point.cycles);
      EXPECT_EQ(parallel[i].point.energy_nj, serial[i].point.energy_nj);
      EXPECT_EQ(parallel[i].assignment, serial[i].assignment);
      EXPECT_EQ(parallel[i].te_applied, serial[i].te_applied);
    }
  }
}

TEST(Sweep, UnknownStrategyThrowsBeforeAnyWork) {
  SweepConfig config;
  config.l1_sizes = {256};
  config.l2_sizes = {0};
  config.pipeline.strategy = "no-such-strategy";
  EXPECT_THROW(sweep_layer_sizes(testing::blocked_reuse_program(), config),
               std::out_of_range);
}

TEST(Sweep, PlatformModelsFlowFromPipelineConfig) {
  // The sweep shares the pipeline's platform: pricier SDRAM accesses must
  // show up in every sample (no silently diverging sweep-local models).
  SweepConfig cheap;
  cheap.l1_sizes = {1024};
  cheap.l2_sizes = {0};
  SweepConfig pricey = cheap;
  pricey.pipeline.platform.sdram.read_energy_nj *= 10.0;
  pricey.pipeline.platform.sdram.write_energy_nj *= 10.0;
  auto a = sweep_layer_sizes(testing::blocked_reuse_program(), cheap);
  auto b = sweep_layer_sizes(testing::blocked_reuse_program(), pricey);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_GT(b[0].point.energy_nj, a[0].point.energy_nj);
}

TEST(Sweep, DuplicateSizesAreDeduplicated) {
  SweepConfig config;
  config.l1_sizes = {1024, 256, 1024, 256};
  config.l2_sizes = {0, 8192, 0};
  auto samples = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  ASSERT_EQ(samples.size(), 4u);  // 2 unique L1 x 2 unique L2
  // First-occurrence order is preserved: (l2, l1) canonical flattening.
  EXPECT_EQ(samples[0].point.l2_bytes, 0);
  EXPECT_EQ(samples[0].point.l1_bytes, 1024);
  EXPECT_EQ(samples[1].point.l1_bytes, 256);
  EXPECT_EQ(samples[2].point.l2_bytes, 8192);
}

TEST(Sweep, SkippedInfeasibleCellsAreBitIdenticalToFullRuns) {
  // Cells whose layers cannot hold even the smallest placeable object are
  // sampled without a search; the shortcut must not change anything — same
  // points, same assignments, same frontier.
  SweepConfig skipped;
  skipped.l1_sizes = {1, 4, 16, 1024};  // 1..16 B: below any array or copy box
  skipped.l2_sizes = {0, 8, 8192};
  skipped.skip_infeasible = true;
  SweepConfig full = skipped;
  full.skip_infeasible = false;

  for (const char* strategy : {"greedy", "anneal"}) {
    skipped.pipeline.strategy = strategy;
    full.pipeline.strategy = strategy;
    auto fast = sweep_layer_sizes(testing::blocked_reuse_program(), skipped);
    auto slow = sweep_layer_sizes(testing::blocked_reuse_program(), full);
    ASSERT_EQ(fast.size(), slow.size()) << strategy;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].point.l1_bytes, slow[i].point.l1_bytes) << strategy;
      EXPECT_EQ(fast[i].point.l2_bytes, slow[i].point.l2_bytes) << strategy;
      EXPECT_EQ(fast[i].point.cycles, slow[i].point.cycles) << strategy;
      EXPECT_EQ(fast[i].point.energy_nj, slow[i].point.energy_nj) << strategy;
      EXPECT_EQ(fast[i].assignment, slow[i].assignment) << strategy;
      EXPECT_EQ(fast[i].te_applied, slow[i].te_applied) << strategy;
    }
    auto fast_front = frontier(fast);
    auto slow_front = frontier(slow);
    ASSERT_EQ(fast_front.size(), slow_front.size()) << strategy;
    for (std::size_t i = 0; i < fast_front.size(); ++i) {
      EXPECT_EQ(fast_front[i].cycles, slow_front[i].cycles) << strategy;
      EXPECT_EQ(fast_front[i].energy_nj, slow_front[i].energy_nj) << strategy;
    }
  }
}

TEST(Sweep, SingleInfeasibleCellAtTheDedupEdgeIsBitIdentical) {
  // Regression for the dedup + skip interaction: a grid whose duplicate
  // sizes collapse to exactly one cell where the smallest placeable object
  // fits no layer.  The skip path must sample that one cell out-of-box and
  // leave every other cell untouched, bit for bit.
  using ir::av;
  ir::ProgramBuilder pb("one_cell");
  pb.array("tab", {16}, 4).input();        // 64 B: the smallest placeable object
  pb.array("big", {64, 16}, 4).input();    // rows of 64 B reused under r
  pb.array("out", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.begin_loop("r", 0, 4);
  pb.begin_loop("j", 0, 16);
  pb.stmt("s", 1).read("big", {av("i"), av("j")}).read("tab", {av("j")});
  pb.end_loop();
  pb.end_loop();
  pb.stmt("e", 1).write("out", {av("i")});
  pb.end_loop();
  ir::Program program = pb.finish();

  SweepConfig skipped;
  skipped.l1_sizes = {32, 256, 32};  // dedups to {32, 256}; 32 B holds nothing
  skipped.l2_sizes = {0};
  SweepConfig full = skipped;
  full.skip_infeasible = false;

  for (const char* strategy : {"greedy", "bnb-par"}) {
    skipped.pipeline.strategy = strategy;
    full.pipeline.strategy = strategy;
    auto fast = sweep_layer_sizes(program, skipped);
    auto slow = sweep_layer_sizes(program, full);
    ASSERT_EQ(fast.size(), 2u) << strategy;
    ASSERT_EQ(slow.size(), 2u) << strategy;
    // The 32 B cell can only ever be out-of-box; the 256 B cell must still
    // run the real search (the skip may not leak to feasible neighbors).
    EXPECT_TRUE(fast[0].assignment.copies.empty()) << strategy;
    EXPECT_FALSE(fast[1].assignment.copies.empty()) << strategy;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].point.l1_bytes, slow[i].point.l1_bytes) << strategy;
      EXPECT_EQ(fast[i].point.l2_bytes, slow[i].point.l2_bytes) << strategy;
      EXPECT_EQ(fast[i].point.cycles, slow[i].point.cycles) << strategy;
      EXPECT_EQ(fast[i].point.energy_nj, slow[i].point.energy_nj) << strategy;
      EXPECT_EQ(fast[i].assignment, slow[i].assignment) << strategy;
    }
  }
}

TEST(Sweep, FrontierIsSubsetOfSamples) {
  SweepConfig config;
  config.l1_sizes = {128, 512, 2048, 8192};
  config.l2_sizes = {0};
  auto samples = sweep_layer_sizes(testing::blocked_reuse_program(), config);
  auto front = frontier(samples);
  EXPECT_FALSE(front.empty());
  EXPECT_LE(front.size(), samples.size());
  for (const TradeoffPoint& p : front) {
    bool found = false;
    for (const SweepSample& s : samples) {
      if (s.point.l1_bytes == p.l1_bytes && s.point.l2_bytes == p.l2_bytes &&
          s.point.cycles == p.cycles && s.point.energy_nj == p.energy_nj) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace mhla::xplore
