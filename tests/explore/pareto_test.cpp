#include "explore/pareto.h"

#include <gtest/gtest.h>

namespace mhla::xplore {
namespace {

TradeoffPoint pt(double cycles, double energy, i64 l1 = 0, i64 l2 = 0) {
  TradeoffPoint p;
  p.cycles = cycles;
  p.energy_nj = energy;
  p.l1_bytes = l1;
  p.l2_bytes = l2;
  return p;
}

TEST(Pareto, DominanceBasics) {
  EXPECT_TRUE(pt(1, 1).dominates(pt(2, 2)));
  EXPECT_TRUE(pt(1, 2).dominates(pt(2, 2)));
  EXPECT_FALSE(pt(1, 3).dominates(pt(2, 2)));
  EXPECT_FALSE(pt(2, 2).dominates(pt(2, 2)));  // equal: no strict improvement
}

TEST(Pareto, FiltersDominatedPoints) {
  auto front = pareto_front({pt(1, 10), pt(5, 5), pt(10, 1), pt(6, 6), pt(20, 20)});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].cycles, 1);
  EXPECT_DOUBLE_EQ(front[1].cycles, 5);
  EXPECT_DOUBLE_EQ(front[2].cycles, 10);
}

TEST(Pareto, SortedByCycles) {
  auto front = pareto_front({pt(10, 1), pt(1, 10), pt(5, 5)});
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LE(front[i - 1].cycles, front[i].cycles);
  }
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, SinglePoint) {
  auto front = pareto_front({pt(3, 4)});
  ASSERT_EQ(front.size(), 1u);
}

TEST(Pareto, EqualCostKeepsSmallestConfig) {
  auto front = pareto_front({pt(5, 5, 4096, 0), pt(5, 5, 1024, 0)});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].l1_bytes, 1024);
}

TEST(Pareto, AllIncomparableSurvive) {
  auto front = pareto_front({pt(1, 4), pt(2, 3), pt(3, 2), pt(4, 1)});
  EXPECT_EQ(front.size(), 4u);
}

TEST(Pareto, FrontIsMonotoneInEnergy) {
  // Along ascending cycles, energy must strictly descend on a clean front.
  auto front = pareto_front({pt(1, 9), pt(2, 7), pt(3, 8), pt(4, 5), pt(5, 6)});
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i - 1].energy_nj, front[i].energy_nj);
  }
}

}  // namespace
}  // namespace mhla::xplore
