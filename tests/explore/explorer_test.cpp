#include "explore/explorer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "apps/registry.h"
#include "explore/corpus.h"
#include "explore/sweep.h"
#include "helpers.h"

namespace mhla::xplore {
namespace {

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// Small lattice over the test platform for the cheap structural tests.
ExplorerConfig small_config() {
  ExplorerConfig config;
  config.l1_axis = {128, 256, 512, 1024, 2048};
  config.l2_axis = {0, 8192};
  return config;
}

TEST(ResultCache, JsonRoundTripsEntries) {
  ResultCache cache;
  ResultCache::Entry entry;
  entry.l1_bytes = 1024;
  entry.l2_bytes = 65536;
  entry.strategy = "greedy";
  entry.with_te = true;
  entry.cycles = 1.0 / 3.0;  // 17-digit round trip must be exact
  entry.energy_nj = 123456.789012345;
  cache.insert(fnv1a64("cell-a"), entry);
  entry.strategy = "anneal";
  entry.with_te = false;
  cache.insert(fnv1a64("cell-b"), entry);

  ResultCache reloaded = ResultCache::from_json(cache.to_json());
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.entries(), cache.entries());
  const ResultCache::Entry* found = reloaded.find(fnv1a64("cell-a"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->cycles, 1.0 / 3.0);
  EXPECT_EQ(found->strategy, "greedy");
}

TEST(ResultCache, SaveAndLoadPersist) {
  std::string path = temp_path("mhla_cache_roundtrip.json");
  ResultCache cache;
  cache.insert(7, {256, 0, "greedy", true, 10.0, 20.0});
  cache.save(path);
  ResultCache loaded = ResultCache::load(path);
  EXPECT_EQ(loaded.entries(), cache.entries());
  std::remove(path.c_str());
}

TEST(ResultCache, MissingFileIsACleanColdCache) {
  EXPECT_EQ(ResultCache::load(temp_path("mhla_cache_never_written.json")).size(), 0u);
}

TEST(ResultCache, MalformedFileSalvagesIntactEntriesAndQuarantines) {
  // A document truncated mid-write: the header and the last entry line are
  // damaged, one entry line is complete.  Load must recover the intact
  // entry instead of throwing the warm cache away, and must preserve the
  // wreckage for inspection.
  std::string path = temp_path("mhla_cache_corrupt.json");
  ResultCache full;
  full.insert(7, {256, 0, "greedy", true, 10.0, 20.0});
  std::string intact_line;
  {
    std::istringstream doc(full.to_json());
    std::string line;
    while (std::getline(doc, line)) {
      if (line.find("\"key\"") != std::string::npos) intact_line = line;
    }
  }
  ASSERT_FALSE(intact_line.empty());
  std::ofstream(path) << "{\"version\": 1, \"entries\": [oops\n"
                      << intact_line << "\n"
                      << "    {\"key\": \"00000000000000";  // truncated entry

  ResultCache::LoadReport report;
  ResultCache salvaged = ResultCache::load(path, report);
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.salvaged, 1u);
  EXPECT_NE(report.message.find(path), std::string::npos) << report.message;
  EXPECT_EQ(salvaged.entries(), full.entries());

  // The damaged original is quarantined byte for byte next to the cache.
  ASSERT_EQ(report.quarantine_path, path + ".quarantine");
  std::ifstream quarantined(report.quarantine_path);
  ASSERT_TRUE(quarantined.good());
  std::ostringstream preserved;
  preserved << quarantined.rdbuf();
  EXPECT_NE(preserved.str().find(intact_line), std::string::npos);

  std::remove(path.c_str());
  std::remove(report.quarantine_path.c_str());
}

TEST(ResultCache, WellFormedLoadReportsClean) {
  std::string path = temp_path("mhla_cache_clean.json");
  ResultCache cache;
  cache.insert(3, {128, 0, "bnb", false, 1.0, 2.0});
  cache.save(path);
  ResultCache::LoadReport report;
  ResultCache loaded = ResultCache::load(path, report);
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.entries, 1u);
  EXPECT_EQ(report.salvaged, 0u);
  EXPECT_EQ(loaded.entries(), cache.entries());
  std::remove(path.c_str());
}

TEST(Explorer, ValidatesItsConfiguration) {
  ExplorerConfig config = small_config();
  config.l1_axis.clear();
  EXPECT_THROW(Explorer{config}, std::invalid_argument);

  config = small_config();
  config.seed_stride = 0;
  EXPECT_THROW(Explorer{config}, std::invalid_argument);

  config = small_config();
  config.strategies = {"no-such-strategy"};
  EXPECT_THROW(Explorer{config}, std::out_of_range);
}

TEST(Explorer, DuplicateStrategiesCollapseToOneAxisEntry) {
  ExplorerConfig config = small_config();
  config.strategies = {"greedy", "greedy"};
  Explorer explorer(config);
  EXPECT_EQ(explorer.config().strategies.size(), 1u);
  ExploreResult result = explorer.run(testing::blocked_reuse_program());
  EXPECT_EQ(result.lattice_cells, config.l1_axis.size() * config.l2_axis.size());
}

TEST(Explorer, TeAxisCollapsesWithoutADmaEngine) {
  // with_te cannot change any result when no transfer engine exists; the
  // TE axis must not double the lattice (and the budget burn) for nothing.
  ExplorerConfig config = small_config();
  config.explore_te = true;
  config.pipeline.dma.present = false;
  ExploreResult result = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(result.lattice_cells, config.l1_axis.size() * config.l2_axis.size());
}

TEST(Explorer, BudgetOnAWaveBoundaryAddsNoEmptyRound) {
  ExplorerConfig config = small_config();  // seed wave: 3 x 2 = 6 cells
  config.budget = 6;
  ExploreResult exact = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(exact.evaluations, 6u);
  EXPECT_EQ(exact.rounds, 1u);
  EXPECT_TRUE(exact.budget_exhausted);

  config.budget = 5;
  ExploreResult under = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(under.rounds, 1u);
}

TEST(Explorer, BitIdenticalAcrossThreadCounts) {
  ExplorerConfig config = small_config();
  config.pipeline.num_threads = 1;
  ExploreResult serial = Explorer(config).run(testing::blocked_reuse_program());
  ASSERT_FALSE(serial.samples.empty());

  for (unsigned threads : {0u, 4u}) {
    config.pipeline.num_threads = threads;
    ExploreResult parallel = Explorer(config).run(testing::blocked_reuse_program());
    ASSERT_EQ(parallel.samples.size(), serial.samples.size()) << "threads " << threads;
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
      EXPECT_EQ(parallel.samples[i].cell, serial.samples[i].cell);
      EXPECT_EQ(parallel.samples[i].point.cycles, serial.samples[i].point.cycles);
      EXPECT_EQ(parallel.samples[i].point.energy_nj, serial.samples[i].point.energy_nj);
    }
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.rounds, serial.rounds);
    ASSERT_EQ(parallel.frontier.size(), serial.frontier.size());
    for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
      EXPECT_EQ(parallel.frontier[i].cycles, serial.frontier[i].cycles);
      EXPECT_EQ(parallel.frontier[i].energy_nj, serial.frontier[i].energy_nj);
    }
  }
}

TEST(Explorer, BudgetCapsPipelineEvaluations) {
  ExplorerConfig config = small_config();
  config.budget = 4;
  ExploreResult result = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(result.evaluations, 4u);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.samples.size(), 4u);
}

TEST(Explorer, AnytimeFrontierIsValidUnderAnyBudget) {
  ExplorerConfig config = small_config();
  for (std::size_t budget : {1u, 3u, 7u}) {
    config.budget = budget;
    ExploreResult result = Explorer(config).run(testing::blocked_reuse_program());
    EXPECT_LE(result.evaluations, budget);
    EXPECT_FALSE(result.frontier.empty());
    for (const TradeoffPoint& f : result.frontier) {
      bool matches_sample = false;
      for (const ExploreSample& s : result.samples) {
        if (s.point.cycles == f.cycles && s.point.energy_nj == f.energy_nj) matches_sample = true;
      }
      EXPECT_TRUE(matches_sample);
    }
  }
}

TEST(Explorer, JointSpaceCoversStrategyAndTeAxes) {
  ExplorerConfig config = small_config();
  config.l1_axis = {256, 1024};
  config.strategies = {"greedy", "anneal"};
  config.pipeline.search.anneal_iterations = 200;
  config.explore_te = true;
  config.seed_stride = 1;  // full lattice
  ExploreResult result = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(result.lattice_cells, 2u * 2u * 2u * 2u);
  EXPECT_EQ(result.samples.size(), result.lattice_cells);
  std::size_t anneal_cells = 0;
  std::size_t te_off_cells = 0;
  for (const ExploreSample& sample : result.samples) {
    anneal_cells += sample.cell.strategy == "anneal";
    te_off_cells += !sample.cell.with_te;
  }
  EXPECT_EQ(anneal_cells, result.lattice_cells / 2);
  EXPECT_EQ(te_off_cells, result.lattice_cells / 2);

  // Every frontier point carries its full cell coordinates, so a joint-
  // space run can say which strategy/TE setting achieved it.
  ASSERT_EQ(result.frontier_cells.size(), result.frontier.size());
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    bool matches = false;
    for (const ExploreSample& sample : result.samples) {
      if (sample.cell == result.frontier_cells[i] &&
          sample.point.cycles == result.frontier[i].cycles &&
          sample.point.energy_nj == result.frontier[i].energy_nj) {
        matches = true;
      }
    }
    EXPECT_TRUE(matches) << i;
  }
}

TEST(Explorer, HalfBudgetFrontierDominatesDefaultSweepOnTwoApps) {
  // The acceptance bar of the exploration engine: on real applications,
  // adaptive refinement recovers the full fixed grid's frontier from at
  // most half the grid's pipeline evaluations.
  for (const char* app : {"cavity_detection", "fft_filter"}) {
    ir::Program program = apps::build_app(app);

    SweepConfig grid = default_sweep();
    std::vector<SweepSample> samples = sweep_layer_sizes(program, grid);
    std::vector<TradeoffPoint> grid_front = frontier(samples);

    ExplorerConfig config = default_explorer();
    config.budget = samples.size() / 2;
    ExploreResult adaptive = Explorer(config).run(program);

    EXPECT_LE(adaptive.evaluations, samples.size() / 2) << app;
    EXPECT_TRUE(frontier_covers(adaptive.frontier, grid_front)) << app;
  }
}

TEST(Explorer, WarmCacheRunsZeroEvaluationsAndReproducesTheFrontier) {
  std::string path = temp_path("mhla_cache_warm.json");
  ExplorerConfig config = small_config();
  config.cache_path = path;

  ExploreResult cold = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_GT(cold.evaluations, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);

  ExploreResult warm = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(warm.evaluations, 0u);
  EXPECT_EQ(warm.cache_hits, warm.samples.size());
  ASSERT_EQ(warm.samples.size(), cold.samples.size());
  for (std::size_t i = 0; i < cold.samples.size(); ++i) {
    EXPECT_EQ(warm.samples[i].cell, cold.samples[i].cell);
    EXPECT_EQ(warm.samples[i].point.cycles, cold.samples[i].point.cycles);
    EXPECT_EQ(warm.samples[i].point.energy_nj, cold.samples[i].point.energy_nj);
    EXPECT_TRUE(warm.samples[i].from_cache);
  }
  ASSERT_EQ(warm.frontier.size(), cold.frontier.size());
  for (std::size_t i = 0; i < cold.frontier.size(); ++i) {
    EXPECT_EQ(warm.frontier[i].cycles, cold.frontier[i].cycles);
    EXPECT_EQ(warm.frontier[i].energy_nj, cold.frontier[i].energy_nj);
  }
  std::remove(path.c_str());
}

TEST(Explorer, BudgetTruncatedRunReplaysWarmWithZeroEvaluations) {
  // The budget counts sampled cells, cache hits included, precisely so a
  // truncated exploration replays bit-identically from the cache instead
  // of spending its budget on the cells the cold run never reached.
  std::string path = temp_path("mhla_cache_budget_warm.json");
  ExplorerConfig config = small_config();
  config.budget = 7;  // seed wave (6) + part of the first refinement
  config.cache_path = path;

  ExploreResult cold = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(cold.evaluations, 7u);
  EXPECT_TRUE(cold.budget_exhausted);

  ExploreResult warm = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_EQ(warm.evaluations, 0u);
  EXPECT_EQ(warm.cache_hits, 7u);
  ASSERT_EQ(warm.samples.size(), cold.samples.size());
  for (std::size_t i = 0; i < cold.samples.size(); ++i) {
    EXPECT_EQ(warm.samples[i].cell, cold.samples[i].cell);
    EXPECT_EQ(warm.samples[i].point.cycles, cold.samples[i].point.cycles);
  }
  std::remove(path.c_str());
}

TEST(Explorer, CacheKeysSeparateProgramsAndConfigs) {
  std::string path = temp_path("mhla_cache_keys.json");
  ExplorerConfig config = small_config();
  config.cache_path = path;

  ExploreResult first = Explorer(config).run(testing::blocked_reuse_program());
  EXPECT_GT(first.evaluations, 0u);

  // A different program misses the cache entirely...
  ExploreResult other_program = Explorer(config).run(testing::tiny_stream_program());
  EXPECT_EQ(other_program.cache_hits, 0u);

  // ... as does a different target on the same program ...
  ExplorerConfig energy = config;
  energy.pipeline.target = assign::Target::Energy;
  ExploreResult other_target = Explorer(energy).run(testing::blocked_reuse_program());
  EXPECT_EQ(other_target.cache_hits, 0u);

  // ... while the thread count is deliberately not part of the key.
  ExplorerConfig threaded = config;
  threaded.pipeline.num_threads = 4;
  ExploreResult same_key = Explorer(threaded).run(testing::blocked_reuse_program());
  EXPECT_EQ(same_key.evaluations, 0u);

  // The bnb-par knobs only steer pruning (the optimum is bit-identical for
  // any setting), so they must not change keys either.
  ExplorerConfig par_knobs = config;
  par_knobs.pipeline.search.bnb_threads = 8;
  par_knobs.pipeline.search.bnb_tasks_per_thread = 2;
  par_knobs.pipeline.search.bnb_seed_incumbent = false;
  ExploreResult par_key = Explorer(par_knobs).run(testing::blocked_reuse_program());
  EXPECT_EQ(par_key.evaluations, 0u);
  std::remove(path.c_str());
}

TEST(Corpus, ExploresEveryMemberAndAggregatesCounters) {
  CorpusConfig config;
  config.explorer = small_config();
  config.explorer.cache_path = temp_path("mhla_cache_corpus.json");
  config.apps = {"conv_filter", "fft_filter"};
  config.random_programs = 1;
  config.random_seed = 11;

  CorpusResult result = explore_corpus(config);
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.entries[0].program, "conv_filter");
  EXPECT_EQ(result.entries[1].program, "fft_filter");
  EXPECT_EQ(result.entries[2].program, "fuzz_11");
  std::size_t evaluations = 0;
  std::size_t hits = 0;
  for (const CorpusEntry& entry : result.entries) {
    EXPECT_FALSE(entry.result.frontier.empty()) << entry.program;
    evaluations += entry.result.evaluations;
    hits += entry.result.cache_hits;
  }
  EXPECT_EQ(result.evaluations, evaluations);
  EXPECT_EQ(result.cache_hits, hits);

  // A warm corpus re-run touches no pipeline at all.
  CorpusResult warm = explore_corpus(config);
  EXPECT_EQ(warm.evaluations, 0u);
  EXPECT_EQ(warm.cache_hits, result.cache_hits + result.evaluations);
  std::remove(config.explorer.cache_path.c_str());
}

TEST(ExploreJson, ReportIsWellFormedAndCarriesCounters) {
  ExplorerConfig config = small_config();
  config.budget = 3;
  ExploreResult result = Explorer(config).run(testing::blocked_reuse_program());
  std::string json = to_json(result);
  EXPECT_NE(json.find("\"evaluations\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"frontier\""), std::string::npos);
  EXPECT_NE(json.find("\"from_cache\": false"), std::string::npos);
}

}  // namespace
}  // namespace mhla::xplore
