#include "explore/concurrent_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "explore/explorer.h"
#include "helpers.h"

namespace mhla::xplore {
namespace {

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Deterministic entry derived from its key — the property tests' oracle:
/// whatever interleaving happened, the entry at `key` can only ever be
/// `entry_for(key)`.
CacheEntry entry_for(std::uint64_t key, assign::SearchStatus status = assign::SearchStatus::Feasible) {
  CacheEntry entry;
  entry.l1_bytes = static_cast<i64>(key * 2 + 128);
  entry.l2_bytes = static_cast<i64>(key % 3 == 0 ? 0 : key * 64);
  entry.strategy = key % 2 ? "greedy" : "bnb";
  entry.with_te = key % 2 == 0;
  entry.cycles = static_cast<double>(key) * 1.5 + 0.25;
  entry.energy_nj = static_cast<double>(key) * 2.5 + 0.125;
  entry.status = status;
  return entry;
}

// --- The cacheability guard lives in the cache layer itself ------------------

TEST(CacheStatusGuard, ResultCacheRefusesNonCompletedResults) {
  ResultCache cache;
  EXPECT_TRUE(cache.insert(1, entry_for(1, assign::SearchStatus::Optimal)));
  EXPECT_TRUE(cache.insert(2, entry_for(2, assign::SearchStatus::Feasible)));
  // A budget-truncated or infeasible result must be dropped by the cache
  // itself, not just by well-behaved callers: a truncated value depends on
  // knobs the key normalizes away and would poison every later lookup.
  EXPECT_FALSE(cache.insert(3, entry_for(3, assign::SearchStatus::BudgetExhausted)));
  EXPECT_FALSE(cache.insert(4, entry_for(4, assign::SearchStatus::Infeasible)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_EQ(cache.find(4), nullptr);

  // An overwrite attempt with a truncated result must not clobber the
  // completed entry either.
  EXPECT_FALSE(cache.insert(1, entry_for(1, assign::SearchStatus::BudgetExhausted)));
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(1)->status, assign::SearchStatus::Optimal);
}

TEST(CacheStatusGuard, ConcurrentCacheRefusesNonCompletedResults) {
  ConcurrentResultCache cache;
  EXPECT_TRUE(cache.insert(1, entry_for(1, assign::SearchStatus::Optimal)));
  EXPECT_FALSE(cache.insert(2, entry_for(2, assign::SearchStatus::BudgetExhausted)));
  EXPECT_FALSE(cache.insert(3, entry_for(3, assign::SearchStatus::Infeasible)));
  EXPECT_EQ(cache.size(), 1u);
  CacheEntry out;
  EXPECT_FALSE(cache.lookup(2, out));
  EXPECT_FALSE(cache.lookup(3, out));
  EXPECT_EQ(cache.stats().rejected, 2u);
}

TEST(CacheStatusGuard, StatusRoundTripsAndPreStatusDocumentsLoadFeasible) {
  ResultCache cache;
  cache.insert(7, entry_for(7, assign::SearchStatus::Optimal));
  ResultCache reloaded = ResultCache::from_json(cache.to_json());
  ASSERT_NE(reloaded.find(7), nullptr);
  EXPECT_EQ(reloaded.find(7)->status, assign::SearchStatus::Optimal);
  EXPECT_EQ(reloaded.entries(), cache.entries());

  // A document written before entries carried a status (the pre-status
  // format) loads as Feasible — the contract those entries were cached
  // under — instead of being dropped or failing the parse.
  const std::string legacy =
      "{\n  \"version\": 1,\n  \"entries\": [\n"
      "    {\"key\": \"000000000000002a\", \"l1_bytes\": 256, \"l2_bytes\": 0,"
      " \"strategy\": \"greedy\", \"with_te\": true, \"cycles\": 10.0,"
      " \"energy_nj\": 20.0}\n  ]\n}";
  ResultCache migrated = ResultCache::from_json(legacy);
  ASSERT_NE(migrated.find(42), nullptr);
  EXPECT_EQ(migrated.find(42)->status, assign::SearchStatus::Feasible);
}

// --- Bounds: LRU eviction above the cap, a hard floor below ------------------

TEST(ConcurrentCache, EvictsLeastRecentlyUsedPastTheCap) {
  // One shard makes the LRU order globally observable.
  ConcurrentResultCache cache({/*max_entries=*/4, /*evict_floor=*/0}, /*shard_count=*/1);
  for (std::uint64_t key = 0; key < 4; ++key) ASSERT_TRUE(cache.insert(key, entry_for(key)));

  // Touch key 0 so key 1 is now the cold tail.
  CacheEntry out;
  ASSERT_TRUE(cache.lookup(0, out));
  EXPECT_EQ(out, entry_for(0));

  ASSERT_TRUE(cache.insert(10, entry_for(10)));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_FALSE(cache.lookup(1, out)) << "cold tail should have been evicted";
  EXPECT_TRUE(cache.lookup(0, out)) << "recently used entry must survive";
  EXPECT_TRUE(cache.lookup(10, out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ConcurrentCache, OverwriteDoesNotGrowOrEvict) {
  ConcurrentResultCache cache({/*max_entries=*/2, /*evict_floor=*/0}, 1);
  ASSERT_TRUE(cache.insert(1, entry_for(1)));
  ASSERT_TRUE(cache.insert(2, entry_for(2)));
  CacheEntry updated = entry_for(1);
  updated.cycles = 999.0;
  ASSERT_TRUE(cache.insert(1, updated));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  CacheEntry out;
  ASSERT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out.cycles, 999.0);
}

TEST(ConcurrentCache, EvictionNeverDropsBelowTheFloorUnderContention) {
  const std::size_t kFloor = 24;
  // Cap below the floor: the floor wins, so this is the worst-case eviction
  // pressure — every insert past the cap wants to evict and the floor must
  // hold under any interleaving.
  ConcurrentResultCache cache({/*max_entries=*/8, /*evict_floor=*/kFloor}, /*shard_count=*/4);

  // Warm past the floor, then hammer it from writers while readers assert
  // the floor invariant on every observation.
  for (std::uint64_t key = 0; key < kFloor; ++key) ASSERT_TRUE(cache.insert(key, entry_for(key)));
  ASSERT_GE(cache.size(), kFloor);

  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        std::uint64_t key = 1000 + static_cast<std::uint64_t>(t) * 10000 + i;
        cache.insert(key, entry_for(key));
        if (cache.size() < kFloor) violated.store(true);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      if (cache.size() < kFloor) violated.store(true);
      CacheEntry out;
      cache.lookup(3, out);  // recency churn while evictions race
    }
  });
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  reader.join();

  EXPECT_FALSE(violated.load()) << "cache shrank below the eviction floor";
  EXPECT_GE(cache.size(), kFloor);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// --- Concurrent property: N threads vs the single-threaded model -------------

TEST(ConcurrentCache, ConcurrentInsertsAndLookupsMatchReferenceModel) {
  const int kThreads = 8;
  const std::uint64_t kKeys = 512;
  ConcurrentResultCache cache({}, /*shard_count=*/8);

  // Every thread inserts every key (same derived value — the oracle) in a
  // different order and verifies whatever it reads back.
  std::atomic<bool> wrong_value{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        std::uint64_t key = (i * 2654435761u + static_cast<std::uint64_t>(t)) % kKeys;
        cache.insert(key, entry_for(key));
        CacheEntry out;
        if (cache.lookup(key, out) && !(out == entry_for(key))) wrong_value.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(wrong_value.load());

  // The single-threaded reference model: the same inserts in any order.
  ResultCache reference;
  for (std::uint64_t key = 0; key < kKeys; ++key) reference.insert(key, entry_for(key));
  EXPECT_EQ(cache.snapshot().entries(), reference.entries());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kThreads) * kKeys);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads) * kKeys);
}

// --- Merge convergence -------------------------------------------------------

TEST(ConcurrentCache, MergeFromShardsConvergesOnTheReferenceMerge) {
  ResultCache shard_a, shard_b;
  for (std::uint64_t key = 0; key < 40; ++key) shard_a.insert(key, entry_for(key));
  for (std::uint64_t key = 20; key < 60; ++key) shard_b.insert(key, entry_for(key));

  ConcurrentResultCache cache;
  cache.merge_from(shard_a);
  cache.merge_from(shard_b);

  ResultCache reference;
  reference.merge_from(shard_a);
  reference.merge_from(shard_b);
  EXPECT_EQ(cache.snapshot().entries(), reference.entries());

  // Concurrent-to-concurrent merge too (server adopting another server's
  // in-memory cache).
  ConcurrentResultCache other;
  other.merge_from(cache);
  EXPECT_EQ(other.snapshot().entries(), reference.entries());
}

// --- Crash-safe persistence --------------------------------------------------

TEST(ConcurrentCache, SaveCrashNeverLosesThePersistedDocument) {
  std::string path = temp_path("mhla_ccache_crash.json");
  ConcurrentResultCache cache;
  for (std::uint64_t key = 0; key < 8; ++key) ASSERT_TRUE(cache.insert(key, entry_for(key)));
  cache.save(path);
  const std::string persisted = slurp(path);

  ASSERT_TRUE(cache.insert(100, entry_for(100)));

  // Kill the save at each of its I/O steps (open, write+flush, rename);
  // the previously persisted document must survive byte-identically.
  for (long nth = 1; nth <= 3; ++nth) {
    SCOPED_TRACE("I/O fault at step " + std::to_string(nth));
    core::ScopedFault fault(core::FaultInjector::Site::IoWrite, nth);
    EXPECT_THROW(cache.save(path), std::runtime_error);
    EXPECT_EQ(slurp(path), persisted);
  }

  // A crash-interrupted periodic save must leave save_if_dirty dirty, so
  // the next tick retries instead of believing the failed pass.
  {
    core::ScopedFault fault(core::FaultInjector::Site::IoWrite, 2);
    EXPECT_THROW(cache.save_if_dirty(path), std::runtime_error);
  }
  EXPECT_TRUE(cache.save_if_dirty(path));
  ResultCache::LoadReport report;
  ConcurrentResultCache reloaded;
  report = reloaded.load_file(path);
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(reloaded.snapshot().entries(), cache.snapshot().entries());
  std::remove(path.c_str());
}

TEST(ConcurrentCache, SaveIfDirtySkipsWhenNothingChanged) {
  std::string path = temp_path("mhla_ccache_dirty.json");
  ConcurrentResultCache cache;
  ASSERT_TRUE(cache.insert(1, entry_for(1)));
  EXPECT_TRUE(cache.save_if_dirty(path));
  EXPECT_FALSE(cache.save_if_dirty(path)) << "clean cache must skip the I/O";
  ASSERT_TRUE(cache.insert(2, entry_for(2)));
  EXPECT_TRUE(cache.save_if_dirty(path));
  EXPECT_EQ(cache.stats().saves, 2u);
  std::remove(path.c_str());
}

TEST(ConcurrentCache, LoadFileSalvagesDamagedDocuments) {
  std::string path = temp_path("mhla_ccache_salvage.json");
  ResultCache seed;
  seed.insert(1, entry_for(1));
  seed.insert(2, entry_for(2));
  seed.save(path);

  // Truncate mid-document inside the second entry's line: the first entry
  // line stays intact and must be salvaged into the concurrent cache.
  std::string document = slurp(path);
  std::size_t second_entry = document.find("\"key\"", document.find("\"key\"") + 1);
  ASSERT_NE(second_entry, std::string::npos);
  std::ofstream(path, std::ios::trunc) << document.substr(0, second_entry);

  ConcurrentResultCache cache;
  ResultCache::LoadReport report = cache.load_file(path);
  EXPECT_FALSE(report.clean);
  EXPECT_GE(report.salvaged, 1u);
  CacheEntry out;
  EXPECT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out, entry_for(1));
  std::filesystem::remove(path);
  std::filesystem::remove(report.quarantine_path);
}

// --- The explorer over the concurrent store ----------------------------------

TEST(ConcurrentCache, ExplorerWarmReplayHasZeroEvaluations) {
  ExplorerConfig config;
  config.l1_axis = {128, 256, 512, 1024, 2048};
  config.l2_axis = {0, 8192};
  config.pipeline.platform = mhla::testing::small_platform();
  Explorer explorer(config);
  ir::Program program = mhla::testing::blocked_reuse_program();

  // Reference: the single-threaded cache the batch drivers use.
  ResultCache reference_cache;
  ExploreResult reference = explorer.run(program, reference_cache);

  ConcurrentResultCache cache;
  ExploreResult cold = explorer.run(program, cache);
  EXPECT_GT(cold.evaluations, 0u);
  ASSERT_EQ(cold.samples.size(), reference.samples.size());
  for (std::size_t i = 0; i < cold.samples.size(); ++i) {
    EXPECT_EQ(cold.samples[i].point.cycles, reference.samples[i].point.cycles);
    EXPECT_EQ(cold.samples[i].point.energy_nj, reference.samples[i].point.energy_nj);
  }
  EXPECT_EQ(cache.snapshot().entries(), reference_cache.entries());

  // Warm replay: identical samples, zero pipeline runs.
  ExploreResult warm = explorer.run(program, cache);
  EXPECT_EQ(warm.evaluations, 0u);
  EXPECT_EQ(warm.cache_hits, warm.samples.size());
  ASSERT_EQ(warm.frontier.size(), cold.frontier.size());
  for (std::size_t i = 0; i < warm.frontier.size(); ++i) {
    EXPECT_EQ(warm.frontier[i].cycles, cold.frontier[i].cycles);
    EXPECT_EQ(warm.frontier[i].energy_nj, cold.frontier[i].energy_nj);
  }
}

}  // namespace
}  // namespace mhla::xplore
