#pragma once

// Shared fixtures and builders for the MHLA test suite.

#include <memory>

#include "apps/registry.h"
#include "core/driver.h"
#include "ir/builder.h"

namespace mhla::testing {

using ir::ac;
using ir::av;

/// A tiny single-nest streaming program: one big input array read row by
/// row with a small reused table.  Small enough for exhaustive search.
inline ir::Program tiny_stream_program() {
  ir::ProgramBuilder pb("tiny_stream");
  pb.array("big", {64, 64}, 4).input();
  pb.array("tab", {16}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("i", 0, 64);
  pb.begin_loop("j", 0, 64);
  pb.stmt("work", 2)
      .read("big", {av("i"), av("j")})
      .read("tab", {av("j", 0) + ac(0)});  // constant subscript: tab[0]
  pb.end_loop();
  pb.stmt("emit", 1).write("out", {av("i")});
  pb.end_loop();
  return pb.finish();
}

/// A two-nest producer/consumer program exercising lifetimes & dependences.
inline ir::Program producer_consumer_program() {
  ir::ProgramBuilder pb("prod_cons");
  pb.array("src", {128}, 4).input();
  pb.array("mid", {128}, 4);
  pb.array("dst", {128}, 4).output();
  pb.begin_loop("i", 0, 128);
  pb.stmt("produce", 1).read("src", {av("i")}).write("mid", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 128);
  pb.stmt("consume", 1).read("mid", {av("j")}).write("dst", {av("j")});
  pb.end_loop();
  return pb.finish();
}

/// A blocked program with a clear two-level reuse chain: block copies under
/// (bi) reused across an inner sweep.
inline ir::Program blocked_reuse_program() {
  ir::ProgramBuilder pb("blocked");
  pb.array("data", {32, 64}, 4).input();
  pb.array("acc", {32}, 4).output();
  pb.begin_loop("bi", 0, 32);
  pb.begin_loop("rep", 0, 10);
  pb.begin_loop("k", 0, 64);
  pb.stmt("use", 1).read("data", {av("bi"), av("k")});
  pb.end_loop();
  pb.end_loop();
  pb.stmt("save", 1).write("acc", {av("bi")});
  pb.end_loop();
  return pb.finish();
}

/// Default test platform: 1 KiB L1 + 16 KiB L2 over SDRAM.
inline mem::PlatformConfig small_platform() {
  mem::PlatformConfig platform;
  platform.l1_bytes = 1024;
  platform.l2_bytes = 16 * 1024;
  return platform;
}

/// Workspace over any program with the small test platform.
inline std::unique_ptr<core::Workspace> make_ws(ir::Program program,
                                                mem::PlatformConfig platform = small_platform(),
                                                mem::DmaEngine dma = {}) {
  return core::make_workspace(std::move(program), platform, dma);
}

/// Binary-wide heap-allocation counter (tests/helpers_alloc.cpp replaces the
/// global operator new/delete with counting forms).  Monotonic count of
/// successful allocations since process start; sample it before and after a
/// region to assert the region's allocation count — the zero-steady-state
/// regression suite does exactly that around engine/tracker moves.
long heap_allocations();

}  // namespace mhla::testing
