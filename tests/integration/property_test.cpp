// Parameterized property sweeps over platform sizes: invariants that must
// hold for *every* configuration, on a representative workload.

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla {
namespace {

struct PlatformCase {
  ir::i64 l1;
  ir::i64 l2;
};

std::string case_name(const ::testing::TestParamInfo<PlatformCase>& info) {
  return "L1_" + std::to_string(info.param.l1) + "_L2_" + std::to_string(info.param.l2);
}

class PlatformSweep : public ::testing::TestWithParam<PlatformCase> {
 protected:
  std::unique_ptr<core::Workspace> ws_ = [] {
    PlatformCase c = GetParam();
    mem::PlatformConfig platform;
    platform.l1_bytes = c.l1;
    platform.l2_bytes = c.l2;
    return core::make_workspace(apps::build_cavity_detection(), platform, {});
  }();
};

TEST_P(PlatformSweep, GreedyNeverWorseThanBaseline) {
  auto ctx = ws_->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  assign::Objective obj = assign::make_objective(ctx, 1.0, 1.0);
  double baseline = obj.scalar(assign::estimate_cost(ctx, assign::out_of_box(ctx)));
  EXPECT_LE(greedy.final_scalar, baseline + 1e-9);
}

TEST_P(PlatformSweep, ResultAlwaysFeasible) {
  auto ctx = ws_->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  EXPECT_TRUE(assign::fits(ctx, greedy.assignment));
  EXPECT_TRUE(assign::layering_valid(ctx, greedy.assignment));
}

TEST_P(PlatformSweep, SimAgreesWithCost) {
  auto ctx = ws_->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  assign::CostEstimate cost = assign::estimate_cost(ctx, greedy.assignment);
  sim::SimResult result = sim::simulate(ctx, greedy.assignment);
  EXPECT_NEAR(result.total_cycles(), cost.total_cycles(), 1e-6 * cost.total_cycles());
  EXPECT_NEAR(result.energy_nj, cost.energy_nj, 1e-6 * cost.energy_nj);
}

TEST_P(PlatformSweep, EnergyInvariantUnderTe) {
  auto ctx = ws_->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  sim::SimResult blocking = sim::simulate(ctx, greedy.assignment,
                                          {te::TransferMode::Blocking, {}});
  sim::SimResult extended = sim::simulate(ctx, greedy.assignment,
                                          {te::TransferMode::TimeExtended, {}});
  EXPECT_DOUBLE_EQ(blocking.energy_nj, extended.energy_nj);
}

TEST_P(PlatformSweep, ModeOrderingHolds) {
  auto ctx = ws_->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  double blocking =
      sim::simulate(ctx, greedy.assignment, {te::TransferMode::Blocking, {}}).total_cycles();
  double extended =
      sim::simulate(ctx, greedy.assignment, {te::TransferMode::TimeExtended, {}}).total_cycles();
  double ideal =
      sim::simulate(ctx, greedy.assignment, {te::TransferMode::Ideal, {}}).total_cycles();
  EXPECT_LE(ideal, extended + 1e-9);
  EXPECT_LE(extended, blocking + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Platforms, PlatformSweep,
                         ::testing::Values(PlatformCase{0, 0}, PlatformCase{256, 0},
                                           PlatformCase{1024, 0}, PlatformCase{4096, 0},
                                           PlatformCase{0, 65536}, PlatformCase{1024, 16384},
                                           PlatformCase{4096, 131072},
                                           PlatformCase{16384, 262144}),
                         case_name);

class LookaheadSweep : public ::testing::TestWithParam<int> {};

TEST_P(LookaheadSweep, DeeperLookaheadNeverHurts) {
  auto ws = core::make_workspace(apps::build_adpcm_coder(), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;

  te::TeOptions shallow;
  shallow.max_lookahead = 1;
  te::TeOptions deep;
  deep.max_lookahead = GetParam();

  auto bts = te::collect_block_transfers(ctx, a);
  double hidden_shallow = te::time_extend(ctx, a, bts, shallow).total_hidden_cycles;
  double hidden_deep = te::time_extend(ctx, a, bts, deep).total_hidden_cycles;
  EXPECT_GE(hidden_deep, hidden_shallow - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Depths, LookaheadSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace mhla
