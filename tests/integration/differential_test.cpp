// Differential-testing harness for the search-strategy registry: every
// strategy pair with a reference path must agree over a randomized corpus,
// and every heuristic must be dominated by the exact optimum wherever the
// optimum is computable.
//
//   greedy   vs greedy-ref     — bit-identical moves/result (engine contract)
//   bnb      vs exhaustive-ref — identical optimum (pruning never changes it)
//   bnb-par  vs bnb            — identical optimum for any thread count,
//                                under both the work-stealing scheduler and
//                                the static-split baseline
//   footprint bound on vs off  — identical optimum, never more states
//   greedy / anneal            — scalar dominated by the exact optimum
//   tracker on vs off          — greedy/bnb/anneal unchanged when feasibility
//                                comes from the incremental FootprintTracker
//                                instead of a from-scratch fits() per probe
//
// Corpus size: MHLA_DIFF_SEEDS (default 50).  CI runs the full corpus in
// Release and a reduced one under ASan (the generator is seeded, so seed k
// names the same program in both).  Comparisons are skipped when an
// instance exceeds a path's placement guard or exhausts its state budget
// (budget-bound runs are legitimately path-dependent); the harness asserts
// minimum comparison counts so the suite cannot silently go vacuous.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "assign/search.h"
#include "core/driver.h"
#include "explore/explorer.h"
#include "gen/random_program.h"
#include "helpers.h"

namespace mhla {
namespace {

int corpus_seeds() {
  if (const char* env = std::getenv("MHLA_DIFF_SEEDS")) {
    int seeds = std::atoi(env);
    if (seeds > 0) return seeds;
  }
  return 50;
}

std::size_t candidate_placements(const assign::AssignContext& ctx) {
  return ctx.reuse.candidates().size() *
         static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
}

TEST(Differential, RegistryStrategyPairsAgreeOverRandomCorpus) {
  const int seeds = corpus_seeds();
  int greedy_compared = 0;
  int exact_compared = 0;
  int parallel_compared = 0;
  int dominance_checked = 0;

  for (std::uint32_t seed = 1; seed <= static_cast<std::uint32_t>(seeds); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto ws = testing::make_ws(gen::random_program(seed));
    auto ctx = ws->context();
    std::size_t placements = candidate_placements(ctx);

    // Heuristic pair: engine-backed greedy must replay the from-scratch
    // reference bit for bit on every instance.
    assign::SearchOptions options;
    assign::SearchResult greedy = assign::searcher("greedy").search(ctx, options);
    assign::SearchResult greedy_ref = assign::searcher("greedy-ref").search(ctx, options);
    EXPECT_EQ(greedy.assignment, greedy_ref.assignment);
    EXPECT_EQ(greedy.scalar, greedy_ref.scalar);
    EXPECT_EQ(greedy.evaluations, greedy_ref.evaluations);
    EXPECT_EQ(greedy.moves.size(), greedy_ref.moves.size());
    EXPECT_TRUE(assign::fits(ctx, greedy.assignment));
    EXPECT_TRUE(assign::layering_valid(ctx, greedy.assignment));
    ++greedy_compared;

    // Feasibility pair: the tracker-backed fits() must not change a single
    // decision relative to the from-scratch rebuild per probe.
    assign::SearchOptions scratch_fits = options;
    scratch_fits.use_footprint_tracker = false;
    assign::SearchResult greedy_scratch = assign::searcher("greedy").search(ctx, scratch_fits);
    EXPECT_EQ(greedy_scratch.assignment, greedy.assignment);
    EXPECT_EQ(greedy_scratch.scalar, greedy.scalar);
    EXPECT_EQ(greedy_scratch.evaluations, greedy.evaluations);

    // Scoring pair: the batched select-move scorer accumulates each slot's
    // terms in the canonical summation order, so it must not change a single
    // decision relative to the checkpoint/apply/undo cycle per candidate.
    assign::SearchOptions per_candidate = options;
    per_candidate.greedy_batched_scoring = false;
    assign::SearchResult greedy_seq = assign::searcher("greedy").search(ctx, per_candidate);
    EXPECT_EQ(greedy_seq.assignment, greedy.assignment);
    EXPECT_EQ(greedy_seq.scalar, greedy.scalar);
    EXPECT_EQ(greedy_seq.evaluations, greedy.evaluations);
    EXPECT_EQ(greedy_seq.moves.size(), greedy.moves.size());

    // Exact pair: branch-and-bound against the un-pruned reference
    // enumeration, where the reference guard admits the instance and
    // neither search runs out of budget.
    bool have_optimum = false;
    assign::SearchResult optimum;
    if (placements <= assign::kReferencePlacementGuard) {
      assign::SearchOptions exact = options;
      exact.max_states = 120000;
      assign::SearchResult reference = assign::searcher("exhaustive-ref").search(ctx, exact);
      assign::SearchResult bnb = assign::searcher("bnb").search(ctx, exact);
      if (!reference.exhausted_budget && !bnb.exhausted_budget) {
        EXPECT_EQ(bnb.assignment, reference.assignment);
        EXPECT_EQ(bnb.scalar, reference.scalar);
        EXPECT_LE(bnb.states_explored, reference.states_explored);
        assign::SearchOptions exact_scratch_fits = exact;
        exact_scratch_fits.use_footprint_tracker = false;
        assign::SearchResult bnb_scratch =
            assign::searcher("bnb").search(ctx, exact_scratch_fits);
        EXPECT_EQ(bnb_scratch.assignment, bnb.assignment);
        EXPECT_EQ(bnb_scratch.scalar, bnb.scalar);
        EXPECT_EQ(bnb_scratch.states_explored, bnb.states_explored);
        have_optimum = true;
        optimum = std::move(bnb);
        ++exact_compared;
      }
    }

    // Parallel pair: bnb-par must reproduce serial bnb bit for bit at
    // several thread counts (the shared incumbent only prunes).
    if (placements <= assign::kEnginePlacementGuard) {
      assign::SearchOptions serial_options = options;
      serial_options.max_states = 300000;
      assign::SearchResult serial = assign::searcher("bnb").search(ctx, serial_options);
      if (!serial.exhausted_budget) {
        if (!have_optimum) {
          have_optimum = true;
          optimum = serial;
        }
        for (unsigned threads : {2u, 3u}) {
          assign::SearchOptions par_options = serial_options;
          par_options.bnb_threads = threads;
          // Alternate schedulers across the corpus so both the work-stealing
          // deques and the static-split baseline face every program shape.
          par_options.bnb_work_stealing = (seed + threads) % 2 == 0;
          assign::SearchResult parallel = assign::searcher("bnb-par").search(ctx, par_options);
          // max_states bounds each task separately and task pruning depends
          // on incumbent timing, so a task can run out of budget even when
          // the serial search did not; bit-identity is only guaranteed
          // budget-free.
          if (parallel.exhausted_budget) continue;
          EXPECT_EQ(parallel.assignment, serial.assignment) << "threads " << threads;
          EXPECT_EQ(parallel.scalar, serial.scalar) << "threads " << threads;
        }
        ++parallel_compared;
      }
    }

    // Dominance: no heuristic may beat the exact optimum (the tiny margin
    // absorbs the heuristics' independently accumulated float sums).
    if (have_optimum) {
      EXPECT_TRUE(assign::fits(ctx, optimum.assignment));
      EXPECT_TRUE(assign::layering_valid(ctx, optimum.assignment));
      EXPECT_GE(greedy.scalar, optimum.scalar * (1.0 - 1e-9));
      assign::SearchResult anneal = assign::searcher("anneal").search(ctx, options);
      EXPECT_TRUE(assign::fits(ctx, anneal.assignment));
      EXPECT_GE(anneal.scalar, optimum.scalar * (1.0 - 1e-9));
      // The stochastic walk rejects proposals on the feasibility verdict,
      // so the tracker toggle must reproduce the identical chain.
      assign::SearchResult anneal_scratch = assign::searcher("anneal").search(ctx, scratch_fits);
      EXPECT_EQ(anneal_scratch.assignment, anneal.assignment);
      EXPECT_EQ(anneal_scratch.scalar, anneal.scalar);
      EXPECT_EQ(anneal_scratch.evaluations, anneal.evaluations);
      ++dominance_checked;
    }
  }

  // The corpus must actually exercise every pair — if the generator or the
  // guards drift, fail loudly instead of passing on zero comparisons.
  EXPECT_EQ(greedy_compared, seeds);
  EXPECT_GE(exact_compared, std::max(1, seeds / 5));
  EXPECT_GE(parallel_compared, std::max(1, seeds / 2));
  EXPECT_GE(dominance_checked, std::max(1, seeds / 2));
}

/// The two registry applications the determinism stress runs on: both fit
/// the branch-and-bound placement guard on the default platform.
std::vector<std::string> stress_apps() { return {"conv_filter", "cavity_detection"}; }

TEST(Differential, BnbParIsBitIdenticalAcrossThreadCounts) {
  // Both schedulers — the work-stealing deques (default) and the static
  // root-frontier split kept as the comparison baseline — must reproduce the
  // serial optimum bit for bit at every thread count.  Under work stealing
  // the subtree interleaving additionally depends on steal timing, so the
  // same gate covers "any steal schedule".
  for (const std::string& app : stress_apps()) {
    SCOPED_TRACE(app);
    auto ws = core::make_workspace(apps::build_app(app), mem::PlatformConfig{}, {});
    auto ctx = ws->context();
    assign::SearchOptions options;
    assign::SearchResult serial = assign::searcher("bnb").search(ctx, options);
    ASSERT_FALSE(serial.exhausted_budget);
    for (bool stealing : {true, false}) {
      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE((stealing ? "work-stealing, threads " : "static split, threads ") +
                     std::to_string(threads));
        assign::SearchOptions par_options = options;
        par_options.bnb_threads = threads;
        par_options.bnb_work_stealing = stealing;
        assign::SearchResult parallel = assign::searcher("bnb-par").search(ctx, par_options);
        EXPECT_EQ(parallel.assignment, serial.assignment);
        EXPECT_EQ(parallel.scalar, serial.scalar);
        EXPECT_FALSE(parallel.exhausted_budget);
      }
    }
  }
}

TEST(Differential, BatchedGreedyMatchesPerCandidateScoring) {
  // The batched scorer replays, per slot, exactly the additions totals()
  // would perform after that one placement, in the identical order — so on
  // the registry applications every score, verdict, probe point, tie-break,
  // and accepted move must match the per-candidate apply/undo walk bit for
  // bit, not merely the final assignment.
  for (const std::string& app : stress_apps()) {
    SCOPED_TRACE(app);
    auto ws = core::make_workspace(apps::build_app(app), mem::PlatformConfig{}, {});
    auto ctx = ws->context();
    assign::SearchOptions batched;
    assign::SearchOptions per_candidate;
    per_candidate.greedy_batched_scoring = false;
    assign::SearchResult fast = assign::searcher("greedy").search(ctx, batched);
    assign::SearchResult slow = assign::searcher("greedy").search(ctx, per_candidate);
    EXPECT_EQ(fast.assignment, slow.assignment);
    EXPECT_EQ(fast.scalar, slow.scalar);
    EXPECT_EQ(fast.evaluations, slow.evaluations);
    ASSERT_EQ(fast.moves.size(), slow.moves.size());
    for (std::size_t i = 0; i < fast.moves.size(); ++i) {
      SCOPED_TRACE("move " + std::to_string(i));
      EXPECT_EQ(fast.moves[i].kind, slow.moves[i].kind);
      EXPECT_EQ(fast.moves[i].cc_id, slow.moves[i].cc_id);
      EXPECT_EQ(fast.moves[i].array, slow.moves[i].array);
      EXPECT_EQ(fast.moves[i].layer, slow.moves[i].layer);
      EXPECT_EQ(fast.moves[i].gain, slow.moves[i].gain);
      EXPECT_EQ(fast.moves[i].gain_per_byte, slow.moves[i].gain_per_byte);
    }
  }
}

TEST(Differential, FootprintBoundTogglePreservesOptimumAndOnlyPrunes) {
  // The footprint-aware copy-phase bound is admissible: toggling it may only
  // change how much is pruned, never the optimum — serial and work-stealing
  // parallel alike.
  for (const std::string& app : stress_apps()) {
    SCOPED_TRACE(app);
    auto ws = core::make_workspace(apps::build_app(app), mem::PlatformConfig{}, {});
    auto ctx = ws->context();
    assign::SearchOptions with_bound;
    with_bound.use_footprint_bound = true;
    assign::SearchOptions without_bound;
    without_bound.use_footprint_bound = false;
    assign::SearchResult tight = assign::searcher("bnb").search(ctx, with_bound);
    assign::SearchResult loose = assign::searcher("bnb").search(ctx, without_bound);
    ASSERT_FALSE(tight.exhausted_budget);
    ASSERT_FALSE(loose.exhausted_budget);
    EXPECT_EQ(tight.assignment, loose.assignment);
    EXPECT_EQ(tight.scalar, loose.scalar);
    EXPECT_LE(tight.states_explored, loose.states_explored);

    for (unsigned threads : {2u, 4u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      assign::SearchOptions par_options = without_bound;
      par_options.bnb_threads = threads;
      assign::SearchResult parallel = assign::searcher("bnb-par").search(ctx, par_options);
      EXPECT_EQ(parallel.assignment, tight.assignment);
      EXPECT_EQ(parallel.scalar, tight.scalar);
    }
  }
}

TEST(Differential, ExplorerWithBnbParIsBitIdenticalAcrossThreadCounts) {
  // The exploration engine can put the parallel searcher on its strategy
  // axis; the joint result — every sample and the frontier — must not
  // depend on the explorer's own worker count or on bnb-par's.
  for (const std::string& app : stress_apps()) {
    SCOPED_TRACE(app);
    ir::Program program = apps::build_app(app);
    xplore::ExplorerConfig config;
    config.l1_axis = {256, 1024, 4096};
    config.l2_axis = {0, 8192};
    config.strategies = {"greedy", "bnb-par"};
    config.pipeline.search.bnb_threads = 2;

    config.pipeline.num_threads = 1;
    xplore::ExploreResult serial = xplore::Explorer(config).run(program);
    ASSERT_FALSE(serial.samples.empty());

    for (unsigned threads : {2u, 4u, 8u}) {
      config.pipeline.num_threads = threads;
      xplore::ExploreResult parallel = xplore::Explorer(config).run(program);
      ASSERT_EQ(parallel.samples.size(), serial.samples.size()) << "threads " << threads;
      for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        EXPECT_EQ(parallel.samples[i].cell, serial.samples[i].cell);
        EXPECT_EQ(parallel.samples[i].point.cycles, serial.samples[i].point.cycles);
        EXPECT_EQ(parallel.samples[i].point.energy_nj, serial.samples[i].point.energy_nj);
      }
      ASSERT_EQ(parallel.frontier.size(), serial.frontier.size()) << "threads " << threads;
      for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
        EXPECT_EQ(parallel.frontier[i].cycles, serial.frontier[i].cycles);
        EXPECT_EQ(parallel.frontier[i].energy_nj, serial.frontier[i].energy_nj);
      }
    }
  }
}

}  // namespace
}  // namespace mhla
