// Fuzz property tests: every pipeline invariant, checked on seeded random
// programs.  Catches interactions no hand-written case covers.

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/serialize.h"
#include "ir/validate.h"
#include "sim/trace.h"
#include "gen/random_program.h"

namespace mhla {
namespace {

class Fuzz : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  ir::Program program_ = gen::random_program(GetParam());
};

TEST_P(Fuzz, GeneratedProgramIsValid) {
  EXPECT_TRUE(ir::validate(program_).empty()) << ir::serialize(program_);
}

TEST_P(Fuzz, SerializeRoundTripIsIdentity) {
  std::string once = ir::serialize(program_);
  std::string twice = ir::serialize(ir::parse_program(once));
  EXPECT_EQ(once, twice);
}

TEST_P(Fuzz, TraceMatchesAnalyticCounts) {
  sim::ExactCounts exact = sim::enumerate_program(program_, 2'000'000);
  if (exact.truncated) GTEST_SKIP() << "program too large for enumeration";
  EXPECT_TRUE(exact.in_bounds);
  auto sites = analysis::collect_sites(program_);
  std::map<std::string, ir::i64> analytic;
  for (const analysis::AccessSite& site : sites) {
    analytic[site.access->array] += site.dynamic_accesses();
  }
  for (const auto& [array, count] : analytic) {
    EXPECT_EQ(count, exact.accesses_per_array[array]) << array;
  }
}

TEST_P(Fuzz, FootprintsAreSound) {
  auto sites = analysis::collect_sites(program_);
  analysis::ReuseAnalysis reuse = analysis::ReuseAnalysis::run(program_, sites);
  for (const analysis::CopyCandidate& cc : reuse.candidates()) {
    for (int site_id : cc.site_ids) {
      const analysis::AccessSite& site = sites[static_cast<std::size_t>(site_id)];
      if (site.iterations() > 200'000) continue;  // keep the test fast
      ir::i64 exact =
          sim::exact_footprint_elems(program_, site, static_cast<std::size_t>(cc.level));
      EXPECT_GE(cc.elems, exact) << "cc " << cc.id << " site " << site_id << "\n"
                                 << ir::serialize(program_);
    }
  }
}

TEST_P(Fuzz, SimAgreesWithCostModel) {
  auto ws = core::make_workspace(gen::random_program(GetParam()), {}, {});
  auto ctx = ws->context();
  for (const assign::Assignment& a :
       {assign::out_of_box(ctx), assign::greedy_assign(ctx).assignment}) {
    assign::CostEstimate cost = assign::estimate_cost(ctx, a);
    sim::SimResult result = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}});
    EXPECT_NEAR(result.total_cycles(), cost.total_cycles(),
                1e-9 * std::max(1.0, cost.total_cycles()));
    EXPECT_NEAR(result.energy_nj, cost.energy_nj, 1e-9 * std::max(1.0, cost.energy_nj));
  }
}

TEST_P(Fuzz, GreedyIsFeasibleAndNeverWorseThanBaseline) {
  auto ws = core::make_workspace(gen::random_program(GetParam()), {}, {});
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  EXPECT_TRUE(assign::fits(ctx, greedy.assignment));
  EXPECT_TRUE(assign::layering_valid(ctx, greedy.assignment));
  assign::Objective obj = assign::make_objective(ctx, 1.0, 1.0);
  EXPECT_LE(greedy.final_scalar,
            obj.scalar(assign::estimate_cost(ctx, assign::out_of_box(ctx))) + 1e-9);
}

TEST_P(Fuzz, TransferModeOrderingHolds) {
  auto ws = core::make_workspace(gen::random_program(GetParam()), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;
  double blocking =
      sim::simulate(ctx, a, {te::TransferMode::Blocking, {}}).total_cycles();
  double extended =
      sim::simulate(ctx, a, {te::TransferMode::TimeExtended, {}}).total_cycles();
  double ideal = sim::simulate(ctx, a, {te::TransferMode::Ideal, {}}).total_cycles();
  EXPECT_LE(ideal, extended + 1e-9);
  EXPECT_LE(extended, blocking + 1e-9);
}

TEST_P(Fuzz, EnergyInvariantUnderTransferMode) {
  auto ws = core::make_workspace(gen::random_program(GetParam()), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;
  double blocking = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}}).energy_nj;
  double extended = sim::simulate(ctx, a, {te::TransferMode::TimeExtended, {}}).energy_nj;
  EXPECT_DOUBLE_EQ(blocking, extended);
}

TEST_P(Fuzz, TeFootprintExtensionsStayFeasible) {
  auto ws = core::make_workspace(gen::random_program(GetParam()), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;
  auto bts = te::collect_block_transfers(ctx, a);
  te::TeResult result = te::time_extend(ctx, a, bts);
  EXPECT_TRUE(assign::fits(ctx, a, result.footprint_extensions));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint32_t>(0, 24));

}  // namespace
}  // namespace mhla
