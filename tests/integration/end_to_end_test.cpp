#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/report_table.h"
#include "helpers.h"

namespace mhla::core {
namespace {

TEST(EndToEnd, QuickstartShapedRun) {
  using ir::av;
  ir::ProgramBuilder pb("e2e");
  pb.array("matrix", {64, 64}, 4).input();
  pb.array("vec", {64}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("row", 0, 64);
  pb.begin_loop("col", 0, 64);
  pb.stmt("mac", 1).read("matrix", {av("row"), av("col")}).read("vec", {av("col")});
  pb.end_loop();
  pb.stmt("store", 1).write("out", {av("row")});
  pb.end_loop();

  PipelineConfig config;
  config.platform = testing::small_platform();
  PipelineResult run = Pipeline(config).run(pb.finish());

  // The optimizer must have done something: selected copies, migrated
  // arrays on-chip, or both.
  EXPECT_FALSE(run.search.moves.empty());
  EXPECT_LT(run.points.mhla.total_cycles(), run.points.out_of_box.total_cycles());
  EXPECT_LT(run.points.mhla.energy_nj, run.points.out_of_box.energy_nj);
}

TEST(EndToEnd, WorkspaceRejectsInvalidProgram) {
  using ir::av;
  ir::ProgramBuilder pb("bad");
  pb.array("a", {4}, 4);
  pb.begin_loop("i", 0, 8);  // overruns a[4]
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  EXPECT_THROW(make_workspace(pb.finish()), std::invalid_argument);
}

TEST(EndToEnd, TargetsProduceDifferentTradeoffs) {
  // Energy-optimal and time-optimal runs must both be valid; the energy run
  // must have energy <= the time run's energy (it optimizes exactly that).
  auto ws = make_workspace(apps::build_cavity_detection(), {}, {});
  PipelineConfig config;
  config.target = assign::Target::Energy;
  PipelineResult energy_run = Pipeline(config).run(*ws);
  config.target = assign::Target::Time;
  PipelineResult time_run = Pipeline(config).run(*ws);
  EXPECT_LE(energy_run.points.mhla.energy_nj, time_run.points.mhla.energy_nj + 1e-6);
  EXPECT_LE(time_run.points.mhla.total_cycles(),
            energy_run.points.mhla.total_cycles() + 1e-6);
}

TEST(EndToEnd, ReportTableRendersAllApps) {
  Table table({"application", "MHLA %", "TE %"});
  for (const apps::AppInfo& info : apps::all_apps()) {
    table.add_row({info.name, Table::num(50.0), Table::num(40.0)});
  }
  std::string text = table.str();
  for (const apps::AppInfo& info : apps::all_apps()) {
    EXPECT_NE(text.find(info.name), std::string::npos);
  }
  EXPECT_NE(text.find("application"), std::string::npos);
}

TEST(ReportTable, AlignmentAndNumbers) {
  Table table({"a", "b"});
  table.add_row({"x", Table::num(3.14159, 2)});
  std::string text = table.str();
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_EQ(text.find("3.142"), std::string::npos);
}

TEST(EndToEnd, Figure2ClaimOnNineApps) {
  // Paper Figure 2: step 1 improves performance by 40-60% "for specific
  // memory sizes"; TE adds more, approaching ideal.  We assert the
  // reproduction-grade envelope: every app improves by at least 30%, and
  // TE never loses to plain MHLA.  Runs as one pipeline batch over the
  // registry (the multi-app driver the facade exists for).
  std::vector<ir::Program> programs;
  for (const apps::AppInfo& info : apps::all_apps()) programs.push_back(info.build());
  std::vector<PipelineResult> runs = Pipeline(PipelineConfig{}).run_batch(std::move(programs));
  ASSERT_EQ(runs.size(), apps::all_apps().size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::string& name = apps::all_apps()[i].name;
    const PipelineResult& run = runs[i];
    double mhla_pct = 100.0 * run.points.mhla.total_cycles() /
                      run.points.out_of_box.total_cycles();
    EXPECT_LE(mhla_pct, 70.0) << name << ": step 1 too weak";
    EXPECT_LE(run.points.mhla_te.total_cycles(), run.points.mhla.total_cycles()) << name;
  }
}

TEST(EndToEnd, ReproductionBandsStayPut) {
  // Stays on the legacy run_mhla shim on purpose: independent coverage of
  // the reference path the Pipeline equivalence tests compare against.
  // Generous envelopes around the measured Figure 2/3 values recorded in
  // EXPERIMENTS.md.  If a model change pushes any app outside these bands,
  // the reproduction story changed and EXPERIMENTS.md must be re-examined.
  for (const apps::AppInfo& info : apps::all_apps()) {
    auto ws = make_workspace(info.build(), {}, {});
    RunResult run = run_mhla(*ws);
    const sim::FourPoint& fp = run.points;
    double time_pct =
        100.0 * fp.mhla.total_cycles() / fp.out_of_box.total_cycles();
    double te_pct =
        100.0 * fp.mhla_te.total_cycles() / fp.out_of_box.total_cycles();
    double energy_pct = 100.0 * fp.mhla.energy_nj / fp.out_of_box.energy_nj;
    EXPECT_GE(time_pct, 3.0) << info.name << ": implausibly fast, model broken?";
    EXPECT_LE(time_pct, 60.0) << info.name << ": step 1 regressed";
    EXPECT_LE(te_pct, time_pct + 1e-9) << info.name;
    EXPECT_GE(energy_pct, 3.0) << info.name;
    EXPECT_LE(energy_pct, 75.0) << info.name << ": energy gain regressed";
  }
  // TE must remain visibly useful on at least one stencil app.
  auto ws = make_workspace(apps::build_cavity_detection(), {}, {});
  RunResult run = run_mhla(*ws);
  double gain_pp = 100.0 *
                   (run.points.mhla.total_cycles() - run.points.mhla_te.total_cycles()) /
                   run.points.out_of_box.total_cycles();
  EXPECT_GE(gain_pp, 5.0) << "TE stopped mattering on cavity_detection";
}

TEST(EndToEnd, Figure3ClaimOnNineApps) {
  // Paper Figure 3: energy reduced significantly, up to 70%.
  std::vector<ir::Program> programs;
  for (const apps::AppInfo& info : apps::all_apps()) programs.push_back(info.build());
  std::vector<PipelineResult> runs = Pipeline(PipelineConfig{}).run_batch(std::move(programs));
  double best_reduction = 0.0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    double reduction =
        1.0 - runs[i].points.mhla.energy_nj / runs[i].points.out_of_box.energy_nj;
    EXPECT_GT(reduction, 0.0) << apps::all_apps()[i].name;
    best_reduction = std::max(best_reduction, reduction);
  }
  EXPECT_GE(best_reduction, 0.6);  // "up to 70%"
}

}  // namespace
}  // namespace mhla::core
