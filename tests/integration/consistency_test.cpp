// Cross-implementation consistency checks: the static cost model
// (assign::estimate_cost) and the simulator (sim::simulate) are written
// independently; on every app and every interesting assignment they must
// agree exactly in Blocking mode.  This is the suite's main oracle.

#include <gtest/gtest.h>

#include "helpers.h"

namespace mhla {
namespace {

class PerAppConsistency : public ::testing::TestWithParam<apps::AppInfo> {};

TEST_P(PerAppConsistency, SimulatorMatchesCostModel) {
  auto ws = core::make_workspace(GetParam().build(), {}, {});
  auto ctx = ws->context();

  std::vector<assign::Assignment> configs;
  configs.push_back(assign::out_of_box(ctx));
  configs.push_back(assign::greedy_assign(ctx).assignment);

  for (const assign::Assignment& a : configs) {
    assign::CostEstimate cost = assign::estimate_cost(ctx, a);
    sim::SimResult result = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}});
    EXPECT_NEAR(result.total_cycles() / cost.total_cycles(), 1.0, 1e-12);
    EXPECT_NEAR(result.energy_nj / cost.energy_nj, 1.0, 1e-12);
  }
}

TEST_P(PerAppConsistency, TallyMatchesCostModelCounts) {
  auto ws = core::make_workspace(GetParam().build(), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;

  assign::CostEstimate cost = assign::estimate_cost(ctx, a);
  sim::AccessTally tally = sim::tally_accesses(ctx, a);
  for (int l = 0; l < ctx.hierarchy.num_layers(); ++l) {
    EXPECT_EQ(tally.reads[static_cast<std::size_t>(l)],
              cost.layer_reads[static_cast<std::size_t>(l)])
        << "layer " << l;
    EXPECT_EQ(tally.writes[static_cast<std::size_t>(l)],
              cost.layer_writes[static_cast<std::size_t>(l)])
        << "layer " << l;
  }
}

TEST_P(PerAppConsistency, GreedyResultSurvivesResolveRoundtrip) {
  auto ws = core::make_workspace(GetParam().build(), {}, {});
  auto ctx = ws->context();
  assign::GreedyResult greedy = assign::greedy_assign(ctx);
  EXPECT_TRUE(assign::layering_valid(ctx, greedy.assignment));
  EXPECT_TRUE(assign::fits(ctx, greedy.assignment));

  assign::Resolution res = assign::resolve(ctx, greedy.assignment);
  EXPECT_EQ(res.site_layer.size(), ctx.sites.size());
  EXPECT_EQ(res.transfers.size(), greedy.assignment.copies.size());
  for (int layer : res.site_layer) {
    EXPECT_GE(layer, 0);
    EXPECT_LT(layer, ctx.hierarchy.num_layers());
  }
}

TEST_P(PerAppConsistency, TeNeverExceedsBlockingNorUndercutsIdeal) {
  auto ws = core::make_workspace(GetParam().build(), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;
  sim::SimResult blocking = sim::simulate(ctx, a, {te::TransferMode::Blocking, {}});
  sim::SimResult extended = sim::simulate(ctx, a, {te::TransferMode::TimeExtended, {}});
  sim::SimResult ideal = sim::simulate(ctx, a, {te::TransferMode::Ideal, {}});
  EXPECT_LE(extended.total_cycles(), blocking.total_cycles() + 1e-9);
  EXPECT_GE(extended.total_cycles(), ideal.total_cycles() - 1e-9);
}

TEST_P(PerAppConsistency, TeFootprintStaysWithinConstraint) {
  auto ws = core::make_workspace(GetParam().build(), {}, {});
  auto ctx = ws->context();
  assign::Assignment a = assign::greedy_assign(ctx).assignment;
  auto bts = te::collect_block_transfers(ctx, a);
  te::TeResult result = te::time_extend(ctx, a, bts);
  EXPECT_TRUE(assign::fits(ctx, a, result.footprint_extensions));
}

INSTANTIATE_TEST_SUITE_P(AllNine, PerAppConsistency, ::testing::ValuesIn(apps::all_apps()),
                         [](const ::testing::TestParamInfo<apps::AppInfo>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace mhla
