// End-to-end equivalence through the text format: a program that round-trips
// through serialize/parse must produce bit-identical analysis and
// optimization results — the property that makes `.mhla` files a reliable
// tool boundary.

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/serialize.h"
#include "ir/transform.h"

namespace mhla {
namespace {

class SerializedPipeline : public ::testing::TestWithParam<apps::AppInfo> {};

TEST_P(SerializedPipeline, IdenticalOptimizationResults) {
  ir::Program original = GetParam().build();
  ir::Program reparsed = ir::parse_program(ir::serialize(original));

  auto ws1 = core::make_workspace(std::move(original), {}, {});
  auto ws2 = core::make_workspace(std::move(reparsed), {}, {});

  EXPECT_EQ(ws1->sites().size(), ws2->sites().size());
  EXPECT_EQ(ws1->reuse().candidates().size(), ws2->reuse().candidates().size());

  core::RunResult run1 = core::run_mhla(*ws1);
  core::RunResult run2 = core::run_mhla(*ws2);
  EXPECT_DOUBLE_EQ(run1.points.mhla.total_cycles(), run2.points.mhla.total_cycles());
  EXPECT_DOUBLE_EQ(run1.points.mhla.energy_nj, run2.points.mhla.energy_nj);
  EXPECT_DOUBLE_EQ(run1.points.mhla_te.total_cycles(), run2.points.mhla_te.total_cycles());
  EXPECT_EQ(run1.step1.assignment.copies.size(), run2.step1.assignment.copies.size());
}

INSTANTIATE_TEST_SUITE_P(AllNine, SerializedPipeline, ::testing::ValuesIn(apps::all_apps()),
                         [](const ::testing::TestParamInfo<apps::AppInfo>& info) {
                           return info.param.name;
                         });

TEST(TransformedPipeline, TilingPreservesBaselineSemantics) {
  // Tiling changes the candidate set but not the program's work: baseline
  // (out-of-box) cost must be identical before and after tiling.
  ir::ProgramBuilder pb("t");
  using ir::av;
  pb.array("tab", {4096}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("rep", 0, 64);
  pb.begin_loop("i", 0, 4096);
  pb.stmt("use", 2).read("tab", {av("i")});
  pb.end_loop();
  pb.stmt("emit", 1).write("out", {av("rep")});
  pb.end_loop();
  ir::Program flat = pb.finish();
  ir::Program tiled = ir::tile_loop(flat, "i", 128);

  auto ws_flat = core::make_workspace(std::move(flat), {}, {});
  auto ws_tiled = core::make_workspace(std::move(tiled), {}, {});
  auto base_flat = sim::simulate(ws_flat->context(), assign::out_of_box(ws_flat->context()));
  auto base_tiled = sim::simulate(ws_tiled->context(), assign::out_of_box(ws_tiled->context()));
  EXPECT_DOUBLE_EQ(base_flat.total_cycles(), base_tiled.total_cycles());
  EXPECT_DOUBLE_EQ(base_flat.energy_nj, base_tiled.energy_nj);
}

TEST(TransformedPipeline, TilingNeverHurtsOptimizedCost) {
  // MHLA on the tiled program can at worst ignore the new candidates.
  ir::ProgramBuilder pb("t2");
  using ir::av;
  pb.array("tab", {8192}, 4).input();
  pb.array("out", {64}, 4).output();
  pb.begin_loop("rep", 0, 64);
  pb.begin_loop("i", 0, 8192);
  pb.stmt("use", 2).read("tab", {av("i")});
  pb.end_loop();
  pb.stmt("emit", 1).write("out", {av("rep")});
  pb.end_loop();
  ir::Program flat = pb.finish();
  ir::Program tiled = ir::tile_loop(flat, "i", 256);

  mem::PlatformConfig platform;
  platform.l1_bytes = 2 * 1024;
  platform.l2_bytes = 0;
  auto ws_flat = core::make_workspace(std::move(flat), platform, {});
  auto ws_tiled = core::make_workspace(std::move(tiled), platform, {});
  core::RunResult flat_run = core::run_mhla(*ws_flat);
  core::RunResult tiled_run = core::run_mhla(*ws_tiled);
  EXPECT_LE(tiled_run.points.mhla_te.total_cycles(),
            flat_run.points.mhla_te.total_cycles() + 1e-9);
}

}  // namespace
}  // namespace mhla
