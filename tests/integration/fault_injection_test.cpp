// Fault-injection and graceful-degradation suite.
//
// Three layers of the robustness contract are pinned down here:
//
//  * core::FaultInjector forces deterministic failures at the three armed
//    sites — an I/O step inside ResultCache::save, a RunBudget probe, a
//    parallel_for body — and every consumer must degrade, not corrupt:
//    the cache never loses previously persisted entries, every search
//    strategy returns a consistent best-so-far state, the thread pool
//    joins its workers and stays reusable.
//
//  * Cancellation consistency (property over a randomized corpus): a run
//    budget that expires at an arbitrary probe leaves each strategy with
//    exactly the state a fresh rebuild of the returned assignment yields —
//    greedy's truncated move trace is a replayable prefix, the exact
//    strategies' incumbent re-evaluates bit for bit.
//
//  * Anytime exact search: above the placement guard a bounded budget
//    lifts the guard, and the truncated branch-and-bound certifies an
//    optimality gap against its admissible root bound.
//
// The fault injector is process-global, so this suite never runs its
// tests concurrently (gtest runs them sequentially in one binary).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "assign/cost.h"
#include "assign/exhaustive.h"
#include "assign/search.h"
#include "core/fault_injector.h"
#include "core/json_report.h"
#include "core/parallel_for.h"
#include "core/pipeline.h"
#include "core/run_budget.h"
#include "explore/explorer.h"
#include "gen/random_program.h"
#include "helpers.h"

namespace mhla {
namespace {

using core::FaultInjector;

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Run a strategy under a fresh shared budget token and report how many
/// probes the complete run charges (the corpus tests draw truncation points
/// from this range).
long probes_of_full_run(const assign::AssignContext& ctx, const std::string& strategy,
                        const assign::SearchOptions& options, assign::SearchResult* out) {
  core::RunBudget token{core::BudgetSpec{}};
  assign::SearchOptions counted = options;
  counted.shared_budget = &token;
  assign::SearchResult result = assign::searcher(strategy).search(ctx, counted);
  if (out) *out = std::move(result);
  return token.probes();
}

// --- RunBudget unit behavior ------------------------------------------------

TEST(RunBudget, ProbeAllowanceExpiresStickily) {
  core::BudgetSpec spec;
  spec.max_probes = 3;
  core::RunBudget budget(spec);
  EXPECT_TRUE(budget.probe());
  EXPECT_TRUE(budget.probe());
  EXPECT_TRUE(budget.probe());
  EXPECT_FALSE(budget.probe());  // 4th probe is past the allowance
  EXPECT_TRUE(budget.expired());
  EXPECT_EQ(budget.reason(), core::StopReason::ProbeBudget);
  EXPECT_FALSE(budget.probe());  // expiry is one-way
}

TEST(RunBudget, CancelFlagExpiresTheBudget) {
  core::BudgetSpec spec;
  spec.cancel = std::make_shared<std::atomic<bool>>(false);
  core::RunBudget budget(spec);
  EXPECT_TRUE(budget.probe());
  spec.cancel->store(true);
  EXPECT_FALSE(budget.probe());
  EXPECT_EQ(budget.reason(), core::StopReason::Cancelled);
}

TEST(RunBudget, TinyDeadlineExpiresOnTheFirstProbe) {
  core::BudgetSpec spec;
  spec.deadline_seconds = 1e-9;
  core::RunBudget budget(spec);
  EXPECT_FALSE(budget.probe());
  EXPECT_EQ(budget.reason(), core::StopReason::Deadline);
}

TEST(RunBudget, UnboundedBudgetCountsButNeverExpires) {
  core::RunBudget budget;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.probe());
  EXPECT_EQ(budget.probes(), 1000);
  EXPECT_FALSE(budget.expired());
}

// --- Fault injector + parallel_for ------------------------------------------

TEST(FaultInjection, NthHitFiresExactlyOnce) {
  core::ScopedFault fault(FaultInjector::Site::BudgetProbe, 3);
  EXPECT_FALSE(FaultInjector::fire(FaultInjector::Site::BudgetProbe));
  EXPECT_FALSE(FaultInjector::fire(FaultInjector::Site::BudgetProbe));
  EXPECT_TRUE(FaultInjector::fire(FaultInjector::Site::BudgetProbe));
  EXPECT_FALSE(FaultInjector::fire(FaultInjector::Site::BudgetProbe));  // one-shot
  EXPECT_EQ(FaultInjector::hits(FaultInjector::Site::BudgetProbe), 4);
}

TEST(FaultInjection, InjectedProbeExpiresABudgetWithReasonInjected) {
  core::ScopedFault fault(FaultInjector::Site::BudgetProbe, 5);
  core::RunBudget budget;  // unbounded — only the injector can expire it
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(budget.probe());
  EXPECT_FALSE(budget.probe());
  EXPECT_EQ(budget.reason(), core::StopReason::Injected);
}

TEST(FaultInjection, ParallelForRethrowsInjectedBodyFaultAndStaysUsable) {
  // The Nth body invocation throws; parallel_for must join every worker and
  // rethrow on the calling thread, and the next call must work normally.
  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    {
      core::ScopedFault fault(FaultInjector::Site::ParallelBody, 7);
      std::atomic<int> ran{0};
      EXPECT_THROW(core::parallel_for(64, threads, [&](std::size_t) { ++ran; }),
                   core::FaultInjectedError);
      EXPECT_LT(ran.load(), 64);  // the fault stopped the pool early
    }
    std::atomic<int> ran{0};
    core::parallel_for(64, threads, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(FaultInjection, ParallelForStopsClaimingOnceBudgetExpires) {
  core::BudgetSpec spec;
  spec.max_probes = 1;
  core::RunBudget budget(spec);
  budget.probe();
  budget.probe();  // expired now
  std::atomic<int> ran{0};
  core::parallel_for(100, 4, [&](std::size_t) { ++ran; }, &budget);
  EXPECT_EQ(ran.load(), 0);
}

// --- Injected budget expiry through every search strategy -------------------

TEST(FaultInjection, EveryStrategyDegradesOnInjectedExpiry) {
  auto ws = testing::make_ws(testing::blocked_reuse_program());
  auto ctx = ws->context();
  for (const std::string& strategy : {"greedy", "greedy-ref", "anneal", "bnb", "exhaustive"}) {
    SCOPED_TRACE(strategy);
    core::ScopedFault fault(FaultInjector::Site::BudgetProbe, 10);
    assign::SearchResult result = assign::searcher(strategy).search(ctx, {});
    EXPECT_EQ(result.status, assign::SearchStatus::BudgetExhausted);
    EXPECT_TRUE(result.exhausted_budget);
    EXPECT_TRUE(assign::fits(ctx, result.assignment));
    EXPECT_TRUE(assign::layering_valid(ctx, result.assignment));
  }
}

// --- Crash-safe cache persistence -------------------------------------------

TEST(FaultInjection, CacheSaveCrashNeverLosesPersistedEntries) {
  std::string path = temp_path("mhla_cache_crash.json");
  xplore::ResultCache first;
  first.insert(1, {256, 0, "greedy", false, 100.0, 200.0});
  first.insert(2, {512, 8192, "bnb", true, 300.0, 400.0});
  first.save(path);
  const std::string persisted = slurp(path);

  xplore::ResultCache second = first;
  second.insert(3, {1024, 0, "anneal", true, 500.0, 600.0});

  // Kill the save at each of its three I/O steps (open, write+flush,
  // rename).  Every crash must leave the previously persisted document
  // byte-identical and clean up its temp file.
  for (long nth = 1; nth <= 3; ++nth) {
    SCOPED_TRACE("I/O fault at step " + std::to_string(nth));
    core::ScopedFault fault(FaultInjector::Site::IoWrite, nth);
    try {
      second.save(path);
      FAIL() << "expected the injected I/O fault to surface";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos) << e.what();
    }
    EXPECT_EQ(slurp(path), persisted);
    xplore::ResultCache::LoadReport report;
    EXPECT_EQ(xplore::ResultCache::load(path, report).entries(), first.entries());
    EXPECT_TRUE(report.clean);
    // No temp wreckage left behind.
    for (const auto& entry : std::filesystem::directory_iterator(::testing::TempDir())) {
      EXPECT_EQ(entry.path().string().find("mhla_cache_crash.json.tmp"), std::string::npos)
          << entry.path();
    }
  }

  // With the injector quiet the same save goes through.
  second.save(path);
  EXPECT_EQ(xplore::ResultCache::load(path).entries(), second.entries());
  std::remove(path.c_str());
}

// --- Cancellation-consistency properties over a randomized corpus -----------

/// Deterministic truncation point in [1, total): the corpus must exercise
/// early, middle and late cancellations, so the draw is seeded per case.
long truncation_point(std::uint32_t seed, long total) {
  std::mt19937 rng(seed * 2654435761u + 13u);
  return 1 + static_cast<long>(rng() % static_cast<std::uint32_t>(total - 1));
}

TEST(CancellationConsistency, GreedyTruncatesToAReplayablePrefix) {
  int truncated_cases = 0;
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto ws = testing::make_ws(gen::random_program(seed));
    auto ctx = ws->context();

    assign::SearchResult baseline;
    long total = probes_of_full_run(ctx, "greedy", {}, &baseline);
    if (total < 2) continue;

    assign::SearchOptions bounded;
    bounded.budget.max_probes = truncation_point(seed, total);
    assign::SearchResult truncated = assign::searcher("greedy").search(ctx, bounded);

    // Degraded, never broken: the returned assignment is always the exact
    // state after the last accepted move.
    EXPECT_TRUE(assign::fits(ctx, truncated.assignment));
    EXPECT_TRUE(assign::layering_valid(ctx, truncated.assignment));

    if (truncated.status != assign::SearchStatus::BudgetExhausted) {
      // The budget outlasted the search — the result must be the full one.
      EXPECT_EQ(truncated.assignment, baseline.assignment);
      EXPECT_EQ(truncated.scalar, baseline.scalar);
      continue;
    }
    ++truncated_cases;

    // The truncated move trace is a prefix of the unbounded run's trace.
    ASSERT_LE(truncated.moves.size(), baseline.moves.size());
    for (std::size_t i = 0; i < truncated.moves.size(); ++i) {
      EXPECT_EQ(truncated.moves[i].kind, baseline.moves[i].kind);
      EXPECT_EQ(truncated.moves[i].cc_id, baseline.moves[i].cc_id);
      EXPECT_EQ(truncated.moves[i].array, baseline.moves[i].array);
      EXPECT_EQ(truncated.moves[i].layer, baseline.moves[i].layer);
      EXPECT_EQ(truncated.moves[i].gain, baseline.moves[i].gain);
    }

    // Fresh rebuild of the same prefix (max_moves caps accepted moves, no
    // budget involved) reproduces assignment and scalar bit for bit: the
    // cancelled engine held exactly the state of the accepted moves.
    assign::SearchOptions replay;
    replay.max_moves = static_cast<int>(truncated.moves.size());
    assign::SearchResult rebuilt = assign::searcher("greedy").search(ctx, replay);
    EXPECT_EQ(rebuilt.assignment, truncated.assignment);
    EXPECT_EQ(rebuilt.scalar, truncated.scalar);

    // Reference path truncates at the identical probe, so the degraded
    // result stays engine/reference bit-identical too.
    assign::SearchOptions bounded_ref = bounded;
    bounded_ref.use_cost_engine = false;
    assign::SearchResult truncated_ref = assign::searcher("greedy").search(ctx, bounded_ref);
    EXPECT_EQ(truncated_ref.assignment, truncated.assignment);
    EXPECT_EQ(truncated_ref.scalar, truncated.scalar);
    EXPECT_EQ(truncated_ref.moves.size(), truncated.moves.size());

    // Determinism of the truncation point itself.
    assign::SearchResult again = assign::searcher("greedy").search(ctx, bounded);
    EXPECT_EQ(again.assignment, truncated.assignment);
    EXPECT_EQ(again.scalar, truncated.scalar);
  }
  EXPECT_GE(truncated_cases, 5);  // the property must not go vacuous
}

TEST(CancellationConsistency, BnbIncumbentMatchesAFreshEvaluation) {
  int truncated_cases = 0;
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto ws = testing::make_ws(gen::random_program(seed));
    auto ctx = ws->context();
    std::size_t placements = ctx.reuse.candidates().size() *
                             static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
    if (placements > assign::kEnginePlacementGuard) continue;

    assign::SearchResult baseline;
    long total = probes_of_full_run(ctx, "bnb", {}, &baseline);
    if (baseline.exhausted_budget || total < 2) continue;
    EXPECT_EQ(baseline.status, assign::SearchStatus::Optimal);
    EXPECT_EQ(baseline.gap, 0.0);

    assign::SearchOptions bounded;
    bounded.budget.max_probes = truncation_point(seed, total);
    assign::SearchResult truncated = assign::searcher("bnb").search(ctx, bounded);

    EXPECT_TRUE(assign::fits(ctx, truncated.assignment));
    EXPECT_TRUE(assign::layering_valid(ctx, truncated.assignment));
    // The incumbent can only be at or above the true optimum.
    EXPECT_GE(truncated.scalar, baseline.scalar * (1.0 - 1e-9));

    // The returned state must equal a fresh rebuild: re-evaluating the
    // assignment from scratch reproduces the reported scalar (the engine's
    // incremental journal left no residue).  The greedy fallback incumbent
    // accumulates its scalar over moves, so the comparison carries the
    // usual float-accumulation tolerance.
    assign::Objective objective = assign::make_objective(ctx, 1.0, 1.0);
    double fresh = objective.scalar(assign::estimate_cost(ctx, truncated.assignment));
    EXPECT_NEAR(fresh, truncated.scalar, 1e-9 * std::max(1.0, std::abs(truncated.scalar)));

    if (truncated.status == assign::SearchStatus::BudgetExhausted) {
      ++truncated_cases;
      // Certified gap: the root bound is admissible, so it may not exceed
      // the true optimum, and the gap ties incumbent to bound.
      EXPECT_GE(truncated.gap, 0.0);
      EXPECT_LE(truncated.lower_bound, baseline.scalar * (1.0 + 1e-9));
      if (truncated.scalar > 0.0) {
        EXPECT_NEAR(truncated.gap,
                    std::max(0.0, (truncated.scalar - truncated.lower_bound) / truncated.scalar),
                    1e-12);
      }
      // Determinism: a probe allowance cuts the serial DFS at a fixed state.
      assign::SearchResult again = assign::searcher("bnb").search(ctx, bounded);
      EXPECT_EQ(again.assignment, truncated.assignment);
      EXPECT_EQ(again.scalar, truncated.scalar);
      EXPECT_EQ(again.states_explored, truncated.states_explored);
    } else {
      EXPECT_EQ(truncated.assignment, baseline.assignment);
      EXPECT_EQ(truncated.scalar, baseline.scalar);
    }
  }
  EXPECT_GE(truncated_cases, 3);
}

TEST(CancellationConsistency, AnnealTruncatesDeterministically) {
  int truncated_cases = 0;
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto ws = testing::make_ws(gen::random_program(seed));
    auto ctx = ws->context();

    assign::SearchResult baseline;
    long total = probes_of_full_run(ctx, "anneal", {}, &baseline);
    if (total < 2) continue;

    assign::SearchOptions bounded;
    bounded.budget.max_probes = truncation_point(seed, total);
    assign::SearchResult truncated = assign::searcher("anneal").search(ctx, bounded);

    EXPECT_EQ(truncated.status, assign::SearchStatus::BudgetExhausted);
    ++truncated_cases;
    EXPECT_TRUE(assign::fits(ctx, truncated.assignment));
    EXPECT_TRUE(assign::layering_valid(ctx, truncated.assignment));

    // Best-so-far state re-evaluates from scratch to the reported scalar.
    assign::Objective objective = assign::make_objective(ctx, 1.0, 1.0);
    double fresh = objective.scalar(assign::estimate_cost(ctx, truncated.assignment));
    EXPECT_NEAR(fresh, truncated.scalar, 1e-9 * std::max(1.0, std::abs(truncated.scalar)));

    // The seeded walk truncated at a fixed iteration is fully reproducible.
    assign::SearchResult again = assign::searcher("anneal").search(ctx, bounded);
    EXPECT_EQ(again.assignment, truncated.assignment);
    EXPECT_EQ(again.scalar, truncated.scalar);
    EXPECT_EQ(again.evaluations, truncated.evaluations);
  }
  EXPECT_GE(truncated_cases, 5);
}

TEST(CancellationConsistency, BnbParBitIdenticalAcrossThreadsWithNonBindingBudget) {
  // A budget that never binds must leave the parallel search bit-identical
  // to serial for any thread count — attaching a deadline/allowance cannot
  // perturb a run that finishes inside it.
  for (const std::string& app : {"conv_filter", "cavity_detection"}) {
    SCOPED_TRACE(app);
    auto ws = core::make_workspace(apps::build_app(app), mem::PlatformConfig{}, {});
    auto ctx = ws->context();
    assign::SearchResult serial = assign::searcher("bnb").search(ctx, {});
    ASSERT_EQ(serial.status, assign::SearchStatus::Optimal);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      assign::SearchOptions options;
      options.bnb_threads = threads;
      options.budget.max_probes = 500'000'000;  // generous: attached, never binding
      assign::SearchResult parallel = assign::searcher("bnb-par").search(ctx, options);
      EXPECT_EQ(parallel.assignment, serial.assignment) << "threads " << threads;
      EXPECT_EQ(parallel.scalar, serial.scalar) << "threads " << threads;
      EXPECT_EQ(parallel.status, assign::SearchStatus::Optimal) << "threads " << threads;
      EXPECT_EQ(parallel.gap, 0.0) << "threads " << threads;
    }
  }
}

// --- Anytime exact search above the placement guard -------------------------

TEST(Anytime, Mpeg2AboveGuardReturnsCertifiedBestSoFar) {
  auto ws = core::make_workspace(apps::build_app("mpeg2_encoder"), mem::PlatformConfig{}, {});
  auto ctx = ws->context();
  std::size_t placements = ctx.reuse.candidates().size() *
                           static_cast<std::size_t>(std::max(ctx.hierarchy.background(), 1));
  ASSERT_GT(placements, assign::kEnginePlacementGuard)
      << "corpus drifted: mpeg2_encoder no longer exceeds the guard";

  // Unbudgeted exact search must still refuse the oversized instance...
  EXPECT_THROW(assign::searcher("bnb").search(ctx, {}), std::invalid_argument);

  // ...but a deterministic probe allowance lifts the guard into anytime
  // mode: best-so-far assignment, certified gap, reproducible run to run.
  assign::SearchOptions bounded;
  bounded.budget.max_probes = 20000;
  assign::SearchResult result = assign::searcher("bnb").search(ctx, bounded);
  EXPECT_EQ(result.status, assign::SearchStatus::BudgetExhausted);
  EXPECT_TRUE(result.exhausted_budget);
  EXPECT_TRUE(assign::fits(ctx, result.assignment));
  EXPECT_TRUE(assign::layering_valid(ctx, result.assignment));
  EXPECT_GT(result.scalar, 0.0);
  EXPECT_GE(result.gap, 0.0);
  EXPECT_TRUE(std::isfinite(result.gap));
  EXPECT_GT(result.lower_bound, 0.0);
  EXPECT_LE(result.lower_bound, result.scalar);

  assign::SearchResult again = assign::searcher("bnb").search(ctx, bounded);
  EXPECT_EQ(again.assignment, result.assignment);
  EXPECT_EQ(again.scalar, result.scalar);
  EXPECT_EQ(again.gap, result.gap);

  // The parallel front end accepts the same anytime contract.
  assign::SearchOptions bounded_par = bounded;
  bounded_par.bnb_threads = 2;
  assign::SearchResult parallel = assign::searcher("bnb-par").search(ctx, bounded_par);
  EXPECT_EQ(parallel.status, assign::SearchStatus::BudgetExhausted);
  EXPECT_TRUE(assign::fits(ctx, parallel.assignment));
  EXPECT_GE(parallel.gap, 0.0);
}

// --- Pipeline / report integration ------------------------------------------

TEST(Robustness, PipelineDeadlineDegradesInsteadOfFailing) {
  core::PipelineConfig config;
  config.search.budget.deadline_seconds = 1e-9;  // expires on the first probe
  core::Pipeline pipeline(config);
  core::PipelineResult run = pipeline.run(apps::build_app("conv_filter"));
  EXPECT_EQ(run.search.status, assign::SearchStatus::BudgetExhausted);
  EXPECT_TRUE(run.search.exhausted_budget);
  // The degraded run still produces the full four-point report.
  EXPECT_GT(run.points.out_of_box.total_cycles(), 0.0);
  EXPECT_GT(run.points.mhla_te.total_cycles(), 0.0);

  std::string json = core::to_json("conv_filter", run);
  EXPECT_NE(json.find("\"status\": \"budget_exhausted\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gap\": "), std::string::npos) << json;
}

TEST(Robustness, BudgetKnobsRoundTripThroughConfigJson) {
  core::PipelineConfig config;
  config.search.budget.deadline_seconds = 1.5;
  config.search.budget.max_probes = 123456;
  core::PipelineConfig reparsed = core::pipeline_config_from_json(core::to_json(config));
  EXPECT_EQ(reparsed.search.budget.deadline_seconds, 1.5);
  EXPECT_EQ(reparsed.search.budget.max_probes, 123456);
  EXPECT_EQ(reparsed.search, config.search);

  core::PipelineConfig sparse = core::pipeline_config_from_json(
      "{\"search\": {\"deadline_seconds\": 0.25, \"max_probes\": 7}}");
  EXPECT_EQ(sparse.search.budget.deadline_seconds, 0.25);
  EXPECT_EQ(sparse.search.budget.max_probes, 7);
}

TEST(Robustness, SearchStatusNamesRoundTrip) {
  for (assign::SearchStatus status :
       {assign::SearchStatus::Optimal, assign::SearchStatus::Feasible,
        assign::SearchStatus::BudgetExhausted, assign::SearchStatus::Infeasible}) {
    EXPECT_EQ(assign::parse_search_status(assign::to_string(status)), status);
  }
  EXPECT_THROW(assign::parse_search_status("bogus"), std::invalid_argument);
}

TEST(Robustness, SharedBudgetCoversSearchAndTimeExtension) {
  // One token threads through the whole pipeline run: the TE stage observes
  // the same expiry the search hit, yet the run still produces a complete,
  // feasible four-point report over the truncated assignment.
  core::PipelineConfig config;
  config.search.budget.max_probes = 5;
  core::Pipeline pipeline(config);
  core::PipelineResult run = pipeline.run(apps::build_app("conv_filter"));
  EXPECT_EQ(run.search.status, assign::SearchStatus::BudgetExhausted);
  EXPECT_TRUE(run.points.mhla.feasible);
  EXPECT_TRUE(run.points.mhla_te.feasible);
  EXPECT_GT(run.points.mhla_te.total_cycles(), 0.0);
}

}  // namespace
}  // namespace mhla
