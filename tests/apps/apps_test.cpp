#include "apps/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/reuse.h"
#include "helpers.h"
#include "ir/validate.h"

namespace mhla::apps {
namespace {

TEST(Registry, HasExactlyNineApplications) {
  EXPECT_EQ(all_apps().size(), 9u);  // the paper evaluates nine
}

TEST(Registry, NamesAreUniqueAndDomainsCoverPaper) {
  std::set<std::string> names;
  std::set<std::string> domains;
  for (const AppInfo& info : all_apps()) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate " << info.name;
    domains.insert(info.domain);
    EXPECT_FALSE(info.description.empty());
  }
  // Paper: "motion estimation, video encoding, image and audio processing".
  EXPECT_TRUE(domains.count("motion estimation"));
  EXPECT_TRUE(domains.count("video encoding"));
  EXPECT_TRUE(domains.count("image processing"));
  EXPECT_TRUE(domains.count("audio processing"));
}

TEST(Registry, BuildAppByName) {
  ir::Program p = build_app("motion_estimation");
  EXPECT_EQ(p.name(), "motion_estimation");
  EXPECT_THROW(build_app("nonexistent"), std::out_of_range);
}

class PerApp : public ::testing::TestWithParam<AppInfo> {};

TEST_P(PerApp, BuildsAndValidates) {
  ir::Program p = GetParam().build();
  EXPECT_EQ(p.name(), GetParam().name);
  EXPECT_TRUE(ir::validate(p).empty());
}

TEST_P(PerApp, HasArraysAndNests) {
  ir::Program p = GetParam().build();
  EXPECT_GE(p.arrays().size(), 3u);
  EXPECT_GE(p.top().size(), 1u);
  EXPECT_GT(p.total_array_bytes(), 0);
}

TEST_P(PerApp, HasInputsAndOutputs) {
  ir::Program p = GetParam().build();
  bool has_input = false;
  bool has_output = false;
  for (const ir::ArrayDecl& array : p.arrays()) {
    has_input |= array.is_input;
    has_output |= array.is_output;
  }
  EXPECT_TRUE(has_input);
  EXPECT_TRUE(has_output);
}

TEST_P(PerApp, ExposesRealReuse) {
  // Every benchmark must contain at least one copy candidate with a reuse
  // factor > 1 that fits a 16 KiB scratchpad — otherwise MHLA has nothing
  // to exploit and the app would not support the paper's claims.
  ir::Program p = GetParam().build();
  auto sites = analysis::collect_sites(p);
  auto reuse = analysis::ReuseAnalysis::run(p, sites);
  bool exploitable = false;
  for (const analysis::CopyCandidate& cc : reuse.candidates()) {
    if (cc.reuse_factor() > 1.0 && cc.bytes <= 16 * 1024) exploitable = true;
  }
  EXPECT_TRUE(exploitable);
}

TEST_P(PerApp, MhlaImprovesTimeAndEnergy) {
  auto ws = testing::make_ws(GetParam().build(), mem::PlatformConfig{});
  core::RunResult run = core::run_mhla(*ws);
  const sim::FourPoint& fp = run.points;
  EXPECT_LT(fp.mhla.total_cycles(), fp.out_of_box.total_cycles());
  EXPECT_LT(fp.mhla.energy_nj, fp.out_of_box.energy_nj);
  EXPECT_LE(fp.mhla_te.total_cycles(), fp.mhla.total_cycles());
  EXPECT_LE(fp.ideal.total_cycles(), fp.mhla_te.total_cycles());
  EXPECT_TRUE(fp.mhla.feasible);
  EXPECT_TRUE(fp.mhla_te.feasible);
}

INSTANTIATE_TEST_SUITE_P(AllNine, PerApp, ::testing::ValuesIn(all_apps()),
                         [](const ::testing::TestParamInfo<AppInfo>& info) {
                           return info.param.name;
                         });

TEST(AppStructure, MotionEstimationBlockSizes) {
  ir::Program p = build_motion_estimation();
  EXPECT_EQ(p.array("cur").dims, (std::vector<ir::i64>{144, 176}));
  EXPECT_EQ(p.array("ref").dims, (std::vector<ir::i64>{160, 192}));  // +8 pad
  EXPECT_EQ(p.top().size(), 2u);  // capture + search
}

TEST(AppStructure, QsdpcmPyramidShrinks) {
  ir::Program p = build_qsdpcm();
  EXPECT_LT(p.array("s2cur").bytes(), p.array("cur").bytes());
  EXPECT_LT(p.array("s4cur").bytes(), p.array("s2cur").bytes());
}

TEST(AppStructure, JpegTablesAreTiny) {
  ir::Program p = build_jpeg_compress();
  EXPECT_LE(p.array("qtab").bytes(), 256);
  EXPECT_LE(p.array("zig").bytes(), 256);
}

TEST(AppStructure, AdpcmIsTwoPass) {
  ir::Program p = build_adpcm_coder();
  EXPECT_EQ(p.top().size(), 2u);
}

TEST(AppStructure, WaveletIntermediatesDieEarly) {
  ir::Program p = build_wavelet();
  auto sites = analysis::collect_sites(p);
  auto ranges = analysis::array_live_ranges(p, sites);
  // lowH is produced in nest 0 and consumed in nest 1 only.
  EXPECT_EQ(ranges["lowH"].first, 0);
  EXPECT_EQ(ranges["lowH"].last, 1);
}

}  // namespace
}  // namespace mhla::apps
