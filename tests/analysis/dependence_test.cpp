#include "analysis/dependence.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::analysis {
namespace {

using ir::ac;
using ir::av;

DependenceInfo deps_of(const ir::Program& p) {
  auto sites = collect_sites(p);
  return DependenceInfo::run(p, sites);
}

ir::Program three_nest_program() {
  // nest0 writes a; nest1 writes a again and b; nest2 reads both.
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.array("b", {8}, 4);
  pb.array("in", {8}, 4).input();
  pb.begin_loop("i", 0, 8);
  pb.stmt("s0", 1).read("in", {av("i")}).write("a", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 8);
  pb.stmt("s1", 1).write("a", {av("j")}).write("b", {av("j")});
  pb.end_loop();
  pb.begin_loop("k", 0, 8);
  pb.stmt("s2", 1).read("a", {av("k")}).read("b", {av("k")});
  pb.end_loop();
  return pb.finish();
}

TEST(Dependence, WriterNests) {
  ir::Program p = three_nest_program();
  DependenceInfo deps = deps_of(p);
  EXPECT_EQ(deps.writer_nests("a"), (std::vector<int>{0, 1}));
  EXPECT_EQ(deps.writer_nests("b"), (std::vector<int>{1}));
  EXPECT_TRUE(deps.writer_nests("in").empty());
}

TEST(Dependence, ProducerBeforePicksLatest) {
  ir::Program p = three_nest_program();
  DependenceInfo deps = deps_of(p);
  EXPECT_EQ(deps.producer_before("a", 2), 1);
  EXPECT_EQ(deps.producer_before("a", 1), 0);
  EXPECT_EQ(deps.producer_before("a", 0), -1);
}

TEST(Dependence, InputsHaveNoProducer) {
  ir::Program p = three_nest_program();
  DependenceInfo deps = deps_of(p);
  EXPECT_EQ(deps.producer_before("in", 2), -1);
}

TEST(Dependence, UnknownArrayBehavesAsInput) {
  ir::Program p = three_nest_program();
  DependenceInfo deps = deps_of(p);
  EXPECT_EQ(deps.producer_before("nope", 1), -1);
  EXPECT_TRUE(deps.writer_nests("nope").empty());
}

TEST(Dependence, FreedomNests) {
  ir::Program p = three_nest_program();
  DependenceInfo deps = deps_of(p);
  // a consumed in nest 2, produced in nest 1: no whole nest in between.
  EXPECT_EQ(deps.freedom_nests("a", 2), 0);
  // b produced in nest 1, consumed in nest 2: same.
  EXPECT_EQ(deps.freedom_nests("b", 2), 0);
  // input read in nest 2: the whole prefix (nests 0 and 1) is available.
  EXPECT_EQ(deps.freedom_nests("in", 2), 2);
}

TEST(Dependence, SameNestWriteDoesNotCount) {
  // A write in the same nest is not "before" it.
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).write("a", {av("i")}).read("a", {av("i")});
  pb.end_loop();
  ir::Program p = pb.finish();
  DependenceInfo deps = deps_of(p);
  EXPECT_EQ(deps.producer_before("a", 0), -1);
}

}  // namespace
}  // namespace mhla::analysis
