#include "analysis/sites.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace mhla::analysis {
namespace {

using ir::ac;
using ir::av;

TEST(Sites, CollectsInProgramOrderWithDenseIds) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  pb.array("b", {8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s0", 1).read("a", {av("i")}).write("b", {av("i")});
  pb.end_loop();
  pb.begin_loop("j", 0, 4);
  pb.stmt("s1", 1).read("b", {av("j")});
  pb.end_loop();
  ir::Program p = pb.finish();

  auto sites = collect_sites(p);
  ASSERT_EQ(sites.size(), 3u);
  for (std::size_t k = 0; k < sites.size(); ++k) {
    EXPECT_EQ(sites[k].id, static_cast<int>(k));
  }
  EXPECT_EQ(sites[0].access->array, "a");
  EXPECT_EQ(sites[1].access->array, "b");
  EXPECT_EQ(sites[2].access->array, "b");
  EXPECT_EQ(sites[0].nest, 0);
  EXPECT_EQ(sites[2].nest, 1);
}

TEST(Sites, KindsAndDynamicCounts) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8, 8}, 4);
  pb.begin_loop("i", 0, 8);
  pb.begin_loop("j", 0, 8);
  pb.stmt("s", 1).read("a", {av("i"), av("j")}, 2).write("a", {av("i"), av("j")});
  pb.end_loop();
  pb.end_loop();
  auto p = pb.finish();
  auto sites = collect_sites(p);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_TRUE(sites[0].is_read());
  EXPECT_FALSE(sites[0].is_write());
  EXPECT_EQ(sites[0].iterations(), 64);
  EXPECT_EQ(sites[0].dynamic_accesses(), 128);  // count = 2
  EXPECT_TRUE(sites[1].is_write());
  EXPECT_EQ(sites[1].dynamic_accesses(), 64);
}

TEST(Sites, ResolvesArrayPointers) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 2);
  pb.begin_loop("i", 0, 8);
  pb.stmt("s", 1).read("a", {av("i")});
  pb.end_loop();
  auto p = pb.finish();
  auto sites = collect_sites(p);
  ASSERT_NE(sites[0].array, nullptr);
  EXPECT_EQ(sites[0].array->name, "a");
  EXPECT_EQ(sites[0].array->elem_bytes, 2);
}

TEST(Sites, EmptyProgram) {
  ir::ProgramBuilder pb("p");
  pb.array("a", {8}, 4);
  auto p = pb.finish();
  EXPECT_TRUE(collect_sites(p).empty());
}

}  // namespace
}  // namespace mhla::analysis
